// The §6 deployment architecture, end to end: two negotiation agents (one
// per ISP) talk the Nexit wire protocol over a real AF_UNIX socket pair —
// HELLO/CANDIDATES/FLOW_ANNOUNCE handshake, opaque PREF_ADVERTs, alternating
// PROPOSE/RESPONSE rounds, STOP and settlement. The negotiated routes are
// then installed into a BGP RIB as local-pref overrides, exactly as Fig. 12
// describes ("low-level BGP mechanisms such as local-prefs are used to
// implement it").
//
//   ./build/examples/wire_agents

#include <cstdio>
#include <iostream>

#include "agent/agent.hpp"
#include "bgp/decision.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"
#include "util/flags.hpp"

using namespace nexit;

int main(int argc, char** argv) {
  // No knobs here — but --help should still say so, and stray flags should
  // be an error rather than silently ignored.
  util::Flags flags(argc, argv);
  util::reject_unknown(flags);

  // A pair of synthetic ISPs and the flows they exchange.
  sim::UniverseConfig ucfg;
  ucfg.isp_count = 20;
  ucfg.seed = 5;
  ucfg.max_pairs = 1;
  const auto pairs = sim::build_pair_universe(ucfg, 2);
  const topology::IspPair& pair = pairs.front();
  routing::PairRouting routing(pair);
  util::Rng rng(5);
  traffic::TrafficConfig tcfg;
  tcfg.model = traffic::WorkloadModel::kIdentical;
  auto tm = traffic::TrafficMatrix::build_bidirectional(pair, tcfg, rng);

  std::vector<std::size_t> candidates(pair.interconnection_count());
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  auto problem = core::make_distance_problem(routing, tm.flows(), candidates);

  // Wire configuration: deterministic tie-breaks are contractual.
  core::NegotiationConfig ncfg;
  ncfg.tie_break = core::TieBreak::kDeterministic;
  core::DistanceOracle oracle_a(0, ncfg.preferences), oracle_b(1, ncfg.preferences);

  auto [chan_a, chan_b] = agent::make_socket_channel_pair();
  agent::NegotiationAgent agent_a(problem, oracle_a, *chan_a,
                                  agent::AgentConfig{0, 64501, ncfg});
  agent::NegotiationAgent agent_b(problem, oracle_b, *chan_b,
                                  agent::AgentConfig{1, 64502, ncfg});

  const std::size_t steps = agent::run_session(agent_a, agent_b);
  if (!agent_a.done() || !agent_b.done()) {
    std::cerr << "session failed: A=" << agent_a.error()
              << " B=" << agent_b.error() << "\n";
    return 1;
  }
  const auto& out = agent_a.outcome();
  std::printf("session over AF_UNIX socketpair: %zu pump steps, %zu rounds, "
              "%zu flows negotiated, %zu moved, stop: %s\n",
              steps, out.rounds, out.flows_negotiated, out.flows_moved,
              core::to_string(out.stop_reason).c_str());
  std::printf("both sides agree on the assignment: %s\n",
              agent_a.outcome().assignment.ix_of_flow ==
                      agent_b.outcome().assignment.ix_of_flow
                  ? "yes"
                  : "NO (bug!)");

  // Install ISP A's negotiated exits into a BGP RIB: one synthetic prefix
  // per destination PoP of ISP B, candidate routes via every
  // interconnection, early-exit IGP costs — then local-pref overrides for
  // the negotiated choices.
  bgp::RibIn rib;
  std::size_t overrides = 0;
  for (const auto& flow : tm.flows()) {
    if (flow.direction != traffic::Direction::kAtoB) continue;
    const auto prefix = *bgp::Prefix::parse(
        "10." + std::to_string(flow.dst.value()) + ".0.0/16");
    for (std::size_t ix : candidates) {
      bgp::Route r;
      r.prefix = prefix;
      r.as_path = {64502};
      r.neighbor_as = 64502;
      r.exit_id = static_cast<std::uint32_t>(ix);
      r.igp_cost = routing.igp_to_ix(0, flow.src, ix);
      r.router_id = static_cast<std::uint32_t>(ix + 1);
      rib.add_route(r);
    }
    const std::size_t negotiated_ix =
        out.assignment.ix_of_flow[static_cast<std::size_t>(flow.id.value())];
    if (rib.best(prefix)->exit_id != negotiated_ix) {
      rib.apply_local_pref_override(prefix,
                                    static_cast<std::uint32_t>(negotiated_ix), 500);
      ++overrides;
    }
  }
  std::printf("BGP integration: %zu local-pref overrides installed; every "
              "negotiated exit now wins the decision process\n",
              overrides);
  return 0;
}
