// Quickstart: build two tiny ISPs, let them negotiate the flows they
// exchange with Nexit, and print what changed. This walks the whole public
// API surface: topology -> routing -> traffic -> negotiation -> metrics.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "topology/generator.hpp"
#include "traffic/traffic.hpp"
#include "util/flags.hpp"

using namespace nexit;

int main(int argc, char** argv) {
  // No knobs here — but --help should still say so, and stray flags should
  // be an error rather than silently ignored.
  util::Flags flags(argc, argv);
  util::reject_unknown(flags);

  // 1. Two synthetic ISPs over the built-in city database. Peering happens
  //    wherever both have a PoP.
  topology::GeneratorConfig gcfg;
  gcfg.min_pops = 10;
  gcfg.max_pops = 14;
  topology::TopologyGenerator generator(geo::CityDb::builtin(), gcfg);
  util::Rng rng(7);
  topology::IspTopology isp_a = generator.generate(topology::AsNumber{1}, rng);
  topology::IspTopology isp_b = generator.generate(topology::AsNumber{2}, rng);

  auto maybe_pair = topology::make_pair_if_peers(isp_a, isp_b, 2);
  while (!maybe_pair) {  // regenerate until the two ISPs share >= 2 cities
    isp_b = generator.generate(topology::AsNumber{2}, rng);
    maybe_pair = topology::make_pair_if_peers(isp_a, isp_b, 2);
  }
  const topology::IspPair& pair = *maybe_pair;

  std::cout << "ISP A has " << pair.a().pop_count() << " PoPs, ISP B has "
            << pair.b().pop_count() << "; they interconnect in:\n";
  for (const auto& link : pair.interconnections())
    std::cout << "  - " << link.city_name << "\n";

  // 2. Routing view + one flow per PoP pair, in both directions.
  routing::PairRouting routing(pair);
  traffic::TrafficConfig tcfg;
  tcfg.model = traffic::WorkloadModel::kIdentical;
  auto tm = traffic::TrafficMatrix::build_bidirectional(pair, tcfg, rng);
  std::cout << "\nNegotiating " << tm.size() << " flows over "
            << pair.interconnection_count() << " interconnections...\n";

  // 3. The negotiation problem: default = early-exit (hot potato).
  std::vector<std::size_t> candidates(pair.interconnection_count());
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  auto problem = core::make_distance_problem(routing, tm.flows(), candidates);

  // 4. Each ISP privately maps alternatives to opaque preference classes
  //    (here both optimise the distance flows travel inside their network),
  //    then the Nexit engine runs the §4 protocol.
  core::PreferenceConfig prefs;  // P = 10, the paper's setting
  core::DistanceOracle oracle_a(0, prefs), oracle_b(1, prefs);
  core::NegotiationConfig ncfg;
  core::NegotiationEngine engine(problem, oracle_a, oracle_b, ncfg);
  core::NegotiationOutcome outcome = engine.run();

  // 5. Compare default / negotiated / globally-optimal routing.
  const double def = metrics::total_flow_km(routing, tm.flows(),
                                            problem.default_assignment);
  const double neg = metrics::total_flow_km(routing, tm.flows(),
                                            outcome.assignment);
  auto optimal = routing::assign_min_total_km(routing, tm.flows(), candidates);
  const double opt = metrics::total_flow_km(routing, tm.flows(), optimal);

  std::printf("\n  total flow distance (km):\n");
  std::printf("    default (early-exit): %12.0f\n", def);
  std::printf("    negotiated (Nexit):   %12.0f  (%.2f%% saved)\n", neg,
              (def - neg) / def * 100.0);
  std::printf("    globally optimal:     %12.0f  (%.2f%% saved)\n", opt,
              (def - opt) / def * 100.0);
  std::printf("  flows re-routed: %zu of %zu; rounds: %zu; stop: %s\n",
              outcome.flows_moved, tm.size(), outcome.rounds,
              core::to_string(outcome.stop_reason).c_str());
  std::printf("  per-ISP gain in own network: A %+.0f km, B %+.0f km\n",
              outcome.true_gain_a, outcome.true_gain_b);
  std::printf("  (win-win by construction: neither ISP ends below its default)\n");
  return 0;
}
