// §5.3 scenario: the two ISPs optimise for DIFFERENT criteria — the upstream
// wants to avoid overload after a failure (bandwidth oracle), the downstream
// wants its traffic to travel fewer kilometres (distance oracle). Opaque
// preference classes make the negotiation work anyway: each side maps its
// own metric to classes privately.
//
//   ./build/examples/diverse_objectives [--seed=N]

#include <cstdio>
#include <iostream>

#include "capacity/capacity.hpp"
#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "metrics/metrics.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"
#include "util/flags.hpp"

using namespace nexit;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  sim::UniverseConfig ucfg;
  ucfg.isp_count = 30;
  ucfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 23));
  util::reject_unknown(flags);
  ucfg.max_pairs = 1;
  const auto pairs = sim::build_pair_universe(ucfg, 3);
  if (pairs.empty()) {
    std::cerr << "no suitable pair for this seed\n";
    return 1;
  }
  const topology::IspPair& pair = pairs.front();
  routing::PairRouting routing(pair);
  util::Rng rng(ucfg.seed);
  auto tm = traffic::TrafficMatrix::build(pair, traffic::Direction::kAtoB,
                                          traffic::TrafficConfig{}, rng);

  std::vector<std::size_t> all_ix(pair.interconnection_count());
  for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
  auto pre_failure = routing::assign_early_exit(routing, tm.flows(), all_ix);
  auto baseline = routing::compute_loads(routing, tm.flows(), pre_failure);
  auto caps = capacity::assign_capacities(baseline, capacity::CapacityConfig{});

  auto problem = core::make_failure_problem(routing, tm.flows(), 0);
  std::cout << "pair " << pair.label() << ": interconnection 0 failed, "
            << problem.negotiable.size() << " flows on the table\n"
            << "upstream optimises LINK LOAD, downstream optimises DISTANCE\n";

  // Objectives are registry names — the same strings a spec file uses
  // (`oracle-a=bandwidth oracle-b=distance`, see sim/spec.hpp).
  core::PreferenceConfig prefs;
  const core::OracleRegistry& registry = core::OracleRegistry::global();
  const core::BuiltOracle upstream =
      registry.build(core::OracleSpec::parse("bandwidth"), {0, prefs, &caps});
  const core::BuiltOracle downstream =
      registry.build(core::OracleSpec::parse("distance"), {1, prefs, nullptr});
  core::NegotiationConfig ncfg;
  ncfg.reassign_traffic_fraction = 0.05;
  core::NegotiationEngine engine(problem, upstream.get(), downstream.get(),
                                 ncfg);
  auto outcome = engine.run();

  auto def_loads =
      routing::compute_loads(routing, tm.flows(), problem.default_assignment);
  auto neg_loads = routing::compute_loads(routing, tm.flows(), outcome.assignment);

  double def_km = 0, neg_km = 0;
  for (std::size_t idx : problem.negotiable) {
    const auto& f = tm.flows()[idx];
    // nexit-lint: allow(float-accumulate): negotiable-flow order, the
    // canonical km-summation order (matches metrics::side_flow_km)
    def_km += f.size *
              routing.km_in_side(f, problem.default_assignment.ix_of_flow[idx], 1);
    // nexit-lint: allow(float-accumulate): same canonical order
    neg_km +=
        f.size * routing.km_in_side(f, outcome.assignment.ix_of_flow[idx], 1);
  }

  std::printf("\n  upstream max excess load: default %.3f -> negotiated %.3f\n",
              metrics::side_mel(def_loads, caps, 0),
              metrics::side_mel(neg_loads, caps, 0));
  std::printf("  downstream km (affected flows): default %.0f -> negotiated "
              "%.0f (%.1f%% saved)\n",
              def_km, neg_km, def_km > 0 ? (def_km - neg_km) / def_km * 100 : 0);
  std::printf("  both sides improved their own metric: %s\n",
              (metrics::side_mel(neg_loads, caps, 0) <=
                   metrics::side_mel(def_loads, caps, 0) + 1e-9 &&
               neg_km <= def_km + 1e-9)
                  ? "yes"
                  : "no (this seed is an exception; try others)");
  return 0;
}
