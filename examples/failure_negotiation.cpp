// Failure scenario (the paper's §2 second example, at scale): an
// interconnection between two ISPs fails, the affected flows must be
// re-routed, and naive early-exit overloads links. The ISPs renegotiate the
// affected flows with bandwidth oracles and compare the resulting maximum
// excess load (MEL) against default re-routing and the LP optimum.
//
//   ./build/examples/failure_negotiation [--seed=N]

#include <cstdio>
#include <iostream>

#include "capacity/capacity.hpp"
#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "opt/min_max_load.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"
#include "util/flags.hpp"

using namespace nexit;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  // A pair with >= 3 interconnections so failure leaves >= 2 survivors.
  sim::UniverseConfig ucfg;
  ucfg.isp_count = 30;
  ucfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  util::reject_unknown(flags);
  ucfg.max_pairs = 1;
  auto pairs = sim::build_pair_universe(ucfg, 3);
  if (pairs.empty()) {
    std::cerr << "no 3-interconnection pair for this seed; try another\n";
    return 1;
  }
  const topology::IspPair& pair = pairs.front();
  routing::PairRouting routing(pair);

  // Gravity traffic A -> B; capacities proportional to pre-failure load.
  util::Rng rng(ucfg.seed);
  auto tm = traffic::TrafficMatrix::build(pair, traffic::Direction::kAtoB,
                                          traffic::TrafficConfig{}, rng);
  std::vector<std::size_t> all_ix(pair.interconnection_count());
  for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
  auto pre_failure = routing::assign_early_exit(routing, tm.flows(), all_ix);
  auto baseline = routing::compute_loads(routing, tm.flows(), pre_failure);
  auto caps = capacity::assign_capacities(baseline, capacity::CapacityConfig{});

  // Fail the busiest interconnection.
  std::vector<std::size_t> usage(pair.interconnection_count(), 0);
  for (std::size_t ix : pre_failure.ix_of_flow) usage[ix]++;
  std::size_t failed = 0;
  for (std::size_t i = 1; i < usage.size(); ++i)
    if (usage[i] > usage[failed]) failed = i;

  std::cout << "pair " << pair.label() << ": failing the "
            << pair.interconnections()[failed].city_name
            << " interconnection (" << usage[failed] << " of " << tm.size()
            << " flows used it)\n";

  auto problem = core::make_failure_problem(routing, tm.flows(), failed);
  std::cout << problem.negotiable.size() << " affected flows ("
            << 100.0 * problem.negotiable_volume() / tm.total_volume()
            << "% of traffic) negotiate over " << problem.candidates.size()
            << " surviving interconnections\n";

  // Default re-routing: early-exit over the survivors.
  auto report = [&](const char* name, const routing::LoadMap& loads) {
    std::printf("  %-22s MEL upstream %6.3f   downstream %6.3f\n", name,
                metrics::side_mel(loads, caps, 0),
                metrics::side_mel(loads, caps, 1));
  };
  report("default (early-exit):",
         routing::compute_loads(routing, tm.flows(), problem.default_assignment));

  // Negotiated: Nexit with bandwidth oracles, reassign every 5% of traffic.
  core::PreferenceConfig prefs;
  core::BandwidthOracle oracle_a(0, prefs, caps), oracle_b(1, prefs, caps);
  core::NegotiationConfig ncfg;
  ncfg.reassign_traffic_fraction = 0.05;
  // Deterministic tie-breaks, matching the wire agents and the runtime's
  // link-failure scenario (tests/runtime_test.cpp replays this renegotiation
  // through runtime::Scenario and checks the outcomes coincide).
  ncfg.tie_break = core::TieBreak::kDeterministic;
  core::NegotiationEngine engine(problem, oracle_a, oracle_b, ncfg);
  auto outcome = engine.run();
  report("negotiated (Nexit):",
         routing::compute_loads(routing, tm.flows(), outcome.assignment));
  std::printf("    (%zu flows moved off their post-failure default, "
              "%zu reassignments)\n",
              outcome.flows_moved, outcome.reassignments);

  // Globally optimal (fractional LP) for reference.
  std::vector<char> negotiable(tm.size(), 0);
  for (std::size_t idx : problem.negotiable) negotiable[idx] = 1;
  auto lp = opt::solve_min_max_load(routing, tm.flows(), negotiable, pre_failure,
                                    problem.candidates, caps);
  if (lp.status == lp::SolveStatus::kOptimal) {
    report("optimal (LP, fractional):",
           routing::compute_loads_fractional(routing, tm.flows(), lp.assignment));
  }
  return 0;
}
