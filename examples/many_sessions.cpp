// The concurrent negotiation runtime, end to end: a whole universe of ISP
// pairs negotiates at once over the event-driven SessionManager, with a
// scenario timeline injecting the churn a production deployment would see —
// staggered session starts, a mid-session interconnection failure that
// forces a renegotiation with bandwidth oracles (the §5.2 scenario), a peer
// restart, and one ISP pair stuck behind a lossy control channel that fails
// cleanly by timeout instead of spinning forever.
//
//   ./build/many_sessions [--seed=N] [--threads=N]
//
// The same composition is declarable with no C++ at all: `nexit_run
// --scenario=runtime_churn` (or --spec=scenarios/runtime_churn.spec) drives
// an identical timeline through the scenario registry's runtime.* spec
// namespace; this example remains as the library-level walk-through.

#include <cstdio>

#include "runtime/scenario.hpp"
#include "util/flags.hpp"

using namespace nexit;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  runtime::ScenarioConfig cfg;
  cfg.universe.isp_count = 30;
  cfg.universe.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  cfg.universe.max_pairs = 12;
  cfg.min_links = 3;  // failures need surviving interconnections
  // Bidirectional identical-weight traffic (the distance experiments'
  // workload) gives every session real proposal rounds to chew through.
  cfg.traffic = runtime::ScenarioTraffic::kBidirectionalIdentical;
  cfg.negotiation.reassign_traffic_fraction = 0.05;
  cfg.runtime.threads = util::get_count(flags, "threads", 1, 1024);
  util::reject_unknown(flags);

  cfg.start_stagger = 2;              // sessions come up two ticks apart
  cfg.limits.max_steps_per_pump = 8;  // yield between bursts: events can
                                      // land mid-negotiation
  cfg.limits.handshake_deadline = 16;
  cfg.limits.max_attempts = 2;
  // Session 3's control channel black-holes every frame: it must end in a
  // clean kFailed via the handshake deadline, not spin forever.
  cfg.faults.drop = 1.0;
  cfg.fault_targets = {3};
  // The declared timeline (replayable from this config alone):
  cfg.events = {
      // Interconnection failure on session 0's pair: whatever it agreed on
      // is void — re-route by early-exit over the survivors and renegotiate
      // the affected flows with bandwidth oracles.
      {1, runtime::EventKind::kLinkFailure, 0, runtime::kBusiestIx},
      // One peer of session 1 crashes and reconnects with fresh channels.
      {3, runtime::EventKind::kPeerRestart, 1, 0},
      // Session 2's traffic churns: renegotiate a fresh matrix.
      {5, runtime::EventKind::kFlowChurn, 2, 4242},
  };

  runtime::Scenario scenario(cfg);
  const runtime::ScenarioReport report = scenario.run();

  const char* kind_names[] = {"initial", "churn-renego", "failure-renego"};
  std::printf("%-4s %-22s %-15s %-10s %8s %8s %9s\n", "id", "pair", "kind",
              "status", "attempts", "rounds", "messages");
  for (const auto& s : report.sessions) {
    std::printf("%-4u %-22s %-15s %-10s %8d %8zu %9llu",
                s.id, s.pair_label.c_str(),
                kind_names[static_cast<int>(s.kind)],
                runtime::to_string(s.status).c_str(), s.attempts,
                s.status == runtime::SessionStatus::kDone ? s.outcome.rounds
                                                          : 0,
                static_cast<unsigned long long>(s.messages));
    if (s.parent >= 0)
      std::printf("   (renegotiates for session %lld)",
                  static_cast<long long>(s.parent));
    if (s.status == runtime::SessionStatus::kFailed ||
        s.status == runtime::SessionStatus::kCancelled)
      std::printf("   [%s]", s.error.c_str());
    std::printf("\n");
  }

  const auto& st = report.stats;
  std::printf("\n%zu sessions: %zu done, %zu failed, %zu cancelled; "
              "%zu scheduling rounds (peak %zu ready), final tick %llu\n",
              st.sessions, st.done, st.failed, st.cancelled, st.rounds,
              st.peak_ready, static_cast<unsigned long long>(st.final_tick));

  // The failure renegotiation is the §5.2 story: report what moved.
  for (const auto& s : report.sessions) {
    if (s.kind == runtime::SessionKind::kFailureRenegotiation &&
        s.status == runtime::SessionStatus::kDone) {
      const auto& world = scenario.world_of(s.id);
      std::printf("failure renegotiation on %s: interconnection %zu failed, "
                  "%zu affected flows renegotiated, %zu moved off their "
                  "post-failure default, %zu reassignments\n",
                  s.pair_label.c_str(), world.failed_ix,
                  s.outcome.flows_negotiated, s.outcome.flows_moved,
                  s.outcome.reassignments);
    }
  }
  // Everything accounted for: the lossy session failed cleanly, the
  // cancelled one was superseded by its renegotiation, the rest agreed.
  return st.failed == 1 && st.done + st.cancelled + st.failed == st.sessions
             ? 0
             : 1;
}
