// Figure 4 of the paper: the benefit of optimal and negotiated routing for
// the distance metric. (a) CDF over ISP pairs of the total % reduction in
// flow distance versus default (early-exit) routing; (b) CDF of the
// individual per-ISP % reduction (two samples per pair).
//
// Paper claims reproduced here:
//  - negotiated total gain tracks globally-optimal total gain closely;
//  - the median total gain is small (the "price of anarchy" is low);
//  - under global optimisation a sizable fraction of individual ISPs LOSE;
//  - under negotiation no ISP loses.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);
  bench::JsonReport json(flags, "fig4_distance_gain");

  sim::DistanceExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.run_flow_pair_baselines = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Figure 4", "distance gain of optimal vs negotiated routing",
                          bench::universe_summary(cfg.universe));
  const auto samples = sim::run_distance_experiment(cfg);
  std::cout << "samples: " << samples.size() << " ISP pairs\n";

  util::Cdf total_opt, total_neg, indiv_opt, indiv_neg;
  std::size_t opt_losers = 0, neg_losers = 0, isps = 0;
  for (const auto& s : samples) {
    total_opt.add(s.total_gain_pct(s.optimal_km));
    total_neg.add(s.total_gain_pct(s.negotiated_km));
    for (int side = 0; side < 2; ++side) {
      const double og = s.side_gain_pct(s.optimal_side_km, side);
      const double ng = s.side_gain_pct(s.negotiated_side_km, side);
      indiv_opt.add(og);
      indiv_neg.add(ng);
      ++isps;
      if (og < -0.5) ++opt_losers;
      if (ng < -0.5) ++neg_losers;
    }
  }

  sim::print_cdf_figure("Fig 4a", "total gain across both ISPs",
                        "% reduction in total flow km vs default routing",
                        {"negotiated", "optimal"}, {&total_neg, &total_opt});
  sim::print_cdf_figure("Fig 4b", "individual ISP gain",
                        "% reduction in own-network flow km vs default",
                        {"negotiated", "optimal"}, {&indiv_neg, &indiv_opt});

  const double med_opt = total_opt.value_at(0.5);
  const double med_neg = total_neg.value_at(0.5);
  std::cout << "\n";
  sim::paper_check(
      "negotiated total gain is close to globally optimal (within ~1/3)",
      "median optimal " + std::to_string(med_opt) + "%, negotiated " +
          std::to_string(med_neg) + "%",
      med_neg >= med_opt * 0.5);
  sim::paper_check("median total gain is modest (paper ~4%; price of anarchy low)",
                   "median total optimal gain " + std::to_string(med_opt) + "%",
                   med_opt < 25.0);
  sim::paper_check(
      "a sizable fraction of ISPs lose under GLOBAL optimisation (paper ~1/3)",
      std::to_string(opt_losers) + "/" + std::to_string(isps) +
          " ISPs lose >0.5% of own distance",
      opt_losers > isps / 20);
  sim::paper_check("no ISP loses under NEGOTIATION",
                   std::to_string(neg_losers) + "/" + std::to_string(isps) +
                       " ISPs lose >0.5%",
                   neg_losers == 0);

  bench::record_universe(json, cfg.universe, cfg.threads);
  json.metric("samples", static_cast<std::int64_t>(samples.size()));
  json.metric_cdf("total_gain_pct.negotiated", total_neg);
  json.metric_cdf("total_gain_pct.optimal", total_opt);
  json.metric_cdf("individual_gain_pct.negotiated", indiv_neg);
  json.metric_cdf("individual_gain_pct.optimal", indiv_opt);
  json.metric("isps_losing.optimal", static_cast<std::int64_t>(opt_losers));
  json.metric("isps_losing.negotiated", static_cast<std::int64_t>(neg_losers));
  json.write();
  return 0;
}
