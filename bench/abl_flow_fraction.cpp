// Ablation (§5.1/§5.2 claim): "only a fraction of flows — roughly 20% in our
// experiment — need to be non-default routed to get most of the gain."
// Measures, per pair, which fraction of flows the negotiation actually moved
// and how much of the achievable gain the first X% of moved flows capture
// (moves ranked by their combined km saving).

#include "bench_common.hpp"

#include <algorithm>

#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "traffic/traffic.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 80));
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.run_flow_pair_baselines = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Ablation: fraction of flows moved",
                          "how many non-default routes are needed for the gain",
                          bench::universe_summary(cfg.universe));
  const auto samples = sim::run_distance_experiment(cfg);

  // Aggregate per-flow savings of negotiated moves across all pairs.
  std::vector<double> savings;  // km saved by each moved flow
  double total_gain_km = 0.0;
  std::size_t total_flows = 0, moved_flows = 0;
  for (const auto& s : samples) {
    total_flows += s.flow_count;
    moved_flows += s.flows_moved;
    total_gain_km += s.default_km - s.negotiated_km;
    for (double km : s.flow_saving_km_negotiated)
      if (km > 1e-9) savings.push_back(km);
  }
  std::sort(savings.rbegin(), savings.rend());

  const double frac_moved =
      100.0 * static_cast<double>(moved_flows) / static_cast<double>(total_flows);
  std::cout << "samples: " << samples.size() << " pairs, " << total_flows
            << " flows; moved " << moved_flows << " (" << frac_moved << "%)\n";

  double sum = 0.0;
  for (double v : savings) sum += v;
  std::cout << "\n  top-moved-flows%   share-of-total-gain%\n";
  double share_at_20 = 0.0;
  for (double pct : {1.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    const auto k = static_cast<std::size_t>(savings.size() * pct / 100.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < k && i < savings.size(); ++i) acc += savings[i];
    const double share = sum > 0 ? 100.0 * acc / sum : 0.0;
    std::printf("  %15.1f   %20.2f\n", pct, share);
    if (pct == 20.0) share_at_20 = share;
  }

  std::cout << "\n";
  sim::paper_check(
      "a minority of flows moved off default suffices (paper ~20%)",
      std::to_string(frac_moved) + "% of all flows were re-routed",
      frac_moved < 50.0);
  sim::paper_check(
      "the top 20% of improved flows carries most of the gain",
      std::to_string(share_at_20) + "% of the gain from the top 20% of flows",
      share_at_20 > 50.0);
  return 0;
}
