// Ablation (§5.1/§5.2): which fraction of flows must move to capture the gain.
//
// Legacy shim: this binary is now a preset of the declarative scenario API
// (sim/spec.hpp + sim/scenarios.hpp). It accepts the full spec flag
// surface and is byte-identical to `nexit_run --scenario=abl_flow_fraction` — the CI
// migration guard diffs the two outputs on every run.

#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  return nexit::sim::scenario_shim_main("abl_flow_fraction", argc, argv);
}
