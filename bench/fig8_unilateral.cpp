// Figure 8: what happens to the DOWNSTREAM ISP when the upstream unilaterally
// load-balances its own network after a failure (no negotiation). The figure
// plots the CDF of MEL(upstream-optimized)/MEL(default) measured on the
// downstream's links. Paper claims: the effect is unpredictable — sometimes
// it helps, sometimes it badly hurts (>2x default for ~10% of samples).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::BandwidthExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.negotiation.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  cfg.include_unilateral = true;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Figure 8",
                          "unilateral upstream optimisation, impact on the downstream",
                          bench::universe_summary(cfg.universe));
  const auto samples = sim::run_bandwidth_experiment(cfg);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf down_ratio;  // unilateral vs default, downstream links
  std::size_t helped = 0, hurt = 0, hurt2x = 0;
  for (const auto& s : samples) {
    if (s.mel_default[1] <= 0.0 || s.mel_unilateral[1] <= 0.0) continue;
    const double r = s.mel_unilateral[1] / s.mel_default[1];
    down_ratio.add(r);
    if (r < 0.99) ++helped;
    if (r > 1.01) ++hurt;
    if (r > 2.0) ++hurt2x;
  }

  sim::print_cdf_figure(
      "Fig 8", "downstream impact of upstream-centric optimisation",
      "downstream MEL, upstream-optimized / default (>1 means harmed)",
      {"upstream-optimized/default"}, {&down_ratio});

  const std::size_t n = down_ratio.sorted_samples().size();
  std::cout << "\n";
  sim::paper_check(
      "the downstream outcome is unpredictable: both helped and hurt occur",
      std::to_string(100.0 * helped / n) + "% helped, " +
          std::to_string(100.0 * hurt / n) + "% hurt, " +
          std::to_string(100.0 * hurt2x / n) + "% hurt >2x",
      helped > 0 && hurt > 0);
  sim::paper_check("a noticeable share of samples is harmed badly (paper ~10% >2x)",
                   std::to_string(100.0 * hurt2x / n) + "% over 2x default MEL",
                   hurt2x > 0);
  return 0;
}
