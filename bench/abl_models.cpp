// Ablation (§5.2 "alternate models"): the paper reports its bandwidth
// results are "qualitatively similar" under alternate workload models
// (identical and uniform-random PoP weights instead of population gravity),
// alternate capacity rules (power-of-two rounding, mean/max for unused
// links), and an alternate ISP metric (piecewise-linear link cost). This
// bench reruns the Fig. 7 experiment under each variant and reports the
// headline statistics side by side.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::BandwidthExperimentConfig base;
  base.universe = bench::universe_from_flags(flags);
  base.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 30));
  base.negotiation = bench::negotiation_from_flags(flags);
  base.negotiation.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  base.include_unilateral = false;
  base.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Ablation: alternate models (§5.2)",
                          "workload / capacity / metric sensitivity of Fig. 7",
                          bench::universe_summary(base.universe));

  struct Variant {
    const char* name;
    sim::BandwidthExperimentConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"gravity + median-capacity (paper)", base});
  {
    auto c = base;
    c.traffic.model = traffic::WorkloadModel::kIdentical;
    variants.push_back({"identical PoP weights", c});
  }
  {
    auto c = base;
    c.traffic.model = traffic::WorkloadModel::kUniformRandom;
    variants.push_back({"uniform-random PoP weights", c});
  }
  {
    auto c = base;
    c.capacity.round_up_power_of_two = true;
    variants.push_back({"power-of-two capacities", c});
  }
  {
    auto c = base;
    c.capacity.unused_rule = capacity::UnusedLinkRule::kMax;
    variants.push_back({"unused links get max load", c});
  }
  {
    auto c = base;
    c.use_piecewise_cost = true;
    variants.push_back({"piecewise-linear cost metric", c});
  }

  std::cout << "\n  variant                              samples   "
               "default-med   negotiated-med   neg<=def%\n";
  double paper_def = 0.0, paper_neg = 0.0;
  bool all_shapes_hold = true;
  for (const auto& v : variants) {
    const auto samples = sim::run_bandwidth_experiment(v.cfg);
    util::Cdf def_up, neg_up;
    std::size_t dominated = 0;
    for (const auto& s : samples) {
      def_up.add(s.ratio(s.mel_default, 0));
      neg_up.add(s.ratio(s.mel_negotiated, 0));
      if (s.ratio(s.mel_negotiated, 0) <= s.ratio(s.mel_default, 0) + 1e-9)
        ++dominated;
    }
    const double dm = def_up.value_at(0.5);
    const double nm = neg_up.value_at(0.5);
    const double dom_pct =
        samples.empty() ? 0.0
                        : 100.0 * static_cast<double>(dominated) /
                              static_cast<double>(samples.size());
    std::printf("  %-36s   %6zu   %11.3f   %14.3f   %8.1f\n", v.name,
                samples.size(), dm, nm, dom_pct);
    if (std::string(v.name).find("paper") != std::string::npos) {
      paper_def = dm;
      paper_neg = nm;
    }
    // Qualitative shape: negotiated at or below default at the median.
    all_shapes_hold &= nm <= dm + 1e-9;
  }

  std::cout << "\n";
  sim::paper_check(
      "results are qualitatively similar across alternate models "
      "(negotiated <= default at the median everywhere)",
      "paper-model medians: default " + std::to_string(paper_def) +
          ", negotiated " + std::to_string(paper_neg),
      all_shapes_hold);
  return 0;
}
