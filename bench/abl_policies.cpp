// Ablation (§4 modes): turn/termination/proposal policy comparison. The
// paper describes alternate vs lower-cumulative-gain turns (the latter
// approximating max-min fairness), early vs full termination, and the
// best-local-min-impact proposal rule. This bench quantifies them on the
// distance workload: total gain and the |gainA - gainB| imbalance.

#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig base;
  base.universe = bench::universe_from_flags(flags);
  base.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  base.negotiation = bench::negotiation_from_flags(flags);
  base.run_flow_pair_baselines = false;
  base.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Ablation: protocol policies",
                          "turn / termination / proposal policy comparison",
                          bench::universe_summary(base.universe));

  struct Variant {
    const char* name;
    core::TurnPolicy turn;
    core::TerminationPolicy termination;
    core::ProposalPolicy proposal;
  };
  const Variant variants[] = {
      {"alternate+early+max-combined (paper)", core::TurnPolicy::kAlternate,
       core::TerminationPolicy::kEarly, core::ProposalPolicy::kMaxCombinedGain},
      {"lower-gain turns (max-min-fair)", core::TurnPolicy::kLowerGain,
       core::TerminationPolicy::kEarly, core::ProposalPolicy::kMaxCombinedGain},
      {"coin-toss turns", core::TurnPolicy::kCoinToss,
       core::TerminationPolicy::kEarly, core::ProposalPolicy::kMaxCombinedGain},
      {"full termination", core::TurnPolicy::kAlternate,
       core::TerminationPolicy::kFull, core::ProposalPolicy::kMaxCombinedGain},
      {"negotiate-all (social)", core::TurnPolicy::kAlternate,
       core::TerminationPolicy::kNegotiateAll,
       core::ProposalPolicy::kMaxCombinedGain},
      {"best-local-min-impact proposals", core::TurnPolicy::kAlternate,
       core::TerminationPolicy::kEarly, core::ProposalPolicy::kBestLocalMinImpact},
  };

  double fair_imbalance = -1.0, alt_imbalance = -1.0;
  std::cout << "\n  variant                                   mean-gain%   "
               "median-gain%   mean|gainA-gainB| (km)\n";
  for (const auto& v : variants) {
    sim::DistanceExperimentConfig cfg = base;
    cfg.negotiation.turn = v.turn;
    cfg.negotiation.termination = v.termination;
    cfg.negotiation.proposal = v.proposal;
    const auto samples = sim::run_distance_experiment(cfg);
    util::Cdf gain;
    double mean = 0.0, imbalance = 0.0;
    for (const auto& s : samples) {
      gain.add(s.total_gain_pct(s.negotiated_km));
      mean += s.total_gain_pct(s.negotiated_km);
      const double ga = s.default_side_km[0] - s.negotiated_side_km[0];
      const double gb = s.default_side_km[1] - s.negotiated_side_km[1];
      imbalance += std::abs(ga - gb);
    }
    mean /= static_cast<double>(samples.size());
    imbalance /= static_cast<double>(samples.size());
    std::printf("  %-40s   %9.3f   %11.3f   %18.1f\n", v.name, mean,
                gain.value_at(0.5), imbalance);
    if (v.turn == core::TurnPolicy::kLowerGain) fair_imbalance = imbalance;
    if (std::string(v.name).find("paper") != std::string::npos)
      alt_imbalance = imbalance;
  }

  std::cout << "\n";
  sim::paper_check(
      "lower-cumulative-gain turns approximate max-min fairness "
      "(smaller gain imbalance than alternate turns)",
      "mean |gainA-gainB|: lower-gain " + std::to_string(fair_imbalance) +
          " km vs alternate " + std::to_string(alt_imbalance) + " km",
      fair_imbalance <= alt_imbalance * 1.25);
  return 0;
}
