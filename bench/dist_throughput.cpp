// Throughput of the distributed sweep layer: how many sweep points per
// second a pool of spawn-local nexit_workerd processes completes, and how
// many runtime sessions per second a worker-sharded runtime timeline
// pumps, at workers=1 vs workers=4 — plus the bit-identity check that the
// folded digest does not move with the worker count.
//
//   ./build/dist_throughput --points=4 --sessions=200 --json=BENCH.json
//
// Flags:
//   --points=N     fig7 bandwidth points to shard (seeds 1001..1000+N)
//   --sessions=N   sessions of the runtime shard (default 200)
//   --workers=A,B  the two pool sizes to compare (default 1,4)
//   --json=PATH    machine-readable record of config + results
//
// The coordinator spawns nexit_workerd from its own directory, so run this
// from the build tree (CI does).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dist/coordinator.hpp"
#include "obs/wall_clock.hpp"
#include "sim/scenarios.hpp"
#include "sim/spec.hpp"
#include "util/digest.hpp"

using namespace nexit;

namespace {

struct PoolOutcome {
  double seconds = 0;
  std::uint64_t digest = util::kFnvOffsetBasis;
  bool ok = false;
};

PoolOutcome run_pool(std::size_t workers, const std::vector<dist::Job>& jobs) {
  PoolOutcome out;
  dist::CoordinatorConfig cfg;
  cfg.workers = workers;
  const auto t0 = obs::WallClock::now();
  std::vector<dist::JobResult> results;
  try {
    dist::Coordinator coordinator(cfg);
    if (coordinator.run(jobs, &results) != 0) return out;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: dist pool (%zu workers): %s\n", workers,
                 e.what());
    return out;
  }
  out.seconds = obs::WallClock::ms_since(t0) / 1e3;
  for (const dist::JobResult& r : results) {
    if (r.rc != 0) {
      std::fprintf(stderr, "error: dist job failed: %s\n", r.error.c_str());
      return out;
    }
    out.digest = util::fnv1a_mix(out.digest, r.digest);
  }
  out.ok = true;
  return out;
}

std::string spec_text_of(const sim::ScenarioPreset& preset,
                         const std::vector<std::string>& assignments) {
  sim::ExperimentSpec spec;
  preset.tune(spec);
  spec.merge_from_flags(util::Flags(assignments));
  std::string error;
  if (!spec.validate(&error)) {
    std::fprintf(stderr, "error: bench spec invalid: %s\n", error.c_str());
    std::exit(2);
  }
  return spec.to_text();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::JsonReport json(flags, "dist_throughput");
  const std::size_t points = bench::size_from_flags(flags, "points", 4, 256);
  const std::size_t sessions =
      bench::size_from_flags(flags, "sessions", 200, 1u << 20);
  const std::size_t workers_lo = bench::size_from_flags(flags, "workers-lo", 1, 64);
  const std::size_t workers_hi = bench::size_from_flags(flags, "workers-hi", 4, 64);
  bench::reject_unknown_flags(flags);

  const sim::ScenarioPreset* fig7 = sim::find_scenario("fig7");
  const sim::ScenarioPreset* custom = sim::find_scenario("custom");
  if (fig7 == nullptr || custom == nullptr) {
    std::fprintf(stderr, "error: scenario registry incomplete\n");
    return 2;
  }

  std::vector<dist::Job> sweep_jobs;
  for (std::size_t p = 0; p < points; ++p) {
    const std::string seed = "seed=" + std::to_string(1001 + p);
    sweep_jobs.push_back(
        dist::Job{"fig7", seed, spec_text_of(*fig7, {seed})});
  }
  const std::vector<dist::Job> runtime_jobs = {dist::Job{
      "custom", "runtime",
      spec_text_of(*custom, {"experiment=runtime", "seed=42",
                             "runtime.sessions=" + std::to_string(sessions)})}};

  std::printf("dist_throughput: %zu fig7 points + %zu-session runtime shard, "
              "workers %zu vs %zu\n",
              points, sessions, workers_lo, workers_hi);

  const PoolOutcome sweep_lo = run_pool(workers_lo, sweep_jobs);
  const PoolOutcome sweep_hi = run_pool(workers_hi, sweep_jobs);
  const PoolOutcome rt_lo = run_pool(workers_lo, runtime_jobs);
  const PoolOutcome rt_hi = run_pool(workers_hi, runtime_jobs);
  if (!sweep_lo.ok || !sweep_hi.ok || !rt_lo.ok || !rt_hi.ok) return 1;

  const double pps_lo =
      sweep_lo.seconds > 0 ? points / sweep_lo.seconds : 0.0;
  const double pps_hi =
      sweep_hi.seconds > 0 ? points / sweep_hi.seconds : 0.0;
  const double sps_lo =
      rt_lo.seconds > 0 ? sessions / rt_lo.seconds : 0.0;
  const double sps_hi =
      rt_hi.seconds > 0 ? sessions / rt_hi.seconds : 0.0;

  std::printf("sweep: %.2f points/s @%zu workers, %.2f points/s @%zu workers "
              "(%.2fx)\n",
              pps_lo, workers_lo, pps_hi, workers_hi,
              pps_lo > 0 ? pps_hi / pps_lo : 0.0);
  std::printf("runtime: %.0f sessions/s @%zu workers, %.0f sessions/s @%zu "
              "workers\n",
              sps_lo, workers_lo, sps_hi, workers_hi);
  std::printf("sweep digest: %s (w=%zu) vs %s (w=%zu)\n",
              util::digest_hex(sweep_lo.digest).c_str(), workers_lo,
              util::digest_hex(sweep_hi.digest).c_str(), workers_hi);

  json.config("points", static_cast<std::int64_t>(points));
  json.config("sessions", static_cast<std::int64_t>(sessions));
  json.config("workers_lo", static_cast<std::int64_t>(workers_lo));
  json.config("workers_hi", static_cast<std::int64_t>(workers_hi));
  json.metric("sweep_seconds_lo", sweep_lo.seconds);
  json.metric("sweep_seconds_hi", sweep_hi.seconds);
  json.metric("points_per_second_lo", pps_lo);
  json.metric("points_per_second_hi", pps_hi);
  json.metric("runtime_seconds_lo", rt_lo.seconds);
  json.metric("runtime_seconds_hi", rt_hi.seconds);
  json.metric("sessions_per_second_lo", sps_lo);
  json.metric("sessions_per_second_hi", sps_hi);
  json.metric("sweep_digest", util::digest_hex(sweep_lo.digest));
  json.write();

  // The whole point of the layer: the digest must not depend on the pool.
  if (sweep_lo.digest != sweep_hi.digest ||
      rt_lo.digest != rt_hi.digest) {
    std::fprintf(stderr, "error: digest moved with worker count\n");
    return 1;
  }
  return 0;
}
