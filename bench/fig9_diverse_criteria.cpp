// Figure 9: negotiation with different optimisation criteria (§5.3).
//
// Legacy shim: this binary is now a preset of the declarative scenario API
// (sim/spec.hpp + sim/scenarios.hpp). It accepts the full spec flag
// surface and is byte-identical to `nexit_run --scenario=fig9` — the CI
// migration guard diffs the two outputs on every run.

#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  return nexit::sim::scenario_shim_main("fig9", argc, argv);
}
