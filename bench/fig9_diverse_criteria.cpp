// Figure 9: negotiation with different optimisation criteria (§5.3). The
// upstream ISP optimises bandwidth (avoid overload after a failure) while
// the downstream optimises distance. Left: upstream MEL relative to optimal
// (default vs negotiated). Right: downstream distance reduction vs default.
// Paper claim: both ISPs successfully optimise their own metric.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::BandwidthExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.negotiation.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  cfg.downstream_uses_distance = true;
  cfg.include_unilateral = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Figure 9",
                          "diverse criteria: upstream=bandwidth, downstream=distance",
                          bench::universe_summary(cfg.universe));
  const auto samples = sim::run_bandwidth_experiment(cfg);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf up_def, up_neg, down_gain;
  for (const auto& s : samples) {
    up_def.add(s.ratio(s.mel_default, 0));
    up_neg.add(s.ratio(s.mel_negotiated, 0));
    down_gain.add(s.downstream_distance_gain_pct);
  }

  sim::print_cdf_figure("Fig 9 (left)", "upstream ISP controls overload",
                        "MEL relative to MEL of optimal routing",
                        {"negotiated", "default"}, {&up_neg, &up_def});
  sim::print_cdf_figure("Fig 9 (right)", "downstream ISP reduces distance",
                        "% reduction of affected flows' km inside downstream "
                        "vs default",
                        {"negotiated"}, {&down_gain});

  std::cout << "\n";
  sim::paper_check(
      "upstream effectively controls overload despite diverse criteria",
      "median upstream MEL ratio: negotiated " +
          std::to_string(up_neg.value_at(0.5)) + " vs default " +
          std::to_string(up_def.value_at(0.5)),
      up_neg.value_at(0.5) <= up_def.value_at(0.5) + 1e-9);
  sim::paper_check(
      "downstream significantly reduces its distance",
      "median downstream distance gain " +
          std::to_string(down_gain.value_at(0.5)) + "%, p90 " +
          std::to_string(down_gain.value_at(0.9)) + "%",
      down_gain.value_at(0.9) > 5.0 && down_gain.min() > -1.0);
  return 0;
}
