// Figure 6: flow-level view of optimal and negotiated routing — the CDF of
// per-flow % gain versus default, aggregated over all flows of all pairs.
// Paper claims: a small fraction of flows gains a lot (7% gain >20%, 1%
// gain >50%); negotiation catches almost all flows that need optimisation;
// only ~20% of flows need non-default routes.

#include <chrono>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);
  bench::JsonReport json(flags, "fig6_flow_level");

  sim::DistanceExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.run_flow_pair_baselines = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Figure 6", "flow-level gains of optimal and negotiated routing",
                          bench::universe_summary(cfg.universe));
  const auto t0 = std::chrono::steady_clock::now();
  const auto samples = sim::run_distance_experiment(cfg);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  util::Cdf flow_opt, flow_neg;
  std::size_t flows = 0, moved = 0;
  double neg20 = 0, neg50 = 0, opt20 = 0;
  for (const auto& s : samples) {
    for (double g : s.flow_gain_pct_optimal) {
      flow_opt.add(g);
      if (g > 20.0) ++opt20;
    }
    for (double g : s.flow_gain_pct_negotiated) {
      flow_neg.add(g);
      if (g > 20.0) ++neg20;
      if (g > 50.0) ++neg50;
    }
    flows += s.flow_count;
    moved += s.flows_moved;
  }
  std::cout << "samples: " << samples.size() << " ISP pairs, " << flows
            << " flows\n";

  sim::print_cdf_figure("Fig 6", "per-flow gain",
                        "% reduction of the flow's end-to-end km vs default",
                        {"negotiated", "optimal"}, {&flow_neg, &flow_opt});

  std::cout << "\n";
  sim::paper_check(
      "a heavy tail of flows gains substantially (paper: 7% >20%, 1% >50%)",
      std::to_string(100.0 * neg20 / flows) + "% of flows gain >20%, " +
          std::to_string(100.0 * neg50 / flows) + "% gain >50% (negotiated)",
      neg20 > 0 && neg50 > 0 && neg20 >= neg50);
  sim::paper_check(
      "negotiation catches almost all flows that optimal improves >20%",
      std::to_string(neg20) + " vs " + std::to_string(opt20) +
          " flows improved >20% (negotiated vs optimal)",
      neg20 >= 0.6 * opt20);
  sim::paper_check(
      "only a minority of flows needs non-default routing (paper ~20%)",
      std::to_string(100.0 * moved / flows) + "% of flows moved off default",
      moved < flows / 2);

  std::size_t calls_full = 0, calls_inc = 0, rows = 0, rows_full_eq = 0;
  for (const auto& s : samples) {
    calls_full += s.eval_calls_full;
    calls_inc += s.eval_calls_incremental;
    rows += s.eval_rows_computed;
    rows_full_eq += s.eval_rows_full_equivalent;
  }
  std::printf(
      "\nwall-clock %.1f ms; evaluate calls %zu full + %zu incremental; "
      "preference rows %zu of %zu full-equivalent\n",
      wall_ms, calls_full, calls_inc, rows, rows_full_eq);

  bench::record_universe(json, cfg.universe, cfg.threads);
  json.metric("wall_ms", wall_ms);
  json.metric("samples", static_cast<std::int64_t>(samples.size()));
  json.metric("flows", static_cast<std::int64_t>(flows));
  json.metric("flows_moved", static_cast<std::int64_t>(moved));
  json.metric("eval_calls_full", static_cast<std::int64_t>(calls_full));
  json.metric("eval_calls_incremental", static_cast<std::int64_t>(calls_inc));
  json.metric("eval_rows_computed", static_cast<std::int64_t>(rows));
  json.metric("eval_rows_full_equivalent",
              static_cast<std::int64_t>(rows_full_eq));
  json.metric_cdf("flow_gain_pct.negotiated", flow_neg);
  json.metric_cdf("flow_gain_pct.optimal", flow_opt);
  json.write();
  return 0;
}
