// Figure 10: the impact of cheating on the distance experiment (§5.4). One
// ISP (A) inflates its disclosed preferences using perfect knowledge of the
// other's list. (a) CDF of total gain with/without the cheater; (b) CDF of
// individual gains: cheater vs truthful vs honest baseline.
// Paper claims: cheating reduces the TRUTHFUL ISP's gain but also the
// CHEATER's own gain (premature termination), so lying is unattractive; the
// truthful ISP still never ends below its default.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig honest;
  honest.universe = bench::universe_from_flags(flags);
  honest.negotiation = bench::negotiation_from_flags(flags);
  honest.run_flow_pair_baselines = false;
  honest.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);
  sim::DistanceExperimentConfig cheating = honest;
  cheating.cheater_side = 0;

  sim::print_bench_header("Figure 10", "impact of cheating, distance experiment",
                          bench::universe_summary(honest.universe));
  const auto hs = sim::run_distance_experiment(honest);
  const auto cs = sim::run_distance_experiment(cheating);
  std::cout << "samples: " << hs.size() << " ISP pairs (x2 runs)\n";

  util::Cdf total_honest, total_cheat, indiv_honest, cheater_gain, truthful_gain;
  double mean_cheater = 0, mean_cheater_honest = 0;
  std::size_t truthful_losses = 0;
  for (std::size_t i = 0; i < hs.size(); ++i) {
    total_honest.add(hs[i].total_gain_pct(hs[i].negotiated_km));
    total_cheat.add(cs[i].total_gain_pct(cs[i].negotiated_km));
    for (int side = 0; side < 2; ++side)
      indiv_honest.add(hs[i].side_gain_pct(hs[i].negotiated_side_km, side));
    cheater_gain.add(cs[i].side_gain_pct(cs[i].negotiated_side_km, 0));
    truthful_gain.add(cs[i].side_gain_pct(cs[i].negotiated_side_km, 1));
    mean_cheater += cs[i].side_gain_pct(cs[i].negotiated_side_km, 0);
    mean_cheater_honest += hs[i].side_gain_pct(hs[i].negotiated_side_km, 0);
    if (cs[i].side_gain_pct(cs[i].negotiated_side_km, 1) < -0.5)
      ++truthful_losses;
  }
  mean_cheater /= static_cast<double>(cs.size());
  mean_cheater_honest /= static_cast<double>(hs.size());

  sim::print_cdf_figure("Fig 10a", "total gain across both ISPs",
                        "% reduction in total flow km vs default",
                        {"both-truthful", "one-cheater"},
                        {&total_honest, &total_cheat});
  sim::print_cdf_figure("Fig 10b", "individual gains",
                        "% reduction in own-network km vs default",
                        {"both-truthful", "cheater", "truthful"},
                        {&indiv_honest, &cheater_gain, &truthful_gain});

  std::cout << "\n";
  sim::paper_check("cheating reduces the total gain",
                   "median total: honest " +
                       std::to_string(total_honest.value_at(0.5)) +
                       "% vs one-cheater " +
                       std::to_string(total_cheat.value_at(0.5)) + "%",
                   total_cheat.value_at(0.5) <= total_honest.value_at(0.5) + 1e-9);
  sim::paper_check(
      "cheating is self-defeating: the cheater gains LESS than when truthful",
      "cheater mean gain " + std::to_string(mean_cheater) +
          "% vs its gain when honest " + std::to_string(mean_cheater_honest) +
          "%",
      mean_cheater <= mean_cheater_honest + 1e-9);
  sim::paper_check("the truthful ISP never ends below its default",
                   std::to_string(truthful_losses) + " losses >0.5%",
                   truthful_losses == 0);
  return 0;
}
