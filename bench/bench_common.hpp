#pragma once

// Shared scaffolding for the figure-reproduction benches: flag parsing into
// experiment configs and common printing. Every universe-sweep binary
// accepts:
//   --isps=N --pairs=N --seed=S --pop-min=N --pop-max=N  (universe)
//   --pref-range=P                                        (Nexit config)
//   --threads=N      (experiment worker threads; 0 = auto, default 1;
//                     results are bit-identical for every value)
// plus figure-specific flags documented in each binary. Two exceptions:
// table3_example is a fixed worked example and only takes --seed, and
// abl_pref_range sweeps the preference range itself so it does not take
// --pref-range.
//
// Unknown flags are a hard error: after reading all its flags, each binary
// calls reject_unknown_flags(), so a misspelled flag (--seeed=7) aborts with
// a message instead of silently running the default configuration. The same
// call makes `--help` print the flags the binary reads and exit 0, and
// JSON-enabled benches accept `--json=<path>` (see JsonReport below) to
// record config + metrics machine-readably.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "sim/report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace nexit::bench {

inline sim::UniverseConfig universe_from_flags(const util::Flags& flags) {
  sim::UniverseConfig u;
  u.isp_count = static_cast<std::size_t>(flags.get_int("isps", 65));
  u.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  u.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 120));
  u.generator.min_pops = static_cast<std::size_t>(flags.get_int("pop-min", 6));
  u.generator.max_pops = static_cast<std::size_t>(flags.get_int("pop-max", 20));
  return u;
}

inline core::NegotiationConfig negotiation_from_flags(const util::Flags& flags) {
  core::NegotiationConfig cfg;
  cfg.acceptance = core::AcceptancePolicy::kProtective;
  cfg.preferences.range = static_cast<int>(flags.get_int("pref-range", 10));
  return cfg;
}

/// Bench-facing name for util::reject_unknown; see its doc comment.
inline void reject_unknown_flags(const util::Flags& flags) {
  util::reject_unknown(flags);
}

/// Bench-facing name for util::get_count; see its doc comment.
inline std::size_t size_from_flags(const util::Flags& flags,
                                   const std::string& name,
                                   std::size_t fallback,
                                   std::size_t max_value) {
  return util::get_count(flags, name, fallback, max_value);
}

/// Worker-thread count for the experiment engines: `--threads=0` means
/// auto-detect, `--threads=1` (the default) runs serially; any value yields
/// bit-identical results. The 0 -> hardware mapping itself is owned by
/// util::workers_for_threads; the [0, 1024] bound keeps a fat-fingered
/// count from exhausting std::thread construction.
inline std::size_t threads_from_flags(const util::Flags& flags) {
  return util::get_count(flags, "threads", 1, 1024);
}

inline std::string universe_summary(const sim::UniverseConfig& u) {
  std::ostringstream os;
  os << u.isp_count << " synthetic ISPs, seed " << u.seed << ", <= "
     << u.max_pairs << " pairs, PoPs " << u.generator.min_pops << "-"
     << u.generator.max_pops;
  return os.str();
}

/// Machine-readable run record for perf trajectories: a bench that is handed
/// `--json=<path>` writes `{binary, config: {...}, metrics: {...}}` there,
/// so successive runs (BENCH_*.json) can be diffed and plotted across PRs.
///
/// Construct it right after parsing (the constructor reads --json, keeping
/// reject_unknown_flags() happy), record config/metrics as they are
/// computed, and call write() last. Everything is a no-op without --json.
class JsonReport {
 public:
  JsonReport(const util::Flags& flags, std::string binary_name)
      : path_(flags.get_string("json", "")), binary_(std::move(binary_name)) {}

  void config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, quote(value));
  }
  void config(const std::string& key, std::int64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void config(const std::string& key, double value) {
    config_.emplace_back(key, number(value));
  }

  void metric(const std::string& name, double value) {
    metrics_.emplace_back(name, number(value));
  }
  void metric(const std::string& name, std::int64_t value) {
    metrics_.emplace_back(name, std::to_string(value));
  }
  /// Five-point summary of a CDF under "<name>.{n,min,p25,p50,p75,max}".
  void metric_cdf(const std::string& name, const util::Cdf& cdf) {
    if (cdf.empty()) return;
    metric(name + ".n", static_cast<std::int64_t>(cdf.size()));
    metric(name + ".min", cdf.min());
    metric(name + ".p25", cdf.value_at(0.25));
    metric(name + ".p50", cdf.value_at(0.5));
    metric(name + ".p75", cdf.value_at(0.75));
    metric(name + ".max", cdf.max());
  }

  /// Writes the file if --json=<path> was given; exits 2 on I/O failure (a
  /// requested-but-unwritable record should not fail silently).
  void write() const {
    if (path_.empty()) return;
    std::ofstream out(path_);
    out << "{\n  \"binary\": " << quote(binary_) << ",\n  \"config\": {";
    emit(out, config_);
    out << "},\n  \"metrics\": {";
    emit(out, metrics_);
    out << "}\n}\n";
    out.flush();
    if (!out) {
      std::cerr << "error: --json: cannot write " << path_ << "\n";
      std::exit(2);
    }
    std::cout << "json record written to " << path_ << "\n";
  }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  static std::string number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  static void emit(std::ofstream& out, const Entries& entries) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    " << quote(entries[i].first)
          << ": " << entries[i].second;
    }
    if (!entries.empty()) out << "\n  ";
  }

  std::string path_;
  std::string binary_;
  Entries config_;
  Entries metrics_;
};

/// FNV-1a scaffolding for the determinism digests several benches print
/// (runtime_throughput, fig7_bandwidth_mel, micro_incremental): one place
/// for the constants so the digest scheme cannot drift between binaries.
inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

/// Bit pattern of a double, for hashing exact values (not rounded text).
inline std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Records the universe knobs every sweep bench shares.
inline void record_universe(JsonReport& json, const sim::UniverseConfig& u,
                            std::size_t threads) {
  json.config("isps", static_cast<std::int64_t>(u.isp_count));
  json.config("seed", static_cast<std::int64_t>(u.seed));
  json.config("pairs", static_cast<std::int64_t>(u.max_pairs));
  json.config("threads", static_cast<std::int64_t>(threads));
}

}  // namespace nexit::bench
