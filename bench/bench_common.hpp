#pragma once

// Shared scaffolding for the figure-reproduction benches: flag parsing into
// experiment configs and common printing. Every binary accepts:
//   --isps=N --pairs=N --seed=S --pop-min=N --pop-max=N  (universe)
//   --pref-range=P                                        (Nexit config)
// plus figure-specific flags documented in each binary.

#include <iostream>
#include <sstream>
#include <string>

#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "sim/report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace nexit::bench {

inline sim::UniverseConfig universe_from_flags(const util::Flags& flags) {
  sim::UniverseConfig u;
  u.isp_count = static_cast<std::size_t>(flags.get_int("isps", 65));
  u.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  u.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 120));
  u.generator.min_pops = static_cast<std::size_t>(flags.get_int("pop-min", 6));
  u.generator.max_pops = static_cast<std::size_t>(flags.get_int("pop-max", 20));
  return u;
}

inline core::NegotiationConfig negotiation_from_flags(const util::Flags& flags) {
  core::NegotiationConfig cfg;
  cfg.acceptance = core::AcceptancePolicy::kProtective;
  cfg.preferences.range = static_cast<int>(flags.get_int("pref-range", 10));
  return cfg;
}

inline std::string universe_summary(const sim::UniverseConfig& u) {
  std::ostringstream os;
  os << u.isp_count << " synthetic ISPs, seed " << u.seed << ", <= "
     << u.max_pairs << " pairs, PoPs " << u.generator.min_pops << "-"
     << u.generator.max_pops;
  return os.str();
}

}  // namespace nexit::bench
