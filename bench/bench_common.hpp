#pragma once

// Shared scaffolding for the figure-reproduction benches: flag parsing into
// experiment configs and common printing. Every universe-sweep binary
// accepts:
//   --isps=N --pairs=N --seed=S --pop-min=N --pop-max=N  (universe)
//   --pref-range=P                                        (Nexit config)
//   --threads=N      (experiment worker threads; 0 = auto, default 1;
//                     results are bit-identical for every value)
// plus figure-specific flags documented in each binary. Two exceptions:
// table3_example is a fixed worked example and only takes --seed, and
// abl_pref_range sweeps the preference range itself so it does not take
// --pref-range.
//
// Unknown flags are a hard error: after reading all its flags, each binary
// calls reject_unknown_flags(), so a misspelled flag (--seeed=7) aborts with
// a message instead of silently running the default configuration.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "sim/report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace nexit::bench {

inline sim::UniverseConfig universe_from_flags(const util::Flags& flags) {
  sim::UniverseConfig u;
  u.isp_count = static_cast<std::size_t>(flags.get_int("isps", 65));
  u.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  u.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 120));
  u.generator.min_pops = static_cast<std::size_t>(flags.get_int("pop-min", 6));
  u.generator.max_pops = static_cast<std::size_t>(flags.get_int("pop-max", 20));
  return u;
}

inline core::NegotiationConfig negotiation_from_flags(const util::Flags& flags) {
  core::NegotiationConfig cfg;
  cfg.acceptance = core::AcceptancePolicy::kProtective;
  cfg.preferences.range = static_cast<int>(flags.get_int("pref-range", 10));
  return cfg;
}

/// Worker-thread count for the experiment engines: `--threads=0` means
/// auto-detect, `--threads=1` (the default) runs serially; any value yields
/// bit-identical results. The 0 -> hardware mapping itself is owned by
/// util::workers_for_threads. Malformed values abort inside
/// Flags::get_int; the range check here keeps a fat-fingered count from
/// exhausting std::thread construction.
inline std::size_t threads_from_flags(const util::Flags& flags) {
  const std::int64_t t = flags.get_int("threads", 1);
  if (t < 0 || t > 1024) {
    std::cerr << "error: --threads expects an integer in [0, 1024] "
                 "(0 = auto-detect), got " << t << "\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(t);
}

/// Bench-facing name for util::reject_unknown; see its doc comment.
inline void reject_unknown_flags(const util::Flags& flags) {
  util::reject_unknown(flags);
}

inline std::string universe_summary(const sim::UniverseConfig& u) {
  std::ostringstream os;
  os << u.isp_count << " synthetic ISPs, seed " << u.seed << ", <= "
     << u.max_pairs << " pairs, PoPs " << u.generator.min_pops << "-"
     << u.generator.max_pops;
  return os.str();
}

}  // namespace nexit::bench
