#pragma once

// Shared scaffolding for the non-scenario benches (runtime_throughput,
// micro_incremental): flag parsing into universe/negotiation configs and
// the universe summary line. The figure/ablation binaries no longer use
// this — they are shims over sim/scenarios.hpp, and the JSON emitter plus
// the FNV digest helpers that used to live here are promoted to
// src/util/json_report.hpp and src/util/digest.hpp so the driver, the
// benches, and the tests share one emitter/digest scheme.
//
// Unknown flags are a hard error: after reading all its flags, each binary
// calls reject_unknown_flags(), so a misspelled flag (--seeed=7) aborts with
// a message instead of silently running the default configuration. The same
// call makes `--help` print the flags the binary reads and exit 0.

#include <string>

#include "core/engine.hpp"
#include "sim/pair_universe.hpp"
#include "sim/report.hpp"
#include "util/digest.hpp"
#include "util/flags.hpp"
#include "util/json_report.hpp"

namespace nexit::bench {

inline sim::UniverseConfig universe_from_flags(const util::Flags& flags) {
  sim::UniverseConfig u;
  u.isp_count = static_cast<std::size_t>(flags.get_int("isps", 65));
  u.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  u.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 120));
  u.generator.min_pops = static_cast<std::size_t>(flags.get_int("pop-min", 6));
  u.generator.max_pops = static_cast<std::size_t>(flags.get_int("pop-max", 20));
  return u;
}

inline core::NegotiationConfig negotiation_from_flags(const util::Flags& flags) {
  core::NegotiationConfig cfg;
  cfg.acceptance = core::AcceptancePolicy::kProtective;
  cfg.preferences.range = static_cast<int>(flags.get_int("pref-range", 10));
  return cfg;
}

/// Bench-facing name for util::reject_unknown; see its doc comment.
inline void reject_unknown_flags(const util::Flags& flags) {
  util::reject_unknown(flags);
}

/// Bench-facing name for util::get_count; see its doc comment.
inline std::size_t size_from_flags(const util::Flags& flags,
                                   const std::string& name,
                                   std::size_t fallback,
                                   std::size_t max_value) {
  return util::get_count(flags, name, fallback, max_value);
}

/// Worker-thread count for the experiment engines: `--threads=0` means
/// auto-detect, `--threads=1` (the default) runs serially; any value yields
/// bit-identical results. The 0 -> hardware mapping itself is owned by
/// util::workers_for_threads; the [0, 1024] bound keeps a fat-fingered
/// count from exhausting std::thread construction.
inline std::size_t threads_from_flags(const util::Flags& flags) {
  return util::get_count(flags, "threads", 1, 1024);
}

/// Bench-facing name for sim::universe_summary (one shared spelling).
inline std::string universe_summary(const sim::UniverseConfig& u) {
  return sim::universe_summary(u);
}

/// Records the universe knobs every sweep bench shares.
inline void record_universe(util::JsonReport& json, const sim::UniverseConfig& u,
                            std::size_t threads) {
  json.config("isps", static_cast<std::int64_t>(u.isp_count));
  json.config("seed", static_cast<std::int64_t>(u.seed));
  json.config("pairs", static_cast<std::int64_t>(u.max_pairs));
  json.config("threads", static_cast<std::int64_t>(threads));
}

}  // namespace nexit::bench
