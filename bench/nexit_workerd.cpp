// The distributed-sweep worker daemon. Two modes:
//
//   nexit_workerd --fd=N                  # spawn-local: serve an inherited
//                                         # already-connected socket fd (the
//                                         # coordinator forked us over an
//                                         # AF_UNIX socketpair)
//   nexit_workerd --listen=host:port      # daemon: accept coordinator
//                                         # connections and serve them one
//                                         # at a time; --once=true exits
//                                         # after the first connection (CI)
//
// Either way the serve loop is dist::serve(): announce DistHello, run each
// DistJob shard through the shared sim::run_point pipeline, ship back a
// DistResult, exit on DistShutdown or coordinator EOF. One job runs at a
// time per worker — parallelism comes from the coordinator running many
// workers, which is what keeps each shard's digest independent of every
// other shard.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "agent/channel.hpp"
#include "dist/framed.hpp"
#include "dist/tcp_channel.hpp"
#include "dist/worker.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);
  const std::string fd_arg = flags.get_string("fd", "");
  const std::string listen = flags.get_string("listen", "");
  const bool once = flags.get_bool("once", false);
  util::reject_unknown(flags);

  if (fd_arg.empty() == listen.empty()) {
    std::fprintf(stderr,
                 "usage: nexit_workerd --fd=N | --listen=host:port [--once]\n");
    return 2;
  }

  if (!fd_arg.empty()) {
    char* end = nullptr;
    const long fd = std::strtol(fd_arg.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || fd < 0) {
      std::fprintf(stderr, "error: --fd: not a file descriptor: %s\n",
                   fd_arg.c_str());
      return 2;
    }
    dist::FramedChannel channel(
        agent::make_fd_channel(static_cast<int>(fd)));
    return dist::serve(channel);
  }

  std::string host;
  std::uint16_t port = 0;
  if (!dist::parse_endpoint(listen, &host, &port)) {
    std::fprintf(stderr, "error: --listen: malformed endpoint: %s\n",
                 listen.c_str());
    return 2;
  }
  try {
    dist::TcpListener listener(host, port);
    std::fprintf(stderr, "workerd: listening on %s:%u\n", host.c_str(),
                 listener.port());
    for (;;) {
      std::unique_ptr<agent::Channel> conn = listener.accept(-1);
      if (!conn) continue;
      dist::FramedChannel channel(std::move(conn));
      const int rc = dist::serve(channel);
      std::fprintf(stderr, "workerd: connection done (rc %d)\n", rc);
      if (once) return rc;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
