// The one scenario driver. Every paper figure/ablation — and any composed
// scenario or sweep you can spell as a spec — runs from here:
//
//   nexit_run --list-scenarios                 # what's registered
//   nexit_run --help-spec                      # every spec key, documented
//   nexit_run --scenario=fig9 --isps=24        # a paper figure, re-knobbed
//   nexit_run --spec=scenarios/my.spec --json=out.json
//   nexit_run --scenario=fig7 --incremental=false --threads=4
//   nexit_run --scenario=fig4 --sweep.isps=20:65:15   # a declared sweep
//   nexit_run --scenario=runtime_churn         # a runtime timeline
//   nexit_run --scenario=abl_pref_range --spec-out=archive.spec
//
// `--scenario=<name>` picks a preset (its per-figure defaults applied
// first); `--spec=<file>` overlays a key=value spec file; remaining flags
// override individual keys, and `sweep.<key>=` lines declare sweep axes.
// Without --scenario the generic "custom" runner executes whatever the
// spec describes (including experiment=runtime timelines). Output is
// byte-identical to the legacy per-figure binary for every preset — both
// dispatch into sim::run_scenario — and CI diffs them to keep the
// migration guard live. `--help-spec[=<key>]` prints the key metadata the
// parser itself enforces; `--help-spec=markdown` emits
// docs/SPEC_REFERENCE.md (CI regenerates it and fails on drift).

#include <iostream>

#include "sim/scenarios.hpp"
#include "sim/spec_docs.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  // Bare --list-scenarios parses as "true" (the human table); "tsv" is the
  // machine form the CI migration guard iterates. Anything else is a typo
  // and must error, not silently print prose into a script's pipe.
  const std::string list =
      flags.get_choice("list-scenarios", {"true", "table", "tsv"}, "");
  if (!list.empty()) {
    // --list-scenarios combines with nothing else: a stray flag next to it
    // is a typo and must exit 2 like everywhere else in this repo.
    util::reject_unknown(flags);
    if (list == "tsv") {
      sim::print_scenario_tsv(std::cout);
    } else {
      sim::print_scenario_list(std::cout);
    }
    return 0;
  }

  // --help-spec: the self-documenting side of the spec system. Bare form
  // lists every key; `=<key>` details one; `=markdown` emits the reference
  // doc. Like --list-scenarios it combines with nothing else.
  const std::string help_spec = flags.get_string("help-spec", "");
  if (!help_spec.empty()) {
    util::reject_unknown(flags);
    if (help_spec == "true") {
      sim::print_spec_help(std::cout);
    } else if (help_spec == "markdown") {
      sim::print_spec_reference_markdown(std::cout);
    } else if (!sim::print_spec_key_help(std::cout, help_spec)) {
      std::cerr << "error: --help-spec: unknown key \"" << help_spec
                << "\"; valid keys:";
      for (const sim::SpecKeyInfo& info : sim::spec_key_registry())
        std::cerr << " " << (info.sweep_only ? "sweep." + info.key : info.key);
      std::cerr << "\n";
      return 2;
    }
    return 0;
  }

  const std::string name =
      flags.get_choice("scenario", sim::scenario_names(), "custom");
  const sim::ScenarioPreset* preset = sim::find_scenario(name);
  return sim::run_scenario(*preset, flags);
}
