// The one scenario driver. Every paper figure/ablation — and any composed
// scenario you can spell as a spec — runs from here:
//
//   nexit_run --list-scenarios                 # what's registered
//   nexit_run --scenario=fig9 --isps=24        # a paper figure, re-knobbed
//   nexit_run --spec=scenarios/my.spec --json=out.json
//   nexit_run --scenario=fig7 --incremental=false --threads=4
//
// `--scenario=<name>` picks a preset (its per-figure defaults applied
// first); `--spec=<file>` overlays a key=value spec file; remaining flags
// override individual keys. Without --scenario the generic "custom" runner
// executes whatever the spec describes. Output is byte-identical to the
// legacy per-figure binary for every preset — both dispatch into
// sim::run_scenario — and CI diffs them to keep the migration guard live.

#include <iostream>

#include "sim/scenarios.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  // Bare --list-scenarios parses as "true" (the human table); "tsv" is the
  // machine form the CI migration guard iterates. Anything else is a typo
  // and must error, not silently print prose into a script's pipe.
  const std::string list =
      flags.get_choice("list-scenarios", {"true", "table", "tsv"}, "");
  if (!list.empty()) {
    // --list-scenarios combines with nothing else: a stray flag next to it
    // is a typo and must exit 2 like everywhere else in this repo.
    util::reject_unknown(flags);
    if (list == "tsv") {
      sim::print_scenario_tsv(std::cout);
    } else {
      sim::print_scenario_list(std::cout);
    }
    return 0;
  }

  const std::string name =
      flags.get_choice("scenario", sim::scenario_names(), "custom");
  const sim::ScenarioPreset* preset = sim::find_scenario(name);
  return sim::run_scenario(*preset, flags);
}
