// Cost of durability: what session journaling (runtime/snapshot.hpp) adds
// to runtime throughput, and how fast crash-resume restores sessions.
//
//   ./build/snapshot_throughput --sessions=96 --threads=2
//
// Three measurements over the same scenario config:
//   1. plain      — journaling off (the runtime_throughput baseline shape)
//   2. journaled  — journaling forced on, no crashes: the pure overhead of
//                   checkpointing every attempt boundary and appending a
//                   WAL record per pump/deadline/cancel
//   3. crash      — every session is killed mid-negotiation and resumed two
//                   ticks later, so each one exercises the full snapshot +
//                   WAL replay path
//
// The durability contract makes all three runs land the same outcome
// digest (resume is bit-identical to never having crashed); the bench
// asserts that, so a perf baseline run also witnesses the contract.
//
// Flags (beyond the shared universe ones):
//   --sessions=N   concurrent sessions (default 96)
//   --threads=N    worker threads
//   --json=PATH    machine-readable record of config + results

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "obs/wall_clock.hpp"
#include "proto/snapshot_messages.hpp"
#include "runtime/scenario.hpp"
#include "sim/report.hpp"

using namespace nexit;

namespace {

struct RunResult {
  double seconds = 0.0;
  std::uint64_t digest = 0;
  runtime::RuntimeStats stats;
};

RunResult timed_run(const runtime::ScenarioConfig& cfg) {
  const auto t0 = obs::WallClock::now();
  const runtime::ScenarioReport report = runtime::run_scenario(cfg);
  const double s = obs::WallClock::ms_since(t0) / 1e3;
  return RunResult{s, runtime::outcome_digest(report), report.stats};
}

/// Encode+decode round-trips per second on a representative WAL record —
/// the proto-layer ceiling on journaling throughput, independent of the
/// negotiation machinery.
double wal_codec_events_per_second() {
  proto::SnapshotWalEvent ev;
  ev.kind = static_cast<std::uint8_t>(proto::WalEventKind::kPump);
  ev.pre_status = 1;
  ev.pre_attempts = 1;
  ev.pre_steps = 40;
  ev.pre_messages = 60;
  ev.mark.live = 1;
  ev.mark.state_a = 2;
  ev.mark.state_b = 2;
  ev.mark.round = 5;
  ev.mark.remaining = 2;
  ev.mark.disclosed_gain_a = 7;
  ev.mark.disclosed_gain_b = -2;
  ev.mark.true_gain_a = 1.25;
  ev.mark.assignment = {0, 2, 1, 1, 0, 2, 1, 0};
  constexpr int kRounds = 200000;
  std::uint64_t sink = 0;
  const auto t0 = obs::WallClock::now();
  for (int i = 0; i < kRounds; ++i) {
    ev.tick = static_cast<runtime::Tick>(i);
    const proto::Frame f = proto::encode_snapshot_wal_event(ev);
    const auto back = proto::decode_snapshot_wal_event(f);
    if (!back.ok()) std::abort();
    sink += back.value().tick + f.payload.size();
  }
  // nexit-lint: allow(taint-flow): throughput benchmark — wall-clock duration is the measurement itself, printed to stdout and recorded in digest-excluded metrics
  const double s = obs::WallClock::ms_since(t0) / 1e3;
  if (sink == 0) std::abort();  // keep the loop observable
  return s > 0 ? kRounds / s : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::JsonReport json(flags, "snapshot_throughput");

  runtime::ScenarioConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.session_count = bench::size_from_flags(flags, "sessions", 96, 1u << 20);
  cfg.traffic = runtime::ScenarioTraffic::kBidirectionalUniformRandom;
  cfg.start_stagger = 2;  // kills target per-session ticks; keep them apart
  cfg.runtime.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header(
      "Snapshot", "journaling overhead and crash-resume restore throughput",
      bench::universe_summary(cfg.universe));
  std::cout << cfg.session_count << " sessions, threads "
            << cfg.runtime.threads << "\n";

  // 1. Baseline: no journaling.
  const RunResult plain = timed_run(cfg);

  // 2. Journaling on, no crashes: pure record-keeping overhead.
  runtime::ScenarioConfig journaled = cfg;
  journaled.durability.journal = true;
  const RunResult with_journal = timed_run(journaled);

  // 3. Kill + resume every session two ticks after its staggered start
  // (mid-negotiation for any non-trivial universe): each session restores
  // through checkpoint decode + WAL replay.
  runtime::ScenarioConfig crash = cfg;
  for (std::uint32_t i = 0; i < crash.session_count; ++i) {
    const runtime::Tick start = i * cfg.start_stagger;
    crash.events.push_back({start + 2, runtime::EventKind::kKill, i, 0});
    crash.events.push_back({start + 4, runtime::EventKind::kResume, i, 0});
  }
  const RunResult resumed = timed_run(crash);

  const double overhead_pct =
      plain.seconds > 0
          ? 100.0 * (with_journal.seconds - plain.seconds) / plain.seconds
          : 0.0;
  const double restores_per_s =
      resumed.seconds > 0
          ? static_cast<double>(cfg.session_count) / resumed.seconds
          : 0.0;
  const bool digest_match = plain.digest == with_journal.digest &&
                            plain.digest == resumed.digest;
  const double codec_events_per_s = wal_codec_events_per_second();

  std::printf("plain:     %.3f s   (digest %016llx)\n", plain.seconds,
              static_cast<unsigned long long>(plain.digest));
  std::printf("journaled: %.3f s   (+%.1f%% overhead)\n", with_journal.seconds,
              overhead_pct);
  std::printf("crash:     %.3f s   (%zu kill/resume cycles, %.0f restores/s)\n",
              resumed.seconds, cfg.session_count, restores_per_s);
  std::printf("WAL codec: %.0f encode+decode round-trips/s\n",
              codec_events_per_s);
  std::printf("digest match across all three runs: %s\n",
              digest_match ? "yes" : "NO");

  bench::record_universe(json, cfg.universe, cfg.runtime.threads);
  json.config("sessions", static_cast<std::int64_t>(cfg.session_count));
  json.metric("run_seconds_plain", plain.seconds);
  json.metric("run_seconds_journaled", with_journal.seconds);
  json.metric("journal_overhead_pct", overhead_pct);
  json.metric("run_seconds_crash", resumed.seconds);
  json.metric("restores_per_second", restores_per_s);
  json.metric("wal_codec_events_per_second", codec_events_per_s);
  json.metric("digest_match", static_cast<std::int64_t>(digest_match ? 1 : 0));
  json.metric("sessions_done_crash",
              static_cast<std::int64_t>(resumed.stats.done));
  json.write();

  // The contract is the point: a crash-resume run that lands a different
  // digest (or leaves sessions frozen) is a bug worth a red exit.
  if (!digest_match || resumed.stats.killed != 0 ||
      resumed.stats.done != cfg.session_count) {
    std::cerr << "error: durability contract violated (digest_match="
              << digest_match << ", killed=" << resumed.stats.killed
              << ", done=" << resumed.stats.done << "/" << cfg.session_count
              << ")\n";
    return 1;
  }
  return 0;
}
