// Ablation (§5.1 claim): "We also experimented with breaking down the set of
// flows into several groups and negotiating within each group separately. We
// find that this does not provide as much benefit as negotiating over the
// entire set." Sweeps the number of groups.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig base;
  base.universe = bench::universe_from_flags(flags);
  base.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  base.negotiation = bench::negotiation_from_flags(flags);
  base.run_flow_pair_baselines = false;
  base.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Ablation: group negotiation",
                          "negotiating in k separate groups vs the whole set",
                          bench::universe_summary(base.universe));

  const std::size_t group_counts[] = {1, 2, 4, 8, 16, 64};
  double gain_at_1 = 0.0, gain_at_64 = 0.0;
  std::cout << "\n  groups   mean-total-gain%   median-total-gain%\n";
  for (std::size_t k : group_counts) {
    sim::DistanceExperimentConfig cfg = base;
    cfg.groups = k;
    const auto samples = sim::run_distance_experiment(cfg);
    util::Cdf neg;
    double mean = 0.0;
    for (const auto& s : samples) {
      neg.add(s.total_gain_pct(s.negotiated_km));
      mean += s.total_gain_pct(s.negotiated_km);
    }
    mean /= static_cast<double>(samples.size());
    std::printf("  %6zu   %16.3f   %18.3f\n", k, mean, neg.value_at(0.5));
    if (k == 1) gain_at_1 = mean;
    if (k == 64) gain_at_64 = mean;
  }

  std::cout << "\n";
  sim::paper_check(
      "negotiating over the entire flow set beats many separate groups",
      "mean gain whole-set " + std::to_string(gain_at_1) + "% vs 64 groups " +
          std::to_string(gain_at_64) + "%",
      gain_at_64 <= gain_at_1 + 1e-9);
  return 0;
}
