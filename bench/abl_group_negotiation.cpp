// Ablation (§5.1): negotiating in k separate groups vs the whole set.
//
// Legacy shim: this binary is now a preset of the declarative scenario API
// (sim/spec.hpp + sim/scenarios.hpp). It accepts the full spec flag
// surface and is byte-identical to `nexit_run --scenario=abl_group_negotiation` — the CI
// migration guard diffs the two outputs on every run.

#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  return nexit::sim::scenario_shim_main("abl_group_negotiation", argc, argv);
}
