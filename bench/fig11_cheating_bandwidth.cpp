// Figure 11: the impact of cheating on the bandwidth (failure) experiment
// (§5.4), with the UPSTREAM ISP as the cheater. CDFs of MEL relative to
// optimal for both ISPs, comparing both-truthful, one-cheater, and default.
// Paper claim: cheating hurts not only the truthful downstream but the
// cheating upstream itself.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::BandwidthExperimentConfig honest;
  honest.universe = bench::universe_from_flags(flags);
  honest.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  honest.negotiation = bench::negotiation_from_flags(flags);
  honest.negotiation.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  honest.include_unilateral = false;
  honest.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);
  sim::BandwidthExperimentConfig cheating = honest;
  cheating.upstream_cheats = true;

  sim::print_bench_header("Figure 11", "impact of cheating, bandwidth experiment",
                          bench::universe_summary(honest.universe));
  const auto hs = sim::run_bandwidth_experiment(honest);
  const auto cs = sim::run_bandwidth_experiment(cheating);
  std::cout << "samples: " << hs.size() << " failed interconnections (x2 runs)\n";

  util::Cdf up_honest, up_cheat, up_default, down_honest, down_cheat, down_default;
  const std::size_t n = std::min(hs.size(), cs.size());
  for (std::size_t i = 0; i < n; ++i) {
    up_honest.add(hs[i].ratio(hs[i].mel_negotiated, 0));
    up_cheat.add(cs[i].ratio(cs[i].mel_negotiated, 0));
    up_default.add(hs[i].ratio(hs[i].mel_default, 0));
    down_honest.add(hs[i].ratio(hs[i].mel_negotiated, 1));
    down_cheat.add(cs[i].ratio(cs[i].mel_negotiated, 1));
    down_default.add(hs[i].ratio(hs[i].mel_default, 1));
  }

  sim::print_cdf_figure("Fig 11 (left)", "upstream ISP (the cheater)",
                        "MEL relative to MEL of optimal routing",
                        {"both-truthful", "one-cheater", "default"},
                        {&up_honest, &up_cheat, &up_default});
  sim::print_cdf_figure("Fig 11 (right)", "downstream ISP (truthful)",
                        "MEL relative to MEL of optimal routing",
                        {"both-truthful", "one-cheater", "default"},
                        {&down_honest, &down_cheat, &down_default});

  std::cout << "\n";
  sim::paper_check(
      "cheating does not help the cheating upstream (median MEL ratio)",
      "truthful " + std::to_string(up_honest.value_at(0.5)) + " vs cheating " +
          std::to_string(up_cheat.value_at(0.5)),
      up_cheat.value_at(0.5) >= up_honest.value_at(0.5) - 0.05);
  sim::paper_check(
      "negotiation with a cheater is still no worse than default (median)",
      "cheater-run downstream " + std::to_string(down_cheat.value_at(0.5)) +
          " vs default " + std::to_string(down_default.value_at(0.5)),
      down_cheat.value_at(0.5) <= down_default.value_at(0.5) + 0.05);
  return 0;
}
