// Ablation (§5 setup claim): "Preference class range is [-10,10]; we found
// that increasing the range does not lead to noticeable increase in
// performance." Sweeps P over the distance experiment and reports the median
// negotiated total gain per P.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig base;
  base.universe = bench::universe_from_flags(flags);
  base.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  base.run_flow_pair_baselines = false;
  base.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Ablation: preference range P",
                          "negotiated gain as a function of the class range",
                          bench::universe_summary(base.universe));

  const int ranges[] = {1, 2, 3, 5, 10, 20, 50};
  double median_at_10 = 0.0, median_at_1 = 0.0, median_at_50 = 0.0;
  std::cout << "\n   P   median-total-gain%   mean-total-gain%   optimal-median%\n";
  for (int p : ranges) {
    sim::DistanceExperimentConfig cfg = base;
    cfg.negotiation.preferences.range = p;
    const auto samples = sim::run_distance_experiment(cfg);
    util::Cdf neg, opt;
    double mean = 0.0;
    for (const auto& s : samples) {
      neg.add(s.total_gain_pct(s.negotiated_km));
      opt.add(s.total_gain_pct(s.optimal_km));
      mean += s.total_gain_pct(s.negotiated_km);
    }
    mean /= static_cast<double>(samples.size());
    std::printf("  %2d   %18.3f   %16.3f   %15.3f\n", p, neg.value_at(0.5), mean,
                opt.value_at(0.5));
    if (p == 10) median_at_10 = neg.value_at(0.5);
    if (p == 1) median_at_1 = neg.value_at(0.5);
    if (p == 50) median_at_50 = neg.value_at(0.5);
  }

  std::cout << "\n";
  sim::paper_check(
      "increasing the range beyond P=10 does not noticeably help",
      "median gain at P=10: " + std::to_string(median_at_10) + "%, at P=50: " +
          std::to_string(median_at_50) + "%",
      median_at_50 - median_at_10 < 1.0);
  sim::paper_check("a tiny range (P=1) leaves gain on the table",
                   "median gain at P=1: " + std::to_string(median_at_1) +
                       "% vs P=10: " + std::to_string(median_at_10) + "%",
                   median_at_1 <= median_at_10 + 1e-9);
  return 0;
}
