// Ablation (§5 setup): negotiated gain as a function of the class range P.
//
// Legacy shim: this binary is now a preset of the declarative scenario API
// (sim/spec.hpp + sim/scenarios.hpp). It accepts the full spec flag
// surface and is byte-identical to `nexit_run --scenario=abl_pref_range` — the CI
// migration guard diffs the two outputs on every run.

#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  return nexit::sim::scenario_shim_main("abl_pref_range", argc, argv);
}
