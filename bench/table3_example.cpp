// Figure 3 of the paper (the worked table): the Fig. 2 preference lists and the round-by-round Nexit trace.
//
// Legacy shim: this binary is now a preset of the declarative scenario API
// (sim/spec.hpp + sim/scenarios.hpp). It accepts the full spec flag
// surface and is byte-identical to `nexit_run --scenario=table3` — the CI
// migration guard diffs the two outputs on every run.

#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  return nexit::sim::scenario_shim_main("table3", argc, argv);
}
