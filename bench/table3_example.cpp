// Figure 3 of the paper (the worked table): preference lists for the Fig. 2
// failure example, and the round-by-round Nexit trace that reaches the
// mutually acceptable solution (f2 on the bottom interconnection, f3 on the
// top). Prints the initial lists, the reassigned list, and the proposal
// trace, like the paper's table. Run with --seed=N to see a different
// tie-break realisation (the paper notes a suboptimal outcome is possible).

#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "sim/report.hpp"
#include "util/flags.hpp"

// Minimal scripted oracle mirroring the paper's lists.
namespace {

using namespace nexit;

class TableOracle : public core::PreferenceOracle {
 public:
  TableOracle(std::vector<core::PreferenceList> phases, bool reassign)
      : phases_(std::move(phases)), reassign_(reassign) {}

  core::Evaluation evaluate(const core::OracleContext&) override {
    const std::size_t i = std::min(calls_++, phases_.size() - 1);
    core::Evaluation e;
    e.classes = phases_[i];
    for (const auto& fp : e.classes.flows)
      e.true_value.emplace_back(fp.pref_of_candidate.begin(),
                                fp.pref_of_candidate.end());
    return e;
  }
  [[nodiscard]] bool wants_reassignment() const override { return reassign_; }

 private:
  std::vector<core::PreferenceList> phases_;
  bool reassign_;
  std::size_t calls_ = 0;
};

core::PreferenceList rows(const std::vector<std::vector<int>>& r) {
  core::PreferenceList l;
  for (std::size_t i = 0; i < r.size(); ++i)
    l.flows.push_back({traffic::FlowId{static_cast<std::int32_t>(i)}, r[i]});
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  // The only flag this worked example takes; read it up front so unknown
  // flags are rejected before any output.
  const auto seed_flag = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  bench::reject_unknown_flags(flags);
  sim::print_bench_header("Figure 3 (table)",
                          "worked preference-list example of Fig. 2",
                          "two flows (f2, f3), candidates {top, bottom}, P=1");

  std::cout <<
      "\nInitial preference lists ((A,B) tuples; defaults = bottom):\n"
      "          f2top   f2bot   f3top   f3bot\n"
      "  (A,B)  (-1,0)   (0,0)   (0,0)   (0,0)\n"
      "\nReassignment after f2 settles on bottom:\n"
      "          f3top   f3bot\n"
      "  (A,B)   (0,1)   (0,0)\n";

  // Engine setup identical to tests/core_engine_test.cpp WorkedExample.
  topology::IspPair pair = [] {
    auto mk = [](std::int32_t asn) {
      std::vector<topology::Pop> pops;
      graph::Graph g(2);
      for (int i = 0; i < 2; ++i)
        pops.push_back(topology::Pop{topology::PopId{i}, static_cast<std::size_t>(i),
                                     "c" + std::to_string(i),
                                     geo::Coord{0.0, static_cast<double>(i)}, 1.0});
      g.add_edge(0, 1, 1.0, 100.0);
      return topology::IspTopology{topology::AsNumber{asn}, "AS", std::move(pops),
                                   std::move(g)};
    };
    return *topology::make_pair_if_peers(mk(1), mk(2), 2);
  }();
  routing::PairRouting routing(pair);
  std::vector<traffic::Flow> flows{
      {traffic::FlowId{0}, traffic::Direction::kAtoB, topology::PopId{0},
       topology::PopId{0}, 1.0},
      {traffic::FlowId{1}, traffic::Direction::kAtoB, topology::PopId{1},
       topology::PopId{1}, 1.0}};
  core::NegotiationProblem problem;
  problem.routing = &routing;
  problem.flows = &flows;
  problem.negotiable = {0, 1};
  problem.candidates = {0, 1};  // 0 = "top", 1 = "bottom"
  problem.default_assignment.ix_of_flow = {1, 1};

  int reached_paper_outcome = 0;
  const int runs = 100;
  std::uint64_t shown_seed = seed_flag;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    TableOracle a({rows({{-1, 0}, {0, 0}})}, false);
    TableOracle b({rows({{0, 0}, {0, 0}}), rows({{0, 0}, {1, 0}})}, true);
    core::NegotiationConfig cfg;
    cfg.seed = seed;
    cfg.reassign_traffic_fraction = 0.5;
    cfg.record_trace = true;
    core::NegotiationEngine engine(problem, a, b, cfg);
    auto out = engine.run();
    const bool paper_outcome = out.assignment.ix_of_flow[1] == 0;  // f3 on top
    if (paper_outcome && shown_seed == 0) shown_seed = seed;
    reached_paper_outcome += paper_outcome ? 1 : 0;
  }

  // Re-run the chosen seed with a printed trace.
  TableOracle a({rows({{-1, 0}, {0, 0}})}, false);
  TableOracle b({rows({{0, 0}, {0, 0}}), rows({{0, 0}, {1, 0}})}, true);
  core::NegotiationConfig cfg;
  cfg.seed = shown_seed == 0 ? 1 : shown_seed;
  cfg.reassign_traffic_fraction = 0.5;
  cfg.record_trace = true;
  core::NegotiationEngine engine(problem, a, b, cfg);
  auto out = engine.run();

  std::cout << "\nNegotiation trace (seed " << cfg.seed << "):\n";
  const char* names[] = {"f2", "f3"};
  const char* sides[] = {"ISP-A", "ISP-B"};
  const char* links[] = {"top", "bottom"};
  for (const auto& tr : out.trace) {
    std::cout << "  round " << tr.round << ": " << sides[tr.proposer]
              << " proposes " << names[tr.flow.value()] << " -> "
              << links[tr.interconnection] << "  (A " << tr.pref_a << ", B "
              << tr.pref_b << ") " << (tr.accepted ? "accepted" : "rejected")
              << (tr.reassigned_after ? ", preferences reassigned" : "") << "\n";
  }
  std::cout << "final: f2 -> " << links[out.assignment.ix_of_flow[0]]
            << ", f3 -> " << links[out.assignment.ix_of_flow[1]]
            << "; gains A " << out.true_gain_a << ", B " << out.true_gain_b
            << "; stop: " << core::to_string(out.stop_reason) << "\n\n";

  sim::paper_check(
      "the mutually acceptable Fig. 2e outcome (f2 bottom, f3 top) is reached "
      "for most tie-break realisations",
      std::to_string(reached_paper_outcome) + "/" + std::to_string(runs) +
          " random-seed runs reach it (the paper notes the suboptimal "
          "realisation exists too)",
      reached_paper_outcome > runs / 3);
  return 0;
}
