// Ablation (§5.1): negotiated gain bucketed by interconnection count.
//
// Legacy shim: this binary is now a preset of the declarative scenario API
// (sim/spec.hpp + sim/scenarios.hpp). It accepts the full spec flag
// surface and is byte-identical to `nexit_run --scenario=abl_ix_count` — the CI
// migration guard diffs the two outputs on every run.

#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  return nexit::sim::scenario_shim_main("abl_ix_count", argc, argv);
}
