// Ablation (§5.1 claim): "we find that, in general, ISPs with more
// interconnections gain more through negotiation" (analysis omitted in the
// paper for space). Buckets the Fig. 4 samples by interconnection count.

#include "bench_common.hpp"

#include <map>

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 150));
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.run_flow_pair_baselines = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Ablation: interconnection count",
                          "negotiated gain bucketed by number of interconnections",
                          bench::universe_summary(cfg.universe));
  const auto samples = sim::run_distance_experiment(cfg);

  std::map<std::size_t, std::vector<double>> buckets;  // capped bucket -> gains
  for (const auto& s : samples) {
    const std::size_t bucket = std::min<std::size_t>(s.interconnections, 6);
    buckets[bucket].push_back(s.total_gain_pct(s.negotiated_km));
  }

  std::cout << "\n  interconnections   pairs   mean-gain%   median-gain%\n";
  double low_bucket = -1.0, high_bucket = -1.0;
  for (const auto& [b, gains] : buckets) {
    const double mean = util::mean(gains);
    std::printf("  %10zu%s   %5zu   %10.3f   %12.3f\n", b, b == 6 ? "+" : " ",
                gains.size(), mean, util::median(gains));
    if (low_bucket < 0) low_bucket = mean;
    high_bucket = mean;
  }

  std::cout << "\n";
  sim::paper_check(
      "pairs with more interconnections gain more from negotiation",
      "mean gain, fewest-ix bucket " + std::to_string(low_bucket) +
          "% vs most-ix bucket " + std::to_string(high_bucket) + "%",
      high_bucket >= low_bucket);
  return 0;
}
