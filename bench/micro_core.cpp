// google-benchmark micro-benchmarks for the computational substrates:
// Dijkstra all-pairs, simplex LP solve, negotiation engine throughput, and
// frame codec throughput.

#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "lp/simplex.hpp"
#include "opt/min_max_load.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"

namespace {

using namespace nexit;

topology::IspPair make_pair(std::size_t pops) {
  sim::UniverseConfig u;
  u.isp_count = 24;
  u.seed = 7;
  u.generator.min_pops = pops;
  u.generator.max_pops = pops;
  u.max_pairs = 4;
  auto pairs = sim::build_pair_universe(u, 2);
  if (pairs.empty()) throw std::runtime_error("no pair generated");
  return pairs.front();
}

void BM_AllPairsDijkstra(benchmark::State& state) {
  const auto pair = make_pair(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    graph::AllPairsShortestPaths ap(pair.a().backbone());
    benchmark::DoNotOptimize(ap.distance(0, 1));
  }
}
BENCHMARK(BM_AllPairsDijkstra)->Arg(8)->Arg(16)->Arg(24);

void BM_SimplexMinMax(benchmark::State& state) {
  // min t subject to n random packing rows.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  lp::LpProblem p(n + 1);
  p.set_objective_coeff(n, 1.0);
  for (int i = 0; i < n; ++i)
    p.add_constraint({{i, 1.0}}, lp::Relation::kEq, 1.0);
  for (int row = 0; row < n; ++row) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i)
      if (rng.next_bool(0.3)) terms.emplace_back(i, rng.next_double(0.1, 2.0));
    terms.emplace_back(n, -1.0);
    p.add_constraint(std::move(terms), lp::Relation::kLe, 0.0);
  }
  for (auto _ : state) {
    auto sol = lp::SimplexSolver{}.solve(p);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexMinMax)->Arg(16)->Arg(64)->Arg(128);

void BM_NegotiationDistance(benchmark::State& state) {
  const auto pair = make_pair(static_cast<std::size_t>(state.range(0)));
  routing::PairRouting routing(pair);
  util::Rng rng(3);
  traffic::TrafficConfig tcfg;
  tcfg.model = traffic::WorkloadModel::kIdentical;
  auto tm = traffic::TrafficMatrix::build_bidirectional(pair, tcfg, rng);
  std::vector<std::size_t> cands(pair.interconnection_count());
  for (std::size_t i = 0; i < cands.size(); ++i) cands[i] = i;
  auto problem = core::make_distance_problem(routing, tm.flows(), cands);
  for (auto _ : state) {
    core::DistanceOracle a(0, core::PreferenceConfig{});
    core::DistanceOracle b(1, core::PreferenceConfig{});
    core::NegotiationEngine engine(problem, a, b, core::NegotiationConfig{});
    auto out = engine.run();
    benchmark::DoNotOptimize(out.flows_negotiated);
  }
  state.counters["flows"] = static_cast<double>(tm.size());
}
BENCHMARK(BM_NegotiationDistance)->Arg(8)->Arg(16);

void BM_FrameCodecRoundTrip(benchmark::State& state) {
  proto::PrefAdvert advert;
  for (int f = 0; f < 200; ++f) {
    proto::PrefAdvert::Item item;
    item.flow_id = static_cast<std::uint32_t>(f);
    item.pref_of_candidate = {-10, -3, 0, 4, 10};
    advert.flows.push_back(item);
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    const proto::Bytes wire = proto::encode_frame(proto::encode_message(advert));
    bytes += wire.size();
    proto::FrameDecoder d;
    d.feed(wire);
    auto frame = d.next();
    auto msg = proto::decode_message(*frame);
    benchmark::DoNotOptimize(msg.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FrameCodecRoundTrip);

}  // namespace

BENCHMARK_MAIN();
