// Figure 5: the flow-Pareto and flow-both-better strawman strategies, which
// only discard bad per-flow-pair routings instead of negotiating across the
// whole flow set. The paper's point: they achieve almost none of the
// negotiated/optimal gain, so mutual gain requires trading across flows.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::DistanceExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.run_flow_pair_baselines = true;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header(
      "Figure 5", "flow-pair strategies that merely discard bad alternatives",
      bench::universe_summary(cfg.universe));
  const auto samples = sim::run_distance_experiment(cfg);
  std::cout << "samples: " << samples.size() << " ISP pairs\n";

  util::Cdf pareto, both_better, negotiated, optimal;
  for (const auto& s : samples) {
    pareto.add(s.total_gain_pct(s.pareto_km));
    both_better.add(s.total_gain_pct(s.bothbetter_km));
    negotiated.add(s.total_gain_pct(s.negotiated_km));
    optimal.add(s.total_gain_pct(s.optimal_km));
  }

  sim::print_cdf_figure("Fig 5", "total gain of the flow-pair strategies",
                        "% reduction in total flow km vs default routing",
                        {"flow-both-better", "flow-Pareto", "negotiated",
                         "optimal"},
                        {&both_better, &pareto, &negotiated, &optimal});

  const double med_pareto = pareto.value_at(0.5);
  const double med_both = both_better.value_at(0.5);
  const double med_neg = negotiated.value_at(0.5);
  std::cout << "\n";
  sim::paper_check(
      "flow-pair strategies capture little of the negotiated gain",
      "medians: flow-Pareto " + std::to_string(med_pareto) +
          "%, flow-both-better " + std::to_string(med_both) + "%, negotiated " +
          std::to_string(med_neg) + "%",
      med_pareto < med_neg * 0.5 + 0.5 && med_both < med_neg * 0.75 + 0.5);
  return 0;
}
