// A/B microbench for the incremental evaluation layer: runs the same
// post-failure bandwidth negotiations twice — once with full per-quantum
// oracle recomputes, once with incremental evaluation — asserts the outcomes
// are bit-identical, and reports wall-clock plus the evaluate-call work
// (rows recomputed vs the full-recompute equivalent). A second section
// measures LoadMap maintenance in isolation: full compute_loads() rebuild
// after every move versus IncrementalLoads::apply_move().
//
// Flags: --isps --pairs --seed --pop-min --pop-max --pref-range (common),
//        --reassign (quantum fraction, default 0.05),
//        --repeat (timing repetitions per mode, default 3),
//        --moves (loads-microbench move count, default 2000), --json=PATH.

#include <iostream>

#include "bench_common.hpp"
#include "capacity/capacity.hpp"
#include "core/oracles.hpp"
#include "obs/wall_clock.hpp"
#include "routing/incremental_loads.hpp"
#include "routing/loads.hpp"
#include "routing/pair_routing.hpp"
#include "sim/report.hpp"
#include "traffic/traffic.hpp"

namespace {

using namespace nexit;
using util::double_bits;
using util::fnv1a_mix;
using Clock = obs::WallClock;

// nexit-lint: allow(taint-flow): wall-clock timings are run-dependent by design; they feed the digest-excluded wall_ms metrics and progress lines only
double ms_since(Clock::TimePoint t0) { return Clock::ms_since(t0); }

std::uint64_t outcome_digest(const core::NegotiationOutcome& o) {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (std::size_t ix : o.assignment.ix_of_flow) h = fnv1a_mix(h, ix);
  h = fnv1a_mix(h, double_bits(o.true_gain_a));
  h = fnv1a_mix(h, double_bits(o.true_gain_b));
  h = fnv1a_mix(h, o.rounds);
  h = fnv1a_mix(h, o.flows_moved);
  return h;
}

std::uint64_t loadmap_digest(const routing::LoadMap& m) {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (int s = 0; s < 2; ++s)
    for (double v : m.per_side[static_cast<std::size_t>(s)])
      h = fnv1a_mix(h, double_bits(v));
  return h;
}

struct ModeStats {
  double wall_ms = 0.0;
  std::size_t calls_full = 0;
  std::size_t calls_incremental = 0;
  std::size_t rows_computed = 0;
  std::size_t rows_full_equivalent = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::JsonReport json(flags, "micro_incremental");

  sim::UniverseConfig ucfg = bench::universe_from_flags(flags);
  ucfg.isp_count = static_cast<std::size_t>(flags.get_int("isps", 20));
  ucfg.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 8));
  ucfg.generator.min_pops = static_cast<std::size_t>(flags.get_int("pop-min", 10));
  ucfg.generator.max_pops = static_cast<std::size_t>(flags.get_int("pop-max", 18));
  core::NegotiationConfig base = bench::negotiation_from_flags(flags);
  base.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  const std::size_t repeat = bench::size_from_flags(flags, "repeat", 3, 1000);
  const std::size_t micro_moves =
      bench::size_from_flags(flags, "moves", 2000, 10000000);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header(
      "micro_incremental",
      "incremental vs full oracle re-evaluation on the bandwidth hot path",
      bench::universe_summary(ucfg));

  const std::vector<topology::IspPair> pairs = sim::build_pair_universe(ucfg, 3);
  util::Rng seed_rng(ucfg.seed ^ 0x10c4ed0adull);

  ModeStats full_mode, inc_mode;
  std::size_t samples = 0;
  bool digests_match = true;

  for (const topology::IspPair& pair : pairs) {
    const routing::PairRouting routing(pair);
    util::Rng traffic_rng(seed_rng.next_u64());
    traffic::TrafficConfig tcfg;
    const traffic::TrafficMatrix tm = traffic::TrafficMatrix::build(
        pair, traffic::Direction::kAtoB, tcfg, traffic_rng);
    std::vector<std::size_t> all_ix(pair.interconnection_count());
    for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
    const routing::Assignment pre_failure =
        routing::assign_early_exit(routing, tm.flows(), all_ix);
    const routing::LoadMap baseline =
        routing::compute_loads(routing, tm.flows(), pre_failure);
    const routing::LoadMap caps =
        capacity::assign_capacities(baseline, capacity::CapacityConfig{});

    for (std::size_t failed = 0; failed < pair.interconnection_count();
         ++failed) {
      core::NegotiationProblem problem;
      try {
        problem = core::make_failure_problem(routing, tm.flows(), failed);
      } catch (const std::invalid_argument&) {
        continue;
      }
      if (problem.negotiable.empty()) continue;
      const std::uint64_t engine_seed = seed_rng.next_u64();
      ++samples;

      std::uint64_t digest[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        const bool incremental = mode == 1;
        ModeStats& stats = incremental ? inc_mode : full_mode;
        for (std::size_t rep = 0; rep < repeat; ++rep) {
          core::BandwidthOracle a(0, base.preferences, caps);
          core::BandwidthOracle b(1, base.preferences, caps);
          core::NegotiationConfig ncfg = base;
          ncfg.seed = engine_seed;
          ncfg.incremental_evaluation = incremental;
          // Honest A/B timing even from a debug tree: the digest comparison
          // below is this bench's correctness check, not the engine audit.
          ncfg.verify_incremental_every = -1;
          const auto t0 = Clock::now();
          core::NegotiationEngine engine(problem, a, b, ncfg);
          const core::NegotiationOutcome out = engine.run();
          // nexit-lint: allow(float-accumulate): wall-clock total; timing is
          // reported, never digested
          stats.wall_ms += ms_since(t0);
          if (rep == 0) {
            digest[mode] = outcome_digest(out);
            stats.calls_full += out.evaluate_calls_full;
            stats.calls_incremental += out.evaluate_calls_incremental;
            stats.rows_computed += out.evaluate_rows_computed;
            stats.rows_full_equivalent += out.evaluate_rows_full_equivalent;
          }
        }
      }
      if (digest[0] != digest[1]) {
        digests_match = false;
        std::cerr << "DIGEST MISMATCH: " << pair.label() << " failure "
                  << failed << "\n";
      }
    }
  }

  if (samples == 0) {
    std::cerr << "no usable (pair, failure) samples generated\n";
    return 2;
  }

  std::cout << "samples: " << samples << " failed interconnections, x"
            << repeat << " repetitions per mode\n\n";
  const auto report_mode = [](const char* name, const ModeStats& m) {
    std::cout << name << ": " << m.wall_ms << " ms total, "
              << m.rows_computed << " preference rows recomputed ("
              << m.calls_full << " full + " << m.calls_incremental
              << " incremental evaluate calls, full-equivalent "
              << m.rows_full_equivalent << " rows)\n";
  };
  report_mode("full recompute        ", full_mode);
  report_mode("incremental evaluation", inc_mode);
  const double speedup =
      inc_mode.wall_ms > 0.0 ? full_mode.wall_ms / inc_mode.wall_ms : 0.0;
  const double row_fraction =
      inc_mode.rows_full_equivalent > 0
          ? static_cast<double>(inc_mode.rows_computed) /
                static_cast<double>(inc_mode.rows_full_equivalent)
          : 1.0;
  std::cout << "\n";
  sim::paper_check("incremental results are bit-identical to full recompute",
                   digests_match ? "all outcome digests match"
                                 : "digest mismatch (BUG)",
                   digests_match);
  sim::paper_check(
      "negotiation no longer does full per-round recomputes",
      std::to_string(100.0 * row_fraction) +
          "% of the full-recompute row work performed, speedup x" +
          std::to_string(speedup),
      row_fraction < 0.95);

  // --- LoadMap maintenance in isolation ------------------------------------
  // Random moves of negotiable flows on the first usable pair: a full
  // compute_loads() rebuild after every move versus apply_move() + loads().
  double rebuild_ms = 0.0, apply_ms = 0.0;
  bool loads_match = true;
  {
    const topology::IspPair& pair = pairs.front();
    const routing::PairRouting routing(pair);
    util::Rng traffic_rng(ucfg.seed ^ 0x10adf10adull);
    traffic::TrafficConfig tcfg;
    const traffic::TrafficMatrix tm = traffic::TrafficMatrix::build(
        pair, traffic::Direction::kAtoB, tcfg, traffic_rng);
    std::vector<std::size_t> all_ix(pair.interconnection_count());
    for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
    routing::Assignment assignment =
        routing::assign_early_exit(routing, tm.flows(), all_ix);

    util::Rng move_rng(ucfg.seed ^ 0xabcdefull);
    std::vector<std::pair<std::size_t, std::size_t>> moves(micro_moves);
    for (auto& mv : moves) {
      mv.first = static_cast<std::size_t>(move_rng.next_u64()) % tm.size();
      mv.second =
          static_cast<std::size_t>(move_rng.next_u64()) % all_ix.size();
    }

    routing::Assignment a1 = assignment;
    routing::LoadMap rebuilt = routing::compute_loads(routing, tm.flows(), a1);
    const auto t0 = Clock::now();
    for (const auto& mv : moves) {
      a1.ix_of_flow[mv.first] = mv.second;
      rebuilt = routing::compute_loads(routing, tm.flows(), a1);
    }
    rebuild_ms = ms_since(t0);

    routing::IncrementalLoads inc(routing, tm.flows());
    inc.rebuild(assignment, nullptr);
    const auto t1 = Clock::now();
    for (const auto& mv : moves) {
      inc.move_flow(mv.first, mv.second);
      (void)inc.loads();
    }
    apply_ms = ms_since(t1);
    loads_match = loadmap_digest(rebuilt) == loadmap_digest(inc.loads());
  }
  std::cout << "\nLoadMap maintenance over " << micro_moves
            << " moves: full rebuild " << rebuild_ms
            << " ms vs apply_move " << apply_ms << " ms\n";
  sim::paper_check("apply_move() loads are bit-identical to compute_loads()",
                   loads_match ? "digests match" : "digest mismatch (BUG)",
                   loads_match);

  bench::record_universe(json, ucfg, 1);
  json.config("reassign", base.reassign_traffic_fraction);
  json.config("repeat", static_cast<std::int64_t>(repeat));
  json.config("moves", static_cast<std::int64_t>(micro_moves));
  json.metric("samples", static_cast<std::int64_t>(samples));
  json.metric("digest_match", static_cast<std::int64_t>(digests_match ? 1 : 0));
  json.metric("wall_ms_full", full_mode.wall_ms);
  json.metric("wall_ms_incremental", inc_mode.wall_ms);
  json.metric("speedup", speedup);
  json.metric("eval_rows_full_mode",
              static_cast<std::int64_t>(full_mode.rows_computed));
  json.metric("eval_rows_incremental_mode",
              static_cast<std::int64_t>(inc_mode.rows_computed));
  json.metric("eval_rows_full_equivalent",
              static_cast<std::int64_t>(inc_mode.rows_full_equivalent));
  json.metric("eval_row_fraction", row_fraction);
  json.metric("loads_ms_rebuild", rebuild_ms);
  json.metric("loads_ms_apply_move", apply_ms);
  json.metric("loads_match", static_cast<std::int64_t>(loads_match ? 1 : 0));
  json.write();
  return digests_match && loads_match ? 0 : 1;
}
