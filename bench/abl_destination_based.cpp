// Ablation (paper footnote 2): "By using more flexible flow definitions,
// Nexit can be extended to destination-based routing... Empirical evaluation
// with destination-based routing yields results similar to those in §5."
// Runs the distance experiment in both modes: source-destination flows
// (the paper's default) and destination-based groups (one exit per
// destination, moved together, MED-style), each measured against its own
// default routing.

#include "bench_common.hpp"

#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "traffic/traffic.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Everything one pair contributes to the aggregates, filled by a worker
/// into its own index-addressed slot (same scheme as the experiment
/// engines: bit-identical results for any --threads value).
struct PairResult {
  double sd_gain = 0.0;
  double db_gain = 0.0;
  double db_side_gain[2] = {0.0, 0.0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);

  sim::UniverseConfig ucfg = bench::universe_from_flags(flags);
  ucfg.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  const core::NegotiationConfig ncfg_base = bench::negotiation_from_flags(flags);
  const std::size_t threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);
  sim::print_bench_header("Ablation: destination-based routing (footnote 2)",
                          "source-destination vs destination-based negotiation",
                          bench::universe_summary(ucfg));

  const auto pairs = sim::build_pair_universe(ucfg, 2);

  // Pre-fork per-pair streams (traffic, then one seed source for both
  // modes) so the sweep shards across workers deterministically; see
  // util::fork_streams.
  util::Rng rng(ucfg.seed ^ 0xdddd);
  std::vector<std::vector<util::Rng>> streams =
      util::fork_streams(rng, pairs.size(), 2);

  std::vector<PairResult> results(pairs.size());
  const auto run_pair = [&](std::size_t pair_index) {
    const auto& pair = pairs[pair_index];
    routing::PairRouting routing(pair);
    traffic::TrafficConfig tcfg;
    tcfg.model = traffic::WorkloadModel::kIdentical;
    util::Rng trng = streams[pair_index][0];  // traffic stream
    auto tm = traffic::TrafficMatrix::build_bidirectional(pair, tcfg, trng);
    std::vector<std::size_t> cands(pair.interconnection_count());
    for (std::size_t i = 0; i < cands.size(); ++i) cands[i] = i;

    PairResult& res = results[pair_index];
    auto run_mode = [&](const core::NegotiationProblem& problem,
                        double& total_out, double* side_out) {
      core::DistanceOracle a(0, core::PreferenceConfig{});
      core::DistanceOracle b(1, core::PreferenceConfig{});
      core::NegotiationConfig ncfg = ncfg_base;
      ncfg.seed = streams[pair_index][1].next_u64();  // engine-seed stream
      core::NegotiationEngine engine(problem, a, b, ncfg);
      auto out = engine.run();
      const double def = metrics::total_flow_km(routing, tm.flows(),
                                                problem.default_assignment);
      const double neg =
          metrics::total_flow_km(routing, tm.flows(), out.assignment);
      total_out = def > 0 ? (def - neg) / def * 100.0 : 0.0;
      if (side_out != nullptr) {
        for (int side = 0; side < 2; ++side) {
          const double dside = metrics::side_flow_km(
              routing, tm.flows(), problem.default_assignment, side);
          const double nside =
              metrics::side_flow_km(routing, tm.flows(), out.assignment, side);
          side_out[side] = dside > 0 ? (dside - nside) / dside * 100.0 : 0.0;
        }
      }
    };

    run_mode(core::make_distance_problem(routing, tm.flows(), cands),
             res.sd_gain, nullptr);
    run_mode(core::make_destination_problem(routing, tm.flows(), cands),
             res.db_gain, res.db_side_gain);
  };

  util::ThreadPool pool(util::workers_for_threads(threads));
  util::parallel_for(pool, pairs.size(), run_pair);

  util::Cdf sd_gain, db_gain, db_indiv;
  std::size_t db_losers = 0, db_isps = 0;
  for (const PairResult& res : results) {
    sd_gain.add(res.sd_gain);
    db_gain.add(res.db_gain);
    for (int side = 0; side < 2; ++side) {
      db_indiv.add(res.db_side_gain[side]);
      ++db_isps;
      if (res.db_side_gain[side] < -0.5) ++db_losers;
    }
  }

  sim::print_cdf_figure("footnote 2", "total gain vs the mode's own default",
                        "% reduction in total flow km",
                        {"source-dest", "destination-based"},
                        {&sd_gain, &db_gain});

  std::cout << "\n";
  sim::paper_check(
      "destination-based negotiation yields results similar to "
      "source-destination (same order of magnitude, same sign)",
      "median gain: source-dest " + std::to_string(sd_gain.value_at(0.5)) +
          "% vs destination-based " + std::to_string(db_gain.value_at(0.5)) +
          "%",
      db_gain.value_at(0.5) > 0.0 &&
          db_gain.value_at(0.5) > 0.25 * sd_gain.value_at(0.5));
  sim::paper_check("no ISP loses under destination-based negotiation either",
                   std::to_string(db_losers) + "/" + std::to_string(db_isps) +
                       " ISPs lose >0.5%",
                   db_losers == 0);
  return 0;
}
