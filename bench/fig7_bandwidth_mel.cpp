// Figure 7: managing overload after an interconnection failure. For every
// (pair, failed link) sample, the affected flows are re-routed by default
// (early-exit), by Nexit negotiation (bandwidth oracles, reassignment each
// 5% of traffic), and by the globally optimal fractional LP. The figure
// plots the CDF of MEL(method)/MEL(optimal) for the upstream and the
// downstream ISP.
//
// Paper claims: the default ratio is large (>2 for half the upstream
// samples, >5 for 10%); negotiated is close to 1 almost everywhere.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);
  bench::JsonReport json(flags, "fig7_bandwidth_mel");

  sim::BandwidthExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.negotiation.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  cfg.include_unilateral = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Figure 7", "MEL after failures: default and negotiated vs optimal",
                          bench::universe_summary(cfg.universe));
  const auto samples = sim::run_bandwidth_experiment(cfg);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf def_up, neg_up, def_down, neg_down;
  std::size_t def_up_gt2 = 0, def_up_gt5 = 0, neg_up_near1 = 0;
  for (const auto& s : samples) {
    const double du = s.ratio(s.mel_default, 0);
    const double nu = s.ratio(s.mel_negotiated, 0);
    def_up.add(du);
    neg_up.add(nu);
    def_down.add(s.ratio(s.mel_default, 1));
    neg_down.add(s.ratio(s.mel_negotiated, 1));
    if (du > 2.0) ++def_up_gt2;
    if (du > 5.0) ++def_up_gt5;
    if (nu < 1.25) ++neg_up_near1;
  }

  sim::print_cdf_figure("Fig 7 (left)", "upstream ISP",
                        "MEL relative to MEL of optimal routing",
                        {"negotiated", "default"}, {&neg_up, &def_up});
  sim::print_cdf_figure("Fig 7 (right)", "downstream ISP",
                        "MEL relative to MEL of optimal routing",
                        {"negotiated", "default"}, {&neg_down, &def_down});

  const std::size_t n = samples.size();
  std::cout << "\n";
  sim::paper_check(
      "default routing often overloads the upstream (paper: ratio >2 for half)",
      std::to_string(100.0 * def_up_gt2 / n) + "% of samples >2x optimal, " +
          std::to_string(100.0 * def_up_gt5 / n) + "% >5x",
      def_up_gt2 > n / 10);
  sim::paper_check(
      "negotiated routing is close to optimal (most MEL ratios ~1)",
      std::to_string(100.0 * neg_up_near1 / n) +
          "% of upstream samples within 1.25x of optimal; median " +
          std::to_string(neg_up.value_at(0.5)),
      neg_up.value_at(0.5) < 1.3);
  sim::paper_check("negotiated stochastically dominates default (upstream)",
                   "median default " + std::to_string(def_up.value_at(0.5)) +
                       " vs negotiated " + std::to_string(neg_up.value_at(0.5)),
                   neg_up.value_at(0.5) <= def_up.value_at(0.5) + 1e-9);

  bench::record_universe(json, cfg.universe, cfg.threads);
  json.config("reassign", cfg.negotiation.reassign_traffic_fraction);
  json.metric("samples", static_cast<std::int64_t>(n));
  json.metric_cdf("mel_ratio.upstream.default", def_up);
  json.metric_cdf("mel_ratio.upstream.negotiated", neg_up);
  json.metric_cdf("mel_ratio.downstream.default", def_down);
  json.metric_cdf("mel_ratio.downstream.negotiated", neg_down);
  json.write();
  return 0;
}
