// Figure 7: managing overload after an interconnection failure. For every
// (pair, failed link) sample, the affected flows are re-routed by default
// (early-exit), by Nexit negotiation (bandwidth oracles, reassignment each
// 5% of traffic), and by the globally optimal fractional LP. The figure
// plots the CDF of MEL(method)/MEL(optimal) for the upstream and the
// downstream ISP.
//
// Paper claims: the default ratio is large (>2 for half the upstream
// samples, >5 for 10%); negotiated is close to 1 almost everywhere.

#include <chrono>

#include "bench_common.hpp"

namespace {

/// FNV-1a over every sample's MEL doubles and move counts: a digest equal
/// across --threads values (and across --incremental on/off) demonstrates
/// the experiment is bit-identical under both axes.
std::uint64_t sample_digest(const std::vector<nexit::sim::BandwidthSample>& ss) {
  using nexit::bench::double_bits;
  using nexit::bench::fnv1a_mix;
  std::uint64_t h = nexit::bench::kFnvOffsetBasis;
  for (const auto& s : ss) {
    h = fnv1a_mix(h, s.failed_ix);
    h = fnv1a_mix(h, s.flows_moved);
    for (int side = 0; side < 2; ++side) {
      h = fnv1a_mix(h, double_bits(s.mel_default[side]));
      h = fnv1a_mix(h, double_bits(s.mel_negotiated[side]));
      h = fnv1a_mix(h, double_bits(s.mel_optimal[side]));
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nexit;
  util::Flags flags(argc, argv);
  bench::JsonReport json(flags, "fig7_bandwidth_mel");

  sim::BandwidthExperimentConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.universe.max_pairs = static_cast<std::size_t>(flags.get_int("pairs", 60));
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.negotiation.reassign_traffic_fraction = flags.get_double("reassign", 0.05);
  cfg.negotiation.incremental_evaluation = flags.get_bool("incremental", true);
  // Keep wall_ms an honest measurement in every build type; the ctest
  // suites own the debug cross-check.
  cfg.negotiation.verify_incremental_every = -1;
  cfg.include_unilateral = false;
  cfg.threads = bench::threads_from_flags(flags);
  bench::reject_unknown_flags(flags);

  sim::print_bench_header("Figure 7", "MEL after failures: default and negotiated vs optimal",
                          bench::universe_summary(cfg.universe));
  const auto t0 = std::chrono::steady_clock::now();
  const auto samples = sim::run_bandwidth_experiment(cfg);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf def_up, neg_up, def_down, neg_down;
  std::size_t def_up_gt2 = 0, def_up_gt5 = 0, neg_up_near1 = 0;
  for (const auto& s : samples) {
    const double du = s.ratio(s.mel_default, 0);
    const double nu = s.ratio(s.mel_negotiated, 0);
    def_up.add(du);
    neg_up.add(nu);
    def_down.add(s.ratio(s.mel_default, 1));
    neg_down.add(s.ratio(s.mel_negotiated, 1));
    if (du > 2.0) ++def_up_gt2;
    if (du > 5.0) ++def_up_gt5;
    if (nu < 1.25) ++neg_up_near1;
  }

  sim::print_cdf_figure("Fig 7 (left)", "upstream ISP",
                        "MEL relative to MEL of optimal routing",
                        {"negotiated", "default"}, {&neg_up, &def_up});
  sim::print_cdf_figure("Fig 7 (right)", "downstream ISP",
                        "MEL relative to MEL of optimal routing",
                        {"negotiated", "default"}, {&neg_down, &def_down});

  const std::size_t n = samples.size();
  std::cout << "\n";
  sim::paper_check(
      "default routing often overloads the upstream (paper: ratio >2 for half)",
      std::to_string(100.0 * def_up_gt2 / n) + "% of samples >2x optimal, " +
          std::to_string(100.0 * def_up_gt5 / n) + "% >5x",
      def_up_gt2 > n / 10);
  sim::paper_check(
      "negotiated routing is close to optimal (most MEL ratios ~1)",
      std::to_string(100.0 * neg_up_near1 / n) +
          "% of upstream samples within 1.25x of optimal; median " +
          std::to_string(neg_up.value_at(0.5)),
      neg_up.value_at(0.5) < 1.3);
  sim::paper_check("negotiated stochastically dominates default (upstream)",
                   "median default " + std::to_string(def_up.value_at(0.5)) +
                       " vs negotiated " + std::to_string(neg_up.value_at(0.5)),
                   neg_up.value_at(0.5) <= def_up.value_at(0.5) + 1e-9);

  // Evaluate-call work: how much of the naive full-recompute row work the
  // negotiations actually performed (1.0 with --incremental=0).
  std::size_t calls_full = 0, calls_inc = 0, rows = 0, rows_full_eq = 0;
  for (const auto& s : samples) {
    calls_full += s.eval_calls_full;
    calls_inc += s.eval_calls_incremental;
    rows += s.eval_rows_computed;
    rows_full_eq += s.eval_rows_full_equivalent;
  }
  const double row_fraction =
      rows_full_eq > 0
          ? static_cast<double>(rows) / static_cast<double>(rows_full_eq)
          : 1.0;
  std::printf(
      "\nwall-clock %.1f ms; evaluate calls %zu full + %zu incremental; "
      "preference rows %zu of %zu full-equivalent (%.1f%%)\n",
      wall_ms, calls_full, calls_inc, rows, rows_full_eq,
      100.0 * row_fraction);
  std::printf("outcome digest: %016llx\n",
              static_cast<unsigned long long>(sample_digest(samples)));

  bench::record_universe(json, cfg.universe, cfg.threads);
  json.config("reassign", cfg.negotiation.reassign_traffic_fraction);
  json.config("incremental",
              static_cast<std::int64_t>(cfg.negotiation.incremental_evaluation));
  json.metric("wall_ms", wall_ms);
  json.metric("eval_calls_full", static_cast<std::int64_t>(calls_full));
  json.metric("eval_calls_incremental", static_cast<std::int64_t>(calls_inc));
  json.metric("eval_rows_computed", static_cast<std::int64_t>(rows));
  json.metric("eval_rows_full_equivalent",
              static_cast<std::int64_t>(rows_full_eq));
  json.metric("eval_row_fraction", row_fraction);
  json.metric("samples", static_cast<std::int64_t>(n));
  json.metric_cdf("mel_ratio.upstream.default", def_up);
  json.metric_cdf("mel_ratio.upstream.negotiated", neg_up);
  json.metric_cdf("mel_ratio.downstream.default", def_down);
  json.metric_cdf("mel_ratio.downstream.negotiated", neg_down);
  json.write();
  return 0;
}
