// Throughput of the concurrent negotiation runtime: how many full
// agent-pair sessions (handshake, proposal rounds, settlement) the
// SessionManager completes per second, and how many protocol messages that
// pumps through the frame codec.
//
//   ./build/runtime_throughput --sessions=500 --threads=4
//
// Flags (beyond the shared universe ones):
//   --sessions=N   concurrent sessions (default 500; cycles universe pairs
//                  with per-session uniform-random traffic)
//   --stagger=T    virtual ticks between session starts (default 0: all at
//                  once — maximum concurrency)
//   --burst=N      pump steps before a session yields its worker (default 0:
//                  run each ready session to stall/completion)
//   --drop=P --corrupt=P  fault injection on every session's transport.
//                  Nexit has no retransmission layer (it expects TCP), so a
//                  single lost frame desyncs and dooms the whole attempt —
//                  even small P fails most sessions after bounded retries.
//                  The point of the knob is exercising clean timeout/retry
//                  behaviour at scale, not modelling realistic loss.
//   --transport=memory|socket   channel kind (socket is fd-backed AF_UNIX;
//                  mind the fd limit at high --sessions)
//   --json=PATH    machine-readable record of config + results
//
// Outcomes are bit-identical for every --threads value (in-memory
// transport); the digest printed at the end makes that checkable from the
// shell:  diff <(... --threads=1) <(... --threads=4)

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "obs/wall_clock.hpp"
#include "runtime/scenario.hpp"
#include "sim/report.hpp"

using namespace nexit;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::JsonReport json(flags, "runtime_throughput");

  runtime::ScenarioConfig cfg;
  cfg.universe = bench::universe_from_flags(flags);
  cfg.negotiation = bench::negotiation_from_flags(flags);
  cfg.session_count = bench::size_from_flags(flags, "sessions", 500, 1u << 20);
  cfg.traffic = runtime::ScenarioTraffic::kBidirectionalUniformRandom;
  cfg.start_stagger = static_cast<runtime::Tick>(
      bench::size_from_flags(flags, "stagger", 0, 1u << 20));
  cfg.limits.max_steps_per_pump =
      bench::size_from_flags(flags, "burst", 0, 1u << 30);
  cfg.faults.drop = flags.get_double("drop", 0.0);
  cfg.faults.corrupt = flags.get_double("corrupt", 0.0);
  cfg.runtime.threads = bench::threads_from_flags(flags);
  const std::string transport =
      flags.get_choice("transport", {"memory", "socket"}, "memory");
  if (transport == "socket") cfg.transport = runtime::Transport::kSocketPair;
  bench::reject_unknown_flags(flags);

  sim::print_bench_header(
      "Runtime", "concurrent negotiation sessions over the event runtime",
      bench::universe_summary(cfg.universe));
  std::cout << cfg.session_count << " sessions (" << transport
            << " transport), stagger " << cfg.start_stagger << ", burst "
            << cfg.limits.max_steps_per_pump << ", drop " << cfg.faults.drop
            << ", threads " << cfg.runtime.threads << "\n";

  const auto t0 = obs::WallClock::now();
  runtime::Scenario scenario(cfg);
  // nexit-lint: allow(taint-flow): throughput benchmark — wall-clock duration is the measurement itself, printed to stdout and recorded in digest-excluded metrics
  const double build_s = obs::WallClock::ms_since(t0) / 1e3;
  const auto t_run = obs::WallClock::now();
  const runtime::ScenarioReport report = scenario.run();
  // nexit-lint: allow(taint-flow): throughput benchmark — wall-clock duration is the measurement itself, printed to stdout and recorded in digest-excluded metrics
  const double run_s = obs::WallClock::ms_since(t_run) / 1e3;
  const auto& st = report.stats;
  const double sessions_per_s =
      run_s > 0 ? static_cast<double>(st.done + st.failed) / run_s : 0.0;
  const double messages_per_s =
      run_s > 0 ? static_cast<double>(st.messages) / run_s : 0.0;

  std::printf("world build: %.3f s   run: %.3f s\n", build_s, run_s);
  std::printf("done %zu / failed %zu / cancelled %zu of %zu sessions\n",
              st.done, st.failed, st.cancelled, st.sessions);
  std::printf("rounds %zu (peak ready %zu), final tick %llu\n", st.rounds,
              st.peak_ready,
              static_cast<unsigned long long>(st.final_tick));
  std::printf("%.0f sessions/s   %.0f messages/s   (%llu messages, %zu steps)\n",
              sessions_per_s, messages_per_s,
              static_cast<unsigned long long>(st.messages), st.total_steps);
  std::printf("outcome digest: %016llx\n",
              static_cast<unsigned long long>(runtime::outcome_digest(report)));

  bench::record_universe(json, cfg.universe, cfg.runtime.threads);
  json.config("sessions", static_cast<std::int64_t>(cfg.session_count));
  json.config("transport", transport);
  json.config("stagger", static_cast<std::int64_t>(cfg.start_stagger));
  json.config("burst", static_cast<std::int64_t>(cfg.limits.max_steps_per_pump));
  json.config("drop", cfg.faults.drop);
  json.config("corrupt", cfg.faults.corrupt);
  json.metric("build_seconds", build_s);
  json.metric("run_seconds", run_s);
  json.metric("sessions_done", static_cast<std::int64_t>(st.done));
  json.metric("sessions_failed", static_cast<std::int64_t>(st.failed));
  json.metric("sessions_per_second", sessions_per_s);
  json.metric("messages_per_second", messages_per_s);
  json.metric("messages", static_cast<std::int64_t>(st.messages));
  json.metric("steps", static_cast<std::int64_t>(st.total_steps));
  json.metric("rounds", static_cast<std::int64_t>(st.rounds));
  json.write();

  // Fault-free runs must complete everything; anything else is a bug worth
  // a red exit in CI.
  if (cfg.faults.drop == 0.0 && cfg.faults.corrupt == 0.0 &&
      st.done != st.sessions) {
    std::cerr << "error: " << (st.sessions - st.done)
              << " sessions did not complete\n";
    return 1;
  }
  return 0;
}
