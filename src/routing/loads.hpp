#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "routing/pair_routing.hpp"

namespace nexit::routing {

/// Per-backbone-edge traffic loads for both ISPs of a pair.
/// per_side[0][e] is the load on edge e of ISP A's backbone, per_side[1]
/// likewise for ISP B. Also reused to hold link *capacities*, which have the
/// same shape (see capacity/).
struct LoadMap {
  std::array<std::vector<double>, 2> per_side;

  [[nodiscard]] static LoadMap zeros(const topology::IspPair& pair);

  LoadMap& operator+=(const LoadMap& other);
};

/// Adds (scale > 0) or removes (scale < 0) `scale * f.size` units of load
/// along the flow's path through both ISPs when routed via `ix`.
void add_flow_load(LoadMap& loads, const PairRouting& routing,
                   const traffic::Flow& f, std::size_t ix, double scale);

/// Loads produced by an integral assignment over the given flows.
LoadMap compute_loads(const PairRouting& routing,
                      const std::vector<traffic::Flow>& flows,
                      const Assignment& assignment);

/// Fractional assignment: for each flow, a weight per interconnection index
/// (sparse; missing entries are zero). Produced by the LP-based optimal
/// routing, which may split a flow across interconnections.
struct FractionalAssignment {
  struct Share {
    std::size_t ix = 0;
    double fraction = 0.0;  // in [0, 1], fractions of a flow sum to 1
  };
  std::vector<std::vector<Share>> shares_of_flow;
};

/// Loads produced by a fractional assignment.
LoadMap compute_loads_fractional(const PairRouting& routing,
                                 const std::vector<traffic::Flow>& flows,
                                 const FractionalAssignment& assignment);

}  // namespace nexit::routing
