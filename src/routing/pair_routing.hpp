#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "topology/isp_topology.hpp"
#include "traffic/traffic.hpp"

namespace nexit::routing {

/// Routing view over one ISP pair: all-pairs shortest paths inside both ISPs
/// plus per-flow interconnection alternatives. A flow's path is
///   src --(upstream IGP path)--> ix.pop_up --(peering link)--> ix.pop_down
///   --(downstream IGP path)--> dst
/// and the choice being negotiated is the interconnection index.
///
/// The referenced IspPair must outlive this object. Interconnection failures
/// are expressed by passing an explicit candidate list to the exit policies,
/// so one PairRouting (whose all-pairs computation is the expensive part)
/// serves all failure scenarios of its pair.
class PairRouting {
 public:
  explicit PairRouting(const topology::IspPair& pair);

  [[nodiscard]] const topology::IspPair& pair() const { return *pair_; }

  /// IGP weight distance from `pop` to interconnection `ix`'s PoP inside the
  /// given side (0 = ISP A, 1 = ISP B).
  [[nodiscard]] double igp_to_ix(int side, topology::PopId pop, std::size_t ix) const;

  /// Geographic km along the IGP shortest path from `pop` to `ix`'s PoP.
  [[nodiscard]] double km_to_ix(int side, topology::PopId pop, std::size_t ix) const;

  /// Distance the flow travels inside its upstream / downstream ISP when
  /// routed via interconnection `ix` (km along IGP shortest paths).
  [[nodiscard]] double upstream_km(const traffic::Flow& f, std::size_t ix) const;
  [[nodiscard]] double downstream_km(const traffic::Flow& f, std::size_t ix) const;
  [[nodiscard]] double total_km(const traffic::Flow& f, std::size_t ix) const;

  /// Distance inside a specific side (side must be the flow's upstream or
  /// downstream ISP).
  [[nodiscard]] double km_in_side(const traffic::Flow& f, std::size_t ix,
                                  int side) const;

  /// IGP weight inside the upstream / downstream network.
  [[nodiscard]] double upstream_igp(const traffic::Flow& f, std::size_t ix) const;
  [[nodiscard]] double downstream_igp(const traffic::Flow& f, std::size_t ix) const;

  /// Backbone edges the flow traverses inside its upstream ISP when routed
  /// via `ix` (edge indices of that ISP's graph). Empty when src is the
  /// interconnection PoP. Returns a reference into a per-side cache built
  /// on first use (thread-safely; the runtime shares a PairRouting across
  /// concurrently pumped sessions) — one path per (PoP, interconnection),
  /// never per call — valid for the lifetime of this PairRouting. Distance
  /// workloads that never ask for path edges pay nothing.
  [[nodiscard]] const std::vector<graph::EdgeIndex>& upstream_path_edges(
      const traffic::Flow& f, std::size_t ix) const;
  [[nodiscard]] const std::vector<graph::EdgeIndex>& downstream_path_edges(
      const traffic::Flow& f, std::size_t ix) const;

  // --- Exit policies (paper §2) -------------------------------------------
  // All take the candidate interconnection indices (the ones currently up);
  // ties break toward the lowest interconnection index, deterministically.

  /// Early-exit / hot-potato: minimise upstream IGP distance. This is the
  /// paper's default routing.
  [[nodiscard]] std::size_t early_exit(const traffic::Flow& f,
                                       const std::vector<std::size_t>& candidates) const;

  /// Late-exit (MEDs honored): minimise downstream IGP distance — "simply
  /// the reverse of early-exit" (paper Fig. 1b).
  [[nodiscard]] std::size_t late_exit(const traffic::Flow& f,
                                      const std::vector<std::size_t>& candidates) const;

  /// Per-flow globally optimal for the distance metric: minimise total km.
  [[nodiscard]] std::size_t min_total_km_exit(
      const traffic::Flow& f, const std::vector<std::size_t>& candidates) const;

 private:
  [[nodiscard]] const graph::ShortestPathTree& tree(int side,
                                                    topology::PopId source) const;
  [[nodiscard]] topology::PopId ix_pop(int side, std::size_t ix) const;
  [[nodiscard]] const std::vector<graph::EdgeIndex>& cached_path(
      int side, topology::PopId pop, std::size_t ix) const;
  void build_path_cache(int side) const;

  const topology::IspPair* pair_;
  graph::AllPairsShortestPaths paths_a_;
  graph::AllPairsShortestPaths paths_b_;
  /// path_cache_[side][pop * ix_count + ix]: edges of the IGP shortest path
  /// from `pop` to interconnection `ix`'s PoP inside `side`'s backbone.
  /// Built lazily per side under path_cache_once_, immutable afterwards.
  mutable std::array<std::once_flag, 2> path_cache_once_;
  mutable std::array<std::vector<std::vector<graph::EdgeIndex>>, 2> path_cache_;
};

/// Integral assignment: interconnection index per flow, aligned with the
/// traffic matrix's flow order.
struct Assignment {
  std::vector<std::size_t> ix_of_flow;
};

/// Builds the assignment produced by a given exit policy applied to every
/// flow independently (the "no negotiation" baselines).
Assignment assign_early_exit(const PairRouting& routing,
                             const std::vector<traffic::Flow>& flows,
                             const std::vector<std::size_t>& candidates);
Assignment assign_late_exit(const PairRouting& routing,
                            const std::vector<traffic::Flow>& flows,
                            const std::vector<std::size_t>& candidates);
Assignment assign_min_total_km(const PairRouting& routing,
                               const std::vector<traffic::Flow>& flows,
                               const std::vector<std::size_t>& candidates);

}  // namespace nexit::routing
