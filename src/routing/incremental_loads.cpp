#include "routing/incremental_loads.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"

namespace nexit::routing {

IncrementalLoads::IncrementalLoads(const PairRouting& routing,
                                   const std::vector<traffic::Flow>& flows,
                                   int track_side)
    : routing_(&routing), flows_(&flows), track_side_(track_side) {
  if (track_side < -1 || track_side > 1)
    throw std::invalid_argument("IncrementalLoads: track_side must be -1/0/1");
  const topology::IspPair& pair = routing.pair();
  for (int side = 0; side < 2; ++side) {
    const std::size_t edges = side == 0 ? pair.a().backbone().edge_count()
                                        : pair.b().backbone().edge_count();
    if (tracked(side)) {
      links_[static_cast<std::size_t>(side)].resize(edges);
      loads_.per_side[static_cast<std::size_t>(side)].assign(edges, 0.0);
    }
  }
  ix_of_.assign(flows.size(), 0);
  counted_.assign(flows.size(), 0);
}

void IncrementalLoads::mark(int side, graph::EdgeIndex e) {
  Link& link = links_[static_cast<std::size_t>(side)][static_cast<std::size_t>(e)];
  if (!link.dirty) {
    link.dirty = true;
    dirty_list_[static_cast<std::size_t>(side)].push_back(e);
  }
  if (!link.touched) {
    link.touched = true;
    touched_list_[static_cast<std::size_t>(side)].push_back(e);
  }
}

void IncrementalLoads::link_insert(int side, graph::EdgeIndex e,
                                   std::size_t flow) {
  Link& link = links_[static_cast<std::size_t>(side)][static_cast<std::size_t>(e)];
  const auto it = std::lower_bound(link.flows.begin(), link.flows.end(), flow);
  if (it != link.flows.end() && *it == flow)
    throw std::logic_error("IncrementalLoads: flow already on link");
  link.flows.insert(it, flow);
  mark(side, e);
}

void IncrementalLoads::link_erase(int side, graph::EdgeIndex e,
                                  std::size_t flow) {
  Link& link = links_[static_cast<std::size_t>(side)][static_cast<std::size_t>(e)];
  const auto it = std::lower_bound(link.flows.begin(), link.flows.end(), flow);
  if (it == link.flows.end() || *it != flow)
    throw std::logic_error("IncrementalLoads: flow not on link");
  link.flows.erase(it);
  mark(side, e);
}

void IncrementalLoads::place(std::size_t flow, std::size_t ix, bool insert) {
  const traffic::Flow& f = (*flows_)[flow];
  const int up = traffic::upstream_side(f.direction);
  const int down = traffic::downstream_side(f.direction);
  if (tracked(up)) {
    for (graph::EdgeIndex e : routing_->upstream_path_edges(f, ix)) {
      if (insert) link_insert(up, e, flow);
      else link_erase(up, e, flow);
    }
  }
  if (tracked(down)) {
    for (graph::EdgeIndex e : routing_->downstream_path_edges(f, ix)) {
      if (insert) link_insert(down, e, flow);
      else link_erase(down, e, flow);
    }
  }
}

void IncrementalLoads::clear_marks() {
  for (int side = 0; side < 2; ++side) {
    auto& side_links = links_[static_cast<std::size_t>(side)];
    for (graph::EdgeIndex e : dirty_list_[static_cast<std::size_t>(side)])
      side_links[static_cast<std::size_t>(e)].dirty = false;
    for (graph::EdgeIndex e : touched_list_[static_cast<std::size_t>(side)])
      side_links[static_cast<std::size_t>(e)].touched = false;
    dirty_list_[static_cast<std::size_t>(side)].clear();
    touched_list_[static_cast<std::size_t>(side)].clear();
  }
}

void IncrementalLoads::rebuild(const Assignment& assignment,
                               const std::vector<char>* counted) {
  const obs::PhaseTimer timer(obs::Phase::kLoadsMaintain);
  if (assignment.ix_of_flow.size() != flows_->size())
    throw std::invalid_argument("IncrementalLoads: assignment size mismatch");
  if (counted != nullptr && counted->size() != flows_->size())
    throw std::invalid_argument("IncrementalLoads: counted mask size mismatch");
  for (int side = 0; side < 2; ++side) {
    if (indexed_) {
      for (Link& link : links_[static_cast<std::size_t>(side)]) {
        link.flows.clear();
        link.dirty = false;
        link.touched = false;
      }
    }
    dirty_list_[static_cast<std::size_t>(side)].clear();
    touched_list_[static_cast<std::size_t>(side)].clear();
    auto& side_loads = loads_.per_side[static_cast<std::size_t>(side)];
    side_loads.assign(side_loads.size(), 0.0);
  }
  indexed_ = false;
  ix_of_.assign(flows_->size(), 0);
  counted_.assign(flows_->size(), 0);
  // Direct accumulation in flow order — the exact summation sequence of
  // compute_loads(), and also of the per-link ordered re-sums a later
  // incremental recompute performs, so all three agree bit for bit. The
  // membership index is deferred to ensure_index(): a rebuild that is only
  // ever read (full-recompute mode) never pays for it.
  for (std::size_t i = 0; i < flows_->size(); ++i) {
    const traffic::Flow& f = (*flows_)[i];
    ix_of_[i] = assignment.ix_of_flow[i];
    counted_[i] = counted == nullptr ? 1 : (*counted)[i];
    if (!counted_[i]) continue;
    const int up = traffic::upstream_side(f.direction);
    const int down = traffic::downstream_side(f.direction);
    if (tracked(up)) {
      auto& side_loads = loads_.per_side[static_cast<std::size_t>(up)];
      for (graph::EdgeIndex e : routing_->upstream_path_edges(f, ix_of_[i]))
        side_loads[static_cast<std::size_t>(e)] += f.size;
    }
    if (tracked(down)) {
      auto& side_loads = loads_.per_side[static_cast<std::size_t>(down)];
      for (graph::EdgeIndex e : routing_->downstream_path_edges(f, ix_of_[i]))
        side_loads[static_cast<std::size_t>(e)] += f.size;
    }
  }
}

void IncrementalLoads::ensure_index() {
  if (indexed_) return;
  // Ascending flow order keeps every link's membership list sorted without
  // a per-link sort. The inserts mark links dirty/touched as a side effect;
  // loads_ is already correct, so the marks are reset afterwards.
  for (std::size_t i = 0; i < flows_->size(); ++i)
    if (counted_[i]) place(i, ix_of_[i], /*insert=*/true);
  clear_marks();
  indexed_ = true;
}

void IncrementalLoads::move_flow(std::size_t flow, std::size_t to_ix) {
  if (flow >= flows_->size())
    throw std::invalid_argument("IncrementalLoads: flow out of range");
  if (ix_of_[flow] == to_ix) return;
  if (counted_[flow]) {
    ensure_index();
    place(flow, ix_of_[flow], /*insert=*/false);
    place(flow, to_ix, /*insert=*/true);
  }
  ix_of_[flow] = to_ix;
}

void IncrementalLoads::apply_move(const std::vector<std::size_t>& members,
                                  std::size_t to_ix) {
  for (std::size_t m : members) move_flow(m, to_ix);
}

void IncrementalLoads::count_flow(std::size_t flow) {
  if (flow >= flows_->size())
    throw std::invalid_argument("IncrementalLoads: flow out of range");
  if (counted_[flow]) return;
  ensure_index();
  counted_[flow] = 1;
  place(flow, ix_of_[flow], /*insert=*/true);
}

const LoadMap& IncrementalLoads::loads() {
  for (int side = 0; side < 2; ++side) {
    auto& list = dirty_list_[static_cast<std::size_t>(side)];
    if (list.empty()) continue;
    auto& side_loads = loads_.per_side[static_cast<std::size_t>(side)];
    auto& side_links = links_[static_cast<std::size_t>(side)];
    for (graph::EdgeIndex e : list) {
      Link& link = side_links[static_cast<std::size_t>(e)];
      double sum = 0.0;
      for (std::size_t i : link.flows) sum += (*flows_)[i].size;
      side_loads[static_cast<std::size_t>(e)] = sum;
      link.dirty = false;
    }
    list.clear();
  }
  return loads_;
}

std::array<std::vector<graph::EdgeIndex>, 2> IncrementalLoads::take_touched() {
  std::array<std::vector<graph::EdgeIndex>, 2> out;
  for (int side = 0; side < 2; ++side) {
    out[static_cast<std::size_t>(side)] =
        std::move(touched_list_[static_cast<std::size_t>(side)]);
    touched_list_[static_cast<std::size_t>(side)].clear();
    for (graph::EdgeIndex e : out[static_cast<std::size_t>(side)])
      links_[static_cast<std::size_t>(side)][static_cast<std::size_t>(e)]
          .touched = false;
  }
  return out;
}

}  // namespace nexit::routing
