#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "routing/loads.hpp"

namespace nexit::routing {

/// Delta-maintained link loads that stay *bit-identical* to a full
/// `compute_loads()` rebuild after any sequence of moves.
///
/// Floating-point accumulation is order-dependent, so naively applying
/// `-old_path +new_path` deltas to a LoadMap drifts from the full rebuild by
/// ulps — enough to flip a preference class at a quantisation boundary and
/// make an "incremental" negotiation diverge from the reference. Instead,
/// this structure tracks, per backbone link, the ascending set of flow
/// indices currently crossing it, and recomputes a *touched* link's load as
/// the flow-index-ordered sum of its members' sizes — exactly the sequence
/// of additions `compute_loads()` performs on that link. Untouched links are
/// never revisited, so a move costs O(path length + flows on the touched
/// links) instead of O(all flows x path length).
class IncrementalLoads {
 public:
  /// `track_side` restricts bookkeeping to one ISP's links (0 = A, 1 = B;
  /// the other side's load vector stays empty), -1 tracks both. `routing`
  /// and `flows` must outlive this object.
  IncrementalLoads(const PairRouting& routing,
                   const std::vector<traffic::Flow>& flows,
                   int track_side = -1);

  /// (Re)build from scratch: every counted flow contributes at
  /// `assignment`'s interconnection. `counted` is aligned with the flow list
  /// (nonzero = contributes load); nullptr counts every flow. Clears the
  /// touched set. Loads are accumulated directly (same cost and summation
  /// order as compute_loads()); the per-link membership index is built
  /// lazily by the first move_flow()/count_flow(), so a rebuild consumed
  /// only through loads() — the full-recompute mode — pays no indexing.
  void rebuild(const Assignment& assignment, const std::vector<char>* counted);

  /// Moves one flow to `to_ix` (no-op when it is already there). Uncounted
  /// flows only update their recorded position.
  void move_flow(std::size_t flow, std::size_t to_ix);

  /// Moves a whole negotiation group: every member flow to `to_ix`. This is
  /// the seam the engine's accepted moves and reassignment quanta go
  /// through instead of a full compute_loads() rebuild.
  void apply_move(const std::vector<std::size_t>& members, std::size_t to_ix);

  /// Starts counting `flow` at its current position (no-op when counted).
  /// Used by the kExcluded open-flow model when a flow settles.
  void count_flow(std::size_t flow);

  [[nodiscard]] std::size_t ix_of(std::size_t flow) const {
    return ix_of_.at(flow);
  }
  [[nodiscard]] bool is_counted(std::size_t flow) const {
    return counted_.at(flow) != 0;
  }

  /// Current loads; recomputes only the links touched since the last call.
  /// Bit-identical to compute_loads() over the counted flows at their
  /// current interconnections (untracked sides read as all-zero).
  const LoadMap& loads();

  /// Links whose crossing-flow set changed since the previous take_touched()
  /// (or rebuild), per side; clears the set. Safe to call before or after
  /// loads().
  std::array<std::vector<graph::EdgeIndex>, 2> take_touched();

 private:
  struct Link {
    std::vector<std::size_t> flows;  // ascending flow indices crossing it
    bool dirty = false;              // load sum needs recomputation
    bool touched = false;            // changed since last take_touched()
  };

  [[nodiscard]] bool tracked(int side) const {
    return track_side_ < 0 || track_side_ == side;
  }
  /// Builds the per-link membership index from ix_of_/counted_ if it does
  /// not exist yet (first mutation after a rebuild).
  void ensure_index();
  /// Resets all dirty/touched marks (loads_ is already correct).
  void clear_marks();
  void mark(int side, graph::EdgeIndex e);
  void link_insert(int side, graph::EdgeIndex e, std::size_t flow);
  void link_erase(int side, graph::EdgeIndex e, std::size_t flow);
  /// Adds (insert) or removes the flow's membership along its path via `ix`.
  void place(std::size_t flow, std::size_t ix, bool insert);

  const PairRouting* routing_;
  const std::vector<traffic::Flow>* flows_;
  int track_side_;
  bool indexed_ = false;
  std::array<std::vector<Link>, 2> links_;
  std::vector<std::size_t> ix_of_;
  std::vector<char> counted_;
  LoadMap loads_;
  std::array<std::vector<graph::EdgeIndex>, 2> dirty_list_;
  std::array<std::vector<graph::EdgeIndex>, 2> touched_list_;
};

}  // namespace nexit::routing
