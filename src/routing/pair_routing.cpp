#include "routing/pair_routing.hpp"

#include <cstdint>
#include <stdexcept>

namespace nexit::routing {

PairRouting::PairRouting(const topology::IspPair& pair)
    : pair_(&pair),
      paths_a_(pair.a().backbone()),
      paths_b_(pair.b().backbone()) {}

/// Precomputes every (PoP, interconnection) path of one side. Oracles walk
/// these paths per flow per candidate on every evaluation, so handing out
/// cached references instead of materializing vectors is what keeps the
/// per-row cost of (incremental) re-evaluation flat. Backbones are
/// connected by IspTopology's invariant, so every path exists.
void PairRouting::build_path_cache(int side) const {
  const std::size_t n_ix = pair_->interconnection_count();
  const graph::Graph& g =
      side == 0 ? pair_->a().backbone() : pair_->b().backbone();
  auto& cache = path_cache_[static_cast<std::size_t>(side)];
  cache.resize(g.node_count() * n_ix);
  for (std::size_t pop = 0; pop < g.node_count(); ++pop) {
    const graph::ShortestPathTree& t =
        tree(side, topology::PopId{static_cast<std::int32_t>(pop)});
    for (std::size_t ix = 0; ix < n_ix; ++ix)
      cache[pop * n_ix + ix] = t.path_edges(
          static_cast<graph::NodeIndex>(ix_pop(side, ix).value()));
  }
}

const std::vector<graph::EdgeIndex>& PairRouting::cached_path(
    int side, topology::PopId pop, std::size_t ix) const {
  const std::size_t n_ix = pair_->interconnection_count();
  if (ix >= n_ix)
    throw std::out_of_range("PairRouting: interconnection index out of range");
  std::call_once(path_cache_once_[static_cast<std::size_t>(side)],
                 [&] { build_path_cache(side); });
  return path_cache_[static_cast<std::size_t>(side)].at(
      static_cast<std::size_t>(pop.value()) * n_ix + ix);
}

const graph::ShortestPathTree& PairRouting::tree(int side,
                                                 topology::PopId source) const {
  const auto& ap = (side == 0) ? paths_a_ : paths_b_;
  return ap.from(static_cast<graph::NodeIndex>(source.value()));
}

topology::PopId PairRouting::ix_pop(int side, std::size_t ix) const {
  const topology::Interconnection& link = pair_->interconnections().at(ix);
  return (side == 0) ? link.pop_a : link.pop_b;
}

double PairRouting::igp_to_ix(int side, topology::PopId pop, std::size_t ix) const {
  return tree(side, pop).distance(
      static_cast<graph::NodeIndex>(ix_pop(side, ix).value()));
}

double PairRouting::km_to_ix(int side, topology::PopId pop, std::size_t ix) const {
  return tree(side, pop).path_length_km(
      static_cast<graph::NodeIndex>(ix_pop(side, ix).value()));
}

double PairRouting::upstream_km(const traffic::Flow& f, std::size_t ix) const {
  return km_to_ix(traffic::upstream_side(f.direction), f.src, ix);
}

double PairRouting::downstream_km(const traffic::Flow& f, std::size_t ix) const {
  return km_to_ix(traffic::downstream_side(f.direction), f.dst, ix);
}

double PairRouting::total_km(const traffic::Flow& f, std::size_t ix) const {
  return upstream_km(f, ix) + downstream_km(f, ix);
}

double PairRouting::km_in_side(const traffic::Flow& f, std::size_t ix,
                               int side) const {
  if (side == traffic::upstream_side(f.direction)) return upstream_km(f, ix);
  if (side == traffic::downstream_side(f.direction)) return downstream_km(f, ix);
  throw std::invalid_argument("PairRouting::km_in_side: bad side");
}

double PairRouting::upstream_igp(const traffic::Flow& f, std::size_t ix) const {
  return igp_to_ix(traffic::upstream_side(f.direction), f.src, ix);
}

double PairRouting::downstream_igp(const traffic::Flow& f, std::size_t ix) const {
  return igp_to_ix(traffic::downstream_side(f.direction), f.dst, ix);
}

const std::vector<graph::EdgeIndex>& PairRouting::upstream_path_edges(
    const traffic::Flow& f, std::size_t ix) const {
  return cached_path(traffic::upstream_side(f.direction), f.src, ix);
}

const std::vector<graph::EdgeIndex>& PairRouting::downstream_path_edges(
    const traffic::Flow& f, std::size_t ix) const {
  // Undirected graph: path ix->dst equals dst->ix reversed; edge set is what
  // load accounting needs.
  return cached_path(traffic::downstream_side(f.direction), f.dst, ix);
}

namespace {

template <typename Cost>
std::size_t argmin_candidate(const std::vector<std::size_t>& candidates,
                             Cost cost) {
  if (candidates.empty())
    throw std::invalid_argument("exit policy: empty candidate set");
  std::size_t best = candidates.front();
  double best_cost = cost(best);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double c = cost(candidates[i]);
    if (c < best_cost - 1e-12 ||
        (c < best_cost + 1e-12 && candidates[i] < best)) {
      best = candidates[i];
      best_cost = c;
    }
  }
  return best;
}

}  // namespace

std::size_t PairRouting::early_exit(const traffic::Flow& f,
                                    const std::vector<std::size_t>& candidates) const {
  return argmin_candidate(candidates,
                          [&](std::size_t ix) { return upstream_igp(f, ix); });
}

std::size_t PairRouting::late_exit(const traffic::Flow& f,
                                   const std::vector<std::size_t>& candidates) const {
  return argmin_candidate(candidates,
                          [&](std::size_t ix) { return downstream_igp(f, ix); });
}

std::size_t PairRouting::min_total_km_exit(
    const traffic::Flow& f, const std::vector<std::size_t>& candidates) const {
  return argmin_candidate(candidates,
                          [&](std::size_t ix) { return total_km(f, ix); });
}

namespace {

template <typename Policy>
Assignment assign_all(const std::vector<traffic::Flow>& flows, Policy policy) {
  Assignment a;
  a.ix_of_flow.reserve(flows.size());
  for (const auto& f : flows) a.ix_of_flow.push_back(policy(f));
  return a;
}

}  // namespace

Assignment assign_early_exit(const PairRouting& routing,
                             const std::vector<traffic::Flow>& flows,
                             const std::vector<std::size_t>& candidates) {
  return assign_all(flows, [&](const traffic::Flow& f) {
    return routing.early_exit(f, candidates);
  });
}

Assignment assign_late_exit(const PairRouting& routing,
                            const std::vector<traffic::Flow>& flows,
                            const std::vector<std::size_t>& candidates) {
  return assign_all(flows, [&](const traffic::Flow& f) {
    return routing.late_exit(f, candidates);
  });
}

Assignment assign_min_total_km(const PairRouting& routing,
                               const std::vector<traffic::Flow>& flows,
                               const std::vector<std::size_t>& candidates) {
  return assign_all(flows, [&](const traffic::Flow& f) {
    return routing.min_total_km_exit(f, candidates);
  });
}

}  // namespace nexit::routing
