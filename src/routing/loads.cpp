#include "routing/loads.hpp"

#include <stdexcept>

namespace nexit::routing {

LoadMap LoadMap::zeros(const topology::IspPair& pair) {
  LoadMap m;
  m.per_side[0].assign(pair.a().backbone().edge_count(), 0.0);
  m.per_side[1].assign(pair.b().backbone().edge_count(), 0.0);
  return m;
}

LoadMap& LoadMap::operator+=(const LoadMap& other) {
  for (int s = 0; s < 2; ++s) {
    if (per_side[s].size() != other.per_side[s].size())
      throw std::invalid_argument("LoadMap::operator+=: shape mismatch");
    for (std::size_t e = 0; e < per_side[s].size(); ++e)
      per_side[s][e] += other.per_side[s][e];
  }
  return *this;
}

void add_flow_load(LoadMap& loads, const PairRouting& routing,
                   const traffic::Flow& f, std::size_t ix, double scale) {
  // Validate the map's shape once; the cached path edges index their side's
  // backbone by construction, so the accumulation loops stay unchecked.
  const topology::IspPair& pair = routing.pair();
  if (loads.per_side[0].size() != pair.a().backbone().edge_count() ||
      loads.per_side[1].size() != pair.b().backbone().edge_count())
    throw std::invalid_argument("add_flow_load: LoadMap shape mismatch");
  std::vector<double>& up = loads.per_side[traffic::upstream_side(f.direction)];
  std::vector<double>& down =
      loads.per_side[traffic::downstream_side(f.direction)];
  const double amount = scale * f.size;
  for (graph::EdgeIndex e : routing.upstream_path_edges(f, ix))
    up[static_cast<std::size_t>(e)] += amount;
  for (graph::EdgeIndex e : routing.downstream_path_edges(f, ix))
    down[static_cast<std::size_t>(e)] += amount;
}

LoadMap compute_loads(const PairRouting& routing,
                      const std::vector<traffic::Flow>& flows,
                      const Assignment& assignment) {
  if (assignment.ix_of_flow.size() != flows.size())
    throw std::invalid_argument("compute_loads: assignment size mismatch");
  LoadMap loads = LoadMap::zeros(routing.pair());
  for (std::size_t i = 0; i < flows.size(); ++i)
    add_flow_load(loads, routing, flows[i], assignment.ix_of_flow[i], 1.0);
  return loads;
}

LoadMap compute_loads_fractional(const PairRouting& routing,
                                 const std::vector<traffic::Flow>& flows,
                                 const FractionalAssignment& assignment) {
  if (assignment.shares_of_flow.size() != flows.size())
    throw std::invalid_argument("compute_loads_fractional: size mismatch");
  LoadMap loads = LoadMap::zeros(routing.pair());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (const auto& share : assignment.shares_of_flow[i]) {
      add_flow_load(loads, routing, flows[i], share.ix, share.fraction);
    }
  }
  return loads;
}

}  // namespace nexit::routing
