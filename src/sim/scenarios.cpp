#include "sim/scenarios.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <set>

#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "dist/coordinator.hpp"
#include "core/problem.hpp"
#include "geo/coord.hpp"
#include "graph/graph.hpp"
#include "metrics/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/wall_clock.hpp"
#include "routing/pair_routing.hpp"
#include "sim/report.hpp"
#include "topology/isp_topology.hpp"
#include "traffic/traffic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace nexit::sim {

namespace {

/// One trace track per engine sample: each recorded round becomes a
/// one-tick 'X' span on the round-index logical clock, closed by a "settle"
/// instant. Logical clocks only — the emitted events are byte-identical for
/// every --threads value, which is what lets CI diff traces like digests.
void emit_round_track(obs::Trace* trace, const std::string& track_name,
                      const std::vector<core::RoundTrace>& rounds,
                      std::size_t flows_moved) {
  if (trace == nullptr) return;
  const int track = trace->new_track(track_name);
  std::uint64_t ts = 0;
  std::int64_t accepted = 0;
  for (const core::RoundTrace& r : rounds) {
    accepted += r.accepted ? 1 : 0;
    obs::Trace::Args args;
    args.add("round", static_cast<std::int64_t>(r.round))
        .add("proposer", static_cast<std::int64_t>(r.proposer))
        .add("flow", static_cast<std::int64_t>(r.flow.value()))
        .add("ix", static_cast<std::int64_t>(r.interconnection))
        .add("pref_a", static_cast<std::int64_t>(r.pref_a))
        .add("pref_b", static_cast<std::int64_t>(r.pref_b))
        .add_bool("reassigned", r.reassigned_after);
    trace->complete(track, ts, 1, r.accepted ? "accept" : "reject", "engine",
                    std::move(args));
    ++ts;
  }
  obs::Trace::Args settle;
  settle.add("rounds", static_cast<std::int64_t>(rounds.size()))
      .add("accepted", accepted)
      .add("flows_moved", static_cast<std::int64_t>(flows_moved));
  trace->instant(track, ts, "settle", "engine", std::move(settle));
}

}  // namespace

void ScenarioContext::mix(const std::vector<DistanceSample>& samples) {
  digest = util::fnv1a_mix(digest, digest_samples(samples));
  if (trace != nullptr) {
    for (const DistanceSample& s : samples)
      emit_round_track(trace, s.pair_label, s.rounds, s.flows_moved);
  }
}
void ScenarioContext::mix(const std::vector<BandwidthSample>& samples) {
  digest = util::fnv1a_mix(digest, digest_samples(samples));
  if (trace != nullptr) {
    for (const BandwidthSample& s : samples)
      emit_round_track(trace,
                       s.pair_label + " fail@" + std::to_string(s.failed_ix),
                       s.rounds, s.flows_moved);
  }
}

std::vector<std::string> ScenarioContext::axis_values(
    const std::string& key) const {
  const SweepAxis* axis = spec.axis(key);
  return axis != nullptr ? axis->values : std::vector<std::string>{};
}

ExperimentSpec ScenarioContext::spec_with(const std::string& key,
                                          const std::string& value) const {
  ExperimentSpec point = spec;
  {
    const util::FlagErrorContext context("sweep axis --sweep." + key);
    point.merge_from_flags(util::Flags({key + "=" + value}));
  }
  std::string error;
  if (!point.validate(&error)) {
    std::cerr << "error: sweep." << key << "=" << value << ": " << error
              << "\n";
    std::exit(2);
  }
  return point;
}

std::uint64_t digest_samples(const std::vector<DistanceSample>& samples) {
  using util::double_bits;
  using util::fnv1a_mix;
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const DistanceSample& s : samples) {
    h = fnv1a_mix(h, s.interconnections);
    h = fnv1a_mix(h, s.flow_count);
    h = fnv1a_mix(h, s.flows_moved);
    h = fnv1a_mix(h, double_bits(s.default_km));
    h = fnv1a_mix(h, double_bits(s.optimal_km));
    h = fnv1a_mix(h, double_bits(s.negotiated_km));
    h = fnv1a_mix(h, double_bits(s.pareto_km));
    h = fnv1a_mix(h, double_bits(s.bothbetter_km));
    for (int side = 0; side < 2; ++side) {
      h = fnv1a_mix(h, double_bits(s.default_side_km[side]));
      h = fnv1a_mix(h, double_bits(s.optimal_side_km[side]));
      h = fnv1a_mix(h, double_bits(s.negotiated_side_km[side]));
    }
    for (double g : s.flow_gain_pct_negotiated) h = fnv1a_mix(h, double_bits(g));
  }
  return h;
}

std::uint64_t digest_samples(const std::vector<BandwidthSample>& samples) {
  using util::double_bits;
  using util::fnv1a_mix;
  // Deliberately excludes the eval_* telemetry: those count how the work
  // was done, not what the answer was, so the digest stays equal across
  // --incremental on/off (the A/B contract CI checks).
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const BandwidthSample& s : samples) {
    h = fnv1a_mix(h, s.failed_ix);
    h = fnv1a_mix(h, s.affected_flows);
    h = fnv1a_mix(h, s.flows_moved);
    h = fnv1a_mix(h, double_bits(s.affected_volume_fraction));
    for (int side = 0; side < 2; ++side) {
      h = fnv1a_mix(h, double_bits(s.mel_default[side]));
      h = fnv1a_mix(h, double_bits(s.mel_negotiated[side]));
      h = fnv1a_mix(h, double_bits(s.mel_optimal[side]));
      h = fnv1a_mix(h, double_bits(s.mel_unilateral[side]));
    }
    h = fnv1a_mix(h, double_bits(s.downstream_distance_gain_pct));
  }
  return h;
}

namespace {

using Clock = obs::WallClock;

// nexit-lint: allow(taint-flow): wall-clock phase timings are run-dependent by design; run_fig6/run_fig7 report them via the digest-excluded wall_ms metric section
double ms_since(Clock::TimePoint t0) { return Clock::ms_since(t0); }

/// A run that produced nothing must not print NaN percentages, emit an
/// all-zero "everything is fine" digest, and exit 0 — scripts consuming the
/// digest or the JSON record would read a no-op as success.
int no_samples() {
  std::cerr << "error: the universe yielded no usable samples — grow "
               "--isps/--pairs (or loosen the failure model)\n";
  return 1;
}

/// Oracle-evaluation work summed over an experiment's samples (the same
/// four counters live on both sample types).
struct EvalTotals {
  std::size_t calls_full = 0;
  std::size_t calls_incremental = 0;
  std::size_t rows = 0;
  std::size_t rows_full_equivalent = 0;
};

template <typename Sample>
EvalTotals sum_eval_telemetry(const std::vector<Sample>& samples) {
  EvalTotals t;
  for (const Sample& s : samples) {
    t.calls_full += s.eval_calls_full;
    t.calls_incremental += s.eval_calls_incremental;
    t.rows += s.eval_rows_computed;
    t.rows_full_equivalent += s.eval_rows_full_equivalent;
  }
  return t;
}

void record_eval_telemetry(ScenarioContext& ctx, const EvalTotals& t) {
  ctx.record.metric("eval_calls_full",
                    static_cast<std::int64_t>(t.calls_full));
  ctx.record.metric("eval_calls_incremental",
                    static_cast<std::int64_t>(t.calls_incremental));
  ctx.record.metric("eval_rows_computed", static_cast<std::int64_t>(t.rows));
  ctx.record.metric("eval_rows_full_equivalent",
                    static_cast<std::int64_t>(t.rows_full_equivalent));
}

// ------------------------------------------------------------------------
// fig4: distance gain of optimal vs negotiated routing
// ------------------------------------------------------------------------

int run_fig4(ScenarioContext& ctx) {
  const DistanceExperimentConfig cfg = ctx.spec.to_distance_config();
  print_bench_header("Figure 4",
                     "distance gain of optimal vs negotiated routing",
                     ctx.spec.universe_summary());
  const auto samples = run_distance_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);
  std::cout << "samples: " << samples.size() << " ISP pairs\n";

  util::Cdf total_opt, total_neg, indiv_opt, indiv_neg;
  std::size_t opt_losers = 0, neg_losers = 0, isps = 0;
  for (const auto& s : samples) {
    total_opt.add(s.total_gain_pct(s.optimal_km));
    total_neg.add(s.total_gain_pct(s.negotiated_km));
    for (int side = 0; side < 2; ++side) {
      const double og = s.side_gain_pct(s.optimal_side_km, side);
      const double ng = s.side_gain_pct(s.negotiated_side_km, side);
      indiv_opt.add(og);
      indiv_neg.add(ng);
      ++isps;
      if (og < -0.5) ++opt_losers;
      if (ng < -0.5) ++neg_losers;
    }
  }

  print_cdf_figure("Fig 4a", "total gain across both ISPs",
                   "% reduction in total flow km vs default routing",
                   {"negotiated", "optimal"}, {&total_neg, &total_opt});
  print_cdf_figure("Fig 4b", "individual ISP gain",
                   "% reduction in own-network flow km vs default",
                   {"negotiated", "optimal"}, {&indiv_neg, &indiv_opt});

  const double med_opt = total_opt.value_at(0.5);
  const double med_neg = total_neg.value_at(0.5);
  std::cout << "\n";
  paper_check(
      "negotiated total gain is close to globally optimal (within ~1/3)",
      "median optimal " + std::to_string(med_opt) + "%, negotiated " +
          std::to_string(med_neg) + "%",
      med_neg >= med_opt * 0.5);
  paper_check("median total gain is modest (paper ~4%; price of anarchy low)",
              "median total optimal gain " + std::to_string(med_opt) + "%",
              med_opt < 25.0);
  paper_check(
      "a sizable fraction of ISPs lose under GLOBAL optimisation (paper ~1/3)",
      std::to_string(opt_losers) + "/" + std::to_string(isps) +
          " ISPs lose >0.5% of own distance",
      opt_losers > isps / 20);
  paper_check("no ISP loses under NEGOTIATION",
              std::to_string(neg_losers) + "/" + std::to_string(isps) +
                  " ISPs lose >0.5%",
              neg_losers == 0);

  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric_cdf("total_gain_pct.negotiated", total_neg);
  ctx.record.metric_cdf("total_gain_pct.optimal", total_opt);
  ctx.record.metric_cdf("individual_gain_pct.negotiated", indiv_neg);
  ctx.record.metric_cdf("individual_gain_pct.optimal", indiv_opt);
  ctx.record.metric("isps_losing.optimal", static_cast<std::int64_t>(opt_losers));
  ctx.record.metric("isps_losing.negotiated",
                    static_cast<std::int64_t>(neg_losers));
  return 0;
}

// ------------------------------------------------------------------------
// fig5: flow-pair strawman strategies
// ------------------------------------------------------------------------

int run_fig5(ScenarioContext& ctx) {
  const DistanceExperimentConfig cfg = ctx.spec.to_distance_config();
  print_bench_header(
      "Figure 5", "flow-pair strategies that merely discard bad alternatives",
      ctx.spec.universe_summary());
  const auto samples = run_distance_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);
  std::cout << "samples: " << samples.size() << " ISP pairs\n";

  util::Cdf pareto, both_better, negotiated, optimal;
  for (const auto& s : samples) {
    pareto.add(s.total_gain_pct(s.pareto_km));
    both_better.add(s.total_gain_pct(s.bothbetter_km));
    negotiated.add(s.total_gain_pct(s.negotiated_km));
    optimal.add(s.total_gain_pct(s.optimal_km));
  }

  print_cdf_figure("Fig 5", "total gain of the flow-pair strategies",
                   "% reduction in total flow km vs default routing",
                   {"flow-both-better", "flow-Pareto", "negotiated", "optimal"},
                   {&both_better, &pareto, &negotiated, &optimal});

  const double med_pareto = pareto.value_at(0.5);
  const double med_both = both_better.value_at(0.5);
  const double med_neg = negotiated.value_at(0.5);
  std::cout << "\n";
  paper_check(
      "flow-pair strategies capture little of the negotiated gain",
      "medians: flow-Pareto " + std::to_string(med_pareto) +
          "%, flow-both-better " + std::to_string(med_both) + "%, negotiated " +
          std::to_string(med_neg) + "%",
      med_pareto < med_neg * 0.5 + 0.5 && med_both < med_neg * 0.75 + 0.5);

  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric_cdf("total_gain_pct.pareto", pareto);
  ctx.record.metric_cdf("total_gain_pct.both_better", both_better);
  ctx.record.metric_cdf("total_gain_pct.negotiated", negotiated);
  ctx.record.metric_cdf("total_gain_pct.optimal", optimal);
  return 0;
}

// ------------------------------------------------------------------------
// fig6: flow-level view
// ------------------------------------------------------------------------

int run_fig6(ScenarioContext& ctx) {
  const DistanceExperimentConfig cfg = ctx.spec.to_distance_config();
  print_bench_header("Figure 6",
                     "flow-level gains of optimal and negotiated routing",
                     ctx.spec.universe_summary());
  const auto t0 = Clock::now();
  const auto samples = run_distance_experiment(cfg);
  const double wall_ms = ms_since(t0);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);

  util::Cdf flow_opt, flow_neg;
  std::size_t flows = 0, moved = 0;
  double neg20 = 0, neg50 = 0, opt20 = 0;
  for (const auto& s : samples) {
    for (double g : s.flow_gain_pct_optimal) {
      flow_opt.add(g);
      if (g > 20.0) ++opt20;
    }
    for (double g : s.flow_gain_pct_negotiated) {
      flow_neg.add(g);
      if (g > 20.0) ++neg20;
      if (g > 50.0) ++neg50;
    }
    flows += s.flow_count;
    moved += s.flows_moved;
  }
  std::cout << "samples: " << samples.size() << " ISP pairs, " << flows
            << " flows\n";

  print_cdf_figure("Fig 6", "per-flow gain",
                   "% reduction of the flow's end-to-end km vs default",
                   {"negotiated", "optimal"}, {&flow_neg, &flow_opt});

  std::cout << "\n";
  paper_check(
      "a heavy tail of flows gains substantially (paper: 7% >20%, 1% >50%)",
      std::to_string(100.0 * neg20 / flows) + "% of flows gain >20%, " +
          std::to_string(100.0 * neg50 / flows) + "% gain >50% (negotiated)",
      neg20 > 0 && neg50 > 0 && neg20 >= neg50);
  paper_check(
      "negotiation catches almost all flows that optimal improves >20%",
      std::to_string(neg20) + " vs " + std::to_string(opt20) +
          " flows improved >20% (negotiated vs optimal)",
      neg20 >= 0.6 * opt20);
  paper_check(
      "only a minority of flows needs non-default routing (paper ~20%)",
      std::to_string(100.0 * moved / flows) + "% of flows moved off default",
      moved < flows / 2);

  const EvalTotals totals = sum_eval_telemetry(samples);
  std::printf(
      "\nwall-clock %.1f ms; evaluate calls %zu full + %zu incremental; "
      "preference rows %zu of %zu full-equivalent\n",
      wall_ms, totals.calls_full, totals.calls_incremental, totals.rows,
      totals.rows_full_equivalent);

  ctx.record.metric("wall_ms", wall_ms);
  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric("flows", static_cast<std::int64_t>(flows));
  ctx.record.metric("flows_moved", static_cast<std::int64_t>(moved));
  record_eval_telemetry(ctx, totals);
  ctx.record.metric_cdf("flow_gain_pct.negotiated", flow_neg);
  ctx.record.metric_cdf("flow_gain_pct.optimal", flow_opt);
  return 0;
}

// ------------------------------------------------------------------------
// fig7: MEL after failures (bandwidth oracles)
// ------------------------------------------------------------------------

int run_fig7(ScenarioContext& ctx) {
  const BandwidthExperimentConfig cfg = ctx.spec.to_bandwidth_config();
  print_bench_header("Figure 7",
                     "MEL after failures: default and negotiated vs optimal",
                     ctx.spec.universe_summary());
  const auto t0 = Clock::now();
  const auto samples = run_bandwidth_experiment(cfg);
  const double wall_ms = ms_since(t0);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf def_up, neg_up, def_down, neg_down;
  std::size_t def_up_gt2 = 0, def_up_gt5 = 0, neg_up_near1 = 0;
  for (const auto& s : samples) {
    const double du = s.ratio(s.mel_default, 0);
    const double nu = s.ratio(s.mel_negotiated, 0);
    def_up.add(du);
    neg_up.add(nu);
    def_down.add(s.ratio(s.mel_default, 1));
    neg_down.add(s.ratio(s.mel_negotiated, 1));
    if (du > 2.0) ++def_up_gt2;
    if (du > 5.0) ++def_up_gt5;
    if (nu < 1.25) ++neg_up_near1;
  }

  print_cdf_figure("Fig 7 (left)", "upstream ISP",
                   "MEL relative to MEL of optimal routing",
                   {"negotiated", "default"}, {&neg_up, &def_up});
  print_cdf_figure("Fig 7 (right)", "downstream ISP",
                   "MEL relative to MEL of optimal routing",
                   {"negotiated", "default"}, {&neg_down, &def_down});

  const std::size_t n = samples.size();
  std::cout << "\n";
  paper_check(
      "default routing often overloads the upstream (paper: ratio >2 for half)",
      std::to_string(100.0 * def_up_gt2 / n) + "% of samples >2x optimal, " +
          std::to_string(100.0 * def_up_gt5 / n) + "% >5x",
      def_up_gt2 > n / 10);
  paper_check(
      "negotiated routing is close to optimal (most MEL ratios ~1)",
      std::to_string(100.0 * neg_up_near1 / n) +
          "% of upstream samples within 1.25x of optimal; median " +
          std::to_string(neg_up.value_at(0.5)),
      neg_up.value_at(0.5) < 1.3);
  paper_check("negotiated stochastically dominates default (upstream)",
              "median default " + std::to_string(def_up.value_at(0.5)) +
                  " vs negotiated " + std::to_string(neg_up.value_at(0.5)),
              neg_up.value_at(0.5) <= def_up.value_at(0.5) + 1e-9);

  // Evaluate-call work: how much of the naive full-recompute row work the
  // negotiations actually performed (1.0 with --incremental=false).
  const EvalTotals totals = sum_eval_telemetry(samples);
  const double row_fraction =
      totals.rows_full_equivalent > 0
          ? static_cast<double>(totals.rows) /
                static_cast<double>(totals.rows_full_equivalent)
          : 1.0;
  std::printf(
      "\nwall-clock %.1f ms; evaluate calls %zu full + %zu incremental; "
      "preference rows %zu of %zu full-equivalent (%.1f%%)\n",
      wall_ms, totals.calls_full, totals.calls_incremental, totals.rows,
      totals.rows_full_equivalent, 100.0 * row_fraction);

  ctx.record.metric("wall_ms", wall_ms);
  record_eval_telemetry(ctx, totals);
  ctx.record.metric("eval_row_fraction", row_fraction);
  ctx.record.metric("samples", static_cast<std::int64_t>(n));
  ctx.record.metric_cdf("mel_ratio.upstream.default", def_up);
  ctx.record.metric_cdf("mel_ratio.upstream.negotiated", neg_up);
  ctx.record.metric_cdf("mel_ratio.downstream.default", def_down);
  ctx.record.metric_cdf("mel_ratio.downstream.negotiated", neg_down);
  return 0;
}

// ------------------------------------------------------------------------
// fig8: unilateral upstream optimisation
// ------------------------------------------------------------------------

int run_fig8(ScenarioContext& ctx) {
  const BandwidthExperimentConfig cfg = ctx.spec.to_bandwidth_config();
  print_bench_header("Figure 8",
                     "unilateral upstream optimisation, impact on the downstream",
                     ctx.spec.universe_summary());
  const auto samples = run_bandwidth_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf down_ratio;  // unilateral vs default, downstream links
  std::size_t helped = 0, hurt = 0, hurt2x = 0;
  for (const auto& s : samples) {
    if (s.mel_default[1] <= 0.0 || s.mel_unilateral[1] <= 0.0) continue;
    const double r = s.mel_unilateral[1] / s.mel_default[1];
    down_ratio.add(r);
    if (r < 0.99) ++helped;
    if (r > 1.01) ++hurt;
    if (r > 2.0) ++hurt2x;
  }

  print_cdf_figure(
      "Fig 8", "downstream impact of upstream-centric optimisation",
      "downstream MEL, upstream-optimized / default (>1 means harmed)",
      {"upstream-optimized/default"}, {&down_ratio});

  const std::size_t n = down_ratio.sorted_samples().size();
  if (n == 0) return no_samples();
  std::cout << "\n";
  paper_check(
      "the downstream outcome is unpredictable: both helped and hurt occur",
      std::to_string(100.0 * helped / n) + "% helped, " +
          std::to_string(100.0 * hurt / n) + "% hurt, " +
          std::to_string(100.0 * hurt2x / n) + "% hurt >2x",
      helped > 0 && hurt > 0);
  paper_check("a noticeable share of samples is harmed badly (paper ~10% >2x)",
              std::to_string(100.0 * hurt2x / n) + "% over 2x default MEL",
              hurt2x > 0);

  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric_cdf("downstream_unilateral_ratio", down_ratio);
  return 0;
}

// ------------------------------------------------------------------------
// fig9: diverse criteria (upstream bandwidth, downstream distance)
// ------------------------------------------------------------------------

int run_fig9(ScenarioContext& ctx) {
  const BandwidthExperimentConfig cfg = ctx.spec.to_bandwidth_config();
  print_bench_header("Figure 9",
                     "diverse criteria: upstream=bandwidth, downstream=distance",
                     ctx.spec.universe_summary());
  const auto samples = run_bandwidth_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf up_def, up_neg, down_gain;
  for (const auto& s : samples) {
    up_def.add(s.ratio(s.mel_default, 0));
    up_neg.add(s.ratio(s.mel_negotiated, 0));
    down_gain.add(s.downstream_distance_gain_pct);
  }

  print_cdf_figure("Fig 9 (left)", "upstream ISP controls overload",
                   "MEL relative to MEL of optimal routing",
                   {"negotiated", "default"}, {&up_neg, &up_def});
  print_cdf_figure("Fig 9 (right)", "downstream ISP reduces distance",
                   "% reduction of affected flows' km inside downstream "
                   "vs default",
                   {"negotiated"}, {&down_gain});

  std::cout << "\n";
  paper_check(
      "upstream effectively controls overload despite diverse criteria",
      "median upstream MEL ratio: negotiated " +
          std::to_string(up_neg.value_at(0.5)) + " vs default " +
          std::to_string(up_def.value_at(0.5)),
      up_neg.value_at(0.5) <= up_def.value_at(0.5) + 1e-9);
  paper_check(
      "downstream significantly reduces its distance",
      "median downstream distance gain " +
          std::to_string(down_gain.value_at(0.5)) + "%, p90 " +
          std::to_string(down_gain.value_at(0.9)) + "%",
      down_gain.value_at(0.9) > 5.0 && down_gain.min() > -1.0);

  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric_cdf("mel_ratio.upstream.default", up_def);
  ctx.record.metric_cdf("mel_ratio.upstream.negotiated", up_neg);
  ctx.record.metric_cdf("downstream_distance_gain_pct", down_gain);
  return 0;
}

// ------------------------------------------------------------------------
// fig10: cheating, distance experiment
// ------------------------------------------------------------------------

/// fig10/fig11 own the cheat axis (they compare both-truthful against
/// one-cheater), so an explicit cheat: objective cannot mean anything —
/// silently stripping or honouring it would mislabel one arm. The preset
/// never sets cheat, so any cheat=true here came from the user.
bool reject_explicit_cheat(const ScenarioContext& ctx, const char* name) {
  if (!ctx.spec.objective[0].cheat && !ctx.spec.objective[1].cheat)
    return false;
  std::cerr << "error: scenario '" << name
            << "' controls the cheat: axis itself (it runs both-truthful "
               "and one-cheater arms); give the base oracle only\n";
  return true;
}

int run_fig10(ScenarioContext& ctx) {
  if (reject_explicit_cheat(ctx, "fig10")) return 2;
  const DistanceExperimentConfig honest = ctx.spec.to_distance_config();
  DistanceExperimentConfig cheating = honest;
  cheating.objective[0].cheat = true;

  print_bench_header("Figure 10", "impact of cheating, distance experiment",
                     ctx.spec.universe_summary());
  const auto hs = run_distance_experiment(honest);
  const auto cs = run_distance_experiment(cheating);
  if (hs.empty()) return no_samples();
  ctx.mix(hs);
  ctx.mix(cs);
  std::cout << "samples: " << hs.size() << " ISP pairs (x2 runs)\n";

  util::Cdf total_honest, total_cheat, indiv_honest, cheater_gain, truthful_gain;
  std::vector<double> cheater_pcts, cheater_honest_pcts;
  std::size_t truthful_losses = 0;
  // Today both runs yield one sample per pair so the sizes always match;
  // the min() keeps this loop safe (like fig11's) if the distance engine
  // ever filters samples per run.
  const std::size_t n10 = std::min(hs.size(), cs.size());
  for (std::size_t i = 0; i < n10; ++i) {
    total_honest.add(hs[i].total_gain_pct(hs[i].negotiated_km));
    total_cheat.add(cs[i].total_gain_pct(cs[i].negotiated_km));
    for (int side = 0; side < 2; ++side)
      indiv_honest.add(hs[i].side_gain_pct(hs[i].negotiated_side_km, side));
    cheater_gain.add(cs[i].side_gain_pct(cs[i].negotiated_side_km, 0));
    truthful_gain.add(cs[i].side_gain_pct(cs[i].negotiated_side_km, 1));
    cheater_pcts.push_back(cs[i].side_gain_pct(cs[i].negotiated_side_km, 0));
    cheater_honest_pcts.push_back(
        hs[i].side_gain_pct(hs[i].negotiated_side_km, 0));
    if (cs[i].side_gain_pct(cs[i].negotiated_side_km, 1) < -0.5)
      ++truthful_losses;
  }
  const double mean_cheater = util::mean(cheater_pcts);
  const double mean_cheater_honest = util::mean(cheater_honest_pcts);

  print_cdf_figure("Fig 10a", "total gain across both ISPs",
                   "% reduction in total flow km vs default",
                   {"both-truthful", "one-cheater"},
                   {&total_honest, &total_cheat});
  print_cdf_figure("Fig 10b", "individual gains",
                   "% reduction in own-network km vs default",
                   {"both-truthful", "cheater", "truthful"},
                   {&indiv_honest, &cheater_gain, &truthful_gain});

  std::cout << "\n";
  paper_check("cheating reduces the total gain",
              "median total: honest " +
                  std::to_string(total_honest.value_at(0.5)) +
                  "% vs one-cheater " +
                  std::to_string(total_cheat.value_at(0.5)) + "%",
              total_cheat.value_at(0.5) <= total_honest.value_at(0.5) + 1e-9);
  paper_check(
      "cheating is self-defeating: the cheater gains LESS than when truthful",
      "cheater mean gain " + std::to_string(mean_cheater) +
          "% vs its gain when honest " + std::to_string(mean_cheater_honest) +
          "%",
      mean_cheater <= mean_cheater_honest + 1e-9);
  paper_check("the truthful ISP never ends below its default",
              std::to_string(truthful_losses) + " losses >0.5%",
              truthful_losses == 0);

  ctx.record.metric("samples", static_cast<std::int64_t>(hs.size()));
  ctx.record.metric_cdf("total_gain_pct.honest", total_honest);
  ctx.record.metric_cdf("total_gain_pct.cheating", total_cheat);
  ctx.record.metric_cdf("cheater_gain_pct", cheater_gain);
  ctx.record.metric_cdf("truthful_gain_pct", truthful_gain);
  return 0;
}

// ------------------------------------------------------------------------
// fig11: cheating, bandwidth experiment
// ------------------------------------------------------------------------

int run_fig11(ScenarioContext& ctx) {
  if (reject_explicit_cheat(ctx, "fig11")) return 2;
  const BandwidthExperimentConfig honest = ctx.spec.to_bandwidth_config();
  BandwidthExperimentConfig cheating = honest;
  cheating.objective[0].cheat = true;

  print_bench_header("Figure 11", "impact of cheating, bandwidth experiment",
                     ctx.spec.universe_summary());
  const auto hs = run_bandwidth_experiment(honest);
  const auto cs = run_bandwidth_experiment(cheating);
  if (hs.empty()) return no_samples();
  ctx.mix(hs);
  ctx.mix(cs);
  std::cout << "samples: " << hs.size() << " failed interconnections (x2 runs)\n";

  util::Cdf up_honest, up_cheat, up_default, down_honest, down_cheat,
      down_default;
  const std::size_t n = std::min(hs.size(), cs.size());
  for (std::size_t i = 0; i < n; ++i) {
    up_honest.add(hs[i].ratio(hs[i].mel_negotiated, 0));
    up_cheat.add(cs[i].ratio(cs[i].mel_negotiated, 0));
    up_default.add(hs[i].ratio(hs[i].mel_default, 0));
    down_honest.add(hs[i].ratio(hs[i].mel_negotiated, 1));
    down_cheat.add(cs[i].ratio(cs[i].mel_negotiated, 1));
    down_default.add(hs[i].ratio(hs[i].mel_default, 1));
  }

  print_cdf_figure("Fig 11 (left)", "upstream ISP (the cheater)",
                   "MEL relative to MEL of optimal routing",
                   {"both-truthful", "one-cheater", "default"},
                   {&up_honest, &up_cheat, &up_default});
  print_cdf_figure("Fig 11 (right)", "downstream ISP (truthful)",
                   "MEL relative to MEL of optimal routing",
                   {"both-truthful", "one-cheater", "default"},
                   {&down_honest, &down_cheat, &down_default});

  std::cout << "\n";
  paper_check(
      "cheating does not help the cheating upstream (median MEL ratio)",
      "truthful " + std::to_string(up_honest.value_at(0.5)) + " vs cheating " +
          std::to_string(up_cheat.value_at(0.5)),
      up_cheat.value_at(0.5) >= up_honest.value_at(0.5) - 0.05);
  paper_check(
      "negotiation with a cheater is still no worse than default (median)",
      "cheater-run downstream " + std::to_string(down_cheat.value_at(0.5)) +
          " vs default " + std::to_string(down_default.value_at(0.5)),
      down_cheat.value_at(0.5) <= down_default.value_at(0.5) + 0.05);

  ctx.record.metric("samples", static_cast<std::int64_t>(n));
  ctx.record.metric_cdf("mel_ratio.upstream.honest", up_honest);
  ctx.record.metric_cdf("mel_ratio.upstream.cheating", up_cheat);
  ctx.record.metric_cdf("mel_ratio.downstream.honest", down_honest);
  ctx.record.metric_cdf("mel_ratio.downstream.cheating", down_cheat);
  return 0;
}

// ------------------------------------------------------------------------
// table3: the worked Fig. 2/3 example
// ------------------------------------------------------------------------

/// Minimal scripted oracle mirroring the paper's preference lists.
class TableOracle : public core::PreferenceOracle {
 public:
  TableOracle(std::vector<core::PreferenceList> phases, bool reassign)
      : phases_(std::move(phases)), reassign_(reassign) {}

  core::Evaluation evaluate(const core::OracleContext&) override {
    const std::size_t i = std::min(calls_++, phases_.size() - 1);
    core::Evaluation e;
    e.classes = phases_[i];
    for (const auto& fp : e.classes.flows)
      e.true_value.emplace_back(fp.pref_of_candidate.begin(),
                                fp.pref_of_candidate.end());
    return e;
  }
  [[nodiscard]] bool wants_reassignment() const override { return reassign_; }

 private:
  std::vector<core::PreferenceList> phases_;
  bool reassign_ = false;
  std::size_t calls_ = 0;
};

core::PreferenceList table_rows(const std::vector<std::vector<int>>& r) {
  core::PreferenceList l;
  for (std::size_t i = 0; i < r.size(); ++i)
    l.flows.push_back({traffic::FlowId{static_cast<std::int32_t>(i)}, r[i]});
  return l;
}

int run_table3(ScenarioContext& ctx) {
  const std::uint64_t seed_flag = ctx.spec.seed;
  print_bench_header("Figure 3 (table)",
                     "worked preference-list example of Fig. 2",
                     "two flows (f2, f3), candidates {top, bottom}, P=1");

  std::cout <<
      "\nInitial preference lists ((A,B) tuples; defaults = bottom):\n"
      "          f2top   f2bot   f3top   f3bot\n"
      "  (A,B)  (-1,0)   (0,0)   (0,0)   (0,0)\n"
      "\nReassignment after f2 settles on bottom:\n"
      "          f3top   f3bot\n"
      "  (A,B)   (0,1)   (0,0)\n";

  // Engine setup identical to tests/core_engine_test.cpp WorkedExample.
  topology::IspPair pair = [] {
    auto mk = [](std::int32_t asn) {
      std::vector<topology::Pop> pops;
      graph::Graph g(2);
      for (int i = 0; i < 2; ++i)
        pops.push_back(topology::Pop{topology::PopId{i},
                                     static_cast<std::size_t>(i),
                                     "c" + std::to_string(i),
                                     geo::Coord{0.0, static_cast<double>(i)},
                                     1.0});
      g.add_edge(0, 1, 1.0, 100.0);
      return topology::IspTopology{topology::AsNumber{asn}, "AS",
                                   std::move(pops), std::move(g)};
    };
    return *topology::make_pair_if_peers(mk(1), mk(2), 2);
  }();
  routing::PairRouting routing(pair);
  std::vector<traffic::Flow> flows{
      {traffic::FlowId{0}, traffic::Direction::kAtoB, topology::PopId{0},
       topology::PopId{0}, 1.0},
      {traffic::FlowId{1}, traffic::Direction::kAtoB, topology::PopId{1},
       topology::PopId{1}, 1.0}};
  core::NegotiationProblem problem;
  problem.routing = &routing;
  problem.flows = &flows;
  problem.negotiable = {0, 1};
  problem.candidates = {0, 1};  // 0 = "top", 1 = "bottom"
  problem.default_assignment.ix_of_flow = {1, 1};

  int reached_paper_outcome = 0;
  const int runs = 100;
  std::uint64_t shown_seed = seed_flag;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    TableOracle a({table_rows({{-1, 0}, {0, 0}})}, false);
    TableOracle b({table_rows({{0, 0}, {0, 0}}),
                   table_rows({{0, 0}, {1, 0}})}, true);
    core::NegotiationConfig cfg;
    cfg.seed = seed;
    cfg.reassign_traffic_fraction = 0.5;
    cfg.record_trace = true;
    core::NegotiationEngine engine(problem, a, b, cfg);
    auto out = engine.run();
    const bool paper_outcome = out.assignment.ix_of_flow[1] == 0;  // f3 on top
    if (paper_outcome && shown_seed == 0) shown_seed = seed;
    reached_paper_outcome += paper_outcome ? 1 : 0;
  }

  // Re-run the chosen seed with a printed trace.
  TableOracle a({table_rows({{-1, 0}, {0, 0}})}, false);
  TableOracle b({table_rows({{0, 0}, {0, 0}}),
                 table_rows({{0, 0}, {1, 0}})}, true);
  core::NegotiationConfig cfg;
  cfg.seed = shown_seed == 0 ? 1 : shown_seed;
  cfg.reassign_traffic_fraction = 0.5;
  cfg.record_trace = true;
  core::NegotiationEngine engine(problem, a, b, cfg);
  auto out = engine.run();

  std::cout << "\nNegotiation trace (seed " << cfg.seed << "):\n";
  const char* names[] = {"f2", "f3"};
  const char* sides[] = {"ISP-A", "ISP-B"};
  const char* links[] = {"top", "bottom"};
  for (const auto& tr : out.trace) {
    std::cout << "  round " << tr.round << ": " << sides[tr.proposer]
              << " proposes " << names[tr.flow.value()] << " -> "
              << links[tr.interconnection] << "  (A " << tr.pref_a << ", B "
              << tr.pref_b << ") " << (tr.accepted ? "accepted" : "rejected")
              << (tr.reassigned_after ? ", preferences reassigned" : "")
              << "\n";
  }
  std::cout << "final: f2 -> " << links[out.assignment.ix_of_flow[0]]
            << ", f3 -> " << links[out.assignment.ix_of_flow[1]]
            << "; gains A " << out.true_gain_a << ", B " << out.true_gain_b
            << "; stop: " << core::to_string(out.stop_reason) << "\n\n";

  paper_check(
      "the mutually acceptable Fig. 2e outcome (f2 bottom, f3 top) is reached "
      "for most tie-break realisations",
      std::to_string(reached_paper_outcome) + "/" + std::to_string(runs) +
          " random-seed runs reach it (the paper notes the suboptimal "
          "realisation exists too)",
      reached_paper_outcome > runs / 3);

  ctx.mix(static_cast<std::uint64_t>(reached_paper_outcome));
  ctx.mix(cfg.seed);
  for (std::size_t ix : out.assignment.ix_of_flow) ctx.mix(ix);
  ctx.mix_double(out.true_gain_a);
  ctx.mix_double(out.true_gain_b);
  ctx.record.metric("paper_outcome_runs",
                    static_cast<std::int64_t>(reached_paper_outcome));
  ctx.record.metric("shown_seed", static_cast<std::int64_t>(cfg.seed));
  return 0;
}

// ------------------------------------------------------------------------
// abl_destination_based: footnote-2 destination-based routing
// ------------------------------------------------------------------------

/// Everything one pair contributes to the aggregates, filled by a worker
/// into its own index-addressed slot (same scheme as the experiment
/// engines: bit-identical results for any thread count).
struct DestinationPairResult {
  double sd_gain = 0.0;
  double db_gain = 0.0;
  double db_side_gain[2] = {0.0, 0.0};
};

int run_abl_destination_based(ScenarioContext& ctx) {
  const UniverseConfig ucfg = ctx.spec.universe();
  const DistanceExperimentConfig base = ctx.spec.to_distance_config();
  const core::NegotiationConfig ncfg_base = base.negotiation;
  print_bench_header("Ablation: destination-based routing (footnote 2)",
                     "source-destination vs destination-based negotiation",
                     ctx.spec.universe_summary());

  const auto pairs = build_pair_universe(ucfg, 2);
  if (pairs.empty()) return no_samples();

  // Pre-fork per-pair streams (traffic, then one seed source for both
  // modes) so the sweep shards across workers deterministically; see
  // util::fork_streams.
  util::Rng rng(ucfg.seed ^ 0xdddd);
  std::vector<std::vector<util::Rng>> streams =
      util::fork_streams(rng, pairs.size(), 2);

  std::vector<DestinationPairResult> results(pairs.size());
  const auto run_pair = [&](std::size_t pair_index) {
    const auto& pair = pairs[pair_index];
    routing::PairRouting routing(pair);
    traffic::TrafficConfig tcfg;
    tcfg.model = traffic::WorkloadModel::kIdentical;
    util::Rng trng = streams[pair_index][0];  // traffic stream
    auto tm = traffic::TrafficMatrix::build_bidirectional(pair, tcfg, trng);
    std::vector<std::size_t> cands(pair.interconnection_count());
    for (std::size_t i = 0; i < cands.size(); ++i) cands[i] = i;

    DestinationPairResult& res = results[pair_index];
    auto run_mode = [&](const core::NegotiationProblem& problem,
                        double& total_out, double* side_out) {
      const core::OracleRegistry& registry = core::OracleRegistry::global();
      const core::BuiltOracle a =
          registry.build(base.objective[0], {0, ncfg_base.preferences, nullptr});
      const core::BuiltOracle b =
          registry.build(base.objective[1], {1, ncfg_base.preferences, nullptr});
      core::NegotiationConfig ncfg = ncfg_base;
      ncfg.seed = streams[pair_index][1].next_u64();  // engine-seed stream
      core::NegotiationEngine engine(problem, a.get(), b.get(), ncfg);
      auto out = engine.run();
      const double def = metrics::total_flow_km(routing, tm.flows(),
                                                problem.default_assignment);
      const double neg =
          metrics::total_flow_km(routing, tm.flows(), out.assignment);
      total_out = def > 0 ? (def - neg) / def * 100.0 : 0.0;
      if (side_out != nullptr) {
        for (int side = 0; side < 2; ++side) {
          const double dside = metrics::side_flow_km(
              routing, tm.flows(), problem.default_assignment, side);
          const double nside =
              metrics::side_flow_km(routing, tm.flows(), out.assignment, side);
          side_out[side] = dside > 0 ? (dside - nside) / dside * 100.0 : 0.0;
        }
      }
    };

    run_mode(core::make_distance_problem(routing, tm.flows(), cands),
             res.sd_gain, nullptr);
    run_mode(core::make_destination_problem(routing, tm.flows(), cands),
             res.db_gain, res.db_side_gain);
  };

  util::ThreadPool pool(util::workers_for_threads(ctx.spec.threads));
  util::parallel_for(pool, pairs.size(), run_pair);

  util::Cdf sd_gain, db_gain, db_indiv;
  std::size_t db_losers = 0, db_isps = 0;
  for (const DestinationPairResult& res : results) {
    sd_gain.add(res.sd_gain);
    db_gain.add(res.db_gain);
    ctx.mix_double(res.sd_gain);
    ctx.mix_double(res.db_gain);
    for (int side = 0; side < 2; ++side) {
      db_indiv.add(res.db_side_gain[side]);
      ctx.mix_double(res.db_side_gain[side]);
      ++db_isps;
      if (res.db_side_gain[side] < -0.5) ++db_losers;
    }
  }

  print_cdf_figure("footnote 2", "total gain vs the mode's own default",
                   "% reduction in total flow km",
                   {"source-dest", "destination-based"},
                   {&sd_gain, &db_gain});

  std::cout << "\n";
  paper_check(
      "destination-based negotiation yields results similar to "
      "source-destination (same order of magnitude, same sign)",
      "median gain: source-dest " + std::to_string(sd_gain.value_at(0.5)) +
          "% vs destination-based " + std::to_string(db_gain.value_at(0.5)) +
          "%",
      db_gain.value_at(0.5) > 0.0 &&
          db_gain.value_at(0.5) > 0.25 * sd_gain.value_at(0.5));
  paper_check("no ISP loses under destination-based negotiation either",
              std::to_string(db_losers) + "/" + std::to_string(db_isps) +
                  " ISPs lose >0.5%",
              db_losers == 0);

  ctx.record.metric("pairs", static_cast<std::int64_t>(pairs.size()));
  ctx.record.metric_cdf("gain_pct.source_dest", sd_gain);
  ctx.record.metric_cdf("gain_pct.destination_based", db_gain);
  return 0;
}

// ------------------------------------------------------------------------
// abl_flow_fraction: how many moved flows carry the gain
// ------------------------------------------------------------------------

int run_abl_flow_fraction(ScenarioContext& ctx) {
  const DistanceExperimentConfig cfg = ctx.spec.to_distance_config();
  print_bench_header("Ablation: fraction of flows moved",
                     "how many non-default routes are needed for the gain",
                     ctx.spec.universe_summary());
  const auto samples = run_distance_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);

  // Aggregate per-flow savings of negotiated moves across all pairs.
  std::vector<double> savings;  // km saved by each moved flow
  double total_gain_km = 0.0;
  std::size_t total_flows = 0, moved_flows = 0;
  for (const auto& s : samples) {
    total_flows += s.flow_count;
    moved_flows += s.flows_moved;
    // nexit-lint: allow(float-accumulate): summed in sample order, the
    // canonical order of run_distance_experiment's output
    total_gain_km += s.default_km - s.negotiated_km;
    for (double km : s.flow_saving_km_negotiated)
      if (km > 1e-9) savings.push_back(km);
  }
  std::sort(savings.rbegin(), savings.rend());

  const double frac_moved = 100.0 * static_cast<double>(moved_flows) /
                            static_cast<double>(total_flows);
  std::cout << "samples: " << samples.size() << " pairs, " << total_flows
            << " flows; moved " << moved_flows << " (" << frac_moved << "%)\n";

  const double total_saved = util::sum(savings);
  std::cout << "\n  top-moved-flows%   share-of-total-gain%\n";
  double share_at_20 = 0.0;
  for (double pct : {1.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    const auto k = static_cast<std::size_t>(savings.size() * pct / 100.0);
    double acc = 0.0;
    // nexit-lint: allow(float-accumulate): prefix sum of the descending
    // sort — the top-k share is defined by exactly this order
    for (std::size_t i = 0; i < k && i < savings.size(); ++i) acc += savings[i];
    const double share = total_saved > 0 ? 100.0 * acc / total_saved : 0.0;
    std::printf("  %15.1f   %20.2f\n", pct, share);
    if (pct == 20.0) share_at_20 = share;
  }

  std::cout << "\n";
  paper_check(
      "a minority of flows moved off default suffices (paper ~20%)",
      std::to_string(frac_moved) + "% of all flows were re-routed",
      frac_moved < 50.0);
  paper_check(
      "the top 20% of improved flows carries most of the gain",
      std::to_string(share_at_20) + "% of the gain from the top 20% of flows",
      share_at_20 > 50.0);

  ctx.record.metric("flows", static_cast<std::int64_t>(total_flows));
  ctx.record.metric("flows_moved", static_cast<std::int64_t>(moved_flows));
  ctx.record.metric("total_gain_km", total_gain_km);
  ctx.record.metric("gain_share_top20pct", share_at_20);
  return 0;
}

// ------------------------------------------------------------------------
// abl_group_negotiation: k separate groups vs the whole set
// ------------------------------------------------------------------------

int run_abl_group_negotiation(ScenarioContext& ctx) {
  print_bench_header("Ablation: group negotiation",
                     "negotiating in k separate groups vs the whole set",
                     ctx.spec.universe_summary());

  // The group counts are a declared axis (tune installs the paper's
  // 1,2,4,...,64; --sweep.groups re-declares it), not a hard-coded array.
  double gain_at_1 = 0.0, gain_at_64 = 0.0;
  bool have_1 = false, have_64 = false;
  std::cout << "\n  groups   mean-total-gain%   median-total-gain%\n";
  for (const std::string& value : ctx.axis_values("groups")) {
    const ExperimentSpec point = ctx.spec_with("groups", value);
    const std::size_t k = point.groups;
    const auto samples = run_distance_experiment(point.to_distance_config());
    if (samples.empty()) return no_samples();
    ctx.mix(samples);
    util::Cdf neg;
    std::vector<double> gains;
    for (const auto& s : samples) {
      neg.add(s.total_gain_pct(s.negotiated_km));
      gains.push_back(s.total_gain_pct(s.negotiated_km));
    }
    const double mean = util::mean(gains);
    std::printf("  %6zu   %16.3f   %18.3f\n", k, mean, neg.value_at(0.5));
    if (k == 1) gain_at_1 = mean, have_1 = true;
    if (k == 64) gain_at_64 = mean, have_64 = true;
  }

  if (have_1 && have_64) {
    std::cout << "\n";
    paper_check(
        "negotiating over the entire flow set beats many separate groups",
        "mean gain whole-set " + std::to_string(gain_at_1) + "% vs 64 groups " +
            std::to_string(gain_at_64) + "%",
        gain_at_64 <= gain_at_1 + 1e-9);
    ctx.record.metric("mean_gain_pct.groups_1", gain_at_1);
    ctx.record.metric("mean_gain_pct.groups_64", gain_at_64);
  }
  return 0;
}

// ------------------------------------------------------------------------
// abl_ix_count: gain bucketed by interconnection count
// ------------------------------------------------------------------------

int run_abl_ix_count(ScenarioContext& ctx) {
  const DistanceExperimentConfig cfg = ctx.spec.to_distance_config();
  print_bench_header("Ablation: interconnection count",
                     "negotiated gain bucketed by number of interconnections",
                     ctx.spec.universe_summary());
  const auto samples = run_distance_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);

  std::map<std::size_t, std::vector<double>> buckets;  // capped bucket -> gains
  for (const auto& s : samples) {
    const std::size_t bucket = std::min<std::size_t>(s.interconnections, 6);
    buckets[bucket].push_back(s.total_gain_pct(s.negotiated_km));
  }

  std::cout << "\n  interconnections   pairs   mean-gain%   median-gain%\n";
  double low_bucket = -1.0, high_bucket = -1.0;
  for (const auto& [b, gains] : buckets) {
    const double mean = util::mean(gains);
    std::printf("  %10zu%s   %5zu   %10.3f   %12.3f\n", b, b == 6 ? "+" : " ",
                gains.size(), mean, util::median(gains));
    if (low_bucket < 0) low_bucket = mean;
    high_bucket = mean;
  }

  std::cout << "\n";
  paper_check(
      "pairs with more interconnections gain more from negotiation",
      "mean gain, fewest-ix bucket " + std::to_string(low_bucket) +
          "% vs most-ix bucket " + std::to_string(high_bucket) + "%",
      high_bucket >= low_bucket);

  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric("mean_gain_pct.fewest_ix", low_bucket);
  ctx.record.metric("mean_gain_pct.most_ix", high_bucket);
  return 0;
}

// ------------------------------------------------------------------------
// abl_models: workload / capacity / metric sensitivity of Fig. 7
// ------------------------------------------------------------------------

/// The §5.2 model variants behind the declared `model` axis: each value is
/// one deviation from the paper's gravity + median-capacity baseline. The
/// axis (which variants run, in what order) is spec data; the mapping from
/// variant name to config tweak is figure semantics and stays here.
struct ModelVariant {
  const char* name = nullptr;   // the sweep.model axis value
  const char* label = nullptr;  // the printed table row
  void (*tweak)(BandwidthExperimentConfig&) = nullptr;
};

constexpr ModelVariant kModelVariants[] = {
    {"paper", "gravity + median-capacity (paper)",
     [](BandwidthExperimentConfig&) {}},
    {"identical", "identical PoP weights",
     [](BandwidthExperimentConfig& c) {
       c.traffic.model = traffic::WorkloadModel::kIdentical;
     }},
    {"uniform", "uniform-random PoP weights",
     [](BandwidthExperimentConfig& c) {
       c.traffic.model = traffic::WorkloadModel::kUniformRandom;
     }},
    {"pow2", "power-of-two capacities",
     [](BandwidthExperimentConfig& c) {
       c.capacity.round_up_power_of_two = true;
     }},
    {"unused-max", "unused links get max load",
     [](BandwidthExperimentConfig& c) {
       c.capacity.unused_rule = capacity::UnusedLinkRule::kMax;
     }},
    {"piecewise", "piecewise-linear cost metric",
     [](BandwidthExperimentConfig& c) {
       c.objective[0] = {"piecewise", c.objective[0].cheat};
       c.objective[1] = {"piecewise", c.objective[1].cheat};
     }},
};

int run_abl_models(ScenarioContext& ctx) {
  const BandwidthExperimentConfig base = ctx.spec.to_bandwidth_config();
  print_bench_header("Ablation: alternate models (§5.2)",
                     "workload / capacity / metric sensitivity of Fig. 7",
                     ctx.spec.universe_summary());

  std::cout << "\n  variant                              samples   "
               "default-med   negotiated-med   neg<=def%\n";
  double paper_def = 0.0, paper_neg = 0.0;
  bool all_shapes_hold = true, have_paper = false;
  for (const std::string& value : ctx.axis_values("model")) {
    const ModelVariant* v = nullptr;
    for (const ModelVariant& candidate : kModelVariants)
      if (value == candidate.name) v = &candidate;
    if (v == nullptr) {
      std::cerr << "error: sweep.model: unknown variant \"" << value
                << "\"; valid values:";
      for (const ModelVariant& candidate : kModelVariants)
        std::cerr << " " << candidate.name;
      std::cerr << "\n";
      return 2;
    }
    BandwidthExperimentConfig cfg = base;
    v->tweak(cfg);
    const auto samples = run_bandwidth_experiment(cfg);
    if (samples.empty()) return no_samples();
    ctx.mix(samples);
    util::Cdf def_up, neg_up;
    std::size_t dominated = 0;
    for (const auto& s : samples) {
      def_up.add(s.ratio(s.mel_default, 0));
      neg_up.add(s.ratio(s.mel_negotiated, 0));
      if (s.ratio(s.mel_negotiated, 0) <= s.ratio(s.mel_default, 0) + 1e-9)
        ++dominated;
    }
    const double dm = def_up.value_at(0.5);
    const double nm = neg_up.value_at(0.5);
    const double dom_pct =
        samples.empty() ? 0.0
                        : 100.0 * static_cast<double>(dominated) /
                              static_cast<double>(samples.size());
    std::printf("  %-36s   %6zu   %11.3f   %14.3f   %8.1f\n", v->label,
                samples.size(), dm, nm, dom_pct);
    if (value == "paper") {
      paper_def = dm;
      paper_neg = nm;
      have_paper = true;
    }
    // Qualitative shape: negotiated at or below default at the median.
    all_shapes_hold &= nm <= dm + 1e-9;
  }

  // The paper-model medians only exist when the re-declarable axis kept
  // the "paper" variant; recording 0.0 for a variant that never ran would
  // fabricate data.
  if (have_paper) {
    std::cout << "\n";
    paper_check(
        "results are qualitatively similar across alternate models "
        "(negotiated <= default at the median everywhere)",
        "paper-model medians: default " + std::to_string(paper_def) +
            ", negotiated " + std::to_string(paper_neg),
        all_shapes_hold);
    ctx.record.metric("paper_model.default_median", paper_def);
    ctx.record.metric("paper_model.negotiated_median", paper_neg);
  }
  ctx.record.metric("all_shapes_hold",
                    static_cast<std::int64_t>(all_shapes_hold ? 1 : 0));
  return 0;
}

// ------------------------------------------------------------------------
// abl_policies: turn / termination / proposal policy comparison
// ------------------------------------------------------------------------

/// The §4 protocol variants behind the declared `policy` axis — like the
/// model axis, the names/order are spec data, the name -> policy-tuple
/// mapping is figure semantics.
struct PolicyVariant {
  const char* name = nullptr;   // the sweep.policy axis value
  const char* label = nullptr;  // the printed table row
  core::TurnPolicy turn = core::TurnPolicy::kAlternate;
  core::TerminationPolicy termination = core::TerminationPolicy::kEarly;
  core::ProposalPolicy proposal = core::ProposalPolicy::kMaxCombinedGain;
};

constexpr PolicyVariant kPolicyVariants[] = {
    {"paper", "alternate+early+max-combined (paper)",
     core::TurnPolicy::kAlternate, core::TerminationPolicy::kEarly,
     core::ProposalPolicy::kMaxCombinedGain},
    {"lower-gain", "lower-gain turns (max-min-fair)",
     core::TurnPolicy::kLowerGain, core::TerminationPolicy::kEarly,
     core::ProposalPolicy::kMaxCombinedGain},
    {"coin-toss", "coin-toss turns", core::TurnPolicy::kCoinToss,
     core::TerminationPolicy::kEarly, core::ProposalPolicy::kMaxCombinedGain},
    {"full", "full termination", core::TurnPolicy::kAlternate,
     core::TerminationPolicy::kFull, core::ProposalPolicy::kMaxCombinedGain},
    {"negotiate-all", "negotiate-all (social)", core::TurnPolicy::kAlternate,
     core::TerminationPolicy::kNegotiateAll,
     core::ProposalPolicy::kMaxCombinedGain},
    {"best-local", "best-local-min-impact proposals",
     core::TurnPolicy::kAlternate, core::TerminationPolicy::kEarly,
     core::ProposalPolicy::kBestLocalMinImpact},
};

int run_abl_policies(ScenarioContext& ctx) {
  const DistanceExperimentConfig base = ctx.spec.to_distance_config();
  print_bench_header("Ablation: protocol policies",
                     "turn / termination / proposal policy comparison",
                     ctx.spec.universe_summary());

  double fair_imbalance = -1.0, alt_imbalance = -1.0;
  std::cout << "\n  variant                                   mean-gain%   "
               "median-gain%   mean|gainA-gainB| (km)\n";
  for (const std::string& value : ctx.axis_values("policy")) {
    const PolicyVariant* v = nullptr;
    for (const PolicyVariant& candidate : kPolicyVariants)
      if (value == candidate.name) v = &candidate;
    if (v == nullptr) {
      std::cerr << "error: sweep.policy: unknown variant \"" << value
                << "\"; valid values:";
      for (const PolicyVariant& candidate : kPolicyVariants)
        std::cerr << " " << candidate.name;
      std::cerr << "\n";
      return 2;
    }
    DistanceExperimentConfig cfg = base;
    cfg.negotiation.turn = v->turn;
    cfg.negotiation.termination = v->termination;
    cfg.negotiation.proposal = v->proposal;
    const auto samples = run_distance_experiment(cfg);
    if (samples.empty()) return no_samples();
    ctx.mix(samples);
    util::Cdf gain;
    std::vector<double> gains, gaps;
    for (const auto& s : samples) {
      gain.add(s.total_gain_pct(s.negotiated_km));
      gains.push_back(s.total_gain_pct(s.negotiated_km));
      const double ga = s.default_side_km[0] - s.negotiated_side_km[0];
      const double gb = s.default_side_km[1] - s.negotiated_side_km[1];
      gaps.push_back(std::abs(ga - gb));
    }
    const double mean = util::mean(gains);
    const double imbalance = util::mean(gaps);
    std::printf("  %-40s   %9.3f   %11.3f   %18.1f\n", v->label, mean,
                gain.value_at(0.5), imbalance);
    if (value == "lower-gain") fair_imbalance = imbalance;
    if (value == "paper") alt_imbalance = imbalance;
  }

  if (fair_imbalance >= 0.0 && alt_imbalance >= 0.0) {
    std::cout << "\n";
    paper_check(
        "lower-cumulative-gain turns approximate max-min fairness "
        "(smaller gain imbalance than alternate turns)",
        "mean |gainA-gainB|: lower-gain " + std::to_string(fair_imbalance) +
            " km vs alternate " + std::to_string(alt_imbalance) + " km",
        fair_imbalance <= alt_imbalance * 1.25);
    ctx.record.metric("imbalance_km.lower_gain", fair_imbalance);
    ctx.record.metric("imbalance_km.alternate", alt_imbalance);
  }
  return 0;
}

// ------------------------------------------------------------------------
// abl_pref_range: negotiated gain as a function of P
// ------------------------------------------------------------------------

int run_abl_pref_range(ScenarioContext& ctx) {
  print_bench_header("Ablation: preference range P",
                     "negotiated gain as a function of the class range",
                     ctx.spec.universe_summary());

  // The P values are a declared axis (tune installs the paper's
  // 1,2,3,5,10,20,50; --sweep.pref-range re-declares it).
  double median_at_10 = 0.0, median_at_1 = 0.0, median_at_50 = 0.0;
  bool have_1 = false, have_10 = false, have_50 = false;
  std::cout << "\n   P   median-total-gain%   mean-total-gain%   optimal-median%\n";
  for (const std::string& value : ctx.axis_values("pref-range")) {
    const ExperimentSpec point = ctx.spec_with("pref-range", value);
    const int p = point.pref_range;
    const auto samples = run_distance_experiment(point.to_distance_config());
    if (samples.empty()) return no_samples();
    ctx.mix(samples);
    util::Cdf neg, opt;
    std::vector<double> gains;
    for (const auto& s : samples) {
      neg.add(s.total_gain_pct(s.negotiated_km));
      opt.add(s.total_gain_pct(s.optimal_km));
      gains.push_back(s.total_gain_pct(s.negotiated_km));
    }
    const double mean = util::mean(gains);
    std::printf("  %2d   %18.3f   %16.3f   %15.3f\n", p, neg.value_at(0.5),
                mean, opt.value_at(0.5));
    if (p == 10) median_at_10 = neg.value_at(0.5), have_10 = true;
    if (p == 1) median_at_1 = neg.value_at(0.5), have_1 = true;
    if (p == 50) median_at_50 = neg.value_at(0.5), have_50 = true;
  }

  if (have_10 && (have_1 || have_50)) std::cout << "\n";
  if (have_10 && have_50) {
    paper_check(
        "increasing the range beyond P=10 does not noticeably help",
        "median gain at P=10: " + std::to_string(median_at_10) + "%, at P=50: " +
            std::to_string(median_at_50) + "%",
        median_at_50 - median_at_10 < 1.0);
  }
  if (have_1 && have_10) {
    paper_check("a tiny range (P=1) leaves gain on the table",
                "median gain at P=1: " + std::to_string(median_at_1) +
                    "% vs P=10: " + std::to_string(median_at_10) + "%",
                median_at_1 <= median_at_10 + 1e-9);
  }

  if (have_1) ctx.record.metric("median_gain_pct.p1", median_at_1);
  if (have_10) ctx.record.metric("median_gain_pct.p10", median_at_10);
  if (have_50) ctx.record.metric("median_gain_pct.p50", median_at_50);
  return 0;
}

// ------------------------------------------------------------------------
// custom: generic runner for arbitrary composed specs
// ------------------------------------------------------------------------

int run_runtime(ScenarioContext& ctx);

int run_custom(ScenarioContext& ctx) {
  const ExperimentSpec& spec = ctx.spec;
  if (spec.experiment == ExperimentKind::kRuntime) return run_runtime(ctx);
  const std::string objectives = "A=" + spec.resolved_objective(0).to_string() +
                                 ", B=" + spec.resolved_objective(1).to_string();

  if (spec.experiment == ExperimentKind::kDistance) {
    const DistanceExperimentConfig cfg = spec.to_distance_config();
    print_bench_header("Custom scenario",
                       "distance experiment, " + objectives,
                       spec.universe_summary());
    const auto samples = run_distance_experiment(cfg);
    if (samples.empty()) return no_samples();
    ctx.mix(samples);

    util::Cdf total_neg, total_opt, indiv_neg;
    std::size_t flows = 0, moved = 0;
    for (const auto& s : samples) {
      total_neg.add(s.total_gain_pct(s.negotiated_km));
      total_opt.add(s.total_gain_pct(s.optimal_km));
      for (int side = 0; side < 2; ++side)
        indiv_neg.add(s.side_gain_pct(s.negotiated_side_km, side));
      flows += s.flow_count;
      moved += s.flows_moved;
    }
    std::cout << "samples: " << samples.size() << " ISP pairs, " << flows
              << " flows, " << moved << " moved off default\n";
    print_cdf_figure("custom", "total gain across both ISPs",
                     "% reduction in total flow km vs default routing",
                     {"negotiated", "optimal"}, {&total_neg, &total_opt});
    print_cdf_figure("custom", "individual ISP gain",
                     "% reduction in own-network flow km vs default",
                     {"negotiated"}, {&indiv_neg});

    ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
    ctx.record.metric("flows", static_cast<std::int64_t>(flows));
    ctx.record.metric("flows_moved", static_cast<std::int64_t>(moved));
    ctx.record.metric_cdf("total_gain_pct.negotiated", total_neg);
    ctx.record.metric_cdf("total_gain_pct.optimal", total_opt);
    ctx.record.metric_cdf("individual_gain_pct.negotiated", indiv_neg);
    return 0;
  }

  const BandwidthExperimentConfig cfg = spec.to_bandwidth_config();
  print_bench_header("Custom scenario",
                     "bandwidth (failure) experiment, " + objectives,
                     spec.universe_summary());
  const auto samples = run_bandwidth_experiment(cfg);
  if (samples.empty()) return no_samples();
  ctx.mix(samples);
  std::cout << "samples: " << samples.size() << " failed interconnections\n";

  util::Cdf def_up, neg_up, def_down, neg_down, down_gain;
  for (const auto& s : samples) {
    def_up.add(s.ratio(s.mel_default, 0));
    neg_up.add(s.ratio(s.mel_negotiated, 0));
    def_down.add(s.ratio(s.mel_default, 1));
    neg_down.add(s.ratio(s.mel_negotiated, 1));
    down_gain.add(s.downstream_distance_gain_pct);
  }
  print_cdf_figure("custom", "upstream ISP",
                   "MEL relative to MEL of optimal routing",
                   {"negotiated", "default"}, {&neg_up, &def_up});
  print_cdf_figure("custom", "downstream ISP",
                   "MEL relative to MEL of optimal routing",
                   {"negotiated", "default"}, {&neg_down, &def_down});
  if (spec.resolved_objective(1).name == "distance") {
    print_cdf_figure("custom", "downstream ISP reduces distance",
                     "% reduction of affected flows' km inside downstream "
                     "vs default",
                     {"negotiated"}, {&down_gain});
    ctx.record.metric_cdf("downstream_distance_gain_pct", down_gain);
  }

  ctx.record.metric("samples", static_cast<std::int64_t>(samples.size()));
  ctx.record.metric_cdf("mel_ratio.upstream.default", def_up);
  ctx.record.metric_cdf("mel_ratio.upstream.negotiated", neg_up);
  ctx.record.metric_cdf("mel_ratio.downstream.default", def_down);
  ctx.record.metric_cdf("mel_ratio.downstream.negotiated", neg_down);
  return 0;
}

// ------------------------------------------------------------------------
// runtime scenarios: the concurrent runtime behind the same registry
// ------------------------------------------------------------------------

int run_runtime(ScenarioContext& ctx) {
  const runtime::ScenarioConfig cfg = runtime_config_of(ctx.spec);
  print_bench_header("Runtime scenario",
                     "concurrent negotiation sessions over a declared timeline",
                     ctx.spec.universe_summary());
  std::cout << (cfg.session_count == 0
                    ? std::string("one session per universe pair")
                    : std::to_string(cfg.session_count) + " sessions")
            << " ("
            << (cfg.transport == runtime::Transport::kSocketPair ? "socket"
                : cfg.transport == runtime::Transport::kTcpPair ? "tcp"
                                                                : "memory")
            << " transport), stagger " << cfg.start_stagger << ", "
            << cfg.events.size() << " timeline event"
            << (cfg.events.size() == 1 ? "" : "s") << ", threads "
            << cfg.runtime.threads << "\n";

  runtime::ScenarioReport report;
  try {
    report = runtime::run_scenario(cfg);
  } catch (const std::exception& e) {
    // A mis-declared timeline (no pair with enough links, event targeting a
    // session that will not exist) is a config error, not a crash.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  static const char* const kKindNames[] = {"initial", "churn-renego",
                                           "failure-renego"};
  std::printf("\n%-4s %-22s %-15s %-10s %8s %8s %9s\n", "id", "pair", "kind",
              "status", "attempts", "rounds", "messages");
  // Big populations get a capped table — the stats line and the JSON record
  // still cover every session, and the cap is announced, never silent.
  const std::size_t table_cap = 40;
  for (const auto& s : report.sessions) {
    if (s.id >= table_cap) {
      std::printf("  ... (%zu more sessions; see --json for all of them)\n",
                  report.sessions.size() - table_cap);
      break;
    }
    std::printf("%-4u %-22s %-15s %-10s %8d %8zu %9llu", s.id,
                s.pair_label.c_str(), kKindNames[static_cast<int>(s.kind)],
                runtime::to_string(s.status).c_str(), s.attempts,
                s.status == runtime::SessionStatus::kDone ? s.outcome.rounds
                                                          : 0,
                static_cast<unsigned long long>(s.messages));
    if (s.parent >= 0)
      std::printf("   (renegotiates for session %lld)",
                  static_cast<long long>(s.parent));
    if (s.status == runtime::SessionStatus::kFailed ||
        s.status == runtime::SessionStatus::kCancelled)
      std::printf("   [%s]", s.error.c_str());
    std::printf("\n");
  }

  const auto& st = report.stats;
  std::printf("\n%zu sessions: %zu done, %zu failed, %zu cancelled", st.sessions,
              st.done, st.failed, st.cancelled);
  if (st.killed > 0) std::printf(", %zu still killed", st.killed);
  std::printf("; %zu scheduling rounds (peak %zu ready), final tick %llu\n",
              st.rounds, st.peak_ready,
              static_cast<unsigned long long>(st.final_tick));

  std::size_t churn_renegos = 0, failure_renegos = 0;
  for (const auto& s : report.sessions) {
    churn_renegos += s.kind == runtime::SessionKind::kChurnRenegotiation;
    failure_renegos += s.kind == runtime::SessionKind::kFailureRenegotiation;
  }

  ctx.mix(runtime::outcome_digest(report));

  if (ctx.trace != nullptr) {
    // One track per session on the virtual tick clock, plus a timeline
    // track of the declared events. Ticks are logical, so the trace is as
    // thread-stable as the outcome digest.
    if (!cfg.events.empty()) {
      const int timeline = ctx.trace->new_track("timeline");
      static const char* const kEventNames[] = {"start", "churn", "fail",
                                                "restart", "kill", "resume"};
      for (const runtime::ScenarioEvent& ev : cfg.events) {
        obs::Trace::Args args;
        args.add("session", static_cast<std::int64_t>(ev.session));
        if (ev.kind == runtime::EventKind::kFlowChurn ||
            ev.kind == runtime::EventKind::kLinkFailure)
          args.add("param", static_cast<std::int64_t>(ev.param));
        ctx.trace->instant(timeline, ev.at,
                           kEventNames[static_cast<int>(ev.kind)], "timeline",
                           std::move(args));
      }
    }
    for (const auto& s : report.sessions) {
      const int track = ctx.trace->new_track(
          "session " + std::to_string(s.id) + " " + s.pair_label + " (" +
          kKindNames[static_cast<int>(s.kind)] + ")");
      const std::uint64_t dur =
          s.finished_at > s.started_at ? s.finished_at - s.started_at : 0;
      obs::Trace::Args args;
      args.add("status", runtime::to_string(s.status))
          .add("attempts", static_cast<std::int64_t>(s.attempts))
          .add("retries", static_cast<std::int64_t>(s.retries))
          .add("steps", static_cast<std::int64_t>(s.steps))
          .add("messages", static_cast<std::int64_t>(s.messages))
          .add("timeouts", static_cast<std::int64_t>(s.timeouts));
      if (s.status == runtime::SessionStatus::kDone)
        args.add("rounds", static_cast<std::int64_t>(s.outcome.rounds));
      if (s.parent >= 0) args.add("parent", s.parent);
      if (!s.error.empty()) args.add("error", s.error);
      ctx.trace->complete(track, s.started_at, dur,
                          runtime::to_string(s.status), "runtime",
                          std::move(args));
    }
  }

  ctx.record.metric("sessions", static_cast<std::int64_t>(st.sessions));
  ctx.record.metric("sessions_done", static_cast<std::int64_t>(st.done));
  ctx.record.metric("sessions_failed", static_cast<std::int64_t>(st.failed));
  ctx.record.metric("sessions_cancelled",
                    static_cast<std::int64_t>(st.cancelled));
  ctx.record.metric("churn_renegotiations",
                    static_cast<std::int64_t>(churn_renegos));
  ctx.record.metric("failure_renegotiations",
                    static_cast<std::int64_t>(failure_renegos));
  ctx.record.metric("sessions_killed", static_cast<std::int64_t>(st.killed));
  // Scheduling geometry (rounds, peak_ready, final_tick) stays on stdout
  // only: it depends on where kill/resume events land on the virtual clock,
  // and the durability contract is that a crash-resumed run's RECORD is
  // byte-identical to an uninterrupted one (CI cmp-s the two files).
  ctx.record.metric("steps", static_cast<std::int64_t>(st.total_steps));
  ctx.record.metric("messages", static_cast<std::int64_t>(st.messages));
  return 0;
}

// ------------------------------------------------------------------------
// preset tunes + registry
// ------------------------------------------------------------------------

void tune_nothing(ExperimentSpec&) {}

void tune_bandwidth_base(ExperimentSpec& s) {
  s.experiment = ExperimentKind::kBandwidth;
  s.pairs = 60;
}

void tune_fig5(ExperimentSpec& s) { s.flow_baselines = true; }

void tune_fig7(ExperimentSpec& s) {
  tune_bandwidth_base(s);
  // Keep wall_ms an honest measurement in every build type; the ctest
  // suites own the debug cross-check.
  s.verify_incremental = -1;
}

void tune_fig8(ExperimentSpec& s) {
  tune_bandwidth_base(s);
  s.unilateral = true;
}

void tune_fig9(ExperimentSpec& s) {
  tune_bandwidth_base(s);
  s.objective[1] = {"distance", false};
}

void tune_table3(ExperimentSpec& s) {
  // Seed 0 means "auto-pick a seed that reaches the paper outcome", the
  // legacy binary's default.
  s.seed = 0;
}

void tune_abl_destination_based(ExperimentSpec& s) { s.pairs = 60; }
void tune_abl_flow_fraction(ExperimentSpec& s) { s.pairs = 80; }

void tune_abl_group_negotiation(ExperimentSpec& s) {
  s.pairs = 60;
  s.sweeps = {{"groups", {"1", "2", "4", "8", "16", "64"}}};
}

void tune_abl_ix_count(ExperimentSpec& s) { s.pairs = 150; }

void tune_abl_models(ExperimentSpec& s) {
  s.experiment = ExperimentKind::kBandwidth;
  s.pairs = 30;
  s.sweeps = {{"model",
               {"paper", "identical", "uniform", "pow2", "unused-max",
                "piecewise"}}};
}

void tune_abl_policies(ExperimentSpec& s) {
  s.pairs = 60;
  s.sweeps = {{"policy",
               {"paper", "lower-gain", "coin-toss", "full", "negotiate-all",
                "best-local"}}};
}

void tune_abl_pref_range(ExperimentSpec& s) {
  s.pairs = 60;
  s.sweeps = {{"pref-range", {"1", "2", "3", "5", "10", "20", "50"}}};
}

void tune_fig4_sweep(ExperimentSpec& s) {
  // Fig. 4's gain distributions as a function of universe size: the ISP
  // axis is declared data, so `--sweep.isps=...` re-scales the figure.
  s.sweeps = {{"isps", {"20", "35", "50", "65"}}};
}

void tune_fig7_sweep(ExperimentSpec& s) {
  // Fig. 7's MEL distributions as a function of how many failed pairs are
  // sampled (the paper's 247-instance axis, scaled down).
  tune_fig7(s);
  s.sweeps = {{"pairs", {"15", "30", "45", "60"}}};
}

void tune_runtime(ExperimentSpec& s) { s.experiment = ExperimentKind::kRuntime; }

void tune_runtime_churn(ExperimentSpec& s) {
  // The many_sessions example's population and timeline, as a preset: a
  // small universe negotiating concurrently with staggered starts, a
  // mid-session link failure, a peer restart, a traffic churn, and one
  // session stuck behind a black-hole transport.
  s.experiment = ExperimentKind::kRuntime;
  s.isps = 30;
  s.seed = 11;
  s.pairs = 12;
  s.traffic_model = traffic::WorkloadModel::kIdentical;
  s.runtime.min_links = 3;  // failures need surviving interconnections
  s.runtime.stagger = 2;
  s.runtime.burst = 8;
  s.runtime.handshake_deadline = 16;
  s.runtime.max_attempts = 2;
  s.runtime.drop = 1.0;
  s.runtime.fault_targets = {3};
  s.runtime.events = {
      {1, RuntimeEventSpec::Kind::kLinkFailure, 0, RuntimeEventSpec::kBusiest},
      {3, RuntimeEventSpec::Kind::kPeerRestart, 1, 0},
      {5, RuntimeEventSpec::Kind::kFlowChurn, 2, 4242},
  };
}

const std::vector<ScenarioPreset> kScenarios = {
    {"fig4", "fig4_distance_gain",
     "Fig. 4: distance gain of optimal vs negotiated routing", tune_nothing,
     run_fig4, "experiment"},
    {"fig4_sweep", "-",
     "Fig. 4 swept over universe size (declared sweep.isps axis)",
     tune_fig4_sweep, run_fig4, "experiment"},
    {"fig5", "fig5_flow_strategies",
     "Fig. 5: flow-pair strawman strategies vs negotiation", tune_fig5,
     run_fig5, "experiment,flow-baselines"},
    {"fig6", "fig6_flow_level",
     "Fig. 6: per-flow gains of optimal and negotiated routing", tune_nothing,
     run_fig6, "experiment"},
    {"fig7", "fig7_bandwidth_mel",
     "Fig. 7: post-failure MEL, default and negotiated vs optimal", tune_fig7,
     run_fig7, "experiment"},
    {"fig7_sweep", "-",
     "Fig. 7 swept over sampled pair count (declared sweep.pairs axis)",
     tune_fig7_sweep, run_fig7, "experiment"},
    {"fig8", "fig8_unilateral",
     "Fig. 8: unilateral upstream optimisation hurts the downstream",
     tune_fig8, run_fig8, "experiment,unilateral"},
    {"fig9", "fig9_diverse_criteria",
     "Fig. 9: diverse criteria (upstream bandwidth, downstream distance)",
     tune_fig9, run_fig9, "experiment"},
    {"fig10", "fig10_cheating_distance",
     "Fig. 10: impact of cheating on the distance experiment", tune_nothing,
     run_fig10, "experiment"},
    {"fig11", "fig11_cheating_bandwidth",
     "Fig. 11: impact of cheating on the bandwidth experiment",
     tune_bandwidth_base, run_fig11, "experiment"},
    {"table3", "table3_example",
     "Fig. 3 table: the worked preference-list example of Fig. 2",
     tune_table3, run_table3, "!seed"},
    {"abl_destination_based", "abl_destination_based",
     "footnote 2: destination-based vs source-destination negotiation",
     tune_abl_destination_based, run_abl_destination_based,
     "experiment,flow-baselines,groups"},
    {"abl_flow_fraction", "abl_flow_fraction",
     "§5.1: fraction of flows that must move to capture the gain",
     tune_abl_flow_fraction, run_abl_flow_fraction, "experiment"},
    {"abl_group_negotiation", "abl_group_negotiation",
     "§5.1: negotiating in k separate groups vs the whole set",
     tune_abl_group_negotiation, run_abl_group_negotiation,
     "experiment,groups", "groups"},
    {"abl_ix_count", "abl_ix_count",
     "§5.1: negotiated gain bucketed by interconnection count",
     tune_abl_ix_count, run_abl_ix_count, "experiment"},
    {"abl_models", "abl_models",
     "§5.2: workload / capacity / metric sensitivity of Fig. 7",
     tune_abl_models, run_abl_models,
     "experiment,traffic,capacity-pow2,capacity-unused,oracle-a,oracle-b",
     "model"},
    {"abl_policies", "abl_policies",
     "§4: turn / termination / proposal policy comparison", tune_abl_policies,
     run_abl_policies, "experiment,turn,termination,proposal", "policy"},
    {"abl_pref_range", "abl_pref_range",
     "§5: negotiated gain as a function of the class range P",
     tune_abl_pref_range, run_abl_pref_range, "experiment,pref-range",
     "pref-range"},
    {"runtime", "-",
     "concurrent-runtime scenario: sessions + a declared runtime.* timeline",
     tune_runtime, run_runtime, "experiment"},
    {"runtime_churn", "-",
     "runtime timeline demo: staggered starts, link failure, restart, churn",
     tune_runtime_churn, run_runtime, "experiment"},
    {"custom", "-",
     "generic runner for an arbitrary spec (use --spec=<file> or flags)",
     tune_nothing, run_custom},
};

}  // namespace

const std::vector<ScenarioPreset>& scenario_registry() { return kScenarios; }

const ScenarioPreset* find_scenario(const std::string& name) {
  for (const ScenarioPreset& preset : kScenarios)
    if (preset.name == name) return &preset;
  return nullptr;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(kScenarios.size());
  for (const ScenarioPreset& preset : kScenarios)
    names.emplace_back(preset.name);
  return names;
}

void print_scenario_list(std::ostream& os) {
  os << "registered scenarios (run with nexit_run --scenario=<name>):\n\n";
  char line[256];
  std::snprintf(line, sizeof line, "  %-24s %-26s %s\n", "name",
                "legacy binary", "description");
  os << line;
  for (const ScenarioPreset& preset : kScenarios) {
    std::snprintf(line, sizeof line, "  %-24s %-26s %s\n", preset.name,
                  preset.legacy_binary, preset.description);
    os << line;
  }
  os << "\nevery scenario also takes the spec keys (see --help), "
        "--spec=<file>, and --json=<path>.\n";
}

void print_scenario_tsv(std::ostream& os) {
  for (const ScenarioPreset& preset : kScenarios)
    os << preset.name << "\t" << preset.legacy_binary << "\t"
       << preset.description << "\n";
}

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    out.push_back(csv.substr(
        begin, comma == std::string::npos ? comma : comma - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// Expands ScenarioPreset::ignored_keys against the full spec key list.
std::vector<std::string> expand_ignored_keys(const ScenarioPreset& preset,
                                             const ExperimentSpec& spec) {
  const std::string raw = preset.ignored_keys;
  if (raw.empty()) return {};
  if (raw[0] != '!') return split_csv(raw);
  const std::vector<std::string> consumed = split_csv(raw.substr(1));
  std::vector<std::string> ignored;
  for (const auto& [key, value] : spec.to_key_values()) {
    if (std::find(consumed.begin(), consumed.end(), key) == consumed.end())
      ignored.push_back(key);
  }
  return ignored;
}

/// Comma-list of ScenarioPreset::own_axes as a set.
std::set<std::string> own_axis_set(const ScenarioPreset& preset) {
  std::set<std::string> own;
  if (preset.own_axes[0] == '\0') return own;
  for (std::string& key : split_csv(preset.own_axes)) own.insert(std::move(key));
  return own;
}

/// The valid values of a sweep-only variant axis ({} for key axes) — the
/// names of the variant table the owning run function dispatches on, so
/// run_scenario can fail a bad trailing value before any engine runs.
std::vector<std::string> variant_axis_values(const std::string& axis) {
  std::vector<std::string> names;
  if (axis == "model") {
    for (const ModelVariant& v : kModelVariants) names.emplace_back(v.name);
  } else if (axis == "policy") {
    for (const PolicyVariant& v : kPolicyVariants) names.emplace_back(v.name);
  }
  return names;
}

std::string point_label(
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  std::string label;
  for (const auto& [key, value] : overrides)
    label += (label.empty() ? "" : " ") + key + "=" + value;
  return label;
}

/// One expanded sweep point: the base spec with the point's overrides
/// applied through the normal key parsers (exit 2 naming the axis on a
/// malformed value) and the expanded axes dropped from the copy.
ExperimentSpec spec_at_point(
    const ExperimentSpec& base, const std::set<std::string>& own,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  ExperimentSpec point = base;
  std::vector<SweepAxis> kept;
  for (const SweepAxis& axis : point.sweeps)
    if (own.count(axis.key) > 0) kept.push_back(axis);
  point.sweeps = std::move(kept);
  // A point is one unit of work: the sweep is what gets distributed, never
  // the point itself (and validate() would reject dist.* on a spec with no
  // axes left).
  point.dist = DistSpec{};
  for (const auto& [key, value] : overrides) {
    const util::FlagErrorContext context("sweep axis --sweep." + key);
    point.merge_from_flags(util::Flags({key + "=" + value}));
  }
  return point;
}

/// The deterministic registry snapshot as "obs" entries (routed to the
/// active point's sub-section during a sweep). Counters verbatim;
/// histograms as <name>.count/.sum plus one .b<k> entry per non-empty
/// magnitude bucket, so the key set stays compact and canonical.
/// The wall-clock phase profile as the digest-excluded "timing" section
/// (reported once per run, never per sweep point).
void record_timing_section(util::JsonReport& record) {
  for (const obs::PhaseSnapshot& p : obs::Registry::global().timing_snapshot()) {
    record.timing_entry(std::string("phase.") + p.name + ".calls",
                        static_cast<std::int64_t>(p.calls));
    record.timing_entry(std::string("phase.") + p.name + ".ms",
                        static_cast<double>(p.ns) / 1e6);
  }
}

/// Dispatches already-validated point specs to dist workers (spawn-local or
/// dist.connect daemons) and folds the results exactly as the in-process
/// loop would: metric entries spliced verbatim, obs sections re-emitted
/// from the shipped snapshots, per-point digests folded in odometer order.
/// `labels` is {""} for the single-shard (whole-run) case — no points
/// section, entries land at the top level, as in-process.
int run_distributed(const ScenarioPreset& preset, const ExperimentSpec& spec,
                    const std::vector<ExperimentSpec>& point_specs,
                    const std::vector<std::string>& labels,
                    util::JsonReport& record) {
  const bool sweep = !(labels.size() == 1 && labels[0].empty());

  dist::CoordinatorConfig cfg;
  cfg.workers = spec.dist.workers;
  cfg.connect = spec.dist.connect;
  cfg.log_dir = spec.dist.log_dir;
  cfg.timeout_ms = spec.dist.timeout_ms;
  cfg.retries = spec.dist.retries;

  std::vector<dist::Job> jobs;
  jobs.reserve(point_specs.size());
  for (std::size_t i = 0; i < point_specs.size(); ++i) {
    // Workers must never recursively distribute: the shard they receive is
    // the point spec with the dist.* namespace reset to defaults.
    ExperimentSpec shard = point_specs[i];
    shard.dist = DistSpec{};
    jobs.push_back(dist::Job{preset.name, labels[i], shard.to_text()});
  }

  std::vector<dist::JobResult> results;
  try {
    dist::Coordinator coordinator(cfg);
    const int rc = coordinator.run(jobs, &results);
    if (rc != 0) return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: dist: " << e.what() << "\n";
    return 2;
  }

  std::uint64_t sweep_digest = util::kFnvOffsetBasis;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const dist::JobResult& result = results[i];
    if (result.rc != 0) {
      std::cerr << "error: dist job " << i
                << (labels[i].empty() ? "" : " (" + labels[i] + ")") << ": "
                << result.error << "\n";
      return result.rc;
    }
    if (sweep) record.begin_point(labels[i]);
    for (const auto& [name, value] : result.metrics)
      record.metric_serialized(name, value);
    record_obs_section(record, result.obs);
    if (sweep) {
      record.metric("digest", util::digest_hex(result.digest));
      std::printf("sweep point %zu/%zu: %s — digest %s\n", i + 1,
                  results.size(), labels[i].c_str(),
                  util::digest_hex(result.digest).c_str());
    }
    sweep_digest = util::fnv1a_mix(sweep_digest, result.digest);
  }
  if (sweep) record.end_points();

  const std::uint64_t digest = sweep ? sweep_digest : results[0].digest;
  std::printf("\noutcome digest: %s\n", util::digest_hex(digest).c_str());
  if (sweep)
    record.metric("sweep_points", static_cast<std::int64_t>(results.size()));
  record.metric("digest", util::digest_hex(digest));
  record.write();
  return 0;
}

}  // namespace

void record_obs_section(util::JsonReport& record, const obs::Snapshot& snap) {
  for (const obs::CounterSnapshot& c : snap.counters)
    record.obs_entry(c.name, static_cast<std::int64_t>(c.value));
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    record.obs_entry(h.name + ".count", static_cast<std::int64_t>(h.count));
    record.obs_entry(h.name + ".sum", static_cast<std::int64_t>(h.sum));
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] > 0)
        record.obs_entry(h.name + ".b" + std::to_string(b),
                         static_cast<std::int64_t>(h.buckets[b]));
    }
  }
}

PointOutcome run_point(const ScenarioPreset& preset,
                       const ExperimentSpec& point, util::JsonReport& record,
                       obs::Trace* trace) {
  PointOutcome out;
  obs::Registry::global().reset_counters();
  ScenarioContext ctx{point, record};
  ctx.trace = trace;
  out.rc = preset.run(ctx);
  out.digest = ctx.digest;
  if (out.rc == 0) out.obs = obs::Registry::global().snapshot();
  return out;
}

int run_scenario(const ScenarioPreset& preset, const util::Flags& flags) {
  ExperimentSpec spec;
  preset.tune(spec);
  const ExperimentSpec tuned = spec;
  const std::string spec_path = flags.get_string("spec", "");
  if (!spec_path.empty()) spec.merge_from_file(spec_path);
  spec.merge_from_flags(flags);

  // --trace is the command-line spelling of the obs.trace spec key (both
  // accepted; the bare flag wins, like any later merge layer).
  const std::string trace_flag = flags.get_string("trace", "");
  if (!trace_flag.empty()) {
    spec.obs.trace = trace_flag;
    spec.overridden.insert("obs.trace");
  }

  // The record carries the legacy binary's name so BENCH_*.json
  // trajectories stay comparable across the redesign ("custom" has none).
  util::JsonReport record(
      flags, std::string(preset.legacy_binary) == "-" ? preset.name
                                                      : preset.legacy_binary);
  const std::string spec_out = flags.get_string("spec-out", "");
  util::reject_unknown(flags);

  std::string error;
  if (!spec.validate(&error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  // Keys this preset's run function controls itself: an explicit override
  // away from the preset's own value would silently vanish — the legacy
  // binaries exited 2 for these flags, and so do we. (Re-stating the
  // preset's value is harmless, so serialized specs reload cleanly.)
  const std::vector<std::string> ignored = expand_ignored_keys(preset, tuned);
  for (const std::string& key : ignored) {
    if (spec.overridden.count(key) > 0 &&
        spec.value_of(key) != tuned.value_of(key)) {
      std::cerr << "error: --" << key << " is ignored by scenario '"
                << preset.name << "' (its run controls this itself)\n";
      return 2;
    }
  }

  // Axis checks. An axis the preset owns is iterated inside its run
  // function; any other axis must be an orthogonal, unlocked key — sweeping
  // a key the preset controls (or another preset's variant axis) would
  // silently decorate every point with a value that never takes effect.
  const std::set<std::string> own = own_axis_set(preset);
  std::vector<SweepAxis> outer;
  for (const SweepAxis& axis : spec.sweeps) {
    if (own.count(axis.key) > 0) continue;
    const SpecKeyInfo* info = find_spec_key(axis.key);
    if (info != nullptr && info->sweep_only) {
      std::cerr << "error: --sweep." << axis.key << " is an axis of scenario '"
                << info->owner_scenario << "', not of '" << preset.name
                << "'\n";
      return 2;
    }
    if (std::find(ignored.begin(), ignored.end(), axis.key) != ignored.end()) {
      std::cerr << "error: --sweep." << axis.key << " is locked by scenario '"
                << preset.name << "' (its run controls this key itself)\n";
      return 2;
    }
    outer.push_back(axis);
  }

  // Pre-validate every value of every owned axis before any engine runs: a
  // bad value at the end of an axis must fail the run up front, not after
  // minutes of compute. Key axes re-validate the spec per value; variant
  // axes check against the owning run function's variant table.
  for (const SweepAxis& axis : spec.sweeps) {
    const SpecKeyInfo* info = find_spec_key(axis.key);
    if (own.count(axis.key) == 0 || info == nullptr)
      continue;  // outer axes are validated per point below
    if (info->sweep_only) {
      const std::vector<std::string> valid = variant_axis_values(axis.key);
      for (const std::string& value : axis.values) {
        if (std::find(valid.begin(), valid.end(), value) == valid.end()) {
          std::cerr << "error: sweep." << axis.key << ": unknown variant \""
                    << value << "\"; valid values:";
          for (const std::string& name : valid) std::cerr << " " << name;
          std::cerr << "\n";
          return 2;
        }
      }
      continue;
    }
    for (const std::string& value : axis.values) {
      const ExperimentSpec point = spec_at_point(spec, own, {{axis.key, value}});
      if (!point.validate(&error)) {
        std::cerr << "error: sweep." << axis.key << "=" << value << ": "
                  << error << "\n";
        return 2;
      }
    }
  }

  // --spec-out: archive the fully merged spec (defaults + preset + file +
  // flags, sweep ranges already expanded to explicit values). The archive
  // is a valid --spec input; reloading it *under the same preset* (the
  // header spells out the exact invocation — a spec file does not carry
  // the scenario name, and the `custom` default would run the preset's
  // analysis-free twin) reproduces this run's digest.
  if (!spec_out.empty()) {
    std::ofstream out(spec_out);
    out << "# merged spec written by --spec-out; reload with:\n"
        << "#   nexit_run --scenario=" << preset.name << " --spec=" << spec_out
        << "\n"
        << spec.to_text();
    out.flush();
    if (!out) {
      std::cerr << "error: --spec-out: cannot write " << spec_out << "\n";
      return 2;
    }
    std::cout << "merged spec written to " << spec_out << "\n";
  }

  {
    // The record's spec section describes the *experiment*; dist.* is
    // execution placement, which the bit-identity contract says must not
    // show in the outcome — so it serializes as defaults here, making a
    // distributed record byte-identical to the in-process one. --spec-out
    // still archives the real dist.* keys (it archives the invocation).
    ExperimentSpec archived = spec;
    archived.dist = DistSpec{};
    // Kill/resume events and the journal mirror directory are crash
    // *placement*, not experiment shape: the durability contract makes the
    // resumed outcome byte-identical to an uninterrupted run's, so the
    // archived spec drops them too — CI cmp-s the two records whole.
    std::erase_if(archived.runtime.events, [](const RuntimeEventSpec& ev) {
      return ev.kind == RuntimeEventSpec::Kind::kKill ||
             ev.kind == RuntimeEventSpec::Kind::kResume;
    });
    archived.runtime.snapshot_dir.clear();
    for (const auto& [key, value] : archived.to_key_values())
      record.spec_entry(key, value);
  }

  // Observability setup: one Trace shared by every sweep point (tracks keep
  // incrementing, so a single file holds the whole sweep); the wall-clock
  // phase profile is armed for the run and reported once at the end. Work
  // counters reset per run/point so the "obs" sections compose like the
  // per-point digests.
  const std::unique_ptr<obs::Trace> trace =
      spec.obs.trace.empty() ? nullptr : std::make_unique<obs::Trace>();
  obs::Registry::global().set_timing_enabled(spec.obs.timing);
  obs::Registry::global().reset_timing();

  if (outer.empty()) {
    // A whole runtime timeline can be offloaded as a single shard —
    // validate() guarantees dist.* never reaches a non-sweep
    // distance/bandwidth run.
    if (spec.dist.enabled())
      return run_distributed(preset, spec, {spec}, {""}, record);

    const PointOutcome out = run_point(preset, spec, record, trace.get());
    if (out.rc != 0) return out.rc;

    record_obs_section(record, out.obs);
    if (spec.obs.timing) {
      record_timing_section(record);
      obs::Registry::global().set_timing_enabled(false);
    }
    if (trace != nullptr) trace->write(spec.obs.trace);
    std::printf("\noutcome digest: %s\n", util::digest_hex(out.digest).c_str());
    record.metric("digest", util::digest_hex(out.digest));
    record.write();
    return 0;
  }

  // Generic sweep: expand the cross product of the non-owned axes in
  // canonical order and run the preset's full pipeline per point. Each
  // point gets its own JSON section and digest; the printed outcome digest
  // folds the per-point digests in expansion order, so it is bit-identical
  // across --threads like every single-point run. The per-axis value cap
  // composes multiplicatively, so bound the *total* before materializing
  // anything — two 10000-value axes must not allocate 10^8 points.
  std::size_t total_points = 1;
  for (const SweepAxis& axis : outer) {
    total_points *= axis.values.size();
    if (total_points > 4096) {
      std::cerr << "error: sweep cross product exceeds 4096 points (";
      for (const SweepAxis& a : outer)
        std::cerr << a.key << "[" << a.values.size() << "]";
      std::cerr << ") — shrink an axis\n";
      return 2;
    }
  }
  const auto points = expand_sweep(outer);
  std::vector<ExperimentSpec> point_specs;
  point_specs.reserve(points.size());
  for (const auto& overrides : points) {
    ExperimentSpec point = spec_at_point(spec, own, overrides);
    if (!point.validate(&error)) {
      std::cerr << "error: sweep point (" << point_label(overrides)
                << "): " << error << "\n";
      return 2;
    }
    point_specs.push_back(std::move(point));
  }

  std::printf("declared sweep: %zu points over", points.size());
  for (const SweepAxis& axis : outer)
    std::printf(" %s[%zu]", axis.key.c_str(), axis.values.size());
  std::printf("\n");

  std::vector<std::string> labels;
  labels.reserve(points.size());
  for (const auto& overrides : points) labels.push_back(point_label(overrides));

  if (spec.dist.enabled())
    return run_distributed(preset, spec, point_specs, labels, record);

  std::uint64_t sweep_digest = util::kFnvOffsetBasis;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("\n===== sweep point %zu/%zu: %s =====\n\n", i + 1,
                points.size(), labels[i].c_str());
    record.begin_point(labels[i]);
    const PointOutcome out = run_point(preset, point_specs[i], record,
                                       trace.get());
    if (out.rc != 0) return out.rc;
    record_obs_section(record, out.obs);
    record.metric("digest", util::digest_hex(out.digest));
    std::printf("\npoint digest: %s\n", util::digest_hex(out.digest).c_str());
    sweep_digest = util::fnv1a_mix(sweep_digest, out.digest);
  }
  record.end_points();

  if (spec.obs.timing) {
    record_timing_section(record);
    obs::Registry::global().set_timing_enabled(false);
  }
  if (trace != nullptr) trace->write(spec.obs.trace);
  std::printf("\noutcome digest: %s\n", util::digest_hex(sweep_digest).c_str());
  record.metric("sweep_points", static_cast<std::int64_t>(points.size()));
  record.metric("digest", util::digest_hex(sweep_digest));
  record.write();
  return 0;
}

int scenario_shim_main(const char* name, int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const ScenarioPreset* preset = find_scenario(name);
  if (preset == nullptr) {
    std::cerr << "internal error: scenario '" << name << "' not registered\n";
    return 2;
  }
  if (flags.help_requested()) {
    // The flag list itself is printed by util::reject_unknown once the
    // pipeline has queried every key; this preamble is the shim-specific
    // part of the contract.
    std::cout << "note: this binary is a frozen legacy wrapper; the "
                 "maintained driver is\n  nexit_run --scenario="
              << name
              << " [flags]\n(byte-identical output; sweep axes, --spec-out "
                 "and --help-spec live on the driver)\n";
  }
  return run_scenario(*preset, flags);
}

runtime::ScenarioConfig runtime_config_of(const ExperimentSpec& spec) {
  assert(spec.experiment == ExperimentKind::kRuntime);
  runtime::ScenarioConfig c;
  c.universe = spec.universe();
  c.min_links = spec.runtime.min_links;
  c.session_count = spec.runtime.sessions;
  switch (spec.traffic_model) {
    case traffic::WorkloadModel::kGravity:
      c.traffic = runtime::ScenarioTraffic::kGravityAtoB;
      break;
    case traffic::WorkloadModel::kIdentical:
      c.traffic = runtime::ScenarioTraffic::kBidirectionalIdentical;
      break;
    case traffic::WorkloadModel::kUniformRandom:
      c.traffic = runtime::ScenarioTraffic::kBidirectionalUniformRandom;
      break;
  }
  c.negotiation = spec.to_negotiation_config();
  c.limits.handshake_deadline = spec.runtime.handshake_deadline;
  c.limits.round_timeout = spec.runtime.round_timeout;
  c.limits.max_attempts = static_cast<int>(spec.runtime.max_attempts);
  c.limits.max_steps_per_pump = spec.runtime.burst;
  c.runtime.threads = spec.threads;
  c.runtime.max_ticks = spec.runtime.max_ticks;
  c.transport = spec.runtime.transport == RuntimeTransport::kSocket
                    ? runtime::Transport::kSocketPair
                : spec.runtime.transport == RuntimeTransport::kTcp
                    ? runtime::Transport::kTcpPair
                    : runtime::Transport::kInMemory;
  c.faults.drop = spec.runtime.drop;
  c.faults.corrupt = spec.runtime.corrupt;
  c.fault_targets = spec.runtime.fault_targets;
  c.start_stagger = spec.runtime.stagger;
  c.durability.dir = spec.runtime.snapshot_dir;
  c.seed = spec.seed;
  for (const RuntimeEventSpec& ev : spec.runtime.events) {
    runtime::ScenarioEvent out;
    out.at = ev.at;
    out.session = ev.session;
    switch (ev.kind) {
      case RuntimeEventSpec::Kind::kStart:
        out.kind = runtime::EventKind::kStart;
        break;
      case RuntimeEventSpec::Kind::kFlowChurn:
        out.kind = runtime::EventKind::kFlowChurn;
        break;
      case RuntimeEventSpec::Kind::kLinkFailure:
        out.kind = runtime::EventKind::kLinkFailure;
        break;
      case RuntimeEventSpec::Kind::kPeerRestart:
        out.kind = runtime::EventKind::kPeerRestart;
        break;
      case RuntimeEventSpec::Kind::kKill:
        out.kind = runtime::EventKind::kKill;
        break;
      case RuntimeEventSpec::Kind::kResume:
        out.kind = runtime::EventKind::kResume;
        break;
    }
    out.param = ev.kind == RuntimeEventSpec::Kind::kLinkFailure &&
                        ev.param == RuntimeEventSpec::kBusiest
                    ? runtime::kBusiestIx
                    : ev.param;
    c.events.push_back(out);
  }
  return c;
}

}  // namespace nexit::sim
