#pragma once

#include <string>
#include <vector>

#include "capacity/capacity.hpp"
#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"

namespace nexit::sim {

/// §5.2/§5.3/§5.4 experiment: an interconnection fails, the affected flows
/// are re-routed by default (early-exit), globally optimal (fractional LP),
/// negotiated (Nexit with bandwidth oracles), and optionally by unilateral
/// upstream optimisation (Fig. 8). One direction of traffic at a time.
struct BandwidthExperimentConfig {
  UniverseConfig universe;
  /// Paper setting: always-accept; the settlement rollback keeps it no-loss.
  /// Callers set reassign_traffic_fraction (the paper uses 0.05).
  core::NegotiationConfig negotiation = [] {
    core::NegotiationConfig c;
    c.acceptance = core::AcceptancePolicy::kProtective;
    return c;
  }();
  traffic::TrafficConfig traffic;       // gravity model by default
  capacity::CapacityConfig capacity;
  /// Per-side objectives (0 = upstream ISP A, 1 = downstream ISP B), built
  /// through core::OracleRegistry for every failure negotiation. The paper's
  /// scenarios compose from here: `{"bandwidth", cheat=true}` upstream is
  /// §5.4 / Fig. 11, `{"distance"}` downstream is §5.3 / Fig. 9, and
  /// `{"piecewise"}` both sides is the §5.2 alternate-metric check — any
  /// other combination is equally spellable without touching this file.
  core::OracleSpec objective[2] = {{"bandwidth", false}, {"bandwidth", false}};
  /// Also compute the Fig. 8 unilateral upstream optimisation series.
  bool include_unilateral = true;
  /// Cap on failures simulated per pair (one sample per failed link).
  std::size_t max_failures_per_pair = 4;
  /// Worker threads for the per-pair sweep: 1 = serial, 0 = auto-detect.
  /// Results are bit-identical for every value (per-pair Rng streams are
  /// forked sequentially before dispatch).
  std::size_t threads = 1;
};

struct BandwidthSample {
  std::string pair_label;
  std::size_t failed_ix = 0;
  std::size_t affected_flows = 0;
  double affected_volume_fraction = 0.0;
  std::size_t flows_moved = 0;  // negotiated away from post-failure default

  // Oracle-evaluation telemetry from the negotiation engine: full calls
  // recompute every preference row, incremental calls only the affected
  // ones. rows_full_equivalent is what the same number of calls would have
  // cost under full recomputation — the denominator for "fraction of the
  // naive work actually done".
  std::size_t eval_calls_full = 0;
  std::size_t eval_calls_incremental = 0;
  std::size_t eval_rows_computed = 0;
  std::size_t eval_rows_full_equivalent = 0;

  /// Per-round negotiation history; filled only when
  /// negotiation.record_trace is set (the --trace pipeline). Excluded from
  /// digest_samples like the telemetry.
  std::vector<core::RoundTrace> rounds;

  // Per-side MELs (0 = upstream ISP A, 1 = downstream ISP B) after failure.
  double mel_default[2] = {0.0, 0.0};
  double mel_negotiated[2] = {0.0, 0.0};
  double mel_optimal[2] = {0.0, 0.0};
  double mel_unilateral[2] = {0.0, 0.0};

  /// Fig. 9 right: % reduction of the affected flows' distance inside the
  /// downstream ISP versus the default (only filled in diverse mode).
  double downstream_distance_gain_pct = 0.0;

  [[nodiscard]] double ratio(const double mel[2], int side) const {
    return mel_optimal[side] > 0.0 ? mel[side] / mel_optimal[side] : 1.0;
  }
};

std::vector<BandwidthSample> run_bandwidth_experiment(
    const BandwidthExperimentConfig& config);

}  // namespace nexit::sim
