#pragma once

// The scenario-preset registry and the shared parse/run/report pipeline
// behind every figure/ablation binary and the `nexit_run` driver. A
// ScenarioPreset is a named spec transform (its per-figure defaults) plus
// the analysis that turns engine samples into the printed figure, the
// paper checks, and the JSON record. The 16 legacy binaries are thin shims
// over scenario_shim_main(); `nexit_run --scenario=<name>` dispatches to
// the identical code path, which is what keeps their outputs byte-identical
// (the CI migration guard diffs them every run).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/spec.hpp"
#include "util/digest.hpp"
#include "util/json_report.hpp"

namespace nexit::sim {

/// What a preset's run function gets: the fully merged+validated spec, the
/// JSON record (spec section already filled), and the outcome digest it
/// should fold its deterministic sample data into (helpers below). The
/// pipeline prints the digest and writes the record after run returns.
struct ScenarioContext {
  const ExperimentSpec& spec;
  util::JsonReport& record;
  std::uint64_t digest = util::kFnvOffsetBasis;

  void mix(std::uint64_t v) { digest = util::fnv1a_mix(digest, v); }
  void mix_double(double v) { mix(util::double_bits(v)); }
  void mix(const std::vector<DistanceSample>& samples);
  void mix(const std::vector<BandwidthSample>& samples);
};

struct ScenarioPreset {
  const char* name;           // "fig9", "abl_models", "custom", ...
  const char* legacy_binary;  // pre-redesign binary name; "-" if none
  const char* description;    // one line for --list-scenarios
  /// Figure-specific spec defaults, applied before --spec/flag overrides.
  void (*tune)(ExperimentSpec&);
  /// Runs the engines and reports; returns the process exit code.
  int (*run)(ScenarioContext&);
  /// Spec keys this preset's run function controls itself (sweep axes, the
  /// fixed worked-example parameters): "" = none, a comma-separated list,
  /// or "!k1,k2" = every key EXCEPT the listed ones. An explicit override
  /// of an ignored key to a value other than the preset's own exits 2 —
  /// the legacy binaries rejected exactly these flags, and a knob that
  /// silently vanishes is the misconfiguration mode this API must not
  /// reintroduce.
  const char* ignored_keys = "";
};

/// All registered presets: fig4..fig11, table3, the abl_* ablations, and
/// "custom" (a generic runner for arbitrary composed specs).
const std::vector<ScenarioPreset>& scenario_registry();
const ScenarioPreset* find_scenario(const std::string& name);
std::vector<std::string> scenario_names();

/// `--list-scenarios` bodies: a human table, or name/legacy/description TSV
/// for scripts (the CI migration guard iterates the tsv form).
void print_scenario_list(std::ostream& os);
void print_scenario_tsv(std::ostream& os);

/// The shared pipeline: preset defaults -> optional --spec file -> flag
/// overrides -> reject_unknown -> validate -> record spec -> run -> digest
/// print + JSON write. Both the driver and every legacy shim end up here.
int run_scenario(const ScenarioPreset& preset, const util::Flags& flags);

/// main() body of a legacy figure binary: parse argv, run `name`.
int scenario_shim_main(const char* name, int argc, char** argv);

/// FNV digests over the deterministic per-sample fields; equal digests
/// across --threads / --incremental / preset-vs-legacy runs demonstrate
/// bit-identical experiments.
std::uint64_t digest_samples(const std::vector<DistanceSample>& samples);
std::uint64_t digest_samples(const std::vector<BandwidthSample>& samples);

}  // namespace nexit::sim
