#pragma once

// The scenario-preset registry and the shared parse/run/report pipeline
// behind every figure/ablation binary and the `nexit_run` driver. A
// ScenarioPreset is a named spec transform (its per-figure defaults) plus
// the analysis that turns engine samples into the printed figure, the
// paper checks, and the JSON record. The 16 legacy binaries are thin shims
// over scenario_shim_main(); `nexit_run --scenario=<name>` dispatches to
// the identical code path, which is what keeps their outputs byte-identical
// (the CI migration guard diffs them every run).
//
// Sweeps: a spec may declare axes (`sweep.<key>=...`). Axes a preset owns
// (ScenarioPreset::own_axes — the ablation sweeps the paper hard-coded) are
// iterated inside its run function so the legacy single-table output stays
// byte-identical; every other axis is expanded here as a cross product,
// each point running the preset's full pipeline with a per-point JSON
// section and a per-point digest folded into one sweep digest.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/scenario.hpp"
#include "sim/spec.hpp"
#include "util/digest.hpp"
#include "util/json_report.hpp"

namespace nexit::sim {

/// What a preset's run function gets: the fully merged+validated spec, the
/// JSON record (spec section already filled), and the outcome digest it
/// should fold its deterministic sample data into (helpers below). The
/// pipeline prints the digest and writes the record after run returns.
struct ScenarioContext {
  const ExperimentSpec& spec;
  util::JsonReport& record;
  std::uint64_t digest = util::kFnvOffsetBasis;
  /// Destination for the --trace timeline (null = tracing off). Owned by
  /// run_scenario; shared across sweep points so one file holds the whole
  /// sweep (tracks keep incrementing).
  obs::Trace* trace = nullptr;

  void mix(std::uint64_t v) { digest = util::fnv1a_mix(digest, v); }
  void mix_double(double v) { mix(util::double_bits(v)); }
  void mix(const std::vector<DistanceSample>& samples);
  void mix(const std::vector<BandwidthSample>& samples);

  /// The declared values of a preset-owned axis (tune() installs the
  /// paper's defaults; `--sweep.<key>=...` overrides them). Empty when the
  /// axis is undeclared.
  [[nodiscard]] std::vector<std::string> axis_values(
      const std::string& key) const;
  /// This point's spec: the base spec with one owned-axis value applied
  /// through the normal key parser and re-validated. Exits 2 naming the
  /// axis on a malformed or invalid value (run_scenario pre-validates, so
  /// a run function normally never trips this).
  [[nodiscard]] ExperimentSpec spec_with(const std::string& key,
                                         const std::string& value) const;
};

struct ScenarioPreset {
  const char* name = nullptr;           // "fig9", "abl_models", "custom", ...
  const char* legacy_binary = nullptr;  // pre-redesign binary name; "-" if none
  const char* description = nullptr;    // one line for --list-scenarios
  /// Figure-specific spec defaults, applied before --spec/flag overrides.
  void (*tune)(ExperimentSpec&);
  /// Runs the engines and reports; returns the process exit code.
  int (*run)(ScenarioContext&);
  /// Spec keys this preset's run function controls itself (sweep axes, the
  /// fixed worked-example parameters): "" = none, a comma-separated list,
  /// or "!k1,k2" = every key EXCEPT the listed ones. An explicit override
  /// of an ignored key to a value other than the preset's own exits 2 —
  /// the legacy binaries rejected exactly these flags, and a knob that
  /// silently vanishes is the misconfiguration mode this API must not
  /// reintroduce.
  const char* ignored_keys = "";
  /// Comma-separated axes the run function iterates itself (via
  /// axis_values) instead of the generic cross-product expansion:
  /// `pref-range` for abl_pref_range, the virtual `model`/`policy` variant
  /// axes for abl_models/abl_policies. tune() declares their default
  /// values; `--sweep.<axis>=...` re-declares them.
  const char* own_axes = "";
};

/// All registered presets: fig4..fig11 (plus the fig4_sweep/fig7_sweep
/// multi-point variants), table3, the abl_* ablations, the runtime
/// scenarios, and "custom" (a generic runner for arbitrary composed specs).
const std::vector<ScenarioPreset>& scenario_registry();
const ScenarioPreset* find_scenario(const std::string& name);
std::vector<std::string> scenario_names();

/// `--list-scenarios` bodies: a human table, or name/legacy/description TSV
/// for scripts (the CI migration guard and the README catalog generator
/// iterate the tsv form).
void print_scenario_list(std::ostream& os);
void print_scenario_tsv(std::ostream& os);

/// The shared pipeline: preset defaults -> optional --spec file -> flag
/// overrides -> reject_unknown -> validate -> lock/axis checks -> optional
/// --spec-out archive -> record spec -> run (expanding non-owned sweep
/// axes, in-process or sharded across dist.* workers) -> digest print +
/// JSON write. Both the driver and every legacy shim end up here.
int run_scenario(const ScenarioPreset& preset, const util::Flags& flags);

/// What one executed point produced: the run function's exit code, the
/// outcome digest, and the obs::Registry work-counter snapshot.
struct PointOutcome {
  int rc = 0;
  std::uint64_t digest = 0;
  obs::Snapshot obs;
};

/// Runs one fully merged+validated spec through `preset`'s run function
/// with the obs counters reset first: metric entries land in `record`'s
/// active sink, the snapshot is taken after the run. This is the unit of
/// work both the in-process sweep loop and the nexit_workerd job loop
/// execute — sharing it is what makes a distributed record byte-identical
/// to the in-process one.
PointOutcome run_point(const ScenarioPreset& preset,
                       const ExperimentSpec& point, util::JsonReport& record,
                       obs::Trace* trace);

/// Emits a snapshot as JSON "obs" entries (counters, then histogram
/// count/sum/non-empty buckets) into `record`'s active obs sink — the one
/// serialization of an obs section, whether the snapshot was taken in this
/// process or shipped from a worker.
void record_obs_section(util::JsonReport& record, const obs::Snapshot& snap);

/// main() body of a legacy figure binary: parse argv, run `name`. Under
/// --help it first prints a note that the binary is a frozen wrapper and
/// names the equivalent `nexit_run --scenario=...` invocation.
int scenario_shim_main(const char* name, int argc, char** argv);

/// The runtime::ScenarioConfig a spec with experiment=runtime describes —
/// universe, session population, limits, faults, and the declared timeline
/// mapped onto runtime::ScenarioEvent. Lives at the scenario layer (not on
/// ExperimentSpec) because only this layer depends on src/runtime.
[[nodiscard]] runtime::ScenarioConfig runtime_config_of(
    const ExperimentSpec& spec);

/// FNV digests over the deterministic per-sample fields; equal digests
/// across --threads / --incremental / preset-vs-legacy runs demonstrate
/// bit-identical experiments.
std::uint64_t digest_samples(const std::vector<DistanceSample>& samples);
std::uint64_t digest_samples(const std::vector<BandwidthSample>& samples);

}  // namespace nexit::sim
