#pragma once

// The declarative scenario API. An ExperimentSpec is a flat, fully
// serializable description of one experiment run: which engine (distance or
// bandwidth), the universe, each side's objective (an OracleRegistry name,
// optionally behind the cheating decorator), the negotiation policies, the
// traffic/capacity/failure models, grouping, and threading. Specs layer:
//
//   struct defaults  ->  ScenarioPreset tune()  ->  --spec=<file>  ->  flags
//
// Each later layer only overrides the keys it mentions (every merge reads a
// key with the current value as fallback). A spec file is `key=value` lines
// (`#` comments); the keys are exactly the command-line flag names, parsed
// through the same util::Flags machinery, so malformed values and unknown
// keys die with the same exit-2 diagnostics as a typo'd flag. Every spec
// serializes back to the full key=value list — the JSON record embeds it,
// and parsing that list reproduces the spec bit-for-bit (round-trippable).

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/oracle_registry.hpp"
#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "util/flags.hpp"

namespace nexit::sim {

/// Which experiment engine a spec drives.
enum class ExperimentKind { kDistance, kBandwidth };

struct ExperimentSpec {
  // --- engine selection -----------------------------------------------
  ExperimentKind experiment = ExperimentKind::kDistance;

  // --- universe ---------------------------------------------------------
  std::size_t isps = 65;
  std::uint64_t seed = 42;
  std::size_t pairs = 120;
  std::size_t pop_min = 6;
  std::size_t pop_max = 20;

  // --- per-side objectives ---------------------------------------------
  /// "default" resolves per experiment kind (distance -> "distance",
  /// bandwidth -> "bandwidth") at config-build time; any OracleRegistry
  /// name or "cheat:<name>" is valid.
  core::OracleSpec objective[2] = {{"default", false}, {"default", false}};

  // --- negotiation policies (paper §4) ---------------------------------
  int pref_range = 10;
  core::TurnPolicy turn = core::TurnPolicy::kAlternate;
  core::ProposalPolicy proposal = core::ProposalPolicy::kMaxCombinedGain;
  core::AcceptancePolicy acceptance = core::AcceptancePolicy::kProtective;
  core::TerminationPolicy termination = core::TerminationPolicy::kEarly;
  core::TieBreak tie_break = core::TieBreak::kRandom;
  /// Reassignment quantum (paper: 0.05); only load-dependent oracles
  /// honour it, so the distance figures are unaffected by the default.
  double reassign = 0.05;
  bool rollback = true;
  bool incremental = true;
  int verify_incremental = 0;

  // --- workload / capacity / failure models ----------------------------
  traffic::WorkloadModel traffic_model = traffic::WorkloadModel::kGravity;
  bool capacity_pow2 = false;
  capacity::UnusedLinkRule capacity_unused = capacity::UnusedLinkRule::kMedian;
  std::size_t max_failures = 4;

  // --- extra series / grouping / execution ------------------------------
  bool flow_baselines = false;  // Fig. 5 flow-pair strawmen (distance)
  bool unilateral = false;      // Fig. 8 upstream-only LP series (bandwidth)
  std::size_t groups = 1;
  std::size_t threads = 1;

  /// Bookkeeping, not state: the keys an explicit source (flags or a spec
  /// file) set, as opposed to defaults and preset tunes. validate() uses it
  /// to reject a key the chosen experiment kind would silently ignore —
  /// `--unilateral=true` on a distance scenario must error like any other
  /// misconfiguration, not record itself as if it took effect. Excluded
  /// from comparison (operator== compares the serialized key set).
  std::set<std::string> overridden;

  /// Overlays every key present in `flags` onto this spec (absent keys keep
  /// their current values — the accessor fallbacks are the spec itself).
  /// Malformed values and out-of-set choices exit 2 via util::Flags.
  void merge_from_flags(const util::Flags& flags);

  /// Loads a `key=value` spec file on top of this spec. Unknown keys, keys
  /// without '=', malformed values, and unreadable files exit 2 with a
  /// diagnostic naming the file — the same contract util::reject_unknown
  /// gives the command line.
  void merge_from_file(const std::string& path);

  /// The full spec as (key, value) pairs in canonical order; parsing these
  /// back (merge_from_flags over a kv-Flags) reproduces the spec exactly.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  to_key_values() const;
  /// to_key_values() as "key=value\n" lines — a valid spec file.
  [[nodiscard]] std::string to_text() const;
  /// The serialized value of one key ("" for an unknown key).
  [[nodiscard]] std::string value_of(const std::string& key) const;

  /// Semantic checks beyond syntax: oracle names must be registered (or
  /// "default"), the distance engine only takes capacity-free oracles, the
  /// universe must be able to yield pairs, and explicitly overridden keys
  /// must be meaningful for the chosen experiment kind. Returns false and
  /// sets *error on failure.
  [[nodiscard]] bool validate(std::string* error) const;

  /// The objective with "default" resolved for this spec's experiment kind.
  [[nodiscard]] core::OracleSpec resolved_objective(int side) const;

  /// Engine configs. Both require validate() to have passed; they assert
  /// the experiment kind matches.
  [[nodiscard]] DistanceExperimentConfig to_distance_config() const;
  [[nodiscard]] BandwidthExperimentConfig to_bandwidth_config() const;

  /// One-line human summary of the universe ("65 synthetic ISPs, seed 42,
  /// <= 120 pairs, PoPs 6-20") for bench headers.
  [[nodiscard]] std::string universe_summary() const;

  [[nodiscard]] UniverseConfig universe() const;

  /// Two specs are equal when they describe the same run — i.e. their
  /// serialized key=value lists match; the `overridden` bookkeeping does
  /// not participate (a parsed spec has every key marked, its source may
  /// have none).
  friend bool operator==(const ExperimentSpec& a, const ExperimentSpec& b) {
    return a.to_key_values() == b.to_key_values();
  }
};

[[nodiscard]] std::string to_string(ExperimentKind kind);

}  // namespace nexit::sim
