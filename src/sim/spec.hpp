#pragma once

// The declarative scenario API. An ExperimentSpec is a flat, fully
// serializable description of one experiment run: which engine (distance,
// bandwidth, or the concurrent runtime), the universe, each side's
// objective (an OracleRegistry name, optionally behind the cheating
// decorator), the negotiation policies, the traffic/capacity/failure
// models, grouping, threading — plus, for the runtime, the session
// population and a declared timeline — plus any number of declared sweep
// axes. Specs layer:
//
//   struct defaults  ->  ScenarioPreset tune()  ->  --spec=<file>  ->  flags
//
// Each later layer only overrides the keys it mentions (every merge reads a
// key with the current value as fallback). A spec file is `key=value` lines
// (`#` comments); the keys are exactly the command-line flag names, parsed
// through the same util::Flags machinery, so malformed values and unknown
// keys die with the same exit-2 diagnostics as a typo'd flag. Every spec
// serializes back to the full key=value list — the JSON record embeds it,
// `--spec-out=<file>` archives it, and parsing that list reproduces the
// spec bit-for-bit (round-trippable).
//
// Every key is registered with metadata (doc string, type, default, valid
// choices/range, owning experiment kinds) in spec_key_registry();
// `nexit_run --help-spec` and docs/SPEC_REFERENCE.md are generated from it,
// so the reference documentation cannot drift from the parser.

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/oracle_registry.hpp"
#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "util/flags.hpp"

namespace nexit::sim {

/// Which engine a spec drives: the §5 distance or bandwidth experiment, or
/// the concurrent negotiation runtime (src/runtime) with a declared
/// timeline.
enum class ExperimentKind { kDistance, kBandwidth, kRuntime };

/// Bitmask of experiment kinds a spec key is meaningful for. validate()
/// rejects an explicitly-set non-default key the chosen kind would silently
/// ignore, and the generated reference docs print the mask per key.
enum : unsigned {
  kForDistance = 1u << 0,
  kForBandwidth = 1u << 1,
  kForRuntime = 1u << 2,
  kForAllKinds = kForDistance | kForBandwidth | kForRuntime,
};

/// The kFor* bit of one kind.
[[nodiscard]] unsigned kind_bit(ExperimentKind kind);

/// One declared sweep axis: `sweep.<key>=v1,v2,...` or `sweep.<key>=
/// lo:hi:step` (expanded to explicit values at parse time). Multiple axes
/// form a cross product; the expansion order is canonical (axes sorted by
/// key, rightmost varying fastest), so sweep digests are deterministic.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;

  friend bool operator==(const SweepAxis&, const SweepAxis&) = default;
};

/// A runtime timeline event as declared in `runtime.events=` — the spec
/// spelling of runtime::ScenarioEvent. Grammar, comma-separated:
///
///   start@<tick>/<session>          start the session at <tick> instead of
///                                   its staggered default
///   churn@<tick>/<session>/<seed>   replace the session's traffic matrix
///                                   (reseeded by <seed>) and renegotiate
///   fail@<tick>/<session>/<ix>      interconnection failure mid-session;
///                                   <ix> is an index or `busiest`
///   restart@<tick>/<session>        one peer crashes and reconnects
///   kill@<tick>/<session>           crash the session outright: in-memory
///                                   state is wiped, only the durable
///                                   snapshot+WAL survives (frozen until a
///                                   matching resume)
///   resume@<tick>/<session>         restore the session from its journal;
///                                   the outcome digest and record bytes
///                                   equal an uninterrupted run's
struct RuntimeEventSpec {
  enum class Kind : std::uint8_t {
    kStart,
    kFlowChurn,
    kLinkFailure,
    kPeerRestart,
    kKill,
    kResume,
  };
  static constexpr std::uint64_t kBusiest = ~std::uint64_t{0};

  std::uint64_t at = 0;
  Kind kind = Kind::kStart;
  std::uint32_t session = 0;
  std::uint64_t param = 0;

  friend bool operator==(const RuntimeEventSpec&,
                         const RuntimeEventSpec&) = default;
};

enum class RuntimeTransport : std::uint8_t { kMemory, kSocket, kTcp };

/// The `runtime.*` spec namespace: session population, transport, lifecycle
/// limits, fault injection, and the declared timeline. Only meaningful for
/// experiment=runtime (validate() enforces that, like every kind-specific
/// key).
struct RuntimeSpec {
  /// Initial sessions; 0 = one per universe pair, larger counts cycle the
  /// pairs with per-session traffic.
  std::size_t sessions = 0;
  RuntimeTransport transport = RuntimeTransport::kMemory;
  /// Session i starts at tick i * stagger (start@ events override).
  std::uint64_t stagger = 1;
  /// Universe pairs need at least this many interconnections (failures need
  /// survivors).
  std::size_t min_links = 2;
  /// Pump steps before a session yields its worker (0 = run to stall).
  std::size_t burst = 0;
  std::uint64_t handshake_deadline = 64;
  std::uint64_t round_timeout = 32;
  std::size_t max_attempts = 3;
  std::uint64_t max_ticks = 1u << 20;
  double drop = 0.0;
  double corrupt = 0.0;
  /// Sessions whose transport gets the fault injection (empty = all).
  std::vector<std::uint32_t> fault_targets;
  std::vector<RuntimeEventSpec> events;
  /// Mirror session journals (snapshot + WAL frames) to this directory —
  /// CI uploads them when a crash-recovery run diverges. Empty = in-memory
  /// journaling only. Journaling itself is implied by any kill/resume
  /// event; this key never enables or disables it.
  std::string snapshot_dir;

  friend bool operator==(const RuntimeSpec&, const RuntimeSpec&) = default;
};

/// The `dist.*` spec namespace: distributed execution (src/dist). A sweep's
/// points — or a whole runtime timeline — are sharded across worker
/// processes, either spawned locally (`dist.workers=N`) or reached over TCP
/// (`dist.connect=host:port,...`). Results fold back in odometer order, so
/// the JSON record and sweep digest are byte-identical for every worker
/// count, including zero (in-process). validate() rejects dist.* on runs
/// with nothing to shard (no sweep axes, not experiment=runtime) and in
/// combination with the per-process obs artifacts (trace/timing).
struct DistSpec {
  /// Spawn-local worker processes (nexit_workerd forked beside the driver);
  /// 0 = run in-process.
  std::size_t workers = 0;
  /// Comma-separated host:port endpoints of running `nexit_workerd
  /// --listen` daemons; mutually exclusive with workers.
  std::string connect;
  /// Per-job deadline; a worker silent past it is declared dead and its job
  /// reassigned.
  std::uint64_t timeout_ms = 120000;
  /// Reassignments allowed per job (worker death/timeout) before the run
  /// fails.
  std::size_t retries = 2;
  /// Directory for spawn-local worker logs (worker<i>.log); empty =
  /// /dev/null.
  std::string log_dir;

  [[nodiscard]] bool enabled() const { return workers > 0 || !connect.empty(); }

  friend bool operator==(const DistSpec&, const DistSpec&) = default;
};

/// The `obs.*` spec namespace: the observability layer (src/obs). Both keys
/// apply to every experiment kind and default to off, so the observability
/// layer is invisible — and provably zero-overhead — unless asked for.
struct ObsSpec {
  /// Write a Chrome trace_event JSON file (Perfetto-loadable) of the run's
  /// negotiation timeline here. Logical clocks only: traces are
  /// byte-identical across --threads=N.
  std::string trace;
  /// Enable the wall-clock phase profile (digest-excluded "timing" JSON
  /// section). Off = every PhaseTimer is a single relaxed atomic load.
  bool timing = false;

  friend bool operator==(const ObsSpec&, const ObsSpec&) = default;
};

/// Everything --help-spec and the generated reference know about one key
/// (or sweep-only axis). `default_value` is derived from a
/// default-constructed ExperimentSpec, and choice/range constraints from
/// the same tables the parser uses — nothing here is hand-maintained twice.
struct SpecKeyInfo {
  std::string key;
  std::string type;         // "choice", "count", "int", "double", "bool", ...
  std::string doc;          // one line
  std::string constraints;  // "one of {...}", "integer in [lo, hi]", or ""
  std::string default_value;
  unsigned kinds = kForAllKinds;
  /// True for virtual axes that exist only as `sweep.<key>` (a preset maps
  /// their values to config variants); they have no scalar value.
  bool sweep_only = false;
  /// For sweep-only axes: the scenario whose run function consumes them.
  std::string owner_scenario;
};

/// Every registered spec key and sweep-only axis, in canonical (serialized)
/// order. The single source for --help-spec, docs/SPEC_REFERENCE.md, and
/// the kind-applicability checks in validate().
const std::vector<SpecKeyInfo>& spec_key_registry();
const SpecKeyInfo* find_spec_key(const std::string& key);
/// "distance", "distance, bandwidth", "any", ... for a kinds mask.
[[nodiscard]] std::string kinds_label(unsigned kinds);

struct ExperimentSpec {
  // --- engine selection -----------------------------------------------
  ExperimentKind experiment = ExperimentKind::kDistance;

  // --- universe ---------------------------------------------------------
  std::size_t isps = 65;
  std::uint64_t seed = 42;
  std::size_t pairs = 120;
  std::size_t pop_min = 6;
  std::size_t pop_max = 20;

  // --- per-side objectives ---------------------------------------------
  /// "default" resolves per experiment kind (distance -> "distance",
  /// bandwidth -> "bandwidth") at config-build time; any OracleRegistry
  /// name or "cheat:<name>" is valid.
  core::OracleSpec objective[2] = {{"default", false}, {"default", false}};

  // --- negotiation policies (paper §4) ---------------------------------
  int pref_range = 10;
  core::TurnPolicy turn = core::TurnPolicy::kAlternate;
  core::ProposalPolicy proposal = core::ProposalPolicy::kMaxCombinedGain;
  core::AcceptancePolicy acceptance = core::AcceptancePolicy::kProtective;
  core::TerminationPolicy termination = core::TerminationPolicy::kEarly;
  core::TieBreak tie_break = core::TieBreak::kRandom;
  /// Reassignment quantum (paper: 0.05); only load-dependent oracles
  /// honour it, so the distance figures are unaffected by the default.
  double reassign = 0.05;
  bool rollback = true;
  bool incremental = true;
  int verify_incremental = 0;

  // --- workload / capacity / failure models ----------------------------
  traffic::WorkloadModel traffic_model = traffic::WorkloadModel::kGravity;
  bool capacity_pow2 = false;
  capacity::UnusedLinkRule capacity_unused = capacity::UnusedLinkRule::kMedian;
  std::size_t max_failures = 4;

  // --- extra series / grouping / execution ------------------------------
  bool flow_baselines = false;  // Fig. 5 flow-pair strawmen (distance)
  bool unilateral = false;      // Fig. 8 upstream-only LP series (bandwidth)
  std::size_t groups = 1;
  std::size_t threads = 1;

  // --- runtime scenario (experiment=runtime only) -----------------------
  RuntimeSpec runtime;

  // --- observability (src/obs) ------------------------------------------
  ObsSpec obs;

  // --- distributed execution (src/dist) ---------------------------------
  DistSpec dist;

  // --- declared sweep axes ----------------------------------------------
  /// Sorted by key (canonical order). run_scenario expands the cross
  /// product; presets may own an axis and iterate it inside their run
  /// function instead (abl_pref_range owns `pref-range`, ...).
  std::vector<SweepAxis> sweeps;

  /// Bookkeeping, not state: the keys an explicit source (flags or a spec
  /// file) set, as opposed to defaults and preset tunes. validate() uses it
  /// to reject a key the chosen experiment kind would silently ignore —
  /// `--unilateral=true` on a distance scenario must error like any other
  /// misconfiguration, not record itself as if it took effect. Excluded
  /// from comparison (operator== compares the serialized key set).
  std::set<std::string> overridden;

  /// Overlays every key present in `flags` onto this spec (absent keys keep
  /// their current values — the accessor fallbacks are the spec itself).
  /// Malformed values and out-of-set choices exit 2 via util::Flags; so do
  /// malformed `sweep.<key>` axes (unknown axis key, empty value list, bad
  /// lo:hi:step range), naming the axis.
  void merge_from_flags(const util::Flags& flags);

  /// Loads a `key=value` spec file on top of this spec. Unknown keys, keys
  /// without '=', malformed values, and unreadable files exit 2 with a
  /// diagnostic naming the file — the same contract util::reject_unknown
  /// gives the command line.
  void merge_from_file(const std::string& path);

  /// The full spec as (key, value) pairs in canonical order — scalar keys
  /// first, then one `sweep.<key>` entry per declared axis; parsing these
  /// back (merge_from_flags over a kv-Flags) reproduces the spec exactly.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  to_key_values() const;
  /// to_key_values() as "key=value\n" lines — a valid spec file.
  [[nodiscard]] std::string to_text() const;
  /// The serialized value of one key ("" for an unknown key).
  [[nodiscard]] std::string value_of(const std::string& key) const;

  /// The declared axis for `key` (nullptr if not swept).
  [[nodiscard]] const SweepAxis* axis(const std::string& key) const;

  /// Semantic checks beyond syntax: oracle names must be registered (or
  /// "default"), the distance engine only takes capacity-free oracles, the
  /// universe must be able to yield pairs, explicitly overridden keys must
  /// be meaningful for the chosen experiment kind, and a declared timeline
  /// must only reference sessions that will exist. Returns false and sets
  /// *error on failure.
  [[nodiscard]] bool validate(std::string* error) const;

  /// The objective with "default" resolved for this spec's experiment kind
  /// (runtime sessions negotiate distance, like the initial sessions do).
  [[nodiscard]] core::OracleSpec resolved_objective(int side) const;

  /// Engine configs. Both require validate() to have passed; they assert
  /// the experiment kind matches. (The runtime twin lives in
  /// sim/scenarios.cpp — runtime_config_of — because the scenario layer,
  /// not the spec data model, depends on src/runtime.)
  [[nodiscard]] DistanceExperimentConfig to_distance_config() const;
  [[nodiscard]] BandwidthExperimentConfig to_bandwidth_config() const;

  /// The shared §4 negotiation-policy block of both engine configs and the
  /// runtime scenario.
  [[nodiscard]] core::NegotiationConfig to_negotiation_config() const;

  /// One-line human summary of the universe ("65 synthetic ISPs, seed 42,
  /// <= 120 pairs, PoPs 6-20") for bench headers.
  [[nodiscard]] std::string universe_summary() const;

  [[nodiscard]] UniverseConfig universe() const;

  /// Two specs are equal when they describe the same run — i.e. their
  /// serialized key=value lists match; the `overridden` bookkeeping does
  /// not participate (a parsed spec has every key marked, its source may
  /// have none).
  friend bool operator==(const ExperimentSpec& a, const ExperimentSpec& b) {
    return a.to_key_values() == b.to_key_values();
  }
};

[[nodiscard]] std::string to_string(ExperimentKind kind);

/// The cross product of `axes` as per-point override lists, canonical
/// order: axes as stored (sorted by key), rightmost axis varying fastest —
/// the nested-loop order of `for v0 in axes[0]: ... for vN in axes[N]`.
/// Deterministic, so per-point digests mix into a stable sweep digest.
[[nodiscard]] std::vector<std::vector<std::pair<std::string, std::string>>>
expand_sweep(const std::vector<SweepAxis>& axes);

}  // namespace nexit::sim
