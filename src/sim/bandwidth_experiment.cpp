#include "sim/bandwidth_experiment.hpp"

#include <stdexcept>

#include "core/oracle_registry.hpp"
#include "metrics/metrics.hpp"
#include "opt/min_max_load.hpp"
#include "routing/loads.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace nexit::sim {

namespace {

// Indices into each pair's util::fork_streams slot: the traffic matrix and
// a dedicated source for the per-failure engine seeds. The seed stream
// replaces the serial code's draws from the shared Rng (whose position
// depended on earlier pairs), decoupling pairs from each other.
constexpr std::size_t kTrafficStream = 0;
constexpr std::size_t kEngineSeedStream = 1;

}  // namespace

std::vector<BandwidthSample> run_bandwidth_experiment(
    const BandwidthExperimentConfig& config) {
  // Reject unknown oracle names before the worker pool: a throw inside a
  // pool worker would terminate the process instead of propagating.
  for (const core::OracleSpec& objective : config.objective) {
    if (core::OracleRegistry::global().find(objective.name) == nullptr) {
      // build() throws the unknown-name error before touching capacities.
      (void)core::OracleRegistry::global().build(
          objective, {0, config.negotiation.preferences, nullptr});
    }
  }

  // Failure experiments need >= 3 interconnections (>= 2 survivors).
  const std::vector<topology::IspPair> pairs =
      build_pair_universe(config.universe, 3);

  util::Rng rng(config.universe.seed ^ 0xba5eba11ull);
  std::vector<std::vector<util::Rng>> streams =
      util::fork_streams(rng, pairs.size(), 2);

  // Index-addressed slots: each pair yields a variable number of samples
  // (one per usable failure), so workers fill their own per-pair vector and
  // the coordinator concatenates them in pair order afterwards.
  std::vector<std::vector<BandwidthSample>> per_pair(pairs.size());

  const auto run_pair = [&pairs, &streams, &per_pair,
                         &config](std::size_t pair_index) {
    const topology::IspPair& pair = pairs[pair_index];
    const routing::PairRouting routing(pair);

    // One direction of traffic at a time (paper §5.2); A is the upstream.
    util::Rng traffic_rng = streams[pair_index][kTrafficStream];
    const traffic::TrafficMatrix tm = traffic::TrafficMatrix::build(
        pair, traffic::Direction::kAtoB, config.traffic, traffic_rng);

    std::vector<std::size_t> all_ix(pair.interconnection_count());
    for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;

    // Pre-failure: early-exit everywhere; capacities derive from its loads.
    const routing::Assignment pre_failure =
        routing::assign_early_exit(routing, tm.flows(), all_ix);
    const routing::LoadMap baseline =
        routing::compute_loads(routing, tm.flows(), pre_failure);
    const routing::LoadMap caps =
        capacity::assign_capacities(baseline, config.capacity);

    std::vector<BandwidthSample>& pair_samples = per_pair[pair_index];
    const std::size_t failures =
        std::min(config.max_failures_per_pair, pair.interconnection_count());
    for (std::size_t failed = 0; failed < failures; ++failed) {
      core::NegotiationProblem problem;
      try {
        problem = core::make_failure_problem(routing, tm.flows(), failed);
      } catch (const std::invalid_argument&) {
        continue;  // fewer than 2 survivors
      }
      if (problem.negotiable.empty()) continue;  // nothing used this link

      BandwidthSample s;
      s.pair_label = pair.label();
      s.failed_ix = failed;
      s.affected_flows = problem.negotiable.size();
      s.affected_volume_fraction =
          problem.negotiable_volume() / tm.total_volume();

      std::vector<char> negotiable_mask(tm.size(), 0);
      for (std::size_t idx : problem.negotiable) negotiable_mask[idx] = 1;

      // Default: early-exit over the survivors (already in the problem).
      const routing::LoadMap default_loads =
          routing::compute_loads(routing, tm.flows(), problem.default_assignment);
      s.mel_default[0] = metrics::side_mel(default_loads, caps, 0);
      s.mel_default[1] = metrics::side_mel(default_loads, caps, 1);

      // Globally optimal: fractional min-max LP over both ISPs' links.
      const opt::MinMaxLoadResult lp = opt::solve_min_max_load(
          routing, tm.flows(), negotiable_mask, pre_failure, problem.candidates,
          caps);
      if (lp.status != lp::SolveStatus::kOptimal) {
        NEXIT_WARN << "LP failed (" << lp::to_string(lp.status) << ") for "
                   << pair.label() << " failure " << failed;
        continue;
      }
      const routing::LoadMap optimal_loads =
          routing::compute_loads_fractional(routing, tm.flows(), lp.assignment);
      s.mel_optimal[0] = metrics::side_mel(optimal_loads, caps, 0);
      s.mel_optimal[1] = metrics::side_mel(optimal_loads, caps, 1);

      // Negotiated: Nexit with the configured per-side objectives, built
      // fresh per failure (oracle incremental state must not leak between
      // independent negotiations).
      const core::PreferenceConfig pc = config.negotiation.preferences;
      const core::OracleRegistry& registry = core::OracleRegistry::global();
      const core::BuiltOracle oracle_a =
          registry.build(config.objective[0], {0, pc, &caps});
      const core::BuiltOracle oracle_b =
          registry.build(config.objective[1], {1, pc, &caps});

      core::NegotiationConfig ncfg = config.negotiation;
      ncfg.seed = streams[pair_index][kEngineSeedStream].next_u64();
      core::NegotiationEngine engine(problem, oracle_a.get(), oracle_b.get(),
                                     ncfg);
      const core::NegotiationOutcome outcome = engine.run();
      s.flows_moved = outcome.flows_moved;
      s.eval_calls_full = outcome.evaluate_calls_full;
      s.eval_calls_incremental = outcome.evaluate_calls_incremental;
      s.eval_rows_computed = outcome.evaluate_rows_computed;
      s.eval_rows_full_equivalent = outcome.evaluate_rows_full_equivalent;
      if (ncfg.record_trace) s.rounds = outcome.trace;
      const routing::LoadMap negotiated_loads =
          routing::compute_loads(routing, tm.flows(), outcome.assignment);
      s.mel_negotiated[0] = metrics::side_mel(negotiated_loads, caps, 0);
      s.mel_negotiated[1] = metrics::side_mel(negotiated_loads, caps, 1);

      // Fig. 9 right-hand series: only meaningful when the downstream's
      // objective is distance (possibly behind the cheating decorator).
      if (config.objective[1].name == "distance") {
        double def_km = 0.0, neg_km = 0.0;
        for (std::size_t idx : problem.negotiable) {
          const traffic::Flow& f = tm.flows()[idx];
          // nexit-lint: allow(float-accumulate): negotiable-flow order, the
          // canonical km-summation order (matches metrics::side_flow_km)
          def_km += f.size * routing.km_in_side(
                                 f, problem.default_assignment.ix_of_flow[idx], 1);
          // nexit-lint: allow(float-accumulate): same canonical order
          neg_km += f.size *
                    routing.km_in_side(f, outcome.assignment.ix_of_flow[idx], 1);
        }
        s.downstream_distance_gain_pct =
            def_km > 0.0 ? (def_km - neg_km) / def_km * 100.0 : 0.0;
      }

      // Fig. 8: upstream optimises its own network unilaterally (fractional
      // LP over upstream links only, then implemented integrally).
      if (config.include_unilateral) {
        opt::MinMaxConfig up_only;
        up_only.constrain_side_a = true;
        up_only.constrain_side_b = false;
        const opt::MinMaxLoadResult up_lp = opt::solve_min_max_load(
            routing, tm.flows(), negotiable_mask, pre_failure,
            problem.candidates, caps, up_only);
        if (up_lp.status == lp::SolveStatus::kOptimal) {
          const routing::Assignment unilateral =
              opt::round_to_integral(up_lp.assignment);
          const routing::LoadMap uni_loads =
              routing::compute_loads(routing, tm.flows(), unilateral);
          s.mel_unilateral[0] = metrics::side_mel(uni_loads, caps, 0);
          s.mel_unilateral[1] = metrics::side_mel(uni_loads, caps, 1);
        }
      }

      pair_samples.push_back(std::move(s));
    }
  };

  util::ThreadPool pool(util::workers_for_threads(config.threads));
  util::parallel_for(pool, pairs.size(), run_pair);

  std::vector<BandwidthSample> samples;
  for (std::vector<BandwidthSample>& pair_samples : per_pair)
    for (BandwidthSample& s : pair_samples) samples.push_back(std::move(s));
  return samples;
}

}  // namespace nexit::sim
