#pragma once

// Generated spec documentation. Everything here renders the key metadata of
// spec_key_registry() (plus the scenario registry for axis ownership) —
// there is no hand-written key description anywhere: `nexit_run
// --help-spec` prints the same facts the parser enforces, and
// docs/SPEC_REFERENCE.md is the markdown mode's output checked in verbatim
// (CI regenerates it and fails on drift).

#include <iosfwd>
#include <string>

namespace nexit::sim {

/// Human `--help-spec` listing: every key grouped by section, with type,
/// default, applicability, and constraints, plus the sweep-axis and
/// timeline grammars.
void print_spec_help(std::ostream& os);

/// One key in detail (`--help-spec=<key>`). Returns false (and prints
/// nothing) for an unknown key.
bool print_spec_key_help(std::ostream& os, const std::string& key);

/// The full markdown reference (`--help-spec=markdown`), i.e. the exact
/// content of docs/SPEC_REFERENCE.md.
void print_spec_reference_markdown(std::ostream& os);

}  // namespace nexit::sim
