#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/oracle_registry.hpp"
#include "sim/pair_universe.hpp"

namespace nexit::sim {

/// §5.1 experiment: steady-state distance/cost, flows in both directions,
/// early-exit default, per-flow optimal, and Nexit negotiation with distance
/// oracles. Optionally one ISP cheats (§5.4, Fig. 10) and the Fig. 5
/// flow-pair strategies are evaluated alongside.
struct DistanceExperimentConfig {
  UniverseConfig universe;
  /// Matches the paper's experimental setting: proposals always accepted
  /// ("our goal is to evaluate the benefit of negotiation when ISPs
  /// cooperate fully"); the §6 settlement rollback still guarantees that no
  /// ISP ends below its default.
  core::NegotiationConfig negotiation = [] {
    core::NegotiationConfig c;
    c.acceptance = core::AcceptancePolicy::kProtective;
    return c;
  }();
  /// Per-side objectives (0 = ISP A, 1 = ISP B), built through
  /// core::OracleRegistry for every group negotiation. The distance
  /// experiment computes no capacity model, so only capacity-free oracles
  /// are usable here; `cheat` on a side reproduces §5.4 / Fig. 10.
  core::OracleSpec objective[2] = {{"distance", false}, {"distance", false}};
  /// Also run the Fig. 5 baselines (flow-Pareto / flow-both-better).
  bool run_flow_pair_baselines = true;
  /// Negotiate in `groups` random partitions instead of the whole set
  /// (1 = whole set; >1 reproduces the §5.1 group-negotiation ablation).
  std::size_t groups = 1;
  /// Worker threads for the per-pair sweep: 1 = serial, 0 = auto-detect.
  /// Results are bit-identical for every value (per-pair Rng streams are
  /// forked sequentially before dispatch).
  std::size_t threads = 1;
};

struct DistanceSample {
  std::string pair_label;
  std::size_t interconnections = 0;
  std::size_t flow_count = 0;
  std::size_t flows_moved = 0;

  // Oracle-evaluation telemetry summed over the negotiation runs (one per
  // group); see BandwidthSample for field semantics.
  std::size_t eval_calls_full = 0;
  std::size_t eval_calls_incremental = 0;
  std::size_t eval_rows_computed = 0;
  std::size_t eval_rows_full_equivalent = 0;

  /// Per-round negotiation history, concatenated over the group
  /// negotiations; filled only when negotiation.record_trace is set (the
  /// --trace pipeline). Excluded from digest_samples like the telemetry.
  std::vector<core::RoundTrace> rounds;

  // Total km across both ISPs, all flows.
  double default_km = 0.0;
  double optimal_km = 0.0;
  double negotiated_km = 0.0;
  double pareto_km = 0.0;       // Fig. 5 flow-Pareto (if enabled)
  double bothbetter_km = 0.0;   // Fig. 5 flow-both-better (if enabled)

  // Km inside each ISP (side 0 = A, 1 = B) for the individual view (Fig 4b).
  double default_side_km[2] = {0.0, 0.0};
  double optimal_side_km[2] = {0.0, 0.0};
  double negotiated_side_km[2] = {0.0, 0.0};

  // Per-flow % gains versus default (Fig. 6), aggregated later.
  std::vector<double> flow_gain_pct_optimal;
  std::vector<double> flow_gain_pct_negotiated;
  // Per-flow absolute km saved by negotiation (concentration analyses).
  std::vector<double> flow_saving_km_negotiated;

  [[nodiscard]] double total_gain_pct(double method_km) const {
    return default_km > 0.0 ? (default_km - method_km) / default_km * 100.0 : 0.0;
  }
  [[nodiscard]] double side_gain_pct(const double method[2], int side) const {
    return default_side_km[side] > 0.0
               ? (default_side_km[side] - method[side]) / default_side_km[side] *
                     100.0
               : 0.0;
  }
};

std::vector<DistanceSample> run_distance_experiment(
    const DistanceExperimentConfig& config);

}  // namespace nexit::sim
