#include "sim/report.hpp"

#include <iostream>
#include <sstream>

namespace nexit::sim {

std::string universe_summary(const UniverseConfig& universe) {
  std::ostringstream os;
  os << universe.isp_count << " synthetic ISPs, seed " << universe.seed
     << ", <= " << universe.max_pairs << " pairs, PoPs "
     << universe.generator.min_pops << "-" << universe.generator.max_pops;
  return os.str();
}

namespace {
const std::vector<double> kPercentiles{5,  10, 20, 25, 30, 40, 50,
                                       60, 70, 75, 80, 90, 95, 99};
}

void print_bench_header(const std::string& figure_id, const std::string& title,
                        const std::string& config_summary) {
  std::cout << "\n==============================================================\n"
            << figure_id << ": " << title << "\n"
            << "config: " << config_summary << "\n"
            << "==============================================================\n";
}

void print_cdf_figure(const std::string& figure_id, const std::string& title,
                      const std::string& x_label,
                      const std::vector<std::string>& series_names,
                      const std::vector<const util::Cdf*>& series) {
  std::cout << "\n--- " << figure_id << ": " << title << " ---\n"
            << "x = " << x_label << "; rows are CDF percentiles";
  if (!series.empty() && series[0] != nullptr && !series[0]->empty())
    std::cout << " (n = " << series[0]->sorted_samples().size() << ")";
  std::cout << "\n"
            << util::format_cdf_table(series_names, series, kPercentiles);
}

void paper_check(const std::string& claim, const std::string& measured,
                 bool holds) {
  std::cout << (holds ? "[OK]   " : "[MISS] ") << claim << "\n"
            << "       measured: " << measured << "\n";
}

}  // namespace nexit::sim
