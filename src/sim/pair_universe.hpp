#pragma once

#include <cstddef>
#include <vector>

#include "topology/generator.hpp"
#include "topology/isp_topology.hpp"

namespace nexit::sim {

/// The synthetic stand-in for the paper's measured dataset: a universe of
/// ISPs from which all peering pairs (>= min_links shared cities) are formed.
struct UniverseConfig {
  std::size_t isp_count = 65;  // the paper's dataset size
  std::uint64_t seed = 42;
  topology::GeneratorConfig generator;
  /// Upper bound on returned pairs (deterministic subsample); the paper had
  /// 229 pairs (>=2 links) / 247 ordered instances (>=3 links).
  std::size_t max_pairs = 250;
};

/// All ISP pairs from a fresh universe with at least `min_links`
/// interconnections. Deterministic for a given config.
std::vector<topology::IspPair> build_pair_universe(const UniverseConfig& config,
                                                   std::size_t min_links);

}  // namespace nexit::sim
