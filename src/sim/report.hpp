#pragma once

#include <string>
#include <vector>

#include "sim/pair_universe.hpp"
#include "util/stats.hpp"

namespace nexit::sim {

/// One-line human summary of a universe config ("65 synthetic ISPs, seed
/// 42, <= 120 pairs, PoPs 6-20") — the single spelling shared by the
/// scenario headers (via ExperimentSpec::universe_summary) and the
/// runtime/micro benches, so the two cannot drift apart.
std::string universe_summary(const UniverseConfig& universe);

/// Prints a paper-figure-shaped table: one row per percentile of the CDF,
/// one column per named series, plus a short header. The bench binaries use
/// this to emit the series behind every figure in the paper's §5.
void print_cdf_figure(const std::string& figure_id, const std::string& title,
                      const std::string& x_label,
                      const std::vector<std::string>& series_names,
                      const std::vector<const util::Cdf*>& series);

/// Prints a single "PAPER-CHECK" line: the paper's qualitative claim, our
/// measured value, and whether the shape holds.
void paper_check(const std::string& claim, const std::string& measured,
                 bool holds);

/// Section header for one bench binary.
void print_bench_header(const std::string& figure_id, const std::string& title,
                        const std::string& config_summary);

}  // namespace nexit::sim
