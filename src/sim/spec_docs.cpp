#include "sim/spec_docs.hpp"

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "sim/scenarios.hpp"
#include "sim/spec.hpp"

namespace nexit::sim {

namespace {

/// Section headings keyed by the first registry key of each section; keys
/// inherit the most recent heading, so a new key lands in the right place
/// without touching this table.
const char* section_of(const std::string& key, bool sweep_only,
                       const char** current) {
  struct Break {
    const char* key;
    const char* title;
  };
  static constexpr Break kBreaks[] = {
      {"experiment", "Engine & universe"},
      {"oracle-a", "Per-side objectives"},
      {"pref-range", "Negotiation policies (paper §4)"},
      {"traffic", "Workload / capacity / failure models"},
      {"flow-baselines", "Extra series / grouping / execution"},
      {"runtime.sessions", "Runtime scenarios (`runtime.*`)"},
  };
  if (sweep_only) return *current = "Sweep-only variant axes";
  for (const Break& b : kBreaks)
    if (key == b.key) return *current = b.title;
  return *current;
}

std::string pad(const std::string& text, std::size_t width) {
  return text.size() >= width ? text + " "
                              : text + std::string(width - text.size(), ' ');
}

std::string md_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '|') out += '\\';
    out += c;
  }
  return out;
}

std::string applies_to(const SpecKeyInfo& info) {
  if (info.sweep_only) return "scenario " + info.owner_scenario;
  return kinds_label(info.kinds);
}

constexpr const char* kSweepSyntax =
    "Any scalar key (except `experiment`) can be swept: `sweep.<key>="
    "v1,v2,...` declares explicit values, `sweep.<key>=lo:hi:step` an "
    "inclusive numeric range (expanded at parse time). Multiple axes form "
    "a cross product, expanded in canonical order (axes sorted by key, "
    "rightmost varying fastest); each point runs the full scenario "
    "pipeline, gets its own JSON section and digest, and the printed "
    "outcome digest folds the per-point digests in expansion order — "
    "bit-identical for every --threads value. Axes a preset owns (the "
    "paper's own ablation sweeps) are iterated inside its run function "
    "instead, keeping the legacy single-table output byte-identical.";

void print_one_key(std::ostream& os, const SpecKeyInfo& info) {
  os << "  " << pad(info.sweep_only ? "sweep." + info.key : info.key, 27)
     << pad(info.type, 8) << "default="
     << (info.default_value.empty() ? "(empty)" : info.default_value) << "\n";
  os << "      " << info.doc << "\n";
  if (!info.constraints.empty()) os << "      values: " << info.constraints << "\n";
  os << "      applies to: " << applies_to(info) << "\n";
}

}  // namespace

void print_spec_help(std::ostream& os) {
  os << "spec keys — set as --key=value on any scenario, or as key=value\n"
        "lines in a --spec file; --spec-out=<file> archives the merged\n"
        "spec; --help-spec=<key> details one key; --help-spec=markdown\n"
        "emits docs/SPEC_REFERENCE.md.\n";
  const char* section = "";
  for (const SpecKeyInfo& info : spec_key_registry()) {
    const char* previous = section;
    const char* now = section_of(info.key, info.sweep_only, &section);
    if (now != previous) os << "\n" << now << "\n";
    os << "  " << pad(info.sweep_only ? "sweep." + info.key : info.key, 27)
       << pad(info.type, 8)
       << pad(info.default_value.empty() ? "(empty)" : info.default_value, 13)
       << info.doc << "\n";
  }
  os << "\nSweep axes\n  " << kSweepSyntax << "\n";
}

bool print_spec_key_help(std::ostream& os, const std::string& key) {
  const std::string bare =
      key.rfind("sweep.", 0) == 0 ? key.substr(6) : key;
  const SpecKeyInfo* info = find_spec_key(bare);
  if (info == nullptr) return false;
  print_one_key(os, *info);
  if (!info->sweep_only) {
    os << "      sweepable: "
       << (info->key == "experiment" ? "no (every preset pins its engine)"
                                     : "yes (sweep." + info->key + "=...)")
       << "\n";
  }
  return true;
}

void print_spec_reference_markdown(std::ostream& os) {
  os << "# Spec reference\n\n"
        "<!-- GENERATED FILE — do not edit. Regenerate with\n"
        "     `./build/nexit_run --help-spec=markdown > "
        "docs/SPEC_REFERENCE.md`\n"
        "     (tools/regen_docs.sh does this; CI fails on drift). -->\n\n"
        "Every experiment in this repository is described by a flat,\n"
        "serializable `sim::ExperimentSpec`. Specs layer — struct defaults,\n"
        "then the scenario preset's `tune()`, then a `--spec=<file>` of\n"
        "`key=value` lines (`#` comments), then individual `--key=value`\n"
        "flags — and each layer only overrides the keys it mentions.\n"
        "Unknown keys and malformed values exit 2 with the same diagnostics\n"
        "as a typo'd flag; `--spec-out=<file>` writes the fully merged spec\n"
        "back out, and reloading it through `--spec=` reproduces the run's\n"
        "outcome digest. Keys set to a value the chosen `experiment` kind\n"
        "would silently ignore are rejected (the *applies to* column).\n\n"
        "This file is generated from the key metadata attached at\n"
        "registration (`spec_key_registry()` in `src/sim/spec.cpp`); no key\n"
        "description below is hand-written.\n";

  const char* section = "";
  for (const SpecKeyInfo& info : spec_key_registry()) {
    const char* previous = section;
    const char* now = section_of(info.key, info.sweep_only, &section);
    if (now != previous) {
      os << "\n## " << now << "\n\n";
      os << "| key | type | default | applies to | values | description |\n";
      os << "|---|---|---|---|---|---|\n";
    }
    os << "| `" << (info.sweep_only ? "sweep." + info.key : info.key)
       << "` | " << info.type << " | "
       << (info.default_value.empty() ? "*(empty)*"
                                      : "`" + info.default_value + "`")
       << " | " << md_escape(applies_to(info)) << " | "
       << (info.constraints.empty() ? "—" : md_escape(info.constraints))
       << " | " << md_escape(info.doc) << " |\n";
  }

  os << "\n## Sweep axes\n\n" << kSweepSyntax << "\n\n"
        "Scenarios that own axes (iterated inside their run function, so\n"
        "`--sweep.<axis>=...` re-declares the paper's own sweep):\n\n"
        "| scenario | owned axes |\n|---|---|\n";
  for (const ScenarioPreset& preset : scenario_registry()) {
    if (preset.own_axes[0] == '\0') continue;
    os << "| `" << preset.name << "` | `" << preset.own_axes << "` |\n";
  }

  os << "\n## Runtime timelines\n\n"
        "`experiment=runtime` drives the concurrent negotiation runtime\n"
        "(`src/runtime`): the universe's pairs negotiate as live sessions\n"
        "over an event loop, and `runtime.events` declares a replayable\n"
        "timeline. The grammar is the `runtime.events` row above; `fail`\n"
        "events cancel the session, re-route its flows over the surviving\n"
        "interconnections, and spawn a renegotiation of the affected flows\n"
        "with bandwidth oracles (the paper's §5.2 recipe); `churn` events\n"
        "replace the traffic matrix and renegotiate; `restart` events give\n"
        "one peer fresh channels without consuming a retry. Outcomes are\n"
        "bit-identical for every `threads` value; the run prints the same\n"
        "outcome digest runtime_throughput uses.\n";
}

}  // namespace nexit::sim
