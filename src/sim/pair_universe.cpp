#include "sim/pair_universe.hpp"

#include "geo/city_db.hpp"
#include "util/rng.hpp"

namespace nexit::sim {

std::vector<topology::IspPair> build_pair_universe(const UniverseConfig& config,
                                                   std::size_t min_links) {
  util::Rng rng(config.seed);
  topology::TopologyGenerator gen(geo::CityDb::builtin(), config.generator);
  const std::vector<topology::IspTopology> isps =
      gen.generate_universe(config.isp_count, rng);

  std::vector<topology::IspPair> pairs;
  for (std::size_t i = 0; i < isps.size(); ++i) {
    for (std::size_t j = i + 1; j < isps.size(); ++j) {
      auto pair = topology::make_pair_if_peers(isps[i], isps[j], min_links);
      if (pair) pairs.push_back(*std::move(pair));
    }
  }

  // Deterministic subsample when over the cap: shuffle with the universe rng
  // and truncate, so adding pairs never biases toward low ASN numbers.
  if (pairs.size() > config.max_pairs) {
    rng.shuffle(pairs);
    pairs.erase(pairs.begin() + static_cast<std::ptrdiff_t>(config.max_pairs),
                pairs.end());
  }
  return pairs;
}

}  // namespace nexit::sim
