#include "sim/distance_experiment.hpp"

#include <stdexcept>

#include "core/baselines.hpp"
#include "core/oracle_registry.hpp"
#include "metrics/metrics.hpp"
#include "traffic/traffic.hpp"
#include "util/thread_pool.hpp"

namespace nexit::sim {

namespace {

// Indices into each pair's util::fork_streams slot. The order matches the
// original serial loop's fork order (traffic, then negotiation, then — only
// when baselines are enabled — baseline), so serial output is unchanged.
constexpr std::size_t kTrafficStream = 0;
constexpr std::size_t kNegotiationStream = 1;
constexpr std::size_t kBaselineStream = 2;

/// Runs negotiation over `groups` random partitions of the flows (1 = the
/// whole set, the paper's default). Returns the combined assignment and
/// accumulates flows_moved.
routing::Assignment negotiate_in_groups(
    const routing::PairRouting& routing,
    const std::vector<traffic::Flow>& flows,
    const std::vector<std::size_t>& candidates,
    const core::NegotiationProblem& whole, const DistanceExperimentConfig& cfg,
    util::Rng& rng, DistanceSample& sample) {
  core::PreferenceConfig pc = cfg.negotiation.preferences;
  routing::Assignment result = whole.default_assignment;

  std::vector<std::size_t> order = whole.negotiable;
  if (cfg.groups > 1) rng.shuffle(order);
  const std::size_t group_size = (order.size() + cfg.groups - 1) / cfg.groups;

  for (std::size_t g = 0; g < cfg.groups; ++g) {
    const std::size_t begin = g * group_size;
    if (begin >= order.size()) break;
    const std::size_t end = std::min(order.size(), begin + group_size);

    core::NegotiationProblem problem = whole;
    problem.negotiable.assign(order.begin() + static_cast<std::ptrdiff_t>(begin),
                              order.begin() + static_cast<std::ptrdiff_t>(end));

    // Fresh oracles per group, like the serial code always had: an oracle's
    // incremental state must not leak between independent negotiations.
    const core::OracleRegistry& registry = core::OracleRegistry::global();
    const core::BuiltOracle oracle_a =
        registry.build(cfg.objective[0], {0, pc, nullptr});
    const core::BuiltOracle oracle_b =
        registry.build(cfg.objective[1], {1, pc, nullptr});

    core::NegotiationConfig ncfg = cfg.negotiation;
    ncfg.seed = rng.next_u64();
    core::NegotiationEngine engine(problem, oracle_a.get(), oracle_b.get(),
                                   ncfg);
    const core::NegotiationOutcome outcome = engine.run();
    sample.flows_moved += outcome.flows_moved;
    sample.eval_calls_full += outcome.evaluate_calls_full;
    sample.eval_calls_incremental += outcome.evaluate_calls_incremental;
    sample.eval_rows_computed += outcome.evaluate_rows_computed;
    sample.eval_rows_full_equivalent += outcome.evaluate_rows_full_equivalent;
    if (ncfg.record_trace)
      sample.rounds.insert(sample.rounds.end(), outcome.trace.begin(),
                           outcome.trace.end());
    for (std::size_t idx : problem.negotiable)
      result.ix_of_flow[idx] = outcome.assignment.ix_of_flow[idx];
  }
  (void)flows;
  (void)routing;
  (void)candidates;
  return result;
}

}  // namespace

std::vector<DistanceSample> run_distance_experiment(
    const DistanceExperimentConfig& config) {
  // Probe-build both objectives before the worker pool: build() throws
  // std::invalid_argument for unknown names and for load-dependent oracles
  // (no capacity model here); a throw inside a pool worker would terminate
  // the process instead of propagating to the caller.
  for (const core::OracleSpec& objective : config.objective) {
    (void)core::OracleRegistry::global().build(
        objective, {0, config.negotiation.preferences, nullptr});
  }

  // The paper's distance experiment needs pairs with >= 2 interconnections.
  const std::vector<topology::IspPair> pairs =
      build_pair_universe(config.universe, 2);

  // Pre-fork every pair's Rng streams (see util::fork_streams for why this
  // makes an N-thread run bit-identical to a serial one).
  util::Rng rng(config.universe.seed ^ 0x5eedf00dull);
  std::vector<std::vector<util::Rng>> streams = util::fork_streams(
      rng, pairs.size(), config.run_flow_pair_baselines ? 3 : 2);

  // Index-addressed result slots: worker i writes only samples[i], so the
  // hot path needs no locks and the output order matches the serial run.
  std::vector<DistanceSample> samples(pairs.size());

  const auto run_pair = [&pairs, &streams, &samples,
                         &config](std::size_t pair_index) {
    const topology::IspPair& pair = pairs[pair_index];
    const routing::PairRouting routing(pair);

    // Unit-size flows in both directions (the paper's distance metric counts
    // every PoP-pair flow equally).
    traffic::TrafficConfig tcfg;
    tcfg.model = traffic::WorkloadModel::kIdentical;
    util::Rng traffic_rng = streams[pair_index][kTrafficStream];
    const traffic::TrafficMatrix tm =
        traffic::TrafficMatrix::build_bidirectional(pair, tcfg, traffic_rng);

    std::vector<std::size_t> candidates(pair.interconnection_count());
    for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;

    const core::NegotiationProblem problem =
        core::make_distance_problem(routing, tm.flows(), candidates);
    const routing::Assignment optimal =
        routing::assign_min_total_km(routing, tm.flows(), candidates);

    DistanceSample s;
    s.pair_label = pair.label();
    s.interconnections = pair.interconnection_count();
    s.flow_count = tm.size();

    util::Rng pair_rng = streams[pair_index][kNegotiationStream];
    const routing::Assignment negotiated =
        negotiate_in_groups(routing, tm.flows(), candidates, problem, config,
                            pair_rng, s);

    s.default_km =
        metrics::total_flow_km(routing, tm.flows(), problem.default_assignment);
    s.optimal_km = metrics::total_flow_km(routing, tm.flows(), optimal);
    s.negotiated_km = metrics::total_flow_km(routing, tm.flows(), negotiated);
    for (int side = 0; side < 2; ++side) {
      s.default_side_km[side] = metrics::side_flow_km(
          routing, tm.flows(), problem.default_assignment, side);
      s.optimal_side_km[side] =
          metrics::side_flow_km(routing, tm.flows(), optimal, side);
      s.negotiated_side_km[side] =
          metrics::side_flow_km(routing, tm.flows(), negotiated, side);
    }

    if (config.run_flow_pair_baselines) {
      util::Rng baseline_rng = streams[pair_index][kBaselineStream];
      const routing::Assignment pareto = core::flow_pair_strategy(
          routing, tm.flows(), candidates, problem.default_assignment,
          core::FlowPairStrategy::kFlowPareto, baseline_rng);
      const routing::Assignment both = core::flow_pair_strategy(
          routing, tm.flows(), candidates, problem.default_assignment,
          core::FlowPairStrategy::kFlowBothBetter, baseline_rng);
      s.pareto_km = metrics::total_flow_km(routing, tm.flows(), pareto);
      s.bothbetter_km = metrics::total_flow_km(routing, tm.flows(), both);
    }

    // Flow-level view (Fig. 6).
    s.flow_gain_pct_optimal.reserve(tm.size());
    s.flow_gain_pct_negotiated.reserve(tm.size());
    for (std::size_t i = 0; i < tm.size(); ++i) {
      const traffic::Flow& f = tm.flows()[i];
      const double def =
          routing.total_km(f, problem.default_assignment.ix_of_flow[i]);
      const double opt = routing.total_km(f, optimal.ix_of_flow[i]);
      const double neg = routing.total_km(f, negotiated.ix_of_flow[i]);
      const double denom = def > 0.0 ? def : 1.0;
      s.flow_gain_pct_optimal.push_back((def - opt) / denom * 100.0);
      s.flow_gain_pct_negotiated.push_back((def - neg) / denom * 100.0);
      s.flow_saving_km_negotiated.push_back((def - neg) * tm.flows()[i].size);
    }

    samples[pair_index] = std::move(s);
  };

  util::ThreadPool pool(util::workers_for_threads(config.threads));
  util::parallel_for(pool, pairs.size(), run_pair);
  return samples;
}

}  // namespace nexit::sim
