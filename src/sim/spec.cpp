#include "sim/spec.hpp"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <iterator>
#include <sstream>

#include "sim/report.hpp"

namespace nexit::sim {

namespace {

// --- enum <-> string tables ---------------------------------------------
// One table per enum; merge_from_flags feeds the names to
// Flags::get_choice, so an out-of-set value dies listing exactly these —
// and the key registry lists the same names as the key's valid choices.

template <typename E>
struct Choice {
  E value;
  const char* name;
};

constexpr Choice<ExperimentKind> kExperiments[] = {
    {ExperimentKind::kDistance, "distance"},
    {ExperimentKind::kBandwidth, "bandwidth"},
    {ExperimentKind::kRuntime, "runtime"},
};
constexpr Choice<core::TurnPolicy> kTurns[] = {
    {core::TurnPolicy::kAlternate, "alternate"},
    {core::TurnPolicy::kLowerGain, "lower-gain"},
    {core::TurnPolicy::kCoinToss, "coin-toss"},
};
constexpr Choice<core::ProposalPolicy> kProposals[] = {
    {core::ProposalPolicy::kMaxCombinedGain, "max-combined"},
    {core::ProposalPolicy::kBestLocalMinImpact, "best-local"},
};
constexpr Choice<core::AcceptancePolicy> kAcceptances[] = {
    {core::AcceptancePolicy::kProtective, "protective"},
    {core::AcceptancePolicy::kAlwaysAccept, "always-accept"},
    {core::AcceptancePolicy::kVetoOwnLoss, "veto-own-loss"},
};
constexpr Choice<core::TerminationPolicy> kTerminations[] = {
    {core::TerminationPolicy::kEarly, "early"},
    {core::TerminationPolicy::kFull, "full"},
    {core::TerminationPolicy::kNegotiateAll, "negotiate-all"},
};
constexpr Choice<core::TieBreak> kTieBreaks[] = {
    {core::TieBreak::kRandom, "random"},
    {core::TieBreak::kDeterministic, "deterministic"},
};
constexpr Choice<traffic::WorkloadModel> kWorkloads[] = {
    {traffic::WorkloadModel::kGravity, "gravity"},
    {traffic::WorkloadModel::kIdentical, "identical"},
    {traffic::WorkloadModel::kUniformRandom, "uniform"},
};
constexpr Choice<capacity::UnusedLinkRule> kUnusedRules[] = {
    {capacity::UnusedLinkRule::kMedian, "median"},
    {capacity::UnusedLinkRule::kMean, "mean"},
    {capacity::UnusedLinkRule::kMax, "max"},
};
constexpr Choice<RuntimeTransport> kTransports[] = {
    {RuntimeTransport::kMemory, "memory"},
    {RuntimeTransport::kSocket, "socket"},
    {RuntimeTransport::kTcp, "tcp"},
};
constexpr Choice<RuntimeEventSpec::Kind> kEventKinds[] = {
    {RuntimeEventSpec::Kind::kStart, "start"},
    {RuntimeEventSpec::Kind::kFlowChurn, "churn"},
    {RuntimeEventSpec::Kind::kLinkFailure, "fail"},
    {RuntimeEventSpec::Kind::kPeerRestart, "restart"},
    {RuntimeEventSpec::Kind::kKill, "kill"},
    {RuntimeEventSpec::Kind::kResume, "resume"},
};

template <typename E, std::size_t N>
std::string name_of(const Choice<E> (&table)[N], E value) {
  for (const auto& c : table)
    if (c.value == value) return c.name;
  assert(false && "enum value missing from its choice table");
  return table[0].name;
}

template <typename E, std::size_t N>
std::vector<std::string> names_of(const Choice<E> (&table)[N]) {
  std::vector<std::string> out;
  for (const auto& c : table) out.emplace_back(c.name);
  return out;
}

template <typename E, std::size_t N>
std::string choices_text(const Choice<E> (&table)[N]) {
  std::string out = "one of {";
  for (std::size_t i = 0; i < N; ++i)
    out += std::string(i == 0 ? "" : ", ") + table[i].name;
  return out + "}";
}

/// Reads one choice key: current enum value is the fallback, the table is
/// the closed set. get_choice guarantees the returned string is in-table.
template <typename E, std::size_t N>
E merge_choice(const util::Flags& flags, const std::string& key,
               const Choice<E> (&table)[N], E current) {
  const std::string picked =
      flags.get_choice(key, names_of(table), name_of(table, current));
  for (const auto& c : table)
    if (picked == c.name) return c.value;
  return current;  // --help run with a malformed value: keep the fallback
}

std::size_t merge_count(const util::Flags& flags, const std::string& key,
                        std::size_t current, std::size_t max_value) {
  return util::get_count(flags, key, current, max_value);
}

// --- split / numeric helpers --------------------------------------------

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t pos = text.find(sep, begin);
    out.push_back(
        text.substr(begin, pos == std::string::npos ? pos : pos - begin));
    if (pos == std::string::npos) break;
    begin = pos + 1;
  }
  return out;
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (*end != '\0' || errno == ERANGE || text[0] == '-') return false;
  *out = v;
  return true;
}

bool parse_finite_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (*end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// --- runtime.events grammar ---------------------------------------------
// token := <kind>@<tick>/<session>[/<param>], comma-separated. `churn`
// requires a reseed param, `fail` takes an index or `busiest` (default
// busiest), `start`/`restart` take none.

constexpr const char* kEventsGrammar =
    "a comma-separated timeline: start@<tick>/<session>, "
    "churn@<tick>/<session>/<seed>, fail@<tick>/<session>[/<ix>|/busiest], "
    "restart@<tick>/<session>, kill@<tick>/<session>, "
    "resume@<tick>/<session>";

bool parse_event(const std::string& token, RuntimeEventSpec* out) {
  const std::size_t at = token.find('@');
  if (at == std::string::npos) return false;
  const std::string kind_name = token.substr(0, at);
  bool known = false;
  for (const auto& c : kEventKinds) {
    if (kind_name == c.name) {
      out->kind = c.value;
      known = true;
    }
  }
  if (!known) return false;
  const std::vector<std::string> fields = split(token.substr(at + 1), '/');
  if (fields.size() < 2) return false;
  std::uint64_t session = 0;
  if (!parse_u64(fields[0], &out->at) || !parse_u64(fields[1], &session) ||
      session > 0xffffffffull) {
    return false;
  }
  out->session = static_cast<std::uint32_t>(session);
  out->param = 0;
  switch (out->kind) {
    case RuntimeEventSpec::Kind::kStart:
    case RuntimeEventSpec::Kind::kPeerRestart:
    case RuntimeEventSpec::Kind::kKill:
    case RuntimeEventSpec::Kind::kResume:
      return fields.size() == 2;
    case RuntimeEventSpec::Kind::kFlowChurn:
      return fields.size() == 3 && parse_u64(fields[2], &out->param);
    case RuntimeEventSpec::Kind::kLinkFailure:
      if (fields.size() == 2 || (fields.size() == 3 && fields[2] == "busiest")) {
        out->param = RuntimeEventSpec::kBusiest;
        return true;
      }
      return fields.size() == 3 && parse_u64(fields[2], &out->param);
  }
  return false;
}

std::string event_text(const RuntimeEventSpec& ev) {
  std::string out = name_of(kEventKinds, ev.kind) + "@" +
                    std::to_string(ev.at) + "/" + std::to_string(ev.session);
  switch (ev.kind) {
    case RuntimeEventSpec::Kind::kStart:
    case RuntimeEventSpec::Kind::kPeerRestart:
    case RuntimeEventSpec::Kind::kKill:
    case RuntimeEventSpec::Kind::kResume:
      break;
    case RuntimeEventSpec::Kind::kFlowChurn:
      out += "/" + std::to_string(ev.param);
      break;
    case RuntimeEventSpec::Kind::kLinkFailure:
      out += ev.param == RuntimeEventSpec::kBusiest
                 ? "/busiest"
                 : "/" + std::to_string(ev.param);
      break;
  }
  return out;
}

std::string events_text(const std::vector<RuntimeEventSpec>& events) {
  std::string out;
  for (std::size_t i = 0; i < events.size(); ++i)
    out += (i == 0 ? "" : ",") + event_text(events[i]);
  return out;
}

std::vector<RuntimeEventSpec> merge_events(
    const util::Flags& flags, const std::string& key,
    const std::vector<RuntimeEventSpec>& current) {
  const std::string raw = flags.get_string(key, events_text(current));
  if (raw == events_text(current)) return current;
  std::vector<RuntimeEventSpec> events;
  if (!raw.empty()) {
    for (const std::string& token : split(raw, ',')) {
      RuntimeEventSpec ev;
      if (!parse_event(token, &ev)) {
        if (flags.help_requested()) return current;
        util::die_flag_value(key, raw,
                             std::string(kEventsGrammar) +
                                 " (bad event \"" + token + "\")");
      }
      events.push_back(ev);
    }
  }
  return events;
}

// --- runtime.fault-targets (comma-separated session ids) ----------------

std::string targets_text(const std::vector<std::uint32_t>& targets) {
  std::string out;
  for (std::size_t i = 0; i < targets.size(); ++i)
    out += (i == 0 ? "" : ",") + std::to_string(targets[i]);
  return out;
}

std::vector<std::uint32_t> merge_targets(
    const util::Flags& flags, const std::string& key,
    const std::vector<std::uint32_t>& current) {
  const std::string raw = flags.get_string(key, targets_text(current));
  if (raw == targets_text(current)) return current;
  std::vector<std::uint32_t> targets;
  if (!raw.empty()) {
    for (const std::string& token : split(raw, ',')) {
      std::uint64_t id = 0;
      if (!parse_u64(token, &id) || id > 0xffffffffull) {
        if (flags.help_requested()) return current;
        util::die_flag_value(key, raw,
                             "a comma-separated list of session ids");
      }
      targets.push_back(static_cast<std::uint32_t>(id));
    }
  }
  return targets;
}

// --- sweep axes ----------------------------------------------------------

constexpr const char* kAxisGrammar =
    "a value list `v1,v2,...` or a range `lo:hi:step` (step > 0, lo <= hi)";

/// Expands one axis value string into explicit values; exits 2 (naming the
/// `sweep.<key>` flag) on malformed syntax, empty lists, or runaway ranges.
std::vector<std::string> parse_axis_values(const util::Flags& flags,
                                           const std::string& flag_name,
                                           const std::string& raw) {
  const auto die = [&](const std::string& extra) -> std::vector<std::string> {
    if (flags.help_requested()) return {};
    util::die_flag_value(flag_name, raw,
                         std::string(kAxisGrammar) +
                             (extra.empty() ? "" : " (" + extra + ")"));
  };
  if (raw.empty()) return die("empty value list");
  // ':'-separated numerics are a range; anything else (e.g. an oracle axis
  // value like `cheat:piecewise`) falls through to the comma-list form.
  const std::vector<std::string> fields = split(raw, ':');
  bool numeric_range = fields.size() > 1;
  for (const std::string& f : fields) {
    double ignored = 0;
    numeric_range = numeric_range && parse_finite_double(f, &ignored);
  }
  if (numeric_range) {
    double lo = 0, hi = 0, step = 0;
    if (fields.size() != 3 || !parse_finite_double(fields[0], &lo) ||
        !parse_finite_double(fields[1], &hi) ||
        !parse_finite_double(fields[2], &step)) {
      return die("expected exactly lo:hi:step");
    }
    if (step <= 0.0) return die("step must be > 0");
    if (lo > hi) return die("lo must be <= hi");
    const double count_f = std::floor((hi - lo) / step + 1e-9) + 1.0;
    if (count_f > 10000.0) return die("range expands to > 10000 values");
    const auto count = static_cast<std::size_t>(count_f);
    const bool integral =
        lo == std::floor(lo) && step == std::floor(step) &&
        raw.find('.') == std::string::npos &&
        raw.find('e') == std::string::npos && raw.find('E') == std::string::npos;
    std::vector<std::string> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double v = lo + static_cast<double>(i) * step;
      values.push_back(integral
                           ? std::to_string(static_cast<std::int64_t>(v))
                           : fmt_double(v));
    }
    return values;
  }
  std::vector<std::string> values = split(raw, ',');
  for (const std::string& v : values)
    if (v.empty()) return die("empty value in list");
  return values;
}

std::string axis_values_text(const SweepAxis& axis) {
  std::string out;
  for (std::size_t i = 0; i < axis.values.size(); ++i)
    out += (i == 0 ? "" : ",") + axis.values[i];
  return out;
}

void merge_sweeps(ExperimentSpec& spec, const util::Flags& flags) {
  for (const std::string& name : flags.names_with_prefix("sweep.")) {
    const std::string key = name.substr(6);
    const SpecKeyInfo* info = find_spec_key(key);
    if (info == nullptr || key == "experiment") {
      if (flags.help_requested()) continue;
      // `experiment` is registered but never sweepable: every preset pins
      // its engine, and `custom` would print mixed figures under one digest.
      std::cerr << "error: flag --" << name
                << (info == nullptr ? ": unknown sweep axis \"" + key + "\""
                                    : ": the experiment kind cannot be swept")
                << "; sweepable keys are:";
      for (const SpecKeyInfo& k : spec_key_registry())
        if (k.key != "experiment") std::cerr << " " << k.key;
      std::cerr << "\n";
      std::exit(2);
    }
    const std::string raw = flags.get_string(name, "");
    std::vector<std::string> values = parse_axis_values(flags, name, raw);
    if (values.empty()) continue;  // --help run with a malformed axis
    spec.overridden.insert(name);
    bool replaced = false;
    for (SweepAxis& axis : spec.sweeps) {
      if (axis.key == key) {
        axis.values = std::move(values);
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      SweepAxis axis{key, std::move(values)};
      const auto pos = std::find_if(
          spec.sweeps.begin(), spec.sweeps.end(),
          [&](const SweepAxis& a) { return a.key > axis.key; });
      spec.sweeps.insert(pos, std::move(axis));
    }
  }
}

}  // namespace

unsigned kind_bit(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kDistance: return kForDistance;
    case ExperimentKind::kBandwidth: return kForBandwidth;
    case ExperimentKind::kRuntime: return kForRuntime;
  }
  return kForAllKinds;
}

std::string kinds_label(unsigned kinds) {
  if ((kinds & kForAllKinds) == kForAllKinds) return "any";
  std::string out;
  for (const auto& c : kExperiments) {
    if ((kinds & kind_bit(c.value)) != 0)
      out += std::string(out.empty() ? "" : ", ") + c.name;
  }
  return out;
}

std::string to_string(ExperimentKind kind) {
  return name_of(kExperiments, kind);
}

void ExperimentSpec::merge_from_flags(const util::Flags& flags) {
  // Declared axes first, so the overridden bookkeeping below sees them.
  merge_sweeps(*this, flags);

  // Remember which keys this source actually set: validate() rejects ones
  // the chosen experiment kind would silently ignore.
  for (const auto& [key, value] : to_key_values())
    if (flags.has(key)) overridden.insert(key);

  experiment = merge_choice(flags, "experiment", kExperiments, experiment);

  isps = merge_count(flags, "isps", isps, 1u << 20);
  seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(seed)));
  pairs = merge_count(flags, "pairs", pairs, 1u << 20);
  pop_min = merge_count(flags, "pop-min", pop_min, 10000);
  pop_max = merge_count(flags, "pop-max", pop_max, 10000);

  objective[0] = core::OracleSpec::parse(
      flags.get_string("oracle-a", objective[0].to_string()));
  objective[1] = core::OracleSpec::parse(
      flags.get_string("oracle-b", objective[1].to_string()));

  pref_range = static_cast<int>(flags.get_int("pref-range", pref_range));
  turn = merge_choice(flags, "turn", kTurns, turn);
  proposal = merge_choice(flags, "proposal", kProposals, proposal);
  acceptance = merge_choice(flags, "acceptance", kAcceptances, acceptance);
  termination = merge_choice(flags, "termination", kTerminations, termination);
  tie_break = merge_choice(flags, "tie-break", kTieBreaks, tie_break);
  reassign = flags.get_double("reassign", reassign);
  rollback = flags.get_bool("rollback", rollback);
  incremental = flags.get_bool("incremental", incremental);
  verify_incremental = static_cast<int>(
      flags.get_int("verify-incremental", verify_incremental));

  traffic_model = merge_choice(flags, "traffic", kWorkloads, traffic_model);
  capacity_pow2 = flags.get_bool("capacity-pow2", capacity_pow2);
  capacity_unused =
      merge_choice(flags, "capacity-unused", kUnusedRules, capacity_unused);
  max_failures = merge_count(flags, "max-failures", max_failures, 10000);

  flow_baselines = flags.get_bool("flow-baselines", flow_baselines);
  unilateral = flags.get_bool("unilateral", unilateral);
  groups = merge_count(flags, "groups", groups, 1u << 20);
  threads = merge_count(flags, "threads", threads, 1024);

  runtime.sessions =
      merge_count(flags, "runtime.sessions", runtime.sessions, 1u << 20);
  runtime.transport =
      merge_choice(flags, "runtime.transport", kTransports, runtime.transport);
  runtime.stagger = merge_count(flags, "runtime.stagger",
                                static_cast<std::size_t>(runtime.stagger),
                                1u << 20);
  runtime.min_links =
      merge_count(flags, "runtime.min-links", runtime.min_links, 1000);
  runtime.burst = merge_count(flags, "runtime.burst", runtime.burst, 1u << 30);
  runtime.handshake_deadline =
      merge_count(flags, "runtime.handshake-deadline",
                  static_cast<std::size_t>(runtime.handshake_deadline),
                  1u << 30);
  runtime.round_timeout = merge_count(
      flags, "runtime.round-timeout",
      static_cast<std::size_t>(runtime.round_timeout), 1u << 30);
  runtime.max_attempts =
      merge_count(flags, "runtime.max-attempts", runtime.max_attempts, 1000);
  runtime.max_ticks = merge_count(flags, "runtime.max-ticks",
                                  static_cast<std::size_t>(runtime.max_ticks),
                                  1u << 30);
  runtime.drop = flags.get_double("runtime.drop", runtime.drop);
  runtime.corrupt = flags.get_double("runtime.corrupt", runtime.corrupt);
  runtime.fault_targets =
      merge_targets(flags, "runtime.fault-targets", runtime.fault_targets);
  runtime.events = merge_events(flags, "runtime.events", runtime.events);
  runtime.snapshot_dir =
      flags.get_string("runtime.snapshot-dir", runtime.snapshot_dir);

  obs.trace = flags.get_string("obs.trace", obs.trace);
  obs.timing = flags.get_bool("obs.timing", obs.timing);

  dist.workers = merge_count(flags, "dist.workers", dist.workers, 256);
  dist.connect = flags.get_string("dist.connect", dist.connect);
  dist.timeout_ms =
      merge_count(flags, "dist.timeout-ms",
                  static_cast<std::size_t>(dist.timeout_ms), 1u << 30);
  dist.retries = merge_count(flags, "dist.retries", dist.retries, 100);
  dist.log_dir = flags.get_string("dist.log-dir", dist.log_dir);
}

void ExperimentSpec::merge_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: --spec: cannot read " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> assignments;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.find('=') == std::string::npos) {
      std::cerr << "error: spec file " << path << " line " << line_no
                << ": expected key=value, got \"" << line << "\"\n";
      std::exit(2);
    }
    assignments.push_back(line);
  }

  // The file reuses the whole Flags machinery: malformed values die through
  // the same get_* diagnostics as the command line — the error context makes
  // them name this file — and after the merge has queried every key the
  // spec understands, the leftovers are exactly the unknown keys, rejected
  // the way util::reject_unknown rejects flags.
  const util::FlagErrorContext context("spec file " + path);
  const util::Flags file_flags(assignments);
  merge_from_flags(file_flags);
  const std::vector<std::string> unknown = file_flags.unknown();
  if (!unknown.empty()) {
    std::cerr << "error: spec file " << path << ": unknown key"
              << (unknown.size() > 1 ? "s" : "") << ":";
    for (const std::string& key : unknown) std::cerr << " " << key;
    std::cerr << "\nvalid keys are:";
    for (const std::string& key : file_flags.queried())
      std::cerr << " " << key;
    std::cerr << " sweep.<key>";
    std::cerr << "\n";
    std::exit(2);
  }
}

std::vector<std::pair<std::string, std::string>> ExperimentSpec::to_key_values()
    const {
  std::vector<std::pair<std::string, std::string>> kv;
  kv.emplace_back("experiment", to_string(experiment));
  kv.emplace_back("isps", std::to_string(isps));
  // Serialized via the signed spelling: the parser is get_int (int64), so
  // a seed with the top bit set must round-trip as its two's-complement
  // twin ("-1") rather than a uint64 literal get_int cannot read back.
  kv.emplace_back("seed", std::to_string(static_cast<std::int64_t>(seed)));
  kv.emplace_back("pairs", std::to_string(pairs));
  kv.emplace_back("pop-min", std::to_string(pop_min));
  kv.emplace_back("pop-max", std::to_string(pop_max));
  kv.emplace_back("oracle-a", objective[0].to_string());
  kv.emplace_back("oracle-b", objective[1].to_string());
  kv.emplace_back("pref-range", std::to_string(pref_range));
  kv.emplace_back("turn", name_of(kTurns, turn));
  kv.emplace_back("proposal", name_of(kProposals, proposal));
  kv.emplace_back("acceptance", name_of(kAcceptances, acceptance));
  kv.emplace_back("termination", name_of(kTerminations, termination));
  kv.emplace_back("tie-break", name_of(kTieBreaks, tie_break));
  kv.emplace_back("reassign", fmt_double(reassign));
  kv.emplace_back("rollback", rollback ? "true" : "false");
  kv.emplace_back("incremental", incremental ? "true" : "false");
  kv.emplace_back("verify-incremental", std::to_string(verify_incremental));
  kv.emplace_back("traffic", name_of(kWorkloads, traffic_model));
  kv.emplace_back("capacity-pow2", capacity_pow2 ? "true" : "false");
  kv.emplace_back("capacity-unused", name_of(kUnusedRules, capacity_unused));
  kv.emplace_back("max-failures", std::to_string(max_failures));
  kv.emplace_back("flow-baselines", flow_baselines ? "true" : "false");
  kv.emplace_back("unilateral", unilateral ? "true" : "false");
  kv.emplace_back("groups", std::to_string(groups));
  kv.emplace_back("threads", std::to_string(threads));
  kv.emplace_back("runtime.sessions", std::to_string(runtime.sessions));
  kv.emplace_back("runtime.transport", name_of(kTransports, runtime.transport));
  kv.emplace_back("runtime.stagger", std::to_string(runtime.stagger));
  kv.emplace_back("runtime.min-links", std::to_string(runtime.min_links));
  kv.emplace_back("runtime.burst", std::to_string(runtime.burst));
  kv.emplace_back("runtime.handshake-deadline",
                  std::to_string(runtime.handshake_deadline));
  kv.emplace_back("runtime.round-timeout",
                  std::to_string(runtime.round_timeout));
  kv.emplace_back("runtime.max-attempts", std::to_string(runtime.max_attempts));
  kv.emplace_back("runtime.max-ticks", std::to_string(runtime.max_ticks));
  kv.emplace_back("runtime.drop", fmt_double(runtime.drop));
  kv.emplace_back("runtime.corrupt", fmt_double(runtime.corrupt));
  kv.emplace_back("runtime.fault-targets", targets_text(runtime.fault_targets));
  kv.emplace_back("runtime.events", events_text(runtime.events));
  kv.emplace_back("runtime.snapshot-dir", runtime.snapshot_dir);
  kv.emplace_back("obs.trace", obs.trace);
  kv.emplace_back("obs.timing", obs.timing ? "true" : "false");
  kv.emplace_back("dist.workers", std::to_string(dist.workers));
  kv.emplace_back("dist.connect", dist.connect);
  kv.emplace_back("dist.timeout-ms", std::to_string(dist.timeout_ms));
  kv.emplace_back("dist.retries", std::to_string(dist.retries));
  kv.emplace_back("dist.log-dir", dist.log_dir);
  for (const SweepAxis& axis : sweeps)
    kv.emplace_back("sweep." + axis.key, axis_values_text(axis));
  return kv;
}

std::string ExperimentSpec::value_of(const std::string& key) const {
  for (const auto& [k, v] : to_key_values())
    if (k == key) return v;
  return {};
}

const SweepAxis* ExperimentSpec::axis(const std::string& key) const {
  for (const SweepAxis& a : sweeps)
    if (a.key == key) return &a;
  return nullptr;
}

std::string ExperimentSpec::to_text() const {
  std::ostringstream os;
  for (const auto& [key, value] : to_key_values())
    os << key << "=" << value << "\n";
  return os.str();
}

core::OracleSpec ExperimentSpec::resolved_objective(int side) const {
  core::OracleSpec resolved = objective[side];
  if (resolved.name == "default") {
    resolved.name =
        experiment == ExperimentKind::kBandwidth ? "bandwidth" : "distance";
  }
  return resolved;
}

bool ExperimentSpec::validate(std::string* error) const {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (experiment != ExperimentKind::kRuntime) {
    // The runtime builds its own oracles per session kind (distance for
    // initial/churn sessions, bandwidth for failure renegotiations); the
    // objective keys are inert for it and checked below like any other.
    const core::OracleRegistry& registry = core::OracleRegistry::global();
    for (int side = 0; side < 2; ++side) {
      const core::OracleSpec resolved = resolved_objective(side);
      const core::OracleRegistry::Entry* entry = registry.find(resolved.name);
      const std::string key = side == 0 ? "oracle-a" : "oracle-b";
      if (entry == nullptr) {
        std::string msg = key + ": unknown oracle '" + resolved.name +
                          "'; valid names (optionally behind \"cheat:\"):";
        for (const std::string& name : registry.names()) msg += " " + name;
        msg += " default";
        return fail(msg);
      }
      if (experiment == ExperimentKind::kDistance && entry->needs_capacities) {
        return fail(key + ": oracle '" + resolved.name +
                    "' needs link capacities, which only experiment=bandwidth "
                    "computes");
      }
    }
  }
  if (groups == 0) return fail("groups: must be >= 1");
  if (pop_min > pop_max) return fail("pop-min: must be <= pop-max");
  if (pref_range < 1) return fail("pref-range: must be >= 1");
  if (isps < 2) return fail("isps: need at least 2 ISPs to form a pair");
  if (pairs == 0) return fail("pairs: must be >= 1");

  if (experiment == ExperimentKind::kRuntime) {
    if (runtime.max_attempts < 1)
      return fail("runtime.max-attempts: must be >= 1");
    if (runtime.min_links < 1) return fail("runtime.min-links: must be >= 1");
    // Events and fault targets index the initial sessions. With an explicit
    // session count the bound is known now; with the one-per-pair default it
    // is only known after the universe is built (the runtime re-checks).
    if (runtime.sessions > 0) {
      for (const RuntimeEventSpec& ev : runtime.events) {
        if (ev.session >= runtime.sessions) {
          return fail("runtime.events: event \"" + event_text(ev) +
                      "\" targets session " + std::to_string(ev.session) +
                      ", but only " + std::to_string(runtime.sessions) +
                      " sessions are declared");
        }
      }
      for (std::uint32_t target : runtime.fault_targets) {
        if (target >= runtime.sessions) {
          return fail("runtime.fault-targets: session " +
                      std::to_string(target) + " will not exist (only " +
                      std::to_string(runtime.sessions) + " declared)");
        }
      }
    }
    // Crash-recovery timelines need durable state: only the in-memory
    // transport keeps all in-flight bytes in the journal's reach (kernel
    // socket buffers are not part of the durable snapshot). Kill/resume
    // must also alternate per session — the runtime::Scenario re-checks,
    // but a spec should fail fast with the friendly exit-2 message.
    {
      bool any_kill = false;
      for (const RuntimeEventSpec& ev : runtime.events) {
        any_kill |= ev.kind == RuntimeEventSpec::Kind::kKill ||
                    ev.kind == RuntimeEventSpec::Kind::kResume;
      }
      if (any_kill && runtime.transport != RuntimeTransport::kMemory) {
        return fail(
            "runtime.events: kill/resume events require "
            "runtime.transport=memory (kernel socket buffers are not part "
            "of the durable state)");
      }
      if (any_kill) {
        std::vector<std::size_t> order(runtime.events.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return runtime.events[a].at < runtime.events[b].at;
                         });
        std::map<std::uint32_t, bool> down;
        for (std::size_t i : order) {
          const RuntimeEventSpec& ev = runtime.events[i];
          if (ev.kind == RuntimeEventSpec::Kind::kKill) {
            if (down[ev.session]) {
              return fail("runtime.events: event \"" + event_text(ev) +
                          "\" kills session " + std::to_string(ev.session) +
                          " twice without a resume in between");
            }
            down[ev.session] = true;
          } else if (ev.kind == RuntimeEventSpec::Kind::kResume) {
            if (!down[ev.session]) {
              return fail("runtime.events: event \"" + event_text(ev) +
                          "\" resumes session " + std::to_string(ev.session) +
                          " that no earlier kill took down");
            }
            down[ev.session] = false;
          }
        }
      }
    }
  }

  // Distributed execution shards sweep points (or offloads a whole runtime
  // timeline); a single distance/bandwidth point has nothing to shard, so
  // an explicit dist.* key there is the same silent-misconfiguration mode
  // as a locked sweep axis and gets the same exit-2 discipline. Explicit
  // defaults stay legal (serialized specs spell out every key).
  {
    const ExperimentSpec dist_defaults;
    if (experiment != ExperimentKind::kRuntime && sweeps.empty()) {
      for (const char* key : {"dist.workers", "dist.connect",
                              "dist.timeout-ms", "dist.retries",
                              "dist.log-dir"}) {
        if (overridden.count(key) > 0 &&
            value_of(key) != dist_defaults.value_of(key)) {
          return fail(std::string(key) +
                      ": distributed execution needs declared sweep axes or "
                      "experiment=runtime — a single-point run has nothing "
                      "to shard");
        }
      }
    }
  }
  if (dist.workers > 0 && !dist.connect.empty()) {
    return fail("dist.connect: mutually exclusive with dist.workers — spawn "
                "local workers or connect to remote daemons, not both");
  }
  if (dist.enabled()) {
    if (!obs.trace.empty()) {
      return fail("obs.trace: the trace is a per-process artifact; it cannot "
                  "represent a run sharded across workers — drop dist.* or "
                  "the trace");
    }
    if (obs.timing) {
      return fail("obs.timing: the wall-clock phase profile is per-process; "
                  "it cannot represent a run sharded across workers — drop "
                  "dist.* or the profile");
    }
    if (dist.timeout_ms == 0) return fail("dist.timeout-ms: must be >= 1");
  }
  if (!dist.connect.empty()) {
    // Endpoint grammar checked up front: a typo'd endpoint must die before
    // any engine work, like every other malformed value.
    for (const std::string& endpoint : split(dist.connect, ',')) {
      const std::size_t colon = endpoint.rfind(':');
      bool numeric = colon != std::string::npos && colon > 0 &&
                     colon + 1 < endpoint.size();
      for (std::size_t i = colon + 1; numeric && i < endpoint.size(); ++i)
        numeric = endpoint[i] >= '0' && endpoint[i] <= '9';
      if (!numeric) {
        return fail("dist.connect: malformed endpoint \"" + endpoint +
                    "\" — expected host:port");
      }
    }
  }

  // Keys only some experiment kinds consume: accepting an explicit non-
  // default value the run would ignore is the same silent-misconfiguration
  // failure mode util::reject_unknown exists to prevent. Explicit *default*
  // values stay legal so a fully serialized spec (which spells out every
  // key) remains loadable as a --spec file — a validated spec never carries
  // non-default inert keys, so the round trip is safe. The applicability
  // mask lives in the key registry, the same metadata --help-spec prints.
  const ExperimentSpec defaults;
  const unsigned kind = kind_bit(experiment);
  for (const SpecKeyInfo& info : spec_key_registry()) {
    if (info.sweep_only || (info.kinds & kind) != 0) continue;
    if (overridden.count(info.key) > 0 &&
        value_of(info.key) != defaults.value_of(info.key)) {
      return fail(info.key + ": only meaningful for experiment=" +
                  kinds_label(info.kinds) +
                  " — this run would silently ignore it");
    }
  }

  // Swept keys must be meaningful for the kind too: every point of a
  // `sweep.groups` axis on a bandwidth run would silently ignore its value.
  for (const SweepAxis& a : sweeps) {
    const SpecKeyInfo* info = find_spec_key(a.key);
    if (info == nullptr) return fail("sweep." + a.key + ": unknown axis");
    if (a.values.empty()) return fail("sweep." + a.key + ": empty axis");
    if (!info->sweep_only && (info->kinds & kind) == 0) {
      return fail("sweep." + a.key + ": key is only meaningful for experiment=" +
                  kinds_label(info->kinds) +
                  " — every point of this sweep would silently ignore it");
    }
  }
  return true;
}

UniverseConfig ExperimentSpec::universe() const {
  UniverseConfig u;
  u.isp_count = isps;
  u.seed = seed;
  u.max_pairs = pairs;
  u.generator.min_pops = pop_min;
  u.generator.max_pops = pop_max;
  return u;
}

std::string ExperimentSpec::universe_summary() const {
  return sim::universe_summary(universe());
}

core::NegotiationConfig ExperimentSpec::to_negotiation_config() const {
  core::NegotiationConfig c;
  c.preferences.range = pref_range;
  c.turn = turn;
  c.proposal = proposal;
  c.acceptance = acceptance;
  c.termination = termination;
  c.tie_break = tie_break;
  c.reassign_traffic_fraction = reassign;
  c.settlement_rollback = rollback;
  c.incremental_evaluation = incremental;
  c.verify_incremental_every = verify_incremental;
  // The trace writer replays the engine's per-round history, so requesting
  // a trace turns on round recording everywhere the spec reaches (both
  // experiment engines and the runtime sessions).
  c.record_trace = !obs.trace.empty();
  return c;
}

DistanceExperimentConfig ExperimentSpec::to_distance_config() const {
  assert(experiment == ExperimentKind::kDistance);
  DistanceExperimentConfig cfg;
  cfg.universe = universe();
  cfg.negotiation = to_negotiation_config();
  cfg.objective[0] = resolved_objective(0);
  cfg.objective[1] = resolved_objective(1);
  cfg.run_flow_pair_baselines = flow_baselines;
  cfg.groups = groups;
  cfg.threads = threads;
  return cfg;
}

BandwidthExperimentConfig ExperimentSpec::to_bandwidth_config() const {
  assert(experiment == ExperimentKind::kBandwidth);
  BandwidthExperimentConfig cfg;
  cfg.universe = universe();
  cfg.negotiation = to_negotiation_config();
  cfg.objective[0] = resolved_objective(0);
  cfg.objective[1] = resolved_objective(1);
  cfg.traffic.model = traffic_model;
  cfg.capacity.round_up_power_of_two = capacity_pow2;
  cfg.capacity.unused_rule = capacity_unused;
  cfg.include_unilateral = unilateral;
  cfg.max_failures_per_pair = max_failures;
  cfg.threads = threads;
  return cfg;
}

std::vector<std::vector<std::pair<std::string, std::string>>> expand_sweep(
    const std::vector<SweepAxis>& axes) {
  std::vector<std::vector<std::pair<std::string, std::string>>> points;
  if (axes.empty()) return points;
  std::size_t total = 1;
  for (const SweepAxis& a : axes) total *= a.values.empty() ? 1 : a.values.size();
  points.reserve(total);
  std::vector<std::size_t> odometer(axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::vector<std::pair<std::string, std::string>> point;
    point.reserve(axes.size());
    for (std::size_t i = 0; i < axes.size(); ++i)
      point.emplace_back(axes[i].key, axes[i].values[odometer[i]]);
    points.push_back(std::move(point));
    // Rightmost axis fastest: the innermost loop of the nested-for order.
    for (std::size_t i = axes.size(); i-- > 0;) {
      if (++odometer[i] < axes[i].values.size()) break;
      odometer[i] = 0;
    }
  }
  return points;
}

// ------------------------------------------------------------------------
// Key metadata registry: the single source for --help-spec, the generated
// docs/SPEC_REFERENCE.md, and validate()'s kind-applicability checks.
// Defaults are derived from a default-constructed spec (never typed twice);
// choice constraints come from the same tables the parser reads.
// ------------------------------------------------------------------------

namespace {

struct KeyDoc {
  const char* key;
  const char* type;
  unsigned kinds;
  std::string constraints;
  const char* doc;
};

std::vector<SpecKeyInfo> build_key_registry() {
  const ExperimentSpec defaults;
  const std::string oracle_names = [] {
    std::string out = "a registry oracle (";
    bool first = true;
    for (const std::string& n : core::OracleRegistry::global().names()) {
      out += std::string(first ? "" : ", ") + n;
      first = false;
    }
    return out + ") or `default`, optionally behind `cheat:`";
  }();
  const KeyDoc docs[] = {
      {"experiment", "choice", kForAllKinds, choices_text(kExperiments),
       "Which engine runs: the paper's distance or bandwidth experiment, or "
       "the concurrent negotiation runtime with a declared timeline."},
      {"isps", "count", kForAllKinds, "integer in [0, 1048576]",
       "Synthetic ISPs in the universe (the paper used 65)."},
      {"seed", "int", kForAllKinds, "",
       "Root RNG seed; every per-pair/per-session stream forks from it "
       "deterministically."},
      {"pairs", "count", kForAllKinds, "integer in [0, 1048576]",
       "Upper bound on ISP pairs drawn from the universe."},
      {"pop-min", "count", kForAllKinds, "integer in [0, 10000]",
       "Minimum PoPs per generated ISP."},
      {"pop-max", "count", kForAllKinds, "integer in [0, 10000]",
       "Maximum PoPs per generated ISP."},
      {"oracle-a", "oracle", kForDistance | kForBandwidth, oracle_names,
       "Side A's objective; `default` resolves per experiment kind."},
      {"oracle-b", "oracle", kForDistance | kForBandwidth, oracle_names,
       "Side B's objective; `default` resolves per experiment kind."},
      {"pref-range", "int", kForAllKinds, "integer >= 1",
       "Preference-class range P (paper §4.1)."},
      {"turn", "choice", kForAllKinds, choices_text(kTurns),
       "Whose turn it is to propose (paper §4.2)."},
      {"proposal", "choice", kForAllKinds, choices_text(kProposals),
       "Which candidate move the proposer picks (paper §4.2)."},
      {"acceptance", "choice", kForAllKinds, choices_text(kAcceptances),
       "When the responder accepts a proposal (paper §4.2)."},
      {"termination", "choice", kForAllKinds, choices_text(kTerminations),
       "When the negotiation stops (paper §4.2)."},
      {"tie-break", "choice", kForDistance | kForBandwidth,
       choices_text(kTieBreaks),
       "Tie-break among equally good proposals; the runtime always forces "
       "`deterministic` (the wire-agent contract)."},
      {"reassign", "double", kForAllKinds, "finite, fraction of traffic",
       "Reassignment quantum (paper: 0.05); only load-dependent oracles "
       "honour it."},
      {"rollback", "bool", kForAllKinds, "",
       "Settlement rollback of tentative moves the final agreement dropped."},
      {"incremental", "bool", kForAllKinds, "",
       "Delta-driven oracle re-evaluation (bit-identical to full recompute; "
       "see docs/ARCHITECTURE.md)."},
      {"verify-incremental", "int", kForAllKinds, "0 = build default, -1 = off",
       "Cross-check incremental evaluations against full recomputes every "
       "Nth refresh."},
      {"traffic", "choice", kForBandwidth | kForRuntime,
       choices_text(kWorkloads),
       "Workload model for PoP weights (bandwidth experiment) / session "
       "traffic shape (runtime)."},
      {"capacity-pow2", "bool", kForBandwidth, "",
       "Round link capacities up to powers of two (§5.2 alternate model)."},
      {"capacity-unused", "choice", kForBandwidth, choices_text(kUnusedRules),
       "Capacity rule for links unused by the baseline routing."},
      {"max-failures", "count", kForBandwidth, "integer in [0, 10000]",
       "Interconnection failures sampled per pair."},
      {"flow-baselines", "bool", kForDistance, "",
       "Also run the Fig. 5 flow-pair strawman strategies."},
      {"unilateral", "bool", kForBandwidth, "",
       "Also run the Fig. 8 upstream-only LP series."},
      {"groups", "count", kForDistance, "integer in [1, 1048576]",
       "Split the flow set into k independently negotiated groups (§5.1)."},
      {"threads", "count", kForAllKinds, "integer in [0, 1024]",
       "Worker threads; 0 = auto-detect. Results are bit-identical for "
       "every value."},
      {"runtime.sessions", "count", kForRuntime, "integer in [0, 1048576]",
       "Initial sessions; 0 = one per universe pair, larger counts cycle "
       "the pairs with per-session traffic."},
      {"runtime.transport", "choice", kForRuntime, choices_text(kTransports),
       "Channel kind: in-memory, fd-backed AF_UNIX socket pairs, or TCP "
       "loopback pairs (src/dist)."},
      {"runtime.stagger", "count", kForRuntime, "virtual ticks",
       "Session i starts at tick i * stagger (start@ events override)."},
      {"runtime.min-links", "count", kForRuntime, "integer >= 1",
       "Universe pairs need at least this many interconnections (failures "
       "need survivors)."},
      {"runtime.burst", "count", kForRuntime, "0 = run to stall",
       "Pump steps before a session yields its worker; small bursts let "
       "timeline events land genuinely mid-negotiation."},
      {"runtime.handshake-deadline", "count", kForRuntime, "virtual ticks",
       "Attempts still in the handshake after this are torn down (and "
       "retried)."},
      {"runtime.round-timeout", "count", kForRuntime, "virtual ticks",
       "Mid-session ticks without progress before teardown."},
      {"runtime.max-attempts", "count", kForRuntime, "integer >= 1",
       "Total attempts per session (first try plus retries, fresh channels "
       "each)."},
      {"runtime.max-ticks", "count", kForRuntime, "virtual ticks",
       "Virtual-clock horizon; still-live sessions are cancelled past it."},
      {"runtime.drop", "double", kForRuntime, "probability in [0, 1]",
       "Whole-frame drop probability per send on faulted transports."},
      {"runtime.corrupt", "double", kForRuntime, "probability in [0, 1]",
       "Single-byte corruption probability per send on faulted transports."},
      {"runtime.fault-targets", "list", kForRuntime,
       "comma-separated session ids",
       "Sessions whose transport gets the fault injection (empty = all)."},
      {"runtime.events", "events", kForRuntime, kEventsGrammar,
       "The declared timeline: staggered starts, flow churn, mid-session "
       "link failure, peer restarts, and crash-recovery (kill wipes a "
       "session's in-memory state, resume restores it from the durable "
       "snapshot+WAL; requires transport=memory, and the resumed run's "
       "record is byte-identical to an uninterrupted one)."},
      {"runtime.snapshot-dir", "string", kForRuntime, "output directory path",
       "Mirror session journals (snapshot + WAL frames) here for "
       "post-mortems and CI artifacts. Empty = in-memory journaling only; "
       "journaling itself is implied by any kill/resume event."},
      {"obs.trace", "string", kForAllKinds, "output file path",
       "Write a Chrome trace_event JSON (Perfetto-loadable) negotiation "
       "timeline here; logical clocks only, byte-identical across "
       "--threads=N. Empty = no trace."},
      {"obs.timing", "bool", kForAllKinds, "",
       "Wall-clock phase profile (digest-excluded `timing` JSON section); "
       "off = disarmed timers, provably zero overhead."},
      {"dist.workers", "count", kForAllKinds, "integer in [0, 256]",
       "Spawn-local worker processes to shard sweep points (or a runtime "
       "timeline) across; 0 = in-process. The JSON record and sweep digest "
       "are byte-identical for every value."},
      {"dist.connect", "list", kForAllKinds,
       "comma-separated host:port endpoints",
       "Connect to running `nexit_workerd --listen` daemons instead of "
       "spawning local workers (mutually exclusive with dist.workers)."},
      {"dist.timeout-ms", "count", kForAllKinds, "milliseconds >= 1",
       "Per-job deadline; a worker silent past it is declared dead and its "
       "job reassigned (bounded by dist.retries)."},
      {"dist.retries", "count", kForAllKinds, "integer in [0, 100]",
       "Reassignments allowed per job after worker death/timeout before the "
       "run fails."},
      {"dist.log-dir", "string", kForAllKinds, "directory path",
       "Directory for spawn-local worker logs (worker<i>.log); empty = "
       "/dev/null."},
  };

  std::vector<SpecKeyInfo> registry;
  for (const KeyDoc& d : docs) {
    SpecKeyInfo info;
    info.key = d.key;
    info.type = d.type;
    info.doc = d.doc;
    info.constraints = d.constraints;
    info.default_value = defaults.value_of(d.key);
    info.kinds = d.kinds;
    registry.push_back(std::move(info));
  }

  // Sweep-only axes: virtual keys a preset's run function maps to config
  // variants. They have no scalar value; `sweep.<name>=...` is their only
  // spelling.
  const auto sweep_only = [&registry](const char* key, const char* owner,
                                      const std::string& choices,
                                      const char* doc,
                                      const std::string& default_values) {
    SpecKeyInfo info;
    info.key = key;
    info.type = "choice";
    info.doc = doc;
    info.constraints = choices;
    info.default_value = default_values;
    info.kinds = kForDistance | kForBandwidth;
    info.sweep_only = true;
    info.owner_scenario = owner;
    registry.push_back(std::move(info));
  };
  sweep_only("model", "abl_models",
             "one of {paper, identical, uniform, pow2, unused-max, piecewise}",
             "abl_models variant axis: §5.2 alternate workload / capacity / "
             "metric models, one deviation from the paper model per value.",
             "paper,identical,uniform,pow2,unused-max,piecewise");
  sweep_only("policy", "abl_policies",
             "one of {paper, lower-gain, coin-toss, full, negotiate-all, "
             "best-local}",
             "abl_policies variant axis: §4 turn / termination / proposal "
             "policy combinations, one deviation from the paper protocol "
             "per value.",
             "paper,lower-gain,coin-toss,full,negotiate-all,best-local");
  return registry;
}

}  // namespace

const std::vector<SpecKeyInfo>& spec_key_registry() {
  static const std::vector<SpecKeyInfo> registry = build_key_registry();
  return registry;
}

const SpecKeyInfo* find_spec_key(const std::string& key) {
  for (const SpecKeyInfo& info : spec_key_registry())
    if (info.key == key) return &info;
  return nullptr;
}

}  // namespace nexit::sim
