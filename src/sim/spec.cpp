#include "sim/spec.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>

#include "sim/report.hpp"

namespace nexit::sim {

namespace {

// --- enum <-> string tables ---------------------------------------------
// One table per enum; merge_from_flags feeds the names to
// Flags::get_choice, so an out-of-set value dies listing exactly these.

template <typename E>
struct Choice {
  E value;
  const char* name;
};

constexpr Choice<ExperimentKind> kExperiments[] = {
    {ExperimentKind::kDistance, "distance"},
    {ExperimentKind::kBandwidth, "bandwidth"},
};
constexpr Choice<core::TurnPolicy> kTurns[] = {
    {core::TurnPolicy::kAlternate, "alternate"},
    {core::TurnPolicy::kLowerGain, "lower-gain"},
    {core::TurnPolicy::kCoinToss, "coin-toss"},
};
constexpr Choice<core::ProposalPolicy> kProposals[] = {
    {core::ProposalPolicy::kMaxCombinedGain, "max-combined"},
    {core::ProposalPolicy::kBestLocalMinImpact, "best-local"},
};
constexpr Choice<core::AcceptancePolicy> kAcceptances[] = {
    {core::AcceptancePolicy::kProtective, "protective"},
    {core::AcceptancePolicy::kAlwaysAccept, "always-accept"},
    {core::AcceptancePolicy::kVetoOwnLoss, "veto-own-loss"},
};
constexpr Choice<core::TerminationPolicy> kTerminations[] = {
    {core::TerminationPolicy::kEarly, "early"},
    {core::TerminationPolicy::kFull, "full"},
    {core::TerminationPolicy::kNegotiateAll, "negotiate-all"},
};
constexpr Choice<core::TieBreak> kTieBreaks[] = {
    {core::TieBreak::kRandom, "random"},
    {core::TieBreak::kDeterministic, "deterministic"},
};
constexpr Choice<traffic::WorkloadModel> kWorkloads[] = {
    {traffic::WorkloadModel::kGravity, "gravity"},
    {traffic::WorkloadModel::kIdentical, "identical"},
    {traffic::WorkloadModel::kUniformRandom, "uniform"},
};
constexpr Choice<capacity::UnusedLinkRule> kUnusedRules[] = {
    {capacity::UnusedLinkRule::kMedian, "median"},
    {capacity::UnusedLinkRule::kMean, "mean"},
    {capacity::UnusedLinkRule::kMax, "max"},
};

template <typename E, std::size_t N>
std::string name_of(const Choice<E> (&table)[N], E value) {
  for (const auto& c : table)
    if (c.value == value) return c.name;
  assert(false && "enum value missing from its choice table");
  return table[0].name;
}

template <typename E, std::size_t N>
std::vector<std::string> names_of(const Choice<E> (&table)[N]) {
  std::vector<std::string> out;
  for (const auto& c : table) out.emplace_back(c.name);
  return out;
}

/// Reads one choice key: current enum value is the fallback, the table is
/// the closed set. get_choice guarantees the returned string is in-table.
template <typename E, std::size_t N>
E merge_choice(const util::Flags& flags, const std::string& key,
               const Choice<E> (&table)[N], E current) {
  const std::string picked =
      flags.get_choice(key, names_of(table), name_of(table, current));
  for (const auto& c : table)
    if (picked == c.name) return c.value;
  return current;  // --help run with a malformed value: keep the fallback
}

std::size_t merge_count(const util::Flags& flags, const std::string& key,
                        std::size_t current, std::size_t max_value) {
  return util::get_count(flags, key, current, max_value);
}

}  // namespace

std::string to_string(ExperimentKind kind) {
  return name_of(kExperiments, kind);
}

void ExperimentSpec::merge_from_flags(const util::Flags& flags) {
  // Remember which keys this source actually set: validate() rejects ones
  // the chosen experiment kind would silently ignore.
  for (const auto& [key, value] : to_key_values())
    if (flags.has(key)) overridden.insert(key);

  experiment = merge_choice(flags, "experiment", kExperiments, experiment);

  isps = merge_count(flags, "isps", isps, 1u << 20);
  seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(seed)));
  pairs = merge_count(flags, "pairs", pairs, 1u << 20);
  pop_min = merge_count(flags, "pop-min", pop_min, 10000);
  pop_max = merge_count(flags, "pop-max", pop_max, 10000);

  objective[0] = core::OracleSpec::parse(
      flags.get_string("oracle-a", objective[0].to_string()));
  objective[1] = core::OracleSpec::parse(
      flags.get_string("oracle-b", objective[1].to_string()));

  pref_range = static_cast<int>(flags.get_int("pref-range", pref_range));
  turn = merge_choice(flags, "turn", kTurns, turn);
  proposal = merge_choice(flags, "proposal", kProposals, proposal);
  acceptance = merge_choice(flags, "acceptance", kAcceptances, acceptance);
  termination = merge_choice(flags, "termination", kTerminations, termination);
  tie_break = merge_choice(flags, "tie-break", kTieBreaks, tie_break);
  reassign = flags.get_double("reassign", reassign);
  rollback = flags.get_bool("rollback", rollback);
  incremental = flags.get_bool("incremental", incremental);
  verify_incremental = static_cast<int>(
      flags.get_int("verify-incremental", verify_incremental));

  traffic_model = merge_choice(flags, "traffic", kWorkloads, traffic_model);
  capacity_pow2 = flags.get_bool("capacity-pow2", capacity_pow2);
  capacity_unused =
      merge_choice(flags, "capacity-unused", kUnusedRules, capacity_unused);
  max_failures = merge_count(flags, "max-failures", max_failures, 10000);

  flow_baselines = flags.get_bool("flow-baselines", flow_baselines);
  unilateral = flags.get_bool("unilateral", unilateral);
  groups = merge_count(flags, "groups", groups, 1u << 20);
  threads = merge_count(flags, "threads", threads, 1024);
}

void ExperimentSpec::merge_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: --spec: cannot read " << path << "\n";
    std::exit(2);
  }
  std::vector<std::string> assignments;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);
    if (line.find('=') == std::string::npos) {
      std::cerr << "error: spec file " << path << " line " << line_no
                << ": expected key=value, got \"" << line << "\"\n";
      std::exit(2);
    }
    assignments.push_back(line);
  }

  // The file reuses the whole Flags machinery: malformed values die through
  // the same get_* diagnostics as the command line — the error context makes
  // them name this file — and after the merge has queried every key the
  // spec understands, the leftovers are exactly the unknown keys, rejected
  // the way util::reject_unknown rejects flags.
  const util::FlagErrorContext context("spec file " + path);
  const util::Flags file_flags(assignments);
  merge_from_flags(file_flags);
  const std::vector<std::string> unknown = file_flags.unknown();
  if (!unknown.empty()) {
    std::cerr << "error: spec file " << path << ": unknown key"
              << (unknown.size() > 1 ? "s" : "") << ":";
    for (const std::string& key : unknown) std::cerr << " " << key;
    std::cerr << "\nvalid keys are:";
    for (const std::string& key : file_flags.queried())
      std::cerr << " " << key;
    std::cerr << "\n";
    std::exit(2);
  }
}

std::vector<std::pair<std::string, std::string>> ExperimentSpec::to_key_values()
    const {
  const auto fmt_double = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  std::vector<std::pair<std::string, std::string>> kv;
  kv.emplace_back("experiment", to_string(experiment));
  kv.emplace_back("isps", std::to_string(isps));
  // Serialized via the signed spelling: the parser is get_int (int64), so
  // a seed with the top bit set must round-trip as its two's-complement
  // twin ("-1") rather than a uint64 literal get_int cannot read back.
  kv.emplace_back("seed", std::to_string(static_cast<std::int64_t>(seed)));
  kv.emplace_back("pairs", std::to_string(pairs));
  kv.emplace_back("pop-min", std::to_string(pop_min));
  kv.emplace_back("pop-max", std::to_string(pop_max));
  kv.emplace_back("oracle-a", objective[0].to_string());
  kv.emplace_back("oracle-b", objective[1].to_string());
  kv.emplace_back("pref-range", std::to_string(pref_range));
  kv.emplace_back("turn", name_of(kTurns, turn));
  kv.emplace_back("proposal", name_of(kProposals, proposal));
  kv.emplace_back("acceptance", name_of(kAcceptances, acceptance));
  kv.emplace_back("termination", name_of(kTerminations, termination));
  kv.emplace_back("tie-break", name_of(kTieBreaks, tie_break));
  kv.emplace_back("reassign", fmt_double(reassign));
  kv.emplace_back("rollback", rollback ? "true" : "false");
  kv.emplace_back("incremental", incremental ? "true" : "false");
  kv.emplace_back("verify-incremental", std::to_string(verify_incremental));
  kv.emplace_back("traffic", name_of(kWorkloads, traffic_model));
  kv.emplace_back("capacity-pow2", capacity_pow2 ? "true" : "false");
  kv.emplace_back("capacity-unused", name_of(kUnusedRules, capacity_unused));
  kv.emplace_back("max-failures", std::to_string(max_failures));
  kv.emplace_back("flow-baselines", flow_baselines ? "true" : "false");
  kv.emplace_back("unilateral", unilateral ? "true" : "false");
  kv.emplace_back("groups", std::to_string(groups));
  kv.emplace_back("threads", std::to_string(threads));
  return kv;
}

std::string ExperimentSpec::value_of(const std::string& key) const {
  for (const auto& [k, v] : to_key_values())
    if (k == key) return v;
  return {};
}

std::string ExperimentSpec::to_text() const {
  std::ostringstream os;
  for (const auto& [key, value] : to_key_values())
    os << key << "=" << value << "\n";
  return os.str();
}

core::OracleSpec ExperimentSpec::resolved_objective(int side) const {
  core::OracleSpec resolved = objective[side];
  if (resolved.name == "default") {
    resolved.name =
        experiment == ExperimentKind::kDistance ? "distance" : "bandwidth";
  }
  return resolved;
}

bool ExperimentSpec::validate(std::string* error) const {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const core::OracleRegistry& registry = core::OracleRegistry::global();
  for (int side = 0; side < 2; ++side) {
    const core::OracleSpec resolved = resolved_objective(side);
    const core::OracleRegistry::Entry* entry = registry.find(resolved.name);
    const std::string key = side == 0 ? "oracle-a" : "oracle-b";
    if (entry == nullptr) {
      std::string msg = key + ": unknown oracle '" + resolved.name +
                        "'; valid names (optionally behind \"cheat:\"):";
      for (const std::string& name : registry.names()) msg += " " + name;
      msg += " default";
      return fail(msg);
    }
    if (experiment == ExperimentKind::kDistance && entry->needs_capacities) {
      return fail(key + ": oracle '" + resolved.name +
                  "' needs link capacities, which only experiment=bandwidth "
                  "computes");
    }
  }
  if (groups == 0) return fail("groups: must be >= 1");
  if (pop_min > pop_max) return fail("pop-min: must be <= pop-max");
  if (pref_range < 1) return fail("pref-range: must be >= 1");
  if (isps < 2) return fail("isps: need at least 2 ISPs to form a pair");
  if (pairs == 0) return fail("pairs: must be >= 1");

  // Keys only one experiment kind consumes: accepting an explicit
  // non-default value the run would ignore is the same silent-
  // misconfiguration failure mode util::reject_unknown exists to prevent.
  // Explicit *default* values stay legal so a fully serialized spec (which
  // spells out every key) remains loadable as a --spec file — a validated
  // spec never carries non-default inert keys, so the round trip is safe.
  const bool distance = experiment == ExperimentKind::kDistance;
  const char* const bandwidth_only[] = {"traffic", "capacity-pow2",
                                        "capacity-unused", "max-failures",
                                        "unilateral"};
  const char* const distance_only[] = {"flow-baselines", "groups"};
  const ExperimentSpec defaults;
  const auto* inert_begin = distance ? bandwidth_only : distance_only;
  const auto* inert_end =
      distance ? bandwidth_only + std::size(bandwidth_only)
               : distance_only + std::size(distance_only);
  for (const auto* key = inert_begin; key != inert_end; ++key) {
    if (overridden.count(*key) > 0 && value_of(*key) != defaults.value_of(*key)) {
      return fail(std::string(*key) + ": only meaningful for experiment=" +
                  (distance ? "bandwidth" : "distance") +
                  " — this run would silently ignore it");
    }
  }
  return true;
}

UniverseConfig ExperimentSpec::universe() const {
  UniverseConfig u;
  u.isp_count = isps;
  u.seed = seed;
  u.max_pairs = pairs;
  u.generator.min_pops = pop_min;
  u.generator.max_pops = pop_max;
  return u;
}

std::string ExperimentSpec::universe_summary() const {
  return sim::universe_summary(universe());
}

namespace {

core::NegotiationConfig negotiation_of(const ExperimentSpec& spec) {
  core::NegotiationConfig c;
  c.preferences.range = spec.pref_range;
  c.turn = spec.turn;
  c.proposal = spec.proposal;
  c.acceptance = spec.acceptance;
  c.termination = spec.termination;
  c.tie_break = spec.tie_break;
  c.reassign_traffic_fraction = spec.reassign;
  c.settlement_rollback = spec.rollback;
  c.incremental_evaluation = spec.incremental;
  c.verify_incremental_every = spec.verify_incremental;
  return c;
}

}  // namespace

DistanceExperimentConfig ExperimentSpec::to_distance_config() const {
  assert(experiment == ExperimentKind::kDistance);
  DistanceExperimentConfig cfg;
  cfg.universe = universe();
  cfg.negotiation = negotiation_of(*this);
  cfg.objective[0] = resolved_objective(0);
  cfg.objective[1] = resolved_objective(1);
  cfg.run_flow_pair_baselines = flow_baselines;
  cfg.groups = groups;
  cfg.threads = threads;
  return cfg;
}

BandwidthExperimentConfig ExperimentSpec::to_bandwidth_config() const {
  assert(experiment == ExperimentKind::kBandwidth);
  BandwidthExperimentConfig cfg;
  cfg.universe = universe();
  cfg.negotiation = negotiation_of(*this);
  cfg.objective[0] = resolved_objective(0);
  cfg.objective[1] = resolved_objective(1);
  cfg.traffic.model = traffic_model;
  cfg.capacity.round_up_power_of_two = capacity_pow2;
  cfg.capacity.unused_rule = capacity_unused;
  cfg.include_unilateral = unilateral;
  cfg.max_failures_per_pair = max_failures;
  cfg.threads = threads;
  return cfg;
}

}  // namespace nexit::sim
