#include "runtime/snapshot.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>

#include "proto/frame.hpp"
#include "runtime/session.hpp"

namespace nexit::runtime {

// ---------------------------------------------------------------------------
// SessionJournal / SnapshotStore

SessionJournal::SessionJournal(std::uint32_t id, std::string dir)
    : id_(id), dir_(std::move(dir)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

void SessionJournal::write_checkpoint(const proto::SnapshotCheckpoint& cp) {
  snap_ = proto::encode_frame(proto::encode_snapshot_checkpoint(cp));
  wal_.clear();
  wal_events_ = 0;
  ++checkpoints_;
  mirror(".snap", snap_, /*append=*/false);
  mirror(".wal", wal_, /*append=*/false);
}

void SessionJournal::append_event(const proto::SnapshotWalEvent& ev) {
  const proto::Bytes frame =
      proto::encode_frame(proto::encode_snapshot_wal_event(ev));
  wal_.insert(wal_.end(), frame.begin(), frame.end());
  ++wal_events_;
  mirror(".wal", frame, /*append=*/true);
}

void SessionJournal::load(proto::Bytes snap, proto::Bytes wal) {
  snap_ = std::move(snap);
  wal_ = std::move(wal);
  wal_events_ = 0;  // unknown: the bytes came from outside
  mirror(".snap", snap_, /*append=*/false);
  mirror(".wal", wal_, /*append=*/false);
}

void SessionJournal::mirror(const std::string& suffix,
                            const proto::Bytes& bytes, bool append) const {
  if (dir_.empty()) return;
  const std::string path =
      dir_ + "/session_" + std::to_string(id_) + suffix;
  std::ofstream out(path, append
                              ? std::ios::binary | std::ios::app
                              : std::ios::binary | std::ios::trunc);
  if (!out) return;  // best-effort mirror; the in-memory copy stays
                     // authoritative for restore
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

SessionJournal& SnapshotStore::journal(std::uint32_t id) {
  auto it = journals_.find(id);
  if (it == journals_.end())
    it = journals_
             .emplace(id, std::make_unique<SessionJournal>(id, dir_))
             .first;
  return *it->second;
}

const SessionJournal* SnapshotStore::find(std::uint32_t id) const {
  const auto it = journals_.find(id);
  return it == journals_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Session durability members (declared in runtime/session.hpp; the
// replay machinery lives here to keep session.cpp focused on lifecycle).

proto::SnapshotNegotiationMark Session::negotiation_mark() const {
  proto::SnapshotNegotiationMark m;
  if (agent_a_ == nullptr) return m;
  m.live = 1;
  m.state_a = static_cast<std::uint8_t>(agent_a_->state());
  m.state_b = static_cast<std::uint8_t>(agent_b_->state());
  m.round = agent_a_->round();
  m.remaining = agent_a_->remaining_count();
  m.disclosed_gain_a = agent_a_->disclosed_gain(0);
  m.disclosed_gain_b = agent_a_->disclosed_gain(1);
  m.true_gain_a = agent_a_->true_gain();
  m.pending_moves = agent_a_->pending_delta().moves.size();
  m.pending_settles = agent_a_->pending_delta().settled_positions.size();
  const std::vector<std::size_t>& ix = agent_a_->tentative().ix_of_flow;
  m.assignment.assign(ix.begin(), ix.end());
  return m;
}

void Session::journal_checkpoint() {
  if (journal_ == nullptr) return;
  proto::SnapshotCheckpoint cp;
  cp.session = id_;
  cp.status = static_cast<std::uint8_t>(status_);
  cp.attempts = static_cast<std::uint32_t>(attempts_);
  cp.retries_used = static_cast<std::uint32_t>(retries_used_);
  cp.steps = steps_;
  cp.messages = messages_;
  cp.timeouts = timeouts_;
  cp.started_at = started_at_;
  cp.attempt_began = attempt_began_;
  journal_->write_checkpoint(cp);
}

void Session::journal_event(proto::WalEventKind kind, Tick sess_now,
                            const std::string& note) {
  if (journal_ == nullptr || journal_->snapshot_bytes().empty()) return;
  proto::SnapshotWalEvent ev;
  ev.kind = static_cast<std::uint8_t>(kind);
  ev.tick = sess_now;
  ev.pre_status = static_cast<std::uint8_t>(status_);
  ev.pre_attempts = static_cast<std::uint32_t>(attempts_);
  ev.pre_retries = static_cast<std::uint32_t>(retries_used_);
  ev.pre_steps = steps_;
  ev.pre_messages = messages_;
  ev.pre_timeouts = timeouts_;
  ev.mark = negotiation_mark();
  ev.note = note;
  journal_->append_event(ev);
}

bool Session::replay_journal(const SessionJournal& journal, Tick now,
                             std::string* error) {
  const auto fail = [error](std::string why) {
    *error = std::move(why);
    return false;
  };

  proto::FrameDecoder snap_dec;
  snap_dec.feed(journal.snapshot_bytes());
  const std::optional<proto::Frame> frame = snap_dec.next();
  if (!frame.has_value())
    return fail(snap_dec.failed()
                    ? "snapshot: " + snap_dec.error()
                    : "snapshot: incomplete checkpoint frame");
  const util::Result<proto::SnapshotCheckpoint> decoded =
      proto::decode_snapshot_checkpoint(*frame);
  if (!decoded.ok()) {
    if (decoded.error().message.starts_with("snapshot version mismatch")) {
      // A schema mismatch is a build/deployment error, not data corruption:
      // refuse loudly instead of silently renegotiating from scratch.
      std::fprintf(stderr, "nexit: cannot restore session %u: %s\n", id_,
                   decoded.error().message.c_str());
      std::exit(2);
    }
    return fail(decoded.error().message);
  }
  if (snap_dec.next().has_value() || snap_dec.failed())
    return fail("snapshot: trailing bytes after the checkpoint");
  const proto::SnapshotCheckpoint& cp = decoded.value();
  if (cp.session != id_)
    return fail("snapshot: checkpoint names session " +
                std::to_string(cp.session) + ", restoring session " +
                std::to_string(id_));
  if (cp.status != static_cast<std::uint8_t>(SessionStatus::kRunning) ||
      cp.attempts == 0 ||
      cp.retries_used >= static_cast<std::uint32_t>(limits_.max_attempts))
    return fail("snapshot: checkpoint state is not an attempt boundary");

  // Rebuild the checkpointed attempt: restore the pre-attempt counters,
  // then re-begin through the deterministic channel factory (the 0-based
  // factory index cp.attempts - 1 reseeds identical fault streams).
  status_ = SessionStatus::kRunning;
  started_at_ = cp.started_at;
  steps_ = cp.steps;
  messages_ = cp.messages;
  timeouts_ = cp.timeouts;
  retries_used_ = static_cast<int>(cp.retries_used);
  attempts_ = static_cast<int>(cp.attempts) - 1;  // begin_attempt's ++
  begin_attempt(cp.attempt_began);

  // Replay the WAL tail at its recorded session-local ticks. Each record
  // carries the state observed when it was written; the replayed prefix
  // must reproduce it bit-for-bit or the log is not trustworthy.
  Tick last_tick = cp.attempt_began;
  std::optional<Tick> kill_tick;
  proto::FrameDecoder wal_dec;
  wal_dec.feed(journal.wal_bytes());
  std::size_t applied = 0;
  while (std::optional<proto::Frame> wf = wal_dec.next()) {
    const util::Result<proto::SnapshotWalEvent> dev =
        proto::decode_snapshot_wal_event(*wf);
    if (!dev.ok()) return fail(dev.error().message);
    const proto::SnapshotWalEvent& ev = dev.value();
    if (ev.pre_status != static_cast<std::uint8_t>(status_) ||
        ev.pre_attempts != static_cast<std::uint32_t>(attempts_) ||
        ev.pre_retries != static_cast<std::uint32_t>(retries_used_) ||
        ev.pre_steps != steps_ || ev.pre_messages != messages_ ||
        ev.pre_timeouts != timeouts_ || !(ev.mark == negotiation_mark()))
      return fail("WAL record " + std::to_string(applied) +
                  ": replayed state does not match the recorded mark");
    switch (static_cast<proto::WalEventKind>(ev.kind)) {
      case proto::WalEventKind::kPump: pump(ev.tick); break;
      case proto::WalEventKind::kDeadline: check_deadline(ev.tick); break;
      case proto::WalEventKind::kCancel: cancel(ev.tick, ev.note); break;
      case proto::WalEventKind::kKill: kill_tick = ev.tick; break;
    }
    last_tick = ev.tick;
    ++applied;
  }
  if (wal_dec.failed()) return fail("WAL: " + wal_dec.error());
  // An incomplete trailing frame (clean truncation) is lost work, not
  // corruption: the replayed prefix is a state the uninterrupted run
  // passed through, so continuing from it stays on the same trajectory.

  // Excise the downtime: session-local time continues from the kill tick
  // (or the last replayed event, if the kill record itself was lost).
  const Tick frozen_at = kill_tick.value_or(last_tick);
  offset_ = now > frozen_at ? now - frozen_at : 0;
  return true;
}

RestoreOutcome Session::resume(Tick now, Tick original_start,
                               std::string* error) {
  if (status_ != SessionStatus::kKilled)
    throw std::logic_error("Session::resume: session is not killed");
  if (journal_ == nullptr || journal_->snapshot_bytes().empty()) {
    // Killed before the first attempt began: nothing durable exists. Line
    // the fresh start up with the originally scheduled tick so started_at
    // and every derived deadline match an uninterrupted run.
    status_ = SessionStatus::kPending;
    offset_ = now > original_start ? now - original_start : 0;
    return RestoreOutcome::kFreshPending;
  }
  SessionJournal* journal = journal_;
  journal_ = nullptr;  // replay must not re-journal its own records
  std::string why;
  const bool ok = replay_journal(*journal, now, &why);
  journal_ = journal;
  if (ok) return RestoreOutcome::kResumed;
  if (error != nullptr) *error = why;
  // Corrupt, truncated-mid-record, or mismatched log: never resume wrong
  // data. Reset wholesale; the caller schedules a fresh negotiation (whose
  // first checkpoint overwrites the bad bytes).
  teardown_attempt();
  status_ = SessionStatus::kPending;
  attempts_ = 0;
  retries_used_ = 0;
  steps_ = 0;
  messages_ = 0;
  timeouts_ = 0;
  attempt_began_ = 0;
  last_progress_ = 0;
  started_at_ = 0;
  finished_at_ = 0;
  offset_ = 0;
  error_.clear();
  outcome_ = core::NegotiationOutcome{};
  return RestoreOutcome::kFellBack;
}

}  // namespace nexit::runtime
