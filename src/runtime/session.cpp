#include "runtime/session.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace nexit::runtime {

namespace {

/// Transparent decorator that counts frames offered to send(). The count
/// lands directly in the owning Session (the pointer outlives the channel:
/// sessions are heap-pinned and destroy their channels first).
class CountingChannel : public agent::Channel {
 public:
  CountingChannel(std::unique_ptr<agent::Channel> inner, std::uint64_t* sends)
      : inner_(std::move(inner)), sends_(sends) {}

  void send(const proto::Bytes& data) override {
    ++*sends_;
    inner_->send(data);
  }
  proto::Bytes receive() override { return inner_->receive(); }
  [[nodiscard]] bool readable() const override { return inner_->readable(); }
  [[nodiscard]] int poll_fd() const override { return inner_->poll_fd(); }
  [[nodiscard]] bool closed() const override { return inner_->closed(); }
  void close() override { inner_->close(); }

 private:
  std::unique_ptr<agent::Channel> inner_;
  std::uint64_t* sends_;
};

}  // namespace

std::string to_string(SessionStatus s) {
  switch (s) {
    case SessionStatus::kPending: return "pending";
    case SessionStatus::kRunning: return "running";
    case SessionStatus::kDone: return "done";
    case SessionStatus::kFailed: return "failed";
    case SessionStatus::kCancelled: return "cancelled";
    case SessionStatus::kKilled: return "killed";
  }
  return "?";
}

Session::Session(std::uint32_t id, const core::NegotiationProblem& problem,
                 core::PreferenceOracle& oracle_a,
                 core::PreferenceOracle& oracle_b,
                 core::NegotiationConfig config, ChannelFactory channels,
                 SessionLimits limits)
    : id_(id), problem_(problem), oracle_a_(oracle_a), oracle_b_(oracle_b),
      config_(std::move(config)), make_channels_(std::move(channels)),
      limits_(limits) {
  if (!make_channels_)
    throw std::invalid_argument("Session: null channel factory");
  if (limits_.max_attempts < 1)
    throw std::invalid_argument("Session: max_attempts must be >= 1");
}

void Session::start(Tick now) {
  if (status_ != SessionStatus::kPending)
    throw std::logic_error("Session::start: already started");
  const Tick snow = sess_time(now);
  status_ = SessionStatus::kRunning;
  started_at_ = snow;
  begin_attempt(snow);
}

void Session::begin_attempt(Tick now) {
  auto [a, b] = make_channels_(attempts_);
  chan_a_ = std::make_unique<CountingChannel>(std::move(a), &messages_);
  chan_b_ = std::make_unique<CountingChannel>(std::move(b), &messages_);
  agent_a_ = std::make_unique<agent::NegotiationAgent>(
      problem_, oracle_a_, *chan_a_, agent::AgentConfig{0, 64501, config_});
  agent_b_ = std::make_unique<agent::NegotiationAgent>(
      problem_, oracle_b_, *chan_b_, agent::AgentConfig{1, 64502, config_});
  ++attempts_;
  attempt_began_ = now;
  last_progress_ = now;
  needs_kick_ = true;
  // Attempt boundaries supersede the WAL: fresh channels and agents mean
  // nothing before this point is needed to replay.
  journal_checkpoint();
}

void Session::teardown_attempt() {
  agent_a_.reset();
  agent_b_.reset();
  chan_a_.reset();
  chan_b_.reset();
  needs_kick_ = false;
}

bool Session::in_handshake() const {
  return agent_a_ != nullptr &&
         (agent_a_->state() == agent::AgentState::kHandshake ||
          agent_b_->state() == agent::AgentState::kHandshake);
}

Tick Session::deadline() const {
  if (status_ != SessionStatus::kRunning) return kNoDeadline;
  // Internal bookkeeping is session-local time; the manager compares
  // against its own clock, so translate back across the downtime offset.
  if (in_handshake())
    return attempt_began_ + limits_.handshake_deadline + offset_;
  return last_progress_ + limits_.round_timeout + offset_;
}

std::vector<const agent::Channel*> Session::watch_channels() const {
  if (chan_a_ == nullptr) return {};
  return {chan_a_.get(), chan_b_.get()};
}

bool Session::pump(Tick now) {
  const obs::PhaseTimer timer(obs::Phase::kSessionPump);
  if (status_ != SessionStatus::kRunning) return false;
  now = sess_time(now);
  journal_event(proto::WalEventKind::kPump, now);
  needs_kick_ = false;
  bool any = false;
  std::size_t burst = 0;
  for (;;) {
    if (steps_ >= limits_.max_steps) {
      // The budget is global across attempts — a retry would die on its
      // first step too, so go straight to the terminal state.
      teardown_attempt();
      status_ = SessionStatus::kFailed;
      error_ = "step budget exhausted";
      finished_at_ = now;
      return true;
    }
    if (limits_.max_steps_per_pump != 0 && burst >= limits_.max_steps_per_pump) {
      // Yield the worker mid-negotiation; the kick guarantees the manager
      // re-pumps us next round even if both queues happen to be drained.
      needs_kick_ = true;
      break;
    }
    const bool pa = agent_a_->step();
    const bool pb = agent_b_->step();
    ++steps_;
    ++burst;
    any = any || pa || pb;
    const bool a_terminal = agent_a_->done() || agent_a_->failed();
    const bool b_terminal = agent_b_->done() || agent_b_->failed();
    if (a_terminal && b_terminal) {
      conclude(now);
      return true;
    }
    if (!pa && !pb) break;
  }
  // One side dead while the other still waits: the attempt cannot succeed,
  // tear it down now instead of waiting for the round timeout.
  if (agent_a_->failed() || agent_b_->failed()) {
    const std::string why = agent_a_->failed() ? "A: " + agent_a_->error()
                                               : "B: " + agent_b_->error();
    fail_or_retry(now, why);
    return true;
  }
  if (any) last_progress_ = now;
  return any;
}

void Session::check_deadline(Tick now) {
  if (status_ != SessionStatus::kRunning) return;
  const Tick due = deadline();
  if (now < due) return;  // stale timer; the manager re-arms at `due`
  now = sess_time(now);
  journal_event(proto::WalEventKind::kDeadline, now);
  ++timeouts_;
  fail_or_retry(now, in_handshake() ? "handshake deadline exceeded"
                                    : "round timeout (no progress)");
}

void Session::fail_or_retry(Tick now, const std::string& why) {
  teardown_attempt();
  if (++retries_used_ < limits_.max_attempts) {
    begin_attempt(now);
    return;
  }
  status_ = SessionStatus::kFailed;
  error_ = why;
  finished_at_ = now;
}

void Session::conclude(Tick now) {
  if (agent_a_->done() && agent_b_->done()) {
    if (agent_a_->outcome().assignment.ix_of_flow !=
        agent_b_->outcome().assignment.ix_of_flow) {
      teardown_attempt();
      status_ = SessionStatus::kFailed;
      error_ = "sides disagree on the negotiated assignment";
      finished_at_ = now;
      return;
    }
    outcome_ = agent_a_->outcome();
    teardown_attempt();
    status_ = SessionStatus::kDone;
    finished_at_ = now;
    return;
  }
  const std::string why = agent_a_->failed() ? "A: " + agent_a_->error()
                                             : "B: " + agent_b_->error();
  fail_or_retry(now, why);
}

void Session::restart(Tick now) {
  if (status_ != SessionStatus::kRunning) return;
  teardown_attempt();
  begin_attempt(sess_time(now));  // checkpoints: a restart is a boundary
}

void Session::cancel(Tick now, const std::string& why) {
  if (terminal()) return;
  now = sess_time(now);
  if (status_ == SessionStatus::kRunning)
    journal_event(proto::WalEventKind::kCancel, now, why);
  teardown_attempt();
  status_ = SessionStatus::kCancelled;
  error_ = why;
  finished_at_ = now;
}

void Session::kill(Tick now) {
  if (terminal() || status_ == SessionStatus::kKilled) return;
  const Tick snow = sess_time(now);
  // The kill record pins the session-local kill time (resume derives its
  // downtime offset from it) and doubles as the final-state verification
  // mark: replay must land exactly on the state this record observes.
  if (status_ == SessionStatus::kRunning)
    journal_event(proto::WalEventKind::kKill, snow);
  teardown_attempt();
  // Honest crash: resume may only use the durable bytes, so wipe every
  // counter and timestamp the in-memory object still holds.
  attempts_ = 0;
  retries_used_ = 0;
  steps_ = 0;
  messages_ = 0;
  timeouts_ = 0;
  attempt_began_ = 0;
  last_progress_ = 0;
  started_at_ = 0;
  finished_at_ = 0;
  offset_ = 0;
  error_.clear();
  outcome_ = core::NegotiationOutcome{};
  status_ = SessionStatus::kKilled;
}

const core::NegotiationOutcome& Session::outcome() const {
  if (status_ != SessionStatus::kDone)
    throw std::logic_error("Session::outcome: session not done");
  return outcome_;
}

}  // namespace nexit::runtime
