#include "runtime/reactor.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <system_error>

namespace nexit::runtime {

void Reactor::watch(std::uint32_t session,
                    std::vector<const agent::Channel*> incoming) {
  watches_[session] = std::move(incoming);
}

void Reactor::unwatch(std::uint32_t session) { watches_.erase(session); }

std::vector<std::uint32_t> Reactor::ready_now() const {
  std::vector<std::uint32_t> ready;
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> fd_owner;  // session of fds[i]

  for (const auto& [session, channels] : watches_) {
    bool is_ready = false;
    for (const agent::Channel* ch : channels) {
      if (ch->readable()) {
        is_ready = true;
        break;
      }
    }
    if (is_ready) {
      ready.push_back(session);
      continue;
    }
    for (const agent::Channel* ch : channels) {
      const int fd = ch->poll_fd();
      if (fd >= 0) {
        fds.push_back(pollfd{fd, POLLIN, 0});
        fd_owner.push_back(session);
      }
    }
  }

  if (!fds.empty()) {
    int rc;
    do {
      rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 0);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      // Swallowing this would read as "nothing ready" and every fd-backed
      // session would quietly die by round timeout — surface it instead
      // (EINVAL here usually means nfds exceeds RLIMIT_NOFILE).
      throw std::system_error(errno, std::generic_category(),
                              "Reactor: poll over watched channels failed");
    }
    if (rc > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
          ready.push_back(fd_owner[i]);
      }
    }
  }

  std::sort(ready.begin(), ready.end());
  ready.erase(std::unique(ready.begin(), ready.end()), ready.end());
  return ready;
}

}  // namespace nexit::runtime
