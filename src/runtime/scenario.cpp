#include "runtime/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/oracles.hpp"
#include "dist/tcp_channel.hpp"
#include "obs/registry.hpp"
#include "util/digest.hpp"
#include "util/rng.hpp"

namespace nexit::runtime {

namespace {

/// Deterministic per-attempt sub-seed (splitmix-style odd multiplier).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t k) {
  return seed ^ (0x9e3779b97f4a7c15ull * (k + 1));
}

ChannelFactory make_channel_factory(Transport transport, FaultConfig faults,
                                    std::uint64_t seed) {
  return [transport, faults,
          seed](int attempt) -> std::pair<std::unique_ptr<agent::Channel>,
                                          std::unique_ptr<agent::Channel>> {
    auto pair = transport == Transport::kSocketPair
                    ? agent::make_socket_channel_pair()
                : transport == Transport::kTcpPair
                    ? dist::make_tcp_channel_pair()
                    : agent::make_in_memory_channel_pair();
    if (faults.drop <= 0.0 && faults.corrupt <= 0.0) return pair;
    const auto a = static_cast<std::uint64_t>(attempt) * 2;
    return {std::make_unique<agent::FaultyChannel>(
                std::move(pair.first), faults.drop, faults.corrupt,
                mix_seed(seed, a)),
            std::make_unique<agent::FaultyChannel>(
                std::move(pair.second), faults.drop, faults.corrupt,
                mix_seed(seed, a + 1))};
  };
}

traffic::TrafficMatrix build_traffic(const topology::IspPair& pair,
                                     ScenarioTraffic shape, util::Rng& rng) {
  if (shape == ScenarioTraffic::kGravityAtoB) {
    return traffic::TrafficMatrix::build(pair, traffic::Direction::kAtoB,
                                         traffic::TrafficConfig{}, rng);
  }
  traffic::TrafficConfig tcfg;
  tcfg.model = shape == ScenarioTraffic::kBidirectionalUniformRandom
                   ? traffic::WorkloadModel::kUniformRandom
                   : traffic::WorkloadModel::kIdentical;
  return traffic::TrafficMatrix::build_bidirectional(pair, tcfg, rng);
}

std::vector<std::size_t> all_interconnections(const topology::IspPair& pair) {
  std::vector<std::size_t> ix(pair.interconnection_count());
  for (std::size_t i = 0; i < ix.size(); ++i) ix[i] = i;
  return ix;
}

/// A distance-negotiation world over fresh traffic: all interconnections on
/// the table, distance oracles on both sides. Shared by the initial sessions
/// and flow-churn renegotiations so the two can never drift apart.
std::unique_ptr<SessionWorld> make_distance_world(
    const PairWorld* base, ScenarioTraffic shape,
    const core::PreferenceConfig& prefs, util::Rng& traffic_rng) {
  auto world = std::make_unique<SessionWorld>(
      base, build_traffic(base->pair, shape, traffic_rng));
  world->problem = core::make_distance_problem(
      *base->routing, world->traffic.flows(), all_interconnections(base->pair));
  world->oracle_a = std::make_unique<core::DistanceOracle>(0, prefs);
  world->oracle_b = std::make_unique<core::DistanceOracle>(1, prefs);
  return world;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), manager_(config_.runtime) {
  // Wire agents reach identical decisions without a shared RNG only under
  // deterministic tie-breaks; force the contractual setting.
  config_.negotiation.tie_break = core::TieBreak::kDeterministic;

  const std::vector<topology::IspPair> pairs =
      sim::build_pair_universe(config_.universe, config_.min_links);
  if (pairs.empty())
    throw std::runtime_error(
        "Scenario: universe produced no pair with enough interconnections");
  for (const topology::IspPair& p : pairs) {
    auto pw = std::make_unique<PairWorld>(PairWorld{p, nullptr});
    pw->routing = std::make_unique<routing::PairRouting>(pw->pair);
    pair_worlds_.push_back(std::move(pw));
  }

  initial_count_ =
      config_.session_count == 0 ? pairs.size() : config_.session_count;
  bool any_kill = false;
  for (const ScenarioEvent& ev : config_.events) {
    if (ev.session >= initial_count_)
      throw std::invalid_argument(
          "Scenario: event targets a session that will not exist");
    any_kill = any_kill || ev.kind == EventKind::kKill ||
               ev.kind == EventKind::kResume;
    if (ev.kind == EventKind::kLinkFailure && ev.param != kBusiestIx) {
      // The session->pair mapping is fixed here, so fail the mis-declared
      // timeline now instead of aborting mid-run from the event callback.
      const topology::IspPair& pair =
          pair_worlds_[ev.session % pair_worlds_.size()]->pair;
      if (ev.param >= pair.interconnection_count())
        throw std::invalid_argument(
            "Scenario: link-failure index out of range for the pair");
    }
  }
  for (std::uint32_t target : config_.fault_targets) {
    if (target >= initial_count_)
      throw std::invalid_argument(
          "Scenario: fault target names a session that will not exist");
  }
  if (any_kill) {
    if (config_.transport != Transport::kInMemory)
      throw std::invalid_argument(
          "Scenario: kill/resume events require the in-memory transport "
          "(kernel socket buffers are not part of the durable state)");
    // Kills and resumes must alternate per session, in timeline order
    // (events at equal ticks fire in declaration order).
    std::vector<std::size_t> order(config_.events.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return config_.events[a].at < config_.events[b].at;
                     });
    std::vector<char> down(initial_count_, 0);
    for (std::size_t i : order) {
      const ScenarioEvent& ev = config_.events[i];
      if (ev.kind == EventKind::kKill) {
        if (down[ev.session] != 0)
          throw std::invalid_argument(
              "Scenario: session killed twice without a resume between");
        down[ev.session] = 1;
      } else if (ev.kind == EventKind::kResume) {
        if (down[ev.session] == 0)
          throw std::invalid_argument(
              "Scenario: resume without a preceding kill for the session");
        down[ev.session] = 0;
      }
    }
  }
  if (any_kill || config_.durability.journal ||
      !config_.durability.dir.empty())
    store_ = std::make_unique<SnapshotStore>(config_.durability.dir);

  // Pre-forked per-session randomness, in session order (stream 0 traffic,
  // stream 1 fault seeds) — the PR 1 determinism scheme.
  util::Rng rng(config_.seed);
  std::vector<std::vector<util::Rng>> streams =
      util::fork_streams(rng, initial_count_, 2);

  for (std::size_t i = 0; i < initial_count_; ++i) {
    const PairWorld* base = pair_worlds_[i % pair_worlds_.size()].get();
    util::Rng traffic_rng = streams[i][0];
    auto world = make_distance_world(base, config_.traffic,
                                     config_.negotiation.preferences,
                                     traffic_rng);

    Tick start_at = static_cast<Tick>(i) * config_.start_stagger;
    for (const ScenarioEvent& ev : config_.events) {
      if (ev.kind == EventKind::kStart && ev.session == i) start_at = ev.at;
    }
    const bool faulted =
        config_.fault_targets.empty() ||
        std::find(config_.fault_targets.begin(), config_.fault_targets.end(),
                  static_cast<std::uint32_t>(i)) != config_.fault_targets.end();
    spawn(std::move(world), SessionKind::kInitial, -1, start_at,
          streams[i][1].next_u64(), faulted);
  }

  for (const ScenarioEvent& ev : config_.events) {
    switch (ev.kind) {
      case EventKind::kStart:
        break;  // consumed above
      case EventKind::kPeerRestart:
        manager_.at(ev.at, [this, ev](Tick now) {
          manager_.session(ev.session).restart(now);
        });
        break;
      case EventKind::kFlowChurn:
        manager_.at(ev.at, [this, ev](Tick now) {
          on_flow_churn(now, ev.session, ev.param);
        });
        break;
      case EventKind::kLinkFailure:
        manager_.at(ev.at, [this, ev](Tick now) {
          on_link_failure(now, ev.session, ev.param);
        });
        break;
      case EventKind::kKill:
        manager_.at(ev.at,
                    [this, ev](Tick now) { on_kill(now, ev.session); });
        break;
      case EventKind::kResume:
        manager_.at(ev.at,
                    [this, ev](Tick now) { on_resume(now, ev.session); });
        break;
    }
  }
}

std::uint32_t Scenario::spawn(std::unique_ptr<SessionWorld> world,
                              SessionKind kind, std::int64_t parent,
                              Tick start_at, std::uint64_t fault_seed,
                              bool with_faults) {
  const auto id = static_cast<std::uint32_t>(worlds_.size());
  auto session = std::make_unique<Session>(
      id, world->problem, *world->oracle_a, *world->oracle_b,
      config_.negotiation,
      make_channel_factory(config_.transport,
                           with_faults ? config_.faults : FaultConfig{},
                           fault_seed),
      config_.limits);
  if (store_ != nullptr) session->attach_journal(&store_->journal(id));
  worlds_.push_back(std::move(world));
  meta_.push_back(Meta{kind, parent});
  scheduled_start_.push_back(start_at);
  const std::uint32_t got = manager_.add(std::move(session), start_at);
  if (got != id) throw std::logic_error("Scenario: session id drift");
  return id;
}

void Scenario::on_kill(Tick now, std::uint32_t target) {
  Session& s = manager_.session(target);
  if (s.terminal()) return;  // finished before the crash landed
  s.kill(now);
  manager_.notice(target);  // unwatch the torn-down channels immediately
}

void Scenario::on_resume(Tick now, std::uint32_t target) {
  Session& s = manager_.session(target);
  if (s.status() != SessionStatus::kKilled) return;
  std::string why;
  switch (s.resume(now, scheduled_start_[target], &why)) {
    case RestoreOutcome::kResumed:
      manager_.notice(target);  // re-watch channels, re-arm the deadline
      break;
    case RestoreOutcome::kFreshPending:
      // Killed before anything durable existed: an ordinary (re)start,
      // aligned with the originally scheduled tick. When that tick has
      // already passed, start inline — a timer scheduled for the current
      // tick from inside this callback would only fire after the next pump
      // round, one tick later than the uninterrupted run.
      if (now >= scheduled_start_[target]) {
        s.start(now);
        manager_.notice(target);
      } else {
        manager_.schedule_start(target, scheduled_start_[target]);
      }
      break;
    case RestoreOutcome::kFellBack:
      // Corrupt durable state: count it and renegotiate from scratch —
      // the restore path never resumes wrong data.
      obs::Registry::global().add("runtime.restore_failures", 1);
      manager_.schedule_start(target, now);
      break;
  }
}

void Scenario::on_flow_churn(Tick now, std::uint32_t target,
                             std::uint64_t reseed) {
  manager_.session(target).cancel(now, "flow churn: traffic matrix replaced");
  const PairWorld* base = worlds_[target]->base;
  util::Rng traffic_rng(reseed);
  auto world = make_distance_world(base, config_.traffic,
                                   config_.negotiation.preferences,
                                   traffic_rng);
  spawn(std::move(world), SessionKind::kChurnRenegotiation, target, now,
        /*fault_seed=*/reseed, /*with_faults=*/false);
}

void Scenario::on_link_failure(Tick now, std::uint32_t target,
                               std::uint64_t which) {
  manager_.session(target).cancel(now, "link failure: renegotiating survivors");
  const SessionWorld& parent = *worlds_[target];
  const PairWorld* base = parent.base;
  const routing::PairRouting& routing = *base->routing;

  // The §5.2 recipe, exactly as examples/failure_negotiation.cpp: pre-failure
  // early-exit routing over all interconnections, capacities proportional to
  // the pre-failure loads, then the affected flows renegotiate over the
  // survivors with bandwidth oracles.
  // Same flows as the parent session, copied so the new problem has its own
  // pinned storage.
  auto world = std::make_unique<SessionWorld>(base, parent.traffic);
  const std::vector<std::size_t> all_ix = all_interconnections(base->pair);
  const routing::Assignment pre_failure =
      routing::assign_early_exit(routing, world->traffic.flows(), all_ix);
  const routing::LoadMap baseline =
      routing::compute_loads(routing, world->traffic.flows(), pre_failure);
  world->capacities =
      capacity::assign_capacities(baseline, capacity::CapacityConfig{});

  std::size_t failed = static_cast<std::size_t>(which);
  if (which == kBusiestIx) {
    std::vector<std::size_t> usage(base->pair.interconnection_count(), 0);
    for (std::size_t ix : pre_failure.ix_of_flow) ++usage[ix];
    failed = 0;
    for (std::size_t i = 1; i < usage.size(); ++i)
      if (usage[i] > usage[failed]) failed = i;
  }
  if (failed >= base->pair.interconnection_count())
    throw std::invalid_argument("Scenario: link-failure index out of range");
  world->failed_ix = failed;

  world->problem =
      core::make_failure_problem(routing, world->traffic.flows(), failed);
  world->oracle_a = std::make_unique<core::BandwidthOracle>(
      0, config_.negotiation.preferences, world->capacities);
  world->oracle_b = std::make_unique<core::BandwidthOracle>(
      1, config_.negotiation.preferences, world->capacities);
  spawn(std::move(world), SessionKind::kFailureRenegotiation, target, now,
        /*fault_seed=*/which, /*with_faults=*/false);
}

ScenarioReport Scenario::run() {
  if (ran_) throw std::logic_error("Scenario::run: already ran");
  ran_ = true;

  ScenarioReport report;
  report.stats = manager_.run();
  report.sessions.reserve(manager_.size());
  for (std::uint32_t id = 0; id < manager_.size(); ++id) {
    const Session& s = manager_.session(id);
    ScenarioSessionResult r;
    r.id = id;
    r.kind = meta_[id].kind;
    r.parent = meta_[id].parent;
    r.pair_label = worlds_[id]->base->pair.label();
    r.status = s.status();
    if (s.status() == SessionStatus::kDone) r.outcome = s.outcome();
    r.error = s.error();
    r.attempts = s.attempts();
    r.retries = s.retries();
    r.steps = s.steps();
    r.messages = s.messages_sent();
    r.timeouts = s.timeouts();
    r.started_at = s.started_at();
    r.finished_at = s.finished_at();
    report.sessions.push_back(std::move(r));
  }

  // Registry bumps run here, serially after the manager joined its workers,
  // rather than inside the concurrent session machinery: the values derive
  // from the id-ordered report, so they are trivially thread-stable.
  obs::Registry& reg = obs::Registry::global();
  reg.add("runtime.sessions", report.sessions.size());
  for (const ScenarioSessionResult& r : report.sessions) {
    switch (r.status) {
      case SessionStatus::kDone: reg.add("runtime.sessions_done", 1); break;
      case SessionStatus::kFailed: reg.add("runtime.sessions_failed", 1); break;
      case SessionStatus::kCancelled:
        reg.add("runtime.sessions_cancelled", 1);
        break;
      case SessionStatus::kKilled:
        // Never resumed: only possible in a timeline that kills without
        // resuming, so bumping here cannot perturb the resumed-vs-
        // uninterrupted obs equality contract.
        reg.add("runtime.sessions_killed", 1);
        break;
      default: break;
    }
    reg.add("runtime.messages", r.messages);
    reg.add("runtime.steps", r.steps);
    reg.add("runtime.retries", static_cast<std::uint64_t>(r.retries));
    reg.add("runtime.timeouts", r.timeouts);
    if (r.status == SessionStatus::kDone)
      reg.add("runtime.rounds", r.outcome.rounds);
    reg.observe("runtime.steps_per_session", r.steps);
  }

  return report;
}

ScenarioReport run_scenario(ScenarioConfig config) {
  Scenario scenario(std::move(config));
  return scenario.run();
}

std::uint64_t outcome_digest(const ScenarioReport& report) {
  std::uint64_t h = util::kFnvOffsetBasis;
  const auto mix = [&h](std::uint64_t v) { h = util::fnv1a_mix(h, v); };
  for (const auto& s : report.sessions) {
    mix(static_cast<std::uint64_t>(s.status));
    mix(s.messages);
    if (s.status == SessionStatus::kDone) {
      mix(s.outcome.rounds);
      for (std::size_t ix : s.outcome.assignment.ix_of_flow)
        mix(static_cast<std::uint64_t>(ix));
    }
  }
  return h;
}

}  // namespace nexit::runtime
