#include "runtime/clock.hpp"

#include <algorithm>

namespace nexit::runtime {

bool TimerQueue::later(const Entry& a, const Entry& b) {
  if (a.at != b.at) return a.at > b.at;
  return a.seq > b.seq;
}

void TimerQueue::schedule(TimerItem item) {
  heap_.push_back(Entry{item.at, next_seq_++, std::move(item)});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Tick TimerQueue::next_deadline() const {
  return heap_.empty() ? kNoDeadline : heap_.front().at;
}

std::vector<TimerItem> TimerQueue::expire_until(Tick now) {
  std::vector<TimerItem> fired;
  while (!heap_.empty() && heap_.front().at <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    fired.push_back(std::move(heap_.back().item));
    heap_.pop_back();
  }
  return fired;
}

}  // namespace nexit::runtime
