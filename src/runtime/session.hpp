#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "agent/agent.hpp"
#include "agent/channel.hpp"
#include "runtime/clock.hpp"
#include "runtime/snapshot.hpp"

namespace nexit::runtime {

enum class SessionStatus {
  kPending,    // added but not started yet (staggered starts)
  kRunning,    // agents live, negotiating
  kDone,       // both agents finished and agree on the assignment
  kFailed,     // retries exhausted (timeouts, stream errors, disagreement)
  kCancelled,  // stopped by a scenario event (link failure, flow churn)
  kKilled,     // crashed (kill event): frozen until resume() or end of run
};

std::string to_string(SessionStatus s);

/// Lifecycle bounds of one session, all in virtual Ticks (one tick = one
/// scheduling round of the manager; see runtime/clock.hpp).
struct SessionLimits {
  /// An attempt that has not left the handshake by this many ticks after it
  /// began is torn down (and retried if attempts remain).
  Tick handshake_deadline = 64;
  /// Mid-session: ticks without observable progress before teardown. This is
  /// what turns a FaultyChannel's dropped frames into a clean kFailed
  /// instead of an eternal stall.
  Tick round_timeout = 32;
  /// Total attempts (first try plus retries). Each retry gets fresh channels
  /// and fresh agents: a poisoned FrameDecoder cannot resynchronise.
  int max_attempts = 3;
  /// Hard cap on agent pump steps across all attempts (runaway guard).
  std::size_t max_steps = 1u << 20;
  /// Steps one pump() may take before yielding the worker (0 = run to stall
  /// or completion). A yielded session re-enters the next round's ready set,
  /// so bursts interleave long negotiations fairly — and scenario events can
  /// land genuinely mid-session.
  std::size_t max_steps_per_pump = 0;
};

/// Builds the transport for attempt `attempt` (0-based). Called once per
/// attempt so retries start from clean streams; fault-injecting factories
/// should derive their seed from the attempt number to stay deterministic.
using ChannelFactory =
    std::function<std::pair<std::unique_ptr<agent::Channel>,
                            std::unique_ptr<agent::Channel>>(int attempt)>;

/// One live negotiation: a NegotiationAgent pair plus the lifecycle the bare
/// agents lack — handshake deadline, per-round timeout, bounded retry with
/// fresh transports, and a terminal outcome. The problem, oracles and config
/// are borrowed (the caller owns them for the session's lifetime); channels
/// are built internally via the factory and swapped on every attempt.
///
/// Thread-safety: a Session is confined to one worker per scheduling round —
/// the manager never pumps the same session from two threads — and sessions
/// share no mutable state, which is what makes parallel rounds bit-identical
/// to serial ones.
class Session {
 public:
  Session(std::uint32_t id, const core::NegotiationProblem& problem,
          core::PreferenceOracle& oracle_a, core::PreferenceOracle& oracle_b,
          core::NegotiationConfig config, ChannelFactory channels,
          SessionLimits limits = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// kPending -> kRunning: builds the first attempt. The session still needs
  /// a pump() to send its handshake (ready() is true until then).
  void start(Tick now);

  /// One scheduling quantum: steps both agents until neither makes progress
  /// or the session reaches a terminal state. Returns true if anything
  /// happened. A healthy in-memory session runs to completion in one pump;
  /// a stalled one parks (ready() false) until bytes arrive or deadline().
  bool pump(Tick now);

  /// Re-checks the handshake/round deadline; tears the attempt down (retry
  /// or kFailed) when it has passed. Called by the manager on timer expiry —
  /// stale timers are harmless, the session re-derives its real deadline.
  void check_deadline(Tick now);

  /// Scenario "peer restart": drop the live attempt and begin a new one with
  /// fresh channels. Does not consume a retry (planned restarts are not
  /// failures). No-op unless running.
  void restart(Tick now);

  /// Scenario cancellation (link failed, traffic churned): the session's
  /// problem no longer reflects reality, stop working on it.
  void cancel(Tick now, const std::string& why);

  /// Crash simulation: append the kill record to the journal, then wipe
  /// every in-memory artifact — agents, channels, counters, timestamps —
  /// so resume() can only use the durable bytes. Freezes as kKilled (not
  /// terminal: the session may come back). No-op once terminal.
  void kill(Tick now);

  /// Rebuilds state from the attached journal: restore the checkpoint,
  /// re-begin its attempt through the deterministic channel factory, and
  /// replay the WAL tail at its recorded session-local ticks, verifying
  /// each record's pre-state. Downtime is excised via the tick offset so a
  /// resumed session's bookkeeping matches an uninterrupted run exactly.
  /// `original_start` is the tick the session was first scheduled to start
  /// (used when there is no durable state yet). A snapshot-schema version
  /// mismatch exits loudly (code 2) — never silently renegotiates; any
  /// other decode/verify failure resets for a fresh negotiation and
  /// reports kFellBack. Only legal while kKilled.
  RestoreOutcome resume(Tick now, Tick original_start, std::string* error);

  /// Enables durable journaling (checkpoints at attempt boundaries, one
  /// WAL record per scheduling event). The journal must outlive the
  /// session. Null detaches.
  void attach_journal(SessionJournal* journal) { journal_ = journal; }

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] SessionStatus status() const { return status_; }
  [[nodiscard]] bool terminal() const {
    return status_ == SessionStatus::kDone || status_ == SessionStatus::kFailed ||
           status_ == SessionStatus::kCancelled;
  }
  /// True when a pump would do something even with no readable bytes (a
  /// fresh attempt that has not sent its handshake yet).
  [[nodiscard]] bool needs_kick() const { return needs_kick_; }
  /// Next tick at which check_deadline() could act; kNoDeadline if terminal.
  [[nodiscard]] Tick deadline() const;
  /// Incoming endpoints for the reactor (valid until the next attempt).
  [[nodiscard]] std::vector<const agent::Channel*> watch_channels() const;

  [[nodiscard]] const std::string& error() const { return error_; }
  /// Valid once status() == kDone.
  [[nodiscard]] const core::NegotiationOutcome& outcome() const;

  [[nodiscard]] int attempts() const { return attempts_; }
  [[nodiscard]] std::size_t steps() const { return steps_; }
  /// Frames offered to the transport by both sides, across all attempts
  /// (counts dropped frames too — it measures protocol work, not delivery).
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  /// Deadline expiries that actually tore an attempt down (handshake
  /// deadline or round timeout; stale timers do not count).
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Failures consumed against max_attempts (the first try is free).
  [[nodiscard]] int retries() const { return retries_used_; }
  [[nodiscard]] Tick started_at() const { return started_at_; }
  [[nodiscard]] Tick finished_at() const { return finished_at_; }

 private:
  void begin_attempt(Tick now);
  void teardown_attempt();
  /// Attempt failed: retry if any remain, else kFailed with `why`.
  void fail_or_retry(Tick now, const std::string& why);
  void conclude(Tick now);
  [[nodiscard]] bool in_handshake() const;

  /// Manager tick -> session-local tick. All internal bookkeeping runs in
  /// session time; `offset_` (the accumulated kill->resume downtime) is
  /// applied once at each public entry point, and added back by deadline().
  [[nodiscard]] Tick sess_time(Tick now) const {
    return now >= offset_ ? now - offset_ : 0;
  }
  // Durability hooks, implemented in runtime/snapshot.cpp. All no-ops while
  // journal_ is null (including during replay, which detaches it).
  void journal_checkpoint();
  void journal_event(proto::WalEventKind kind, Tick sess_now,
                     const std::string& note = {});
  [[nodiscard]] proto::SnapshotNegotiationMark negotiation_mark() const;
  /// Decode + replay + verify; fills *error and returns false on any
  /// corruption or state mismatch (the caller falls back to fresh).
  bool replay_journal(const SessionJournal& journal, Tick now,
                      std::string* error);

  const std::uint32_t id_;
  const core::NegotiationProblem& problem_;
  core::PreferenceOracle& oracle_a_;
  core::PreferenceOracle& oracle_b_;
  const core::NegotiationConfig config_;
  const ChannelFactory make_channels_;
  const SessionLimits limits_;

  SessionStatus status_ = SessionStatus::kPending;
  std::unique_ptr<agent::Channel> chan_a_, chan_b_;
  std::unique_ptr<agent::NegotiationAgent> agent_a_, agent_b_;
  bool needs_kick_ = false;
  int attempts_ = 0;       // attempts begun (restarts included)
  int retries_used_ = 0;   // failures consumed against max_attempts
  std::size_t steps_ = 0;
  std::uint64_t messages_ = 0;  // incremented by the counting decorator
  std::uint64_t timeouts_ = 0;  // deadline expiries that acted
  Tick attempt_began_ = 0;
  Tick last_progress_ = 0;
  Tick started_at_ = 0;
  Tick finished_at_ = 0;
  /// Accumulated kill->resume downtime (manager ticks the session did not
  /// experience). 0 until a resume happens.
  Tick offset_ = 0;
  SessionJournal* journal_ = nullptr;  // null = durability off
  std::string error_;
  core::NegotiationOutcome outcome_;
};

}  // namespace nexit::runtime
