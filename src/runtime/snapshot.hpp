#pragma once

// Durable negotiation state (the ROADMAP "long-lived negotiator" item): a
// SnapshotStore keeps, per session, the latest attempt-boundary checkpoint
// plus a write-ahead log of the scheduling events applied since, framed by
// proto/snapshot_messages. Session::kill() wipes every in-memory artifact
// and Session::resume() rebuilds the state from the durable bytes alone:
// decode the checkpoint, re-begin the attempt through the deterministic
// ChannelFactory, replay the WAL tail at its recorded session-local ticks,
// and verify each record's pre-state marks along the way. Downtime between
// kill and resume is excised by the session's tick offset, so a resumed
// run's per-session bookkeeping is bit-identical to an uninterrupted one
// (docs/ARCHITECTURE.md § Durability walks through why).

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "proto/snapshot_messages.hpp"

namespace nexit::runtime {

/// Durable bytes of one session: the latest checkpoint frame plus the WAL
/// frames appended since. A fresh checkpoint supersedes (truncates) the
/// log — a retry or planned restart rebuilds transports from scratch, so
/// nothing before the boundary is needed to replay. Always held in memory;
/// mirrored to `<dir>/session_<id>.snap` / `.wal` when file-backed (the CI
/// crash-recovery step uploads those on failure).
///
/// Thread-safety: a journal is written only by its owning Session, which
/// the manager confines to one worker per round — the same argument that
/// makes Session itself safe.
class SessionJournal {
 public:
  SessionJournal(std::uint32_t id, std::string dir);

  /// Replaces the snapshot and clears the WAL (attempt boundary).
  void write_checkpoint(const proto::SnapshotCheckpoint& cp);
  void append_event(const proto::SnapshotWalEvent& ev);

  [[nodiscard]] const proto::Bytes& snapshot_bytes() const { return snap_; }
  [[nodiscard]] const proto::Bytes& wal_bytes() const { return wal_; }
  [[nodiscard]] bool empty() const { return snap_.empty() && wal_.empty(); }
  [[nodiscard]] std::size_t wal_events() const { return wal_events_; }
  [[nodiscard]] std::size_t checkpoints() const { return checkpoints_; }

  /// Replaces the durable bytes wholesale (restore-path tests and fuzzing
  /// feed corrupted logs through this).
  void load(proto::Bytes snap, proto::Bytes wal);

 private:
  void mirror(const std::string& suffix, const proto::Bytes& bytes,
              bool append) const;

  const std::uint32_t id_;
  const std::string dir_;  // empty = memory-only
  proto::Bytes snap_, wal_;
  std::size_t wal_events_ = 0;
  std::size_t checkpoints_ = 0;
};

/// Per-session journals of one scenario run. Journals are heap-pinned so
/// Sessions can hold stable pointers across map growth.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir = "");

  /// The journal for `id`, created on first use.
  SessionJournal& journal(std::uint32_t id);
  [[nodiscard]] const SessionJournal* find(std::uint32_t id) const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::map<std::uint32_t, std::unique_ptr<SessionJournal>> journals_;
};

/// What Session::resume reconstructed from the durable bytes.
enum class RestoreOutcome {
  /// Checkpoint + WAL tail replayed and verified; the session continues
  /// mid-negotiation exactly where the kill interrupted it.
  kResumed,
  /// No durable state (killed before the first attempt began): back to
  /// kPending, the caller schedules an ordinary start.
  kFreshPending,
  /// The log was corrupt, truncated mid-record, or failed a pre-state
  /// verification: the session reset to kPending for a fresh negotiation.
  /// Never resumes wrong data; callers count this in obs.
  kFellBack,
};

}  // namespace nexit::runtime
