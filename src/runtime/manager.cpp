#include "runtime/manager.hpp"

#include <algorithm>

namespace nexit::runtime {

SessionManager::SessionManager(RuntimeConfig config)
    : config_(config), pool_(util::workers_for_threads(config.threads)) {}

std::uint32_t SessionManager::add(std::unique_ptr<Session> session,
                                  Tick start_at) {
  const auto id = static_cast<std::uint32_t>(sessions_.size());
  sessions_.push_back(std::move(session));
  armed_deadline_.push_back(kNoDeadline);
  active_.push_back(id);
  ++stats_.sessions;
  reactor_.timers().schedule(
      TimerItem{std::max(start_at, clock_), TimerKind::kSessionStart, id, {}});
  ++pending_wakes_;
  return id;
}

void SessionManager::at(Tick when, std::function<void(Tick)> fn) {
  reactor_.timers().schedule(
      TimerItem{std::max(when, clock_), TimerKind::kCallback, 0, std::move(fn)});
  ++pending_wakes_;
}

void SessionManager::refresh(std::uint32_t id) {
  Session& s = *sessions_[id];
  if (s.status() != SessionStatus::kRunning) {
    // Terminal (sweep_active() retires it from active_), killed, or back
    // to pending: in every case the old channels are gone, stop polling
    // them before they dangle.
    reactor_.unwatch(id);
    return;
  }
  reactor_.watch(id, s.watch_channels());
  const Tick due = s.deadline();
  if (due < armed_deadline_[id]) {
    reactor_.timers().schedule(
        TimerItem{due, TimerKind::kSessionDeadline, id, {}});
    armed_deadline_[id] = due;
  }
}

void SessionManager::notice(std::uint32_t id) {
  refresh(id);
  sweep_active();
}

void SessionManager::schedule_start(std::uint32_t id, Tick when) {
  reactor_.timers().schedule(
      TimerItem{std::max(when, clock_), TimerKind::kSessionStart, id, {}});
  ++pending_wakes_;
}

void SessionManager::sweep_active() {
  std::erase_if(active_, [this](std::uint32_t id) {
    if (!sessions_[id]->terminal()) return false;
    reactor_.unwatch(id);
    return true;
  });
}

bool SessionManager::past_horizon() {
  if (clock_ <= config_.max_ticks) return false;
  for (std::uint32_t id : active_)
    sessions_[id]->cancel(clock_, "runtime horizon exceeded");
  sweep_active();
  return true;
}

RuntimeStats SessionManager::run() {
  for (;;) {
    // 1. Fire everything due at the current tick — session starts, deadline
    // re-checks, scenario callbacks — single-threaded, in (deadline,
    // insertion) order, so events land on time even while sessions are busy.
    bool ran_callback = false;
    for (TimerItem& item : reactor_.timers().expire_until(clock_)) {
      switch (item.kind) {
        case TimerKind::kSessionStart: {
          --pending_wakes_;
          Session& s = *sessions_[item.session];
          if (s.status() == SessionStatus::kPending) {
            s.start(clock_);
            refresh(item.session);
          }
          break;
        }
        case TimerKind::kSessionDeadline: {
          armed_deadline_[item.session] = kNoDeadline;  // this one just fired
          Session& s = *sessions_[item.session];
          if (s.status() == SessionStatus::kRunning) {
            s.check_deadline(clock_);
            refresh(item.session);
          }
          break;
        }
        case TimerKind::kCallback:
          --pending_wakes_;
          item.callback(clock_);
          ran_callback = true;
          break;
      }
    }
    sweep_active();
    if (ran_callback) {
      // Callbacks may have restarted or cancelled arbitrary sessions,
      // swapping their channels; re-register every live watch so the
      // reactor never polls a freed channel.
      for (std::uint32_t id : active_) {
        if (sessions_[id]->status() == SessionStatus::kRunning)
          reactor_.watch(id, sessions_[id]->watch_channels());
      }
    }

    // 2. Ready set of this round: bytes waiting (reactor) plus fresh
    // attempts that have not pumped yet. Ascending id order — part of the
    // determinism contract.
    std::vector<std::uint32_t> ready = reactor_.ready_now();
    for (std::uint32_t id : active_) {
      if (sessions_[id]->status() == SessionStatus::kRunning &&
          sessions_[id]->needs_kick())
        ready.push_back(id);
    }
    std::sort(ready.begin(), ready.end());
    ready.erase(std::unique(ready.begin(), ready.end()), ready.end());
    std::erase_if(ready, [this](std::uint32_t id) {
      return sessions_[id]->status() != SessionStatus::kRunning;
    });

    if (!ready.empty()) {
      const Tick round_now = clock_;
      util::parallel_for(pool_, ready.size(), [this, &ready, round_now](
                                                  std::size_t i) {
        sessions_[ready[i]]->pump(round_now);
      });
      for (std::uint32_t id : ready) refresh(id);
      sweep_active();
      ++stats_.rounds;
      stats_.peak_ready = std::max(stats_.peak_ready, ready.size());
      ++clock_;
      if (past_horizon()) break;  // busy sessions must not outrun the cap
      continue;
    }

    // 3. Nothing readable: park — jump the clock to the next timer. The run
    // is over when no session is live and no start/callback remains:
    // scenario callbacks scheduled past the last completion still fire (a
    // link can fail after every negotiation concluded — that spawns new
    // sessions), but stale deadline timers for finished sessions do not
    // keep the clock alive.
    if (active_.empty() && pending_wakes_ == 0) break;
    const Tick next = reactor_.timers().next_deadline();
    if (next == kNoDeadline) break;  // nothing left that could ever wake us
    clock_ = std::max(clock_, next);
    if (past_horizon()) break;
  }

  stats_.final_tick = clock_;
  stats_.done = stats_.failed = stats_.cancelled = stats_.killed = 0;
  stats_.total_steps = 0;
  stats_.messages = 0;
  for (const auto& s : sessions_) {
    switch (s->status()) {
      case SessionStatus::kDone: ++stats_.done; break;
      case SessionStatus::kFailed: ++stats_.failed; break;
      case SessionStatus::kCancelled: ++stats_.cancelled; break;
      case SessionStatus::kKilled: ++stats_.killed; break;
      default: break;
    }
    stats_.total_steps += s->steps();
    stats_.messages += s->messages_sent();
  }
  return stats_;
}

}  // namespace nexit::runtime
