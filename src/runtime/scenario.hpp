#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capacity/capacity.hpp"
#include "routing/loads.hpp"
#include "runtime/manager.hpp"
#include "sim/pair_universe.hpp"
#include "traffic/traffic.hpp"

namespace nexit::runtime {

/// Timeline events, declared as data so a scenario is replayable from its
/// config alone. Times are virtual Ticks; `session` indexes the initially
/// spawned sessions (renegotiations get fresh ids at run time).
enum class EventKind : std::uint8_t {
  /// Start `session` at `at` instead of its staggered default.
  kStart,
  /// The pair's traffic changes: cancel whatever `session` is doing, build a
  /// fresh traffic matrix seeded by `param`, and renegotiate from scratch.
  kFlowChurn,
  /// Interconnection failure mid-session (the paper's §5.2 scenario,
  /// generalizing examples/failure_negotiation.cpp): cancel `session`,
  /// re-route its flows by early-exit over the survivors, and spawn a
  /// renegotiation of the affected flows with bandwidth oracles. `param` is
  /// the interconnection index to fail, or kBusiestIx for the loaded one.
  kLinkFailure,
  /// One peer crashes and comes back: the live attempt restarts with fresh
  /// channels (a planned restart does not consume a retry).
  kPeerRestart,
  /// Crash `session` outright: its in-memory state is wiped and only the
  /// durable snapshot+WAL bytes survive (runtime/snapshot.hpp). The session
  /// freezes as kKilled until a matching kResume. Declaring any kill/resume
  /// event enables journaling for the whole run and requires the in-memory
  /// transport (kernel socket buffers are not part of the durable state).
  kKill,
  /// Restore `session` from its journal. With a verified checkpoint + WAL
  /// tail the negotiation continues exactly where the kill interrupted it;
  /// downtime is excised, so the outcome digest, per-session counters and
  /// record bytes equal an uninterrupted run's (the durability contract,
  /// pinned by tests/snapshot_test.cpp at every kill tick).
  kResume,
};

inline constexpr std::uint64_t kBusiestIx = ~std::uint64_t{0};

struct ScenarioEvent {
  Tick at = 0;
  EventKind kind = EventKind::kStart;
  std::uint32_t session = 0;
  std::uint64_t param = 0;
};

/// kTcpPair is a connected loopback TCP pair from src/dist — same fd-backed
/// Channel as kSocketPair, but through the full listen/connect/accept path
/// (and the kernel's TCP segmentation, which exercises partial-frame
/// reassembly for real).
enum class Transport : std::uint8_t { kInMemory, kSocketPair, kTcpPair };

/// Workload shape of the initial sessions. kGravityAtoB matches the failure
/// example (gravity traffic, one direction); kBidirectionalIdentical matches
/// the distance experiments; kBidirectionalUniformRandom draws per-flow
/// weights from the session's RNG stream, so sessions cycling the same pair
/// negotiate genuinely different workloads (the synthetic scale-up shape).
enum class ScenarioTraffic : std::uint8_t {
  kBidirectionalIdentical,
  kGravityAtoB,
  kBidirectionalUniformRandom,
};

struct FaultConfig {
  double drop = 0.0;     // whole-frame drop probability per send
  double corrupt = 0.0;  // single-byte corruption probability per send
};

struct ScenarioConfig {
  sim::UniverseConfig universe;
  std::size_t min_links = 2;
  /// Number of initial sessions. 0 = one per universe pair; a larger count
  /// cycles the pairs with per-session traffic (synthetic scale-up — the
  /// expensive PairRouting is shared, the negotiations are distinct).
  std::size_t session_count = 0;
  ScenarioTraffic traffic = ScenarioTraffic::kBidirectionalIdentical;
  /// Wire sessions require deterministic tie-breaks; run_scenario forces
  /// tie_break = kDeterministic regardless of what is set here.
  core::NegotiationConfig negotiation;
  SessionLimits limits;
  RuntimeConfig runtime;
  Transport transport = Transport::kInMemory;
  /// Fault injection on initial sessions' transports (renegotiation
  /// sessions run clean — the paper assumes a working control channel).
  FaultConfig faults;
  /// Which initial sessions get `faults` (empty = all of them).
  std::vector<std::uint32_t> fault_targets;
  /// Session i starts at tick i * start_stagger (kStart events override).
  Tick start_stagger = 1;
  std::vector<ScenarioEvent> events;
  /// Durable-session journaling (runtime/snapshot.hpp). Any kill/resume
  /// event enables it implicitly; `journal` forces it on without kill
  /// events (the snapshot_throughput bench measures pure overhead that
  /// way); `dir` additionally mirrors the bytes to disk for CI artifacts.
  struct Durability {
    bool journal = false;
    std::string dir;
  };
  Durability durability;
  /// Seeds the per-session traffic/fault RNG streams, pre-forked in session
  /// order exactly like the experiment engines (PR 1), so any --threads
  /// value replays bit-identically.
  std::uint64_t seed = 7;
};

/// Shared expensive state: one per universe pair, referenced by every
/// session on that pair. Heap-pinned (PairRouting points into `pair`).
struct PairWorld {
  topology::IspPair pair;
  std::unique_ptr<routing::PairRouting> routing;
};

/// Everything one session negotiates over. Owned by the Scenario and pinned
/// for the manager's lifetime (the NegotiationProblem points into it).
struct SessionWorld {
  SessionWorld(const PairWorld* base_in, traffic::TrafficMatrix traffic_in)
      : base(base_in), traffic(std::move(traffic_in)) {}

  const PairWorld* base = nullptr;
  traffic::TrafficMatrix traffic;
  routing::LoadMap capacities;  // failure renegotiations only
  core::NegotiationProblem problem;
  std::unique_ptr<core::PreferenceOracle> oracle_a, oracle_b;
  std::size_t failed_ix = ~std::size_t{0};  // failure renegotiations only
};

enum class SessionKind : std::uint8_t {
  kInitial,
  kChurnRenegotiation,
  kFailureRenegotiation,
};

struct ScenarioSessionResult {
  std::uint32_t id = 0;
  SessionKind kind = SessionKind::kInitial;
  std::int64_t parent = -1;  // session this one renegotiates for
  std::string pair_label;
  SessionStatus status = SessionStatus::kPending;
  core::NegotiationOutcome outcome;  // valid when status == kDone
  std::string error;
  int attempts = 0;
  int retries = 0;
  std::size_t steps = 0;
  std::uint64_t messages = 0;
  std::uint64_t timeouts = 0;
  Tick started_at = 0;
  Tick finished_at = 0;
};

struct ScenarioReport {
  std::vector<ScenarioSessionResult> sessions;
  RuntimeStats stats;
};

/// Builds the worlds, spawns the sessions, registers the timeline, and
/// drives the SessionManager. Construct-once, run-once; keep the object
/// alive to introspect worlds after the run (tests do).
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  ScenarioReport run();

  [[nodiscard]] const SessionWorld& world_of(std::uint32_t session_id) const {
    return *worlds_.at(session_id);
  }
  [[nodiscard]] SessionManager& manager() { return manager_; }
  [[nodiscard]] std::size_t initial_session_count() const {
    return initial_count_;
  }
  /// Non-null iff durability journaling is on for this run. The non-const
  /// overload lets tests tamper with journals mid-run (corruption and
  /// truncation drills).
  [[nodiscard]] const SnapshotStore* snapshot_store() const {
    return store_.get();
  }
  [[nodiscard]] SnapshotStore* snapshot_store() { return store_.get(); }

 private:
  struct Meta {
    SessionKind kind = SessionKind::kInitial;
    std::int64_t parent = -1;
  };

  std::uint32_t spawn(std::unique_ptr<SessionWorld> world, SessionKind kind,
                      std::int64_t parent, Tick start_at,
                      std::uint64_t fault_seed, bool with_faults);
  void on_flow_churn(Tick now, std::uint32_t target, std::uint64_t reseed);
  void on_link_failure(Tick now, std::uint32_t target, std::uint64_t which);
  void on_kill(Tick now, std::uint32_t target);
  void on_resume(Tick now, std::uint32_t target);

  ScenarioConfig config_;
  std::vector<std::unique_ptr<PairWorld>> pair_worlds_;
  std::vector<std::unique_ptr<SessionWorld>> worlds_;  // index == session id
  std::vector<Meta> meta_;
  std::vector<Tick> scheduled_start_;  // index == session id
  std::size_t initial_count_ = 0;
  bool ran_ = false;
  /// Present iff durability is on (kill/resume events or config). Owns the
  /// journals the sessions write to; tests introspect it after the run.
  std::unique_ptr<SnapshotStore> store_;
  SessionManager manager_;  // declared last: sessions reference the worlds
};

/// Convenience wrapper: construct, run, report.
ScenarioReport run_scenario(ScenarioConfig config);

/// FNV-1a over every session's terminal state, message count, and (for
/// completed sessions) rounds and final assignment: any scheduling-
/// dependent divergence shows up as a different digest. Shared by the
/// runtime_throughput bench, the spec-driven runtime scenarios, and the
/// determinism tests, so "bit-identical across --threads" has one spelling.
std::uint64_t outcome_digest(const ScenarioReport& report);

}  // namespace nexit::runtime
