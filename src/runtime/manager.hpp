#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/reactor.hpp"
#include "runtime/session.hpp"
#include "util/thread_pool.hpp"

namespace nexit::runtime {

struct RuntimeConfig {
  /// Worker threads for pumping ready sessions, with the experiment engines'
  /// contract: 0 = auto-detect, 1 = serial, N = N workers — and outcomes are
  /// bit-identical for every value (in-memory transports; see README).
  std::size_t threads = 1;
  /// Virtual-clock horizon: sessions still live past this tick are cancelled
  /// (guards mis-declared scenarios, not ordinary runs — healthy sessions
  /// finish in a handful of ticks).
  Tick max_ticks = 1u << 20;
};

struct RuntimeStats {
  std::size_t sessions = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  /// Sessions still frozen by a kill event at the end of the run (a
  /// healthy crash-recovery timeline resumes every kill, so this is 0).
  std::size_t killed = 0;
  /// Scheduling rounds in which at least one session was pumped.
  std::size_t rounds = 0;
  /// Most sessions pumped in a single round (the achievable parallelism).
  std::size_t peak_ready = 0;
  std::size_t total_steps = 0;
  std::uint64_t messages = 0;
  Tick final_tick = 0;
};

/// Drives a population of Sessions to completion over a shared Reactor and
/// virtual clock. Each scheduling round: collect the ready set (buffered
/// bytes, one ::poll() for fd transports, fresh attempts needing a kick),
/// pump every ready session in parallel on the thread pool, then do all
/// bookkeeping single-threaded in ascending session-id order. When nothing
/// is ready the clock jumps straight to the next timer — idle sessions cost
/// nothing.
///
/// Determinism: the ready set is computed before the round's barrier and
/// processed in id order, sessions share no mutable state, and all timer /
/// scenario callbacks run single-threaded between rounds — so a run's
/// outcomes are bit-identical for every `threads` value.
class SessionManager {
 public:
  explicit SessionManager(RuntimeConfig config = {});

  /// Takes ownership; the session starts at virtual tick `start_at`
  /// (staggered starts are just increasing start_at values). Returns the
  /// session id. May be called mid-run from an at() callback — renegotiation
  /// sessions are spawned exactly this way.
  std::uint32_t add(std::unique_ptr<Session> session, Tick start_at = 0);

  /// Runs `fn(now)` when the virtual clock reaches `when` (single-threaded,
  /// deterministic order). Scenario timelines are built from these.
  void at(Tick when, std::function<void(Tick)> fn);

  /// Re-syncs reactor watches and deadline timers after out-of-band session
  /// mutation (kill, resume, cancel from a scenario callback). Killed and
  /// terminal sessions are unwatched — their channels are gone.
  void notice(std::uint32_t id);

  /// Schedules a (second) start timer for an existing session — a resumed
  /// session with no durable state negotiates fresh from here. Harmless if
  /// another start timer is still pending: start() only fires once.
  void schedule_start(std::uint32_t id, Tick when);

  /// Drives every session to a terminal state. Callable again after adding
  /// more sessions.
  RuntimeStats run();

  [[nodiscard]] Session& session(std::uint32_t id) { return *sessions_.at(id); }
  [[nodiscard]] const Session& session(std::uint32_t id) const {
    return *sessions_.at(id);
  }
  [[nodiscard]] std::size_t size() const { return sessions_.size(); }
  [[nodiscard]] Tick now() const { return clock_; }

 private:
  /// Post-touch bookkeeping: refresh the reactor watch and deadline timer,
  /// or retire the session if it went terminal.
  void refresh(std::uint32_t id);
  void sweep_active();
  /// True once the clock passed max_ticks; cancels whatever is still live.
  bool past_horizon();

  RuntimeConfig config_;
  util::ThreadPool pool_;
  Reactor reactor_;
  std::vector<std::unique_ptr<Session>> sessions_;  // id == index
  /// Earliest scheduled-but-unfired kSessionDeadline tick per session
  /// (kNoDeadline = none). A new timer is armed only when the session's real
  /// deadline precedes it; a firing that turns out early (progress moved the
  /// deadline later) is a no-op re-armed at the real deadline. Keeps the
  /// heap at O(sessions), not one dead entry per pump.
  std::vector<Tick> armed_deadline_;
  std::vector<std::uint32_t> active_;               // non-terminal ids, sorted
  /// Scheduled kSessionStart/kCallback items not yet fired. When no session
  /// is live, only these can create work — stale deadline timers cannot —
  /// so the run ends as soon as both are exhausted.
  std::size_t pending_wakes_ = 0;
  Tick clock_ = 0;
  RuntimeStats stats_;
};

}  // namespace nexit::runtime
