#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "agent/channel.hpp"
#include "runtime/clock.hpp"

namespace nexit::runtime {

/// Readiness multiplexer for the session runtime: answers "which watched
/// sessions have bytes waiting right now?" without stepping anyone.
///
/// Two sources of readiness are merged:
///  - in-memory channels report buffered bytes directly (Channel::readable),
///  - fd-backed channels (AF_UNIX socketpairs) are gathered into a single
///    non-blocking ::poll() call per scheduling round.
///
/// The reactor also owns the virtual-clock TimerQueue: when nothing is
/// readable, the session manager jumps the clock to the reactor's next
/// timer deadline instead of busy-stepping idle sessions.
class Reactor {
 public:
  /// (Re-)registers the channels whose incoming side belongs to `session`.
  /// Pointers must stay valid until the next watch()/unwatch() for the id —
  /// sessions re-register after every attempt because retries swap channels.
  void watch(std::uint32_t session,
             std::vector<const agent::Channel*> incoming);
  void unwatch(std::uint32_t session);

  [[nodiscard]] std::size_t watched() const { return watches_.size(); }

  /// Session ids with bytes waiting, in ascending id order (the order is
  /// part of the runtime's determinism contract). Issues at most one
  /// ::poll() syscall, with zero timeout.
  [[nodiscard]] std::vector<std::uint32_t> ready_now() const;

  TimerQueue& timers() { return timers_; }
  [[nodiscard]] const TimerQueue& timers() const { return timers_; }

 private:
  std::map<std::uint32_t, std::vector<const agent::Channel*>> watches_;
  TimerQueue timers_;
};

}  // namespace nexit::runtime
