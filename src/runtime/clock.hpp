#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace nexit::runtime {

/// Virtual time of the negotiation runtime, in abstract ticks. The
/// SessionManager advances it one tick per scheduling round while any
/// session is ready, and jumps it straight to the next timer deadline when
/// none is — so parked sessions cost nothing and a run's tick trace is a
/// deterministic function of its inputs, independent of wall-clock speed or
/// `--threads`.
using Tick = std::uint64_t;

inline constexpr Tick kNoDeadline = ~Tick{0};

/// What a timer firing means to the session manager.
enum class TimerKind : std::uint8_t {
  kSessionStart,     // start the pending session
  kSessionDeadline,  // re-check the session's handshake/round deadline
  kCallback,         // run the attached scenario callback
};

struct TimerItem {
  Tick at = 0;
  TimerKind kind = TimerKind::kSessionDeadline;
  std::uint32_t session = 0;           // meaningful unless kCallback
  std::function<void(Tick)> callback;  // only for kCallback
};

/// Deterministic min-heap of timed work. Items with equal deadlines fire in
/// insertion order (a monotone sequence number breaks ties), so the expiry
/// sequence — and therefore everything the scenario event handlers do — is
/// reproducible run to run.
class TimerQueue {
 public:
  void schedule(TimerItem item);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest deadline in the queue; kNoDeadline when empty.
  [[nodiscard]] Tick next_deadline() const;

  /// Pops every item with deadline <= now, in (deadline, insertion) order.
  std::vector<TimerItem> expire_until(Tick now);

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    TimerItem item;
  };
  /// Max-heap comparator inverted for std::push_heap: the entry that should
  /// fire FIRST compares greatest.
  static bool later(const Entry& a, const Entry& b);

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nexit::runtime
