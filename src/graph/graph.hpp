#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace nexit::graph {

using NodeIndex = std::int32_t;
using EdgeIndex = std::int32_t;

inline constexpr EdgeIndex kNoEdge = -1;
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// One undirected edge. `weight` is the routing metric (the ISP's IGP link
/// weight); `length_km` is the geographic length used by the paper's distance
/// metric. They are distinct because ISPs route on weights but the evaluation
/// measures kilometres.
struct Edge {
  NodeIndex u = 0;
  NodeIndex v = 0;
  double weight = 1.0;
  double length_km = 0.0;
};

/// Undirected weighted multigraph with stable edge indices.
class Graph {
 public:
  explicit Graph(std::size_t node_count = 0);

  /// Adds an undirected edge and returns its index.
  EdgeIndex add_edge(NodeIndex u, NodeIndex v, double weight, double length_km);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const Edge& edge(EdgeIndex e) const { return edges_.at(static_cast<std::size_t>(e)); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  struct Arc {
    EdgeIndex edge;
    NodeIndex to;
  };
  [[nodiscard]] const std::vector<Arc>& neighbors(NodeIndex n) const {
    return adjacency_.at(static_cast<std::size_t>(n));
  }

  /// Endpoint of `e` opposite to `from`.
  [[nodiscard]] NodeIndex other_end(EdgeIndex e, NodeIndex from) const;

  /// True if every node is reachable from node 0 (false for empty graphs).
  [[nodiscard]] bool connected() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Arc>> adjacency_;
};

/// Single-source shortest-path tree on edge weights (Dijkstra). Ties are
/// broken deterministically by node index so results are reproducible.
class ShortestPathTree {
 public:
  ShortestPathTree(const Graph& g, NodeIndex source);

  [[nodiscard]] NodeIndex source() const { return source_; }
  [[nodiscard]] double distance(NodeIndex dst) const {
    return dist_.at(static_cast<std::size_t>(dst));
  }
  [[nodiscard]] bool reachable(NodeIndex dst) const {
    return dist_.at(static_cast<std::size_t>(dst)) < kInfDistance;
  }

  /// Geographic length (sum of edge length_km) along the min-weight path.
  [[nodiscard]] double path_length_km(NodeIndex dst) const {
    return length_km_.at(static_cast<std::size_t>(dst));
  }

  /// Edge indices along the path source -> dst (empty when dst == source).
  /// Throws if dst is unreachable.
  [[nodiscard]] std::vector<EdgeIndex> path_edges(NodeIndex dst) const;

  /// Node indices along the path source -> dst inclusive.
  [[nodiscard]] std::vector<NodeIndex> path_nodes(NodeIndex dst) const;

 private:
  const Graph* graph_;
  NodeIndex source_;
  std::vector<double> dist_;
  std::vector<double> length_km_;
  std::vector<EdgeIndex> parent_edge_;
};

/// All-pairs shortest paths: one tree per source. For PoP-level ISP maps
/// (tens of nodes) this is small and fast.
class AllPairsShortestPaths {
 public:
  explicit AllPairsShortestPaths(const Graph& g);

  [[nodiscard]] const ShortestPathTree& from(NodeIndex source) const {
    return trees_.at(static_cast<std::size_t>(source));
  }
  [[nodiscard]] double distance(NodeIndex a, NodeIndex b) const {
    return from(a).distance(b);
  }

 private:
  std::vector<ShortestPathTree> trees_;
};

}  // namespace nexit::graph
