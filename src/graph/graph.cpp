#include "graph/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace nexit::graph {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

EdgeIndex Graph::add_edge(NodeIndex u, NodeIndex v, double weight,
                          double length_km) {
  if (u < 0 || v < 0 || static_cast<std::size_t>(u) >= adjacency_.size() ||
      static_cast<std::size_t>(v) >= adjacency_.size()) {
    throw std::out_of_range("Graph::add_edge: node index out of range");
  }
  if (weight < 0.0) throw std::invalid_argument("Graph::add_edge: negative weight");
  const auto idx = static_cast<EdgeIndex>(edges_.size());
  edges_.push_back(Edge{u, v, weight, length_km});
  adjacency_[static_cast<std::size_t>(u)].push_back(Arc{idx, v});
  adjacency_[static_cast<std::size_t>(v)].push_back(Arc{idx, u});
  return idx;
}

NodeIndex Graph::other_end(EdgeIndex e, NodeIndex from) const {
  const Edge& ed = edge(e);
  if (ed.u == from) return ed.v;
  if (ed.v == from) return ed.u;
  throw std::invalid_argument("Graph::other_end: node not an endpoint");
}

bool Graph::connected() const {
  if (adjacency_.empty()) return false;
  std::vector<char> seen(adjacency_.size(), 0);
  std::vector<NodeIndex> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    for (const Arc& arc : neighbors(n)) {
      if (!seen[static_cast<std::size_t>(arc.to)]) {
        seen[static_cast<std::size_t>(arc.to)] = 1;
        ++visited;
        stack.push_back(arc.to);
      }
    }
  }
  return visited == adjacency_.size();
}

ShortestPathTree::ShortestPathTree(const Graph& g, NodeIndex source)
    : graph_(&g),
      source_(source),
      dist_(g.node_count(), kInfDistance),
      length_km_(g.node_count(), kInfDistance),
      parent_edge_(g.node_count(), kNoEdge) {
  if (source < 0 || static_cast<std::size_t>(source) >= g.node_count())
    throw std::out_of_range("ShortestPathTree: source out of range");

  using Item = std::pair<double, NodeIndex>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist_[static_cast<std::size_t>(source)] = 0.0;
  length_km_[static_cast<std::size_t>(source)] = 0.0;
  pq.emplace(0.0, source);

  while (!pq.empty()) {
    const auto [d, n] = pq.top();
    pq.pop();
    if (d > dist_[static_cast<std::size_t>(n)]) continue;  // stale entry
    for (const Graph::Arc& arc : g.neighbors(n)) {
      const Edge& e = g.edge(arc.edge);
      const double nd = d + e.weight;
      auto& best = dist_[static_cast<std::size_t>(arc.to)];
      // Strict improvement, or equal weight with a lower-index parent edge:
      // the second clause makes tie-breaking deterministic regardless of
      // priority-queue pop order.
      const bool improves = nd < best - 1e-12;
      const bool tie_better =
          std::abs(nd - best) <= 1e-12 &&
          parent_edge_[static_cast<std::size_t>(arc.to)] != kNoEdge &&
          arc.edge < parent_edge_[static_cast<std::size_t>(arc.to)];
      if (improves || tie_better) {
        best = nd;
        length_km_[static_cast<std::size_t>(arc.to)] =
            length_km_[static_cast<std::size_t>(n)] + e.length_km;
        parent_edge_[static_cast<std::size_t>(arc.to)] = arc.edge;
        pq.emplace(nd, arc.to);
      }
    }
  }
}

std::vector<EdgeIndex> ShortestPathTree::path_edges(NodeIndex dst) const {
  if (!reachable(dst))
    throw std::runtime_error("ShortestPathTree::path_edges: unreachable node");
  std::vector<EdgeIndex> path;
  NodeIndex cur = dst;
  while (cur != source_) {
    const EdgeIndex pe = parent_edge_[static_cast<std::size_t>(cur)];
    path.push_back(pe);
    cur = graph_->other_end(pe, cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeIndex> ShortestPathTree::path_nodes(NodeIndex dst) const {
  std::vector<NodeIndex> nodes{source_};
  NodeIndex cur = source_;
  for (EdgeIndex e : path_edges(dst)) {
    cur = graph_->other_end(e, cur);
    nodes.push_back(cur);
  }
  return nodes;
}

AllPairsShortestPaths::AllPairsShortestPaths(const Graph& g) {
  trees_.reserve(g.node_count());
  for (std::size_t s = 0; s < g.node_count(); ++s) {
    trees_.emplace_back(g, static_cast<NodeIndex>(s));
  }
}

}  // namespace nexit::graph
