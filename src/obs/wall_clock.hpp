#pragma once

// The one sanctioned wall-clock in the tree. Everything that measures real
// elapsed time — phase timers, bench wall_ms lines, scenario wall-clock
// metrics — reads it through obs::WallClock, and the determinism lint's
// raw-entropy rule exempts exactly this file: a naked steady_clock anywhere
// else is flagged, so every wall-clock read stays auditable as "timing
// telemetry only, never digest input".

#include <chrono>
#include <cstdint>

namespace nexit::obs {

class WallClock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  [[nodiscard]] static TimePoint now() {
    return std::chrono::steady_clock::now();
  }

  [[nodiscard]] static double ms_since(TimePoint t0) {
    return std::chrono::duration<double, std::milli>(now() - t0).count();
  }

  [[nodiscard]] static std::uint64_t ns_since(TimePoint t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now() - t0)
            .count());
  }
};

}  // namespace nexit::obs
