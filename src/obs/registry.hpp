#pragma once

// Deterministic metrics registry: named counters and fixed-bucket
// histograms, sharded per thread so the engine hot paths never contend,
// merged in canonical order so the emitted values are bit-stable across
// --threads=N.
//
// The determinism contract splits observability in two:
//   - counters/histograms count WORK (evaluate calls, rounds, sessions).
//     Their per-thread shard sums are commutative uint64 additions, so the
//     merged snapshot is identical for every thread count and may appear in
//     thread-stability comparisons (the "obs" JSON section).
//   - phase timers measure WALL TIME through obs::WallClock. They are
//     run-dependent by nature and land only in the digest-excluded
//     "timing" JSON section, and only when explicitly enabled
//     (obs.timing=true) — disarmed timers cost one relaxed atomic load.
//
// Synchronization model: writers touch only their own thread's shard
// (created under a mutex on first use); snapshot()/reset_counters() must
// run while no writer is active — in practice after util::ThreadPool::wait()
// or SessionManager::run() returned, both of which establish the needed
// happens-before edge.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/wall_clock.hpp"

namespace nexit::obs {

/// The instrumented hot phases. Extend here and in phase_name(); the
/// timing section derives its keys from this list.
enum class Phase : std::uint8_t {
  kSelectProposal,
  kEvaluateFull,
  kEvaluateIncremental,
  kLoadsMaintain,
  kQuantizationScale,
  kWireEncode,
  kWireDecode,
  kSessionPump,
  kCount,
};

[[nodiscard]] const char* phase_name(Phase p);

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

/// Histogram buckets are value magnitudes: bucket k counts observations v
/// with bit_width(v) == k (v = 0 lands in bucket 0, 1 in bucket 1, 2..3 in
/// bucket 2, ...). 65 buckets cover the whole uint64 range with no
/// configuration to get wrong.
inline constexpr std::size_t kHistogramBuckets = 65;

[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value);

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Per-bucket counts, index = bit_width of the observed value.
  std::vector<std::uint64_t> buckets;
};

struct Snapshot {
  std::vector<CounterSnapshot> counters;      // sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name

  /// Sums `other` into this snapshot by name, preserving the sorted order —
  /// the cross-process twin of the per-thread shard merge. The distributed
  /// layer folds worker-shard snapshots with this; because every addition
  /// is a commutative uint64 sum, the merged totals are independent of how
  /// work was sharded across processes, exactly as they are independent of
  /// --threads=N within one.
  void merge_from(const Snapshot& other);
};

struct PhaseSnapshot {
  const char* name = "";
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
};

class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide instance the engines and the runtime report into.
  static Registry& global();

  /// Adds `delta` to the named counter in the calling thread's shard.
  void add(const std::string& name, std::uint64_t delta);

  /// Records one observation into the named histogram's magnitude bucket.
  void observe(const std::string& name, std::uint64_t value);

  /// Canonical merge: every counter/histogram summed over all shards in
  /// shard-creation order, emitted sorted by name. uint64 addition is
  /// commutative, so the result does not depend on which thread counted
  /// what — the property the cross-thread bit-stability tests pin.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every counter and histogram in every shard (timing survives —
  /// sweeps reset work counters per point but report timing once per run).
  void reset_counters();

  // --- phase timing ------------------------------------------------------

  void set_timing_enabled(bool on) {
    timing_enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool timing_enabled() const {
    return timing_enabled_.load(std::memory_order_relaxed);
  }

  void add_phase_ns(Phase p, std::uint64_t ns);

  /// Per-phase calls and nanoseconds summed over all shards, in Phase
  /// declaration order (zero-call phases included, so the timing section's
  /// key set never depends on what happened to run).
  [[nodiscard]] std::vector<PhaseSnapshot> timing_snapshot() const;

  void reset_timing();

 private:
  struct Shard {
    std::map<std::string, std::uint64_t> counters;
    struct Histogram {
      std::uint64_t count = 0;
      std::uint64_t sum = 0;
      std::uint64_t buckets[kHistogramBuckets] = {};
    };
    std::map<std::string, Histogram> histograms;
    std::uint64_t phase_calls[kPhaseCount] = {};
    std::uint64_t phase_ns[kPhaseCount] = {};
  };

  [[nodiscard]] Shard& local_shard();

  /// Distinguishes registries that happen to reuse a freed registry's
  /// address, so a thread's cached shard pointer can never go stale-valid.
  const std::uint64_t instance_id_;
  std::atomic<bool> timing_enabled_{false};
  mutable std::mutex mutex_;  // guards shards_ growth, not shard contents
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Scoped RAII phase timer. Disarmed (one relaxed load, no clock read)
/// unless timing was enabled on the global registry — the zero-overhead
/// contract the fig7 digest test pins.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p)
      : phase_(p), armed_(Registry::global().timing_enabled()) {
    if (armed_) t0_ = WallClock::now();
  }
  ~PhaseTimer() {
    if (armed_) Registry::global().add_phase_ns(phase_, WallClock::ns_since(t0_));
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const Phase phase_;
  const bool armed_;
  WallClock::TimePoint t0_{};
};

}  // namespace nexit::obs
