#pragma once

// Chrome trace_event JSON writer (the JSON Array / traceEvents format both
// chrome://tracing and Perfetto load). Events are stamped with LOGICAL
// clocks — engine round numbers, runtime virtual ticks — never wall time,
// so a trace is a determinism artifact: byte-identical for every
// --threads=N, diffable by CI exactly like an outcome digest.
//
// Usage: events are appended single-threaded (the scenario layer converts
// per-sample round traces and session reports after the parallel phase);
// tracks are numbered in creation order, so append order IS file order.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nexit::obs {

class Trace {
 public:
  /// Ordered argument map of one event; values are pre-rendered JSON.
  class Args {
   public:
    Args& add(const std::string& key, std::int64_t value);
    Args& add(const std::string& key, const std::string& value);
    Args& add_bool(const std::string& key, bool value);

   private:
    friend class Trace;
    std::vector<std::pair<std::string, std::string>> kv_;
  };

  /// Opens a new track (trace_event "tid"), emitting its thread_name
  /// metadata event. Tracks are numbered 0, 1, ... in creation order.
  int new_track(const std::string& name);

  /// Complete event ("ph":"X"): a span of `dur` logical ticks at `ts`.
  void complete(int track, std::uint64_t ts, std::uint64_t dur,
                const std::string& name, const std::string& cat, Args args);

  /// Instant event ("ph":"i", thread scope).
  void instant(int track, std::uint64_t ts, const std::string& name,
               const std::string& cat, Args args);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

  /// Serializes the trace; exits 2 on I/O failure (a requested-but-
  /// unwritable determinism artifact must not fail silently). Prints a
  /// "trace written to <path>" confirmation line.
  void write(const std::string& path) const;

  /// The serialized bytes write() would produce (tests byte-compare this).
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    char ph = 'X';
    int track = 0;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::string name;
    std::string cat;
    std::vector<std::pair<std::string, std::string>> args;
  };

  std::vector<Event> events_;
  int next_track_ = 0;
};

}  // namespace nexit::obs
