#include "obs/registry.hpp"

#include <algorithm>
#include <bit>

namespace nexit::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSelectProposal: return "select_proposal";
    case Phase::kEvaluateFull: return "evaluate_full";
    case Phase::kEvaluateIncremental: return "evaluate_incremental";
    case Phase::kLoadsMaintain: return "loads_maintain";
    case Phase::kQuantizationScale: return "quantization_scale";
    case Phase::kWireEncode: return "wire_encode";
    case Phase::kWireDecode: return "wire_decode";
    case Phase::kSessionPump: return "session_pump";
    case Phase::kCount: break;
  }
  return "?";
}

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

namespace {

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Registry::Registry() : instance_id_(next_instance_id()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Shard& Registry::local_shard() {
  // Cache (instance id -> shard) per thread: almost always a one-element
  // scan. Shards are owned by the registry, so a thread exiting never
  // invalidates merged data; the instance id (never reused) keeps a cached
  // pointer from surviving its registry.
  struct TlsSlot {
    std::uint64_t instance = 0;
    Shard* shard = nullptr;
  };
  thread_local std::vector<TlsSlot> slots;
  for (const TlsSlot& slot : slots)
    if (slot.instance == instance_id_) return *slot.shard;

  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  slots.push_back(TlsSlot{instance_id_, shard});
  return *shard;
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  local_shard().counters[name] += delta;
}

void Registry::observe(const std::string& name, std::uint64_t value) {
  Shard::Histogram& h = local_shard().histograms[name];
  ++h.count;
  h.sum += value;
  ++h.buckets[histogram_bucket(value)];
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const auto& [name, value] : shard->counters) counters[name] += value;
    for (const auto& [name, h] : shard->histograms) {
      HistogramSnapshot& merged = histograms[name];
      if (merged.buckets.empty()) merged.buckets.assign(kHistogramBuckets, 0);
      merged.count += h.count;
      merged.sum += h.sum;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        merged.buckets[b] += h.buckets[b];
    }
  }
  Snapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, value] : counters)
    snap.counters.push_back(CounterSnapshot{name, value});
  snap.histograms.reserve(histograms.size());
  for (auto& [name, merged] : histograms) {
    merged.name = name;
    snap.histograms.push_back(std::move(merged));
  }
  return snap;
}

void Snapshot::merge_from(const Snapshot& other) {
  std::map<std::string, std::uint64_t> counter_map;
  for (const CounterSnapshot& c : counters) counter_map[c.name] += c.value;
  for (const CounterSnapshot& c : other.counters)
    counter_map[c.name] += c.value;
  counters.clear();
  counters.reserve(counter_map.size());
  for (const auto& [name, value] : counter_map)
    counters.push_back(CounterSnapshot{name, value});

  std::map<std::string, HistogramSnapshot> histogram_map;
  const auto fold = [&histogram_map](const std::vector<HistogramSnapshot>& hs) {
    for (const HistogramSnapshot& h : hs) {
      HistogramSnapshot& merged = histogram_map[h.name];
      if (merged.buckets.empty()) merged.buckets.assign(kHistogramBuckets, 0);
      merged.count += h.count;
      merged.sum += h.sum;
      for (std::size_t b = 0; b < h.buckets.size() && b < kHistogramBuckets;
           ++b)
        merged.buckets[b] += h.buckets[b];
    }
  };
  fold(histograms);
  fold(other.histograms);
  histograms.clear();
  histograms.reserve(histogram_map.size());
  for (auto& [name, merged] : histogram_map) {
    merged.name = name;
    histograms.push_back(std::move(merged));
  }
}

void Registry::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->counters.clear();
    shard->histograms.clear();
  }
}

void Registry::add_phase_ns(Phase p, std::uint64_t ns) {
  Shard& shard = local_shard();
  ++shard.phase_calls[static_cast<std::size_t>(p)];
  shard.phase_ns[static_cast<std::size_t>(p)] += ns;
}

std::vector<PhaseSnapshot> Registry::timing_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PhaseSnapshot> out(kPhaseCount);
  for (std::size_t p = 0; p < kPhaseCount; ++p)
    out[p].name = phase_name(static_cast<Phase>(p));
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      out[p].calls += shard->phase_calls[p];
      out[p].ns += shard->phase_ns[p];
    }
  }
  return out;
}

void Registry::reset_timing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::fill(std::begin(shard->phase_calls), std::end(shard->phase_calls), 0);
    std::fill(std::begin(shard->phase_ns), std::end(shard->phase_ns), 0);
  }
}

}  // namespace nexit::obs
