#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace nexit::obs {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out + "\"";
}

void emit_args(std::ostringstream& os,
               const std::vector<std::pair<std::string, std::string>>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    os << (i == 0 ? "" : ",") << quote(args[i].first) << ":" << args[i].second;
  }
  os << "}";
}

}  // namespace

Trace::Args& Trace::Args::add(const std::string& key, std::int64_t value) {
  kv_.emplace_back(key, std::to_string(value));
  return *this;
}

Trace::Args& Trace::Args::add(const std::string& key,
                              const std::string& value) {
  kv_.emplace_back(key, quote(value));
  return *this;
}

Trace::Args& Trace::Args::add_bool(const std::string& key, bool value) {
  kv_.emplace_back(key, value ? "true" : "false");
  return *this;
}

int Trace::new_track(const std::string& name) {
  const int track = next_track_++;
  Event e;
  e.ph = 'M';
  e.track = track;
  e.name = "thread_name";
  e.args.emplace_back("name", quote(name));
  events_.push_back(std::move(e));
  return track;
}

void Trace::complete(int track, std::uint64_t ts, std::uint64_t dur,
                     const std::string& name, const std::string& cat,
                     Args args) {
  Event e;
  e.ph = 'X';
  e.track = track;
  e.ts = ts;
  e.dur = dur;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args.kv_);
  events_.push_back(std::move(e));
}

void Trace::instant(int track, std::uint64_t ts, const std::string& name,
                    const std::string& cat, Args args) {
  Event e;
  e.ph = 'i';
  e.track = track;
  e.ts = ts;
  e.name = name;
  e.cat = cat;
  e.args = std::move(args.kv_);
  events_.push_back(std::move(e));
}

std::string Trace::to_json() const {
  // One event per line: a trace diff (the CI cross-thread check) points at
  // the first diverging event, not at one mega-line.
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    os << (i == 0 ? "\n" : ",\n") << "{\"ph\":\"" << e.ph << "\",\"pid\":0"
       << ",\"tid\":" << e.track;
    if (e.ph != 'M') os << ",\"ts\":" << e.ts;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur;
    os << ",\"name\":" << quote(e.name);
    if (!e.cat.empty()) os << ",\"cat\":" << quote(e.cat);
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    if (!e.args.empty()) {
      os << ",\"args\":";
      emit_args(os, e.args);
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void Trace::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  out << to_json();
  out.flush();
  if (!out) {
    std::cerr << "error: --trace: cannot write " << path << "\n";
    std::exit(2);
  }
  std::cout << "trace written to " << path << " (" << event_count()
            << " events)\n";
}

}  // namespace nexit::obs
