#pragma once

// Machine-readable run records, shared by the scenario driver, the legacy
// bench shims, the runtime/micro benches, and the tests (promoted here from
// bench/bench_common.hpp so there is exactly one JSON emitter).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/flags.hpp"
#include "util/stats.hpp"

namespace nexit::util {

/// Machine-readable run record for perf trajectories: a binary that is
/// handed `--json=<path>` writes `{binary, spec: {...}, config: {...},
/// metrics: {...}}` there, so successive runs (BENCH_*.json) can be diffed
/// and plotted across PRs. The `spec` section is the serialized
/// sim::ExperimentSpec (round-trippable key=value strings) and is omitted
/// when empty; `config` holds ad-hoc knobs of non-scenario benches.
///
/// Construct it right after parsing (the Flags constructor reads --json,
/// keeping reject_unknown happy), record entries as they are computed, and
/// call write() last. Everything is a no-op without a path.
class JsonReport {
 public:
  JsonReport(const Flags& flags, std::string binary_name);
  /// Direct-path form for tests and programmatic callers (no --json flag).
  JsonReport(std::string path, std::string binary_name);

  /// One serialized spec key=value pair; values are recorded verbatim as
  /// JSON strings so the record parses back into the exact same spec.
  void spec_entry(const std::string& key, const std::string& value);

  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, std::int64_t value);
  void config(const std::string& key, double value);

  void metric(const std::string& name, double value);
  void metric(const std::string& name, std::int64_t value);
  void metric(const std::string& name, const std::string& value);
  /// Five-point summary of a CDF under "<name>.{n,min,p25,p50,p75,max}".
  void metric_cdf(const std::string& name, const Cdf& cdf);

  /// Sweep support: after begin_point(), metric*() calls land in a per-
  /// point section of a top-level "points" array (`{"point": <label>,
  /// "metrics": {...}}`) instead of the shared metrics map, until
  /// end_points() returns routing to the top level. One record therefore
  /// aggregates a whole sweep: shared spec + config, one metrics section
  /// per expanded point, and the overall digest on top.
  void begin_point(const std::string& label);
  void end_points();

  /// Writes the file if a path was given; exits 2 on I/O failure (a
  /// requested-but-unwritable record should not fail silently).
  void write() const;

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  /// The entry list metric*() currently appends to: the active point's, or
  /// the top-level metrics map.
  Entries& sink() {
    return in_point_ ? points_.back().second : metrics_;
  }

  std::string path_;
  std::string binary_;
  Entries spec_;
  Entries config_;
  Entries metrics_;
  std::vector<std::pair<std::string, Entries>> points_;
  bool in_point_ = false;
};

}  // namespace nexit::util
