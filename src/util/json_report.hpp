#pragma once

// Machine-readable run records, shared by the scenario driver, the legacy
// bench shims, the runtime/micro benches, and the tests (promoted here from
// bench/bench_common.hpp so there is exactly one JSON emitter).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/flags.hpp"
#include "util/stats.hpp"

namespace nexit::util {

/// Machine-readable run record for perf trajectories: a binary that is
/// handed `--json=<path>` writes `{binary, spec: {...}, config: {...},
/// metrics: {...}}` there, so successive runs (BENCH_*.json) can be diffed
/// and plotted across PRs. The `spec` section is the serialized
/// sim::ExperimentSpec (round-trippable key=value strings) and is omitted
/// when empty; `config` holds ad-hoc knobs of non-scenario benches.
///
/// Two optional sections carry observability data: `obs` (deterministic
/// counters/histograms off the obs::Registry — thread-count independent,
/// fair game for byte-comparisons) and `timing` (wall-clock phase profile —
/// run-dependent, never digested). Sweep points get their own `obs`
/// sub-section next to their metrics.
///
/// Every section rejects duplicate keys: recording the same key twice in
/// one section is a bug in the caller (the record would silently shadow a
/// value), so it aborts with exit 2 naming the key and section.
///
/// Construct it right after parsing (the Flags constructor reads --json,
/// keeping reject_unknown happy), record entries as they are computed, and
/// call write() last. Everything is a no-op without a path.
class JsonReport {
 public:
  JsonReport(const Flags& flags, std::string binary_name);
  /// Direct-path form for tests and programmatic callers (no --json flag).
  JsonReport(std::string path, std::string binary_name);

  /// One serialized spec key=value pair; values are recorded verbatim as
  /// JSON strings so the record parses back into the exact same spec.
  void spec_entry(const std::string& key, const std::string& value);

  void config(const std::string& key, const std::string& value);
  void config(const std::string& key, std::int64_t value);
  void config(const std::string& key, double value);

  void metric(const std::string& name, double value);
  void metric(const std::string& name, std::int64_t value);
  void metric(const std::string& name, const std::string& value);
  /// Nine-point summary of a CDF under
  /// "<name>.{n,min,p5,p25,p50,p75,p90,p99,max}".
  void metric_cdf(const std::string& name, const Cdf& cdf);

  /// One deterministic observability entry ("obs" section; lands in the
  /// active point's obs sub-section during a sweep).
  void obs_entry(const std::string& name, std::int64_t value);

  /// Splices an entry whose value is ALREADY serialized JSON (produced by
  /// this class's own formatters in another process). The distributed
  /// coordinator replays worker-shipped metric entries through this —
  /// verbatim value strings are what make a distributed record
  /// byte-identical to the in-process one. Same duplicate-key abort as
  /// every other entry path.
  void metric_serialized(const std::string& name, std::string value);

  /// The serialized (key, value) entries of the current metrics sink, in
  /// record order — what a dist worker ships to the coordinator.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  metric_entries() const {
    return in_point_ ? points_.back().metrics : metrics_;
  }

  /// One wall-clock profile entry (top-level "timing" section; never
  /// point-scoped — timing is reported once per run).
  void timing_entry(const std::string& name, std::int64_t value);
  void timing_entry(const std::string& name, double value);

  /// Sweep support: after begin_point(), metric*() calls land in a per-
  /// point section of a top-level "points" array (`{"point": <label>,
  /// "metrics": {...}}`) instead of the shared metrics map, until
  /// end_points() returns routing to the top level. One record therefore
  /// aggregates a whole sweep: shared spec + config, one metrics section
  /// per expanded point, and the overall digest on top.
  void begin_point(const std::string& label);
  void end_points();

  /// Writes the file if a path was given; exits 2 on I/O failure (a
  /// requested-but-unwritable record should not fail silently).
  void write() const;

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  struct Point {
    std::string label;
    Entries metrics;
    Entries obs;
  };

  /// Appends to `entries`, aborting (exit 2) when `key` is already present
  /// in that section.
  static void insert(Entries& entries, const char* section,
                     const std::string& key, std::string value);

  /// The entry list metric*() currently appends to: the active point's, or
  /// the top-level metrics map.
  Entries& sink() { return in_point_ ? points_.back().metrics : metrics_; }
  /// Same routing for obs entries.
  Entries& obs_sink() { return in_point_ ? points_.back().obs : obs_; }

  std::string path_;
  std::string binary_;
  Entries spec_;
  Entries config_;
  Entries metrics_;
  Entries obs_;
  Entries timing_;
  std::vector<Point> points_;
  bool in_point_ = false;
};

}  // namespace nexit::util
