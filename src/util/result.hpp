#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nexit::util {

/// Lightweight error type: a code-free message. Parsing and protocol layers
/// return Result<T> instead of throwing so that malformed remote input is an
/// ordinary control-flow path, not an exception.
struct Error {
  std::string message;
};

/// Minimal expected-like result (C++20 has no std::expected).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : data_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::runtime_error("Result::value on error: " + error().message);
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    if (!ok()) throw std::runtime_error("Result::take on error: " + error().message);
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

/// Helper for building error results tersely.
inline Error make_error(std::string message) { return Error{std::move(message)}; }

}  // namespace nexit::util
