#include "util/json_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace nexit::util {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out + "\"";
}

/// JSON has no inf/nan literals: %.17g would emit `inf`, producing a record
/// no parser accepts. A non-finite measurement becomes `null` — present in
/// the record, visibly not-a-number.
std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void emit(std::ofstream& out,
          const std::vector<std::pair<std::string, std::string>>& entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    " << quote(entries[i].first) << ": "
        << entries[i].second;
  }
  if (!entries.empty()) out << "\n  ";
}

void emit_inline(std::ofstream& out,
                 const std::vector<std::pair<std::string, std::string>>&
                     entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 ? "" : ", ") << quote(entries[i].first) << ": "
        << entries[i].second;
  }
}

}  // namespace

JsonReport::JsonReport(const Flags& flags, std::string binary_name)
    : path_(flags.get_string("json", "")), binary_(std::move(binary_name)) {}

JsonReport::JsonReport(std::string path, std::string binary_name)
    : path_(std::move(path)), binary_(std::move(binary_name)) {}

void JsonReport::insert(Entries& entries, const char* section,
                        const std::string& key, std::string value) {
  for (const auto& [existing, _] : entries) {
    if (existing == key) {
      std::cerr << "error: json record: duplicate key \"" << key
                << "\" in section \"" << section << "\"\n";
      std::exit(2);
    }
  }
  entries.emplace_back(key, std::move(value));
}

void JsonReport::spec_entry(const std::string& key, const std::string& value) {
  insert(spec_, "spec", key, quote(value));
}

void JsonReport::config(const std::string& key, const std::string& value) {
  insert(config_, "config", key, quote(value));
}
void JsonReport::config(const std::string& key, std::int64_t value) {
  insert(config_, "config", key, std::to_string(value));
}
void JsonReport::config(const std::string& key, double value) {
  insert(config_, "config", key, number(value));
}

void JsonReport::metric(const std::string& name, double value) {
  insert(sink(), "metrics", name, number(value));
}
void JsonReport::metric(const std::string& name, std::int64_t value) {
  insert(sink(), "metrics", name, std::to_string(value));
}
void JsonReport::metric(const std::string& name, const std::string& value) {
  insert(sink(), "metrics", name, quote(value));
}

void JsonReport::metric_serialized(const std::string& name,
                                   std::string value) {
  insert(sink(), "metrics", name, std::move(value));
}

void JsonReport::obs_entry(const std::string& name, std::int64_t value) {
  insert(obs_sink(), "obs", name, std::to_string(value));
}

void JsonReport::timing_entry(const std::string& name, std::int64_t value) {
  insert(timing_, "timing", name, std::to_string(value));
}
void JsonReport::timing_entry(const std::string& name, double value) {
  insert(timing_, "timing", name, number(value));
}

void JsonReport::begin_point(const std::string& label) {
  points_.push_back(Point{label, {}, {}});
  in_point_ = true;
}

void JsonReport::end_points() { in_point_ = false; }

void JsonReport::metric_cdf(const std::string& name, const Cdf& cdf) {
  if (cdf.empty()) return;
  metric(name + ".n", static_cast<std::int64_t>(cdf.size()));
  metric(name + ".min", cdf.min());
  metric(name + ".p5", cdf.value_at(0.05));
  metric(name + ".p25", cdf.value_at(0.25));
  metric(name + ".p50", cdf.value_at(0.5));
  metric(name + ".p75", cdf.value_at(0.75));
  metric(name + ".p90", cdf.value_at(0.9));
  metric(name + ".p99", cdf.value_at(0.99));
  metric(name + ".max", cdf.max());
}

void JsonReport::write() const {
  if (path_.empty()) return;
  std::ofstream out(path_);
  out << "{\n  \"binary\": " << quote(binary_) << ",\n";
  if (!spec_.empty()) {
    out << "  \"spec\": {";
    emit(out, spec_);
    out << "},\n";
  }
  out << "  \"config\": {";
  emit(out, config_);
  out << "},\n  \"metrics\": {";
  emit(out, metrics_);
  out << "}";
  if (!obs_.empty()) {
    out << ",\n  \"obs\": {";
    emit(out, obs_);
    out << "}";
  }
  if (!timing_.empty()) {
    out << ",\n  \"timing\": {";
    emit(out, timing_);
    out << "}";
  }
  if (!points_.empty()) {
    out << ",\n  \"points\": [";
    for (std::size_t i = 0; i < points_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    {\"point\": "
          << quote(points_[i].label) << ", \"metrics\": {";
      emit_inline(out, points_[i].metrics);
      out << "}";
      if (!points_[i].obs.empty()) {
        out << ", \"obs\": {";
        emit_inline(out, points_[i].obs);
        out << "}";
      }
      out << "}";
    }
    out << "\n  ]";
  }
  out << "\n}\n";
  out.flush();
  if (!out) {
    std::cerr << "error: --json: cannot write " << path_ << "\n";
    std::exit(2);
  }
  std::cout << "json record written to " << path_ << "\n";
}

}  // namespace nexit::util
