#pragma once

#include <cstdint>
#include <vector>

namespace nexit::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All randomness in the library flows through explicitly seeded Rng
/// instances so that every experiment is reproducible from its seed. The
/// generator is self-contained (no std::mt19937 state-size or distribution
/// portability concerns across standard libraries).
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling; bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Bernoulli trial.
  bool next_bool(double p_true = 0.5);

  /// Derive an independent child generator (stable given call order).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random index into a non-empty container.
  std::size_t pick_index(std::size_t size);

 private:
  std::uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Forks `streams_per_item` child generators for each of `count` items,
/// SERIALLY and in item order: item 0's streams first, then item 1's, and
/// so on. This is the one place that encodes the parallel experiment
/// engines' determinism scheme — pre-forking every item's randomness before
/// dispatch makes an N-thread run bit-identical to a serial one, and
/// identical to a serial loop that forked the same number of streams per
/// item inline. Result: result[item][stream].
std::vector<std::vector<Rng>> fork_streams(Rng& rng, std::size_t count,
                                           std::size_t streams_per_item);

}  // namespace nexit::util
