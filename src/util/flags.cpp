#include "util/flags.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace nexit::util {

namespace {

thread_local std::string g_flag_error_context;

std::string error_context_suffix() {
  return g_flag_error_context.empty() ? "" : " (in " + g_flag_error_context + ")";
}

/// Aborts with exit 2 naming the flag and the malformed value. Flag parsing
/// is a program-startup concern for CLI binaries, so hard-exiting here (like
/// reject_unknown_flags does) beats silently running with value 0.
[[noreturn]] void die_bad_value(const std::string& name,
                                const std::string& value,
                                const char* expected) {
  die_flag_value(name, value, expected);
}

}  // namespace

void die_flag_value(const std::string& name, const std::string& value,
                    const std::string& expected) {
  std::cerr << "error: flag --" << name << " expects " << expected
            << ", got \"" << value << "\"" << error_context_suffix() << "\n";
  std::exit(2);
}

FlagErrorContext::FlagErrorContext(std::string what) {
  g_flag_error_context = std::move(what);
}

FlagErrorContext::~FlagErrorContext() { g_flag_error_context.clear(); }

Flags::Flags(const std::vector<std::string>& assignments) {
  for (const std::string& a : assignments) {
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      values_[a.substr(0, eq)] = a.substr(eq + 1);
    } else {
      values_[a] = "true";
    }
  }
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  queried_.insert(name);
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::string Flags::get_choice(const std::string& name,
                              const std::vector<std::string>& allowed,
                              const std::string& fallback) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  for (const std::string& choice : allowed)
    if (it->second == choice) return it->second;
  if (help_requested()) return fallback;
  std::cerr << "error: flag --" << name << " expects one of {";
  for (std::size_t i = 0; i < allowed.size(); ++i)
    std::cerr << (i == 0 ? "" : ", ") << allowed[i];
  std::cerr << "}, got \"" << it->second << "\"" << error_context_suffix()
            << "\n";
  std::exit(2);
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || errno == ERANGE) {
    if (help_requested()) return fallback;
    die_bad_value(name, value, "an integer");
  }
  return parsed;
}

double Flags::get_double(const std::string& name, double fallback) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  // ERANGE alone is not malformed: glibc also sets it on underflow to a
  // representable denormal (e.g. "1e-310"). Overflow and explicit
  // "inf"/"nan" spellings are rejected — no experiment flag means them.
  if (value.empty() || *end != '\0' || !std::isfinite(parsed)) {
    if (help_requested()) return fallback;
    die_bad_value(name, value, "a finite number");
  }
  return parsed;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  if (help_requested()) return fallback;
  die_bad_value(name, value, "a boolean (true/false/1/0/yes/no)");
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> result;
  for (const auto& [name, value] : values_)
    if (queried_.count(name) == 0) result.push_back(name);
  return result;
}

std::vector<std::string> Flags::queried() const {
  return {queried_.begin(), queried_.end()};
}

std::vector<std::string> Flags::names_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_)
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  return out;
}

std::size_t get_count(const Flags& flags, const std::string& name,
                      std::size_t fallback, std::size_t max_value) {
  const std::int64_t v =
      flags.get_int(name, static_cast<std::int64_t>(fallback));
  if (v < 0 || static_cast<std::uint64_t>(v) > max_value) {
    if (flags.help_requested()) return fallback;
    std::cerr << "error: --" << name << " expects an integer in [0, "
              << max_value << "], got " << v << error_context_suffix() << "\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

void reject_unknown(const Flags& flags) {
  if (flags.has("help")) {
    std::cout << "usage: flags are spelled --name=value; this binary reads:\n";
    for (const std::string& name : flags.queried()) {
      if (name != "help") std::cout << "  --" << name << "\n";
    }
    std::exit(0);
  }
  const std::vector<std::string> unknown = flags.unknown();
  const std::vector<std::string>& positional = flags.positional();
  if (unknown.empty() && positional.empty()) return;
  if (!unknown.empty()) {
    std::cerr << "error: unknown flag" << (unknown.size() > 1 ? "s" : "")
              << ":";
    for (const std::string& name : unknown) std::cerr << " --" << name;
    std::cerr << "\n";
  }
  if (!positional.empty()) {
    std::cerr << "error: unexpected argument"
              << (positional.size() > 1 ? "s" : "")
              << " (flags are spelled --name=value):";
    for (const std::string& arg : positional) std::cerr << " " << arg;
    std::cerr << "\n";
  }
  std::cerr << "this binary reads:";
  for (const std::string& name : flags.queried()) std::cerr << " --" << name;
  std::cerr << "\n";
  std::exit(2);
}

}  // namespace nexit::util
