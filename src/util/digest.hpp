#pragma once

// FNV-1a scaffolding for the determinism digests printed across the repo
// (the scenario driver, runtime_throughput, micro_incremental, and the test
// suites): one place for the constants so the digest scheme cannot drift
// between binaries. A digest equal across --threads values (or across
// --incremental on/off, or between a preset run and its legacy binary)
// demonstrates two runs are bit-identical from the shell.

#include <cstdint>
#include <cstring>
#include <string>

namespace nexit::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

/// Bit pattern of a double, for hashing exact values (not rounded text).
inline std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

/// Fixed-width lowercase hex spelling, the format every digest print uses.
inline std::string digest_hex(std::uint64_t h) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace nexit::util
