#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace nexit::util {

/// Strongly typed integral identifier. Two StrongIds with different tags do
/// not convert to each other, which prevents mixing e.g. PoP ids of ISP-A
/// with PoP ids of ISP-B or link indices with flow indices.
///
/// The underlying value is a 32-bit signed integer; negative values are
/// reserved for "invalid" sentinels (see `invalid()`).
template <typename Tag>
class StrongId {
 public:
  using value_type = std::int32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{-1}; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }
  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  value_type value_ = -1;
};

}  // namespace nexit::util

namespace std {
template <typename Tag>
struct hash<nexit::util::StrongId<Tag>> {
  size_t operator()(nexit::util::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
}  // namespace std
