#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace nexit::util {

double sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  return sum(xs) / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

namespace {

/// Shared tail of both percentile overloads; `sorted` must be sorted.
double percentile_of_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p out of [0,100]");
  if (sorted.size() == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double median(const std::vector<double>& xs) { return percentile(xs, 50.0); }

double percentile(const std::vector<double>& xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (xs.size() == 1) return percentile_of_sorted(xs, p);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  return percentile_of_sorted(sorted, p);
}

double percentile(std::vector<double>&& xs, double p) {
  std::sort(xs.begin(), xs.end());
  return percentile_of_sorted(xs, p);
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {
  ensure_sorted();
}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_leq(double x) const {
  if (samples_.empty()) throw std::logic_error("Cdf::fraction_leq: empty");
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::value_at(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::value_at: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Cdf::value_at: q");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double Cdf::min() const {
  if (samples_.empty()) throw std::logic_error("Cdf::min: empty");
  ensure_sorted();
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) throw std::logic_error("Cdf::max: empty");
  ensure_sorted();
  return samples_.back();
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

std::string format_cdf_table(const std::vector<std::string>& names,
                             const std::vector<const Cdf*>& cdfs,
                             const std::vector<double>& percentiles_wanted,
                             int width, int precision) {
  if (names.size() != cdfs.size())
    throw std::invalid_argument("format_cdf_table: names/cdfs size mismatch");
  std::ostringstream os;
  os << std::setw(8) << "pct";
  for (const auto& n : names) os << std::setw(width) << n;
  os << "\n";
  os << std::fixed << std::setprecision(precision);
  for (double p : percentiles_wanted) {
    os << std::setw(7) << std::setprecision(1) << p << "%"
       << std::setprecision(precision);
    for (const Cdf* c : cdfs) {
      if (c == nullptr || c->empty()) {
        os << std::setw(width) << "-";
      } else {
        os << std::setw(width) << c->value_at(p / 100.0);
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace nexit::util
