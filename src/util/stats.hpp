#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nexit::util {

/// Left-to-right sum of a sample. This is the canonical accumulation
/// order of the repo: FP addition is non-associative, so routing every
/// reduction through one helper keeps digests bit-identical across code
/// paths (the determinism lint flags ad-hoc `+=` loops).
double sum(const std::vector<double>& xs);

/// Mean of a non-empty sample (sum(xs) / size).
double mean(const std::vector<double>& xs);

/// Population standard deviation (0 for samples of size < 2).
double stddev(const std::vector<double>& xs);

/// Median (average of the two middle elements for even sizes).
double median(const std::vector<double>& xs);

/// p-th percentile, p in [0, 100], linear interpolation between order
/// statistics. Requires a non-empty sample. The input is left untouched;
/// one internal copy is sorted (callers that need many percentiles of the
/// same sample should build a Cdf instead, which sorts once).
double percentile(const std::vector<double>& xs, double p);

/// Zero-copy overload for callers done with their sample: sorts in place.
/// Used on the oracle-evaluation hot path (quantization_scale).
double percentile(std::vector<double>&& xs, double p);

/// Empirical cumulative distribution over a sample, in the style the paper
/// plots: for a value x, `fraction_leq(x)` is the fraction of samples <= x.
/// Also produces fixed-percentile tables for textual "figures".
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x, in [0, 1].
  [[nodiscard]] double fraction_leq(double x) const;

  /// Value at cumulative fraction q in [0, 1] (inverse CDF).
  [[nodiscard]] double value_at(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Sorted copy of the sample.
  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Renders one row per requested percentile: "p10 p25 p50 p75 p90 ..." for
/// several named CDFs side by side. Used by the bench binaries to print the
/// series behind each paper figure.
std::string format_cdf_table(const std::vector<std::string>& names,
                             const std::vector<const Cdf*>& cdfs,
                             const std::vector<double>& percentiles_wanted,
                             int width = 12, int precision = 3);

}  // namespace nexit::util
