#pragma once

#include <sstream>
#include <string>

namespace nexit::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold; messages below it are discarded. Benches and
/// examples leave this at kWarn so normal output stays clean; tests can raise
/// or lower it.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[LEVEL] message".
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace nexit::util

#define NEXIT_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::nexit::util::log_level())) { \
  } else                                                      \
    ::nexit::util::detail::LogStream(level)

#define NEXIT_DEBUG NEXIT_LOG(::nexit::util::LogLevel::kDebug)
#define NEXIT_INFO NEXIT_LOG(::nexit::util::LogLevel::kInfo)
#define NEXIT_WARN NEXIT_LOG(::nexit::util::LogLevel::kWarn)
#define NEXIT_ERROR NEXIT_LOG(::nexit::util::LogLevel::kError)
