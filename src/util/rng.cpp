#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace nexit::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = (span == 0) ? next_u64() : next_below(span);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  have_spare_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Rng Rng::fork() { return Rng(next_u64()); }

std::size_t Rng::pick_index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::pick_index: empty range");
  return static_cast<std::size_t>(next_below(size));
}

std::vector<std::vector<Rng>> fork_streams(Rng& rng, std::size_t count,
                                           std::size_t streams_per_item) {
  std::vector<std::vector<Rng>> result(count);
  for (std::vector<Rng>& item : result) {
    item.reserve(streams_per_item);
    for (std::size_t s = 0; s < streams_per_item; ++s)
      item.push_back(rng.fork());
  }
  return result;
}

}  // namespace nexit::util
