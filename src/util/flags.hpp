#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nexit::util {

/// Minimal command-line flag parser for the bench binaries and examples.
/// Accepts "--name=value"; bare "--name" sets "true". (No "--name value"
/// form: it is ambiguous with positional arguments.)
///
/// Typos cannot silently misconfigure a run: a present-but-malformed value
/// (`--pairs=abc`, `--pairs=`) makes get_int/get_double/get_bool abort with
/// exit 2 naming the flag, and every accessor records the queried name so
/// that after a binary has read all the flags it understands, `unknown()`
/// lists the leftovers — typos like `--seeed=7` — and the bench harness can
/// refuse to run with them.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Builds from bare "name=value" assignments (no "--" prefix) — the spec
  /// files of sim::ExperimentSpec reuse the whole Flags machinery this way,
  /// so a spec file enjoys the same malformed-value and unknown-key
  /// rejection as the command line. A line without '=' sets "true", like a
  /// bare --flag.
  explicit Flags(const std::vector<std::string>& assignments);

  [[nodiscard]] bool has(const std::string& name) const;

  /// True when --help is on the command line. While a help run is in
  /// flight, malformed values of known flags return their fallbacks instead
  /// of aborting — `prog --help --seed=abc` must help, not die — and
  /// reject_unknown() then prints the flag list and exits 0.
  [[nodiscard]] bool help_requested() const { return values_.count("help") > 0; }
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  /// String flag restricted to a closed set: a present-but-unlisted value
  /// exits 2 listing the valid choices (fallback during a --help run, like
  /// every other accessor). `fallback` need not be a member of `allowed` —
  /// the scenario driver uses an out-of-set sentinel to detect "not given".
  [[nodiscard]] std::string get_choice(const std::string& name,
                                       const std::vector<std::string>& allowed,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that did not look like --flags, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Names present on the command line that start with `prefix`, in sorted
  /// order. Does NOT mark them queried — callers that accept an open family
  /// of flags (`sweep.<key>=...`) enumerate first, then get_string() each
  /// name they actually understand, so misspellings still reach unknown().
  [[nodiscard]] std::vector<std::string> names_with_prefix(
      const std::string& prefix) const;

  /// Flags given on the command line that no accessor has queried yet, in
  /// sorted order. Call after all get_*/has calls to catch misspellings.
  [[nodiscard]] std::vector<std::string> unknown() const;

  /// Every name queried so far (present on the command line or not), in
  /// sorted order — i.e. the flags this binary actually understands.
  [[nodiscard]] std::vector<std::string> queried() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  /// Names queried via has()/get_*; mutable because querying a flag is
  /// logically const but must be remembered for unknown().
  mutable std::set<std::string> queried_;
};

/// The fatal-diagnostic tail other flag-shaped parsers reuse so their
/// errors read exactly like get_int/get_choice failures: prints
/// `error: flag --<name> expects <expected>, got "<value>"` (plus the
/// active FlagErrorContext, so spec-file values name their file) and exits
/// 2. Callers honouring the --help contract must check help_requested()
/// and fall back instead of calling this.
[[noreturn]] void die_flag_value(const std::string& name,
                                 const std::string& value,
                                 const std::string& expected);

/// Non-negative count flag bounded to [0, max_value]: out-of-range values
/// exit 2 naming the flag (instead of wrapping around through a size_t
/// cast), except during a --help run, which returns `fallback` so the help
/// text stays reachable. Shared by the bench harness and the examples.
std::size_t get_count(const Flags& flags, const std::string& name,
                      std::size_t fallback, std::size_t max_value);

/// RAII marker for where flag values are coming from. While one is alive,
/// every fatal flag diagnostic (malformed value, out-of-set choice,
/// out-of-range count) appends " (in <what>)" — so a bad value inside a
/// `--spec=<file>` names the file instead of pointing at a command-line
/// flag that was never typed. Not nestable (last one wins) and
/// thread-local, which matches its only use: program-startup parsing.
class FlagErrorContext {
 public:
  explicit FlagErrorContext(std::string what);
  ~FlagErrorContext();
  FlagErrorContext(const FlagErrorContext&) = delete;
  FlagErrorContext& operator=(const FlagErrorContext&) = delete;
};

/// Finishes flag handling; call once, after every get_*/has call (only then
/// is the full set of understood flags known). Two behaviours:
///  - `--help`: prints the flags this binary reads and exits 0 — the
///    discoverable twin of the error path below.
///  - Aborts (exit 2) if the command line carried flags the binary never
///    read, or positional arguments (no binary in this repo takes any, so
///    `-seed=7` — one dash — is a typo, not an operand), so a typo cannot
///    silently fall back to defaults.
void reject_unknown(const Flags& flags);

}  // namespace nexit::util
