#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nexit::util {

/// Minimal command-line flag parser for the bench binaries and examples.
/// Accepts "--name=value"; bare "--name" sets "true". (No "--name value"
/// form: it is ambiguous with positional arguments.)
class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that did not look like --flags, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nexit::util
