#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace nexit::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Experiment workers log concurrently; serialize so lines never interleave.
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace nexit::util
