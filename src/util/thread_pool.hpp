#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nexit::util {

/// Fixed-size worker pool for sharding independent work items (ISP pairs,
/// failure samples) across threads.
///
/// Semantics chosen for deterministic experiment engines:
///  - `worker_count == 0` runs every task inline on the submitting thread,
///    so a "no threads" configuration is exactly the serial code path.
///  - Exceptions thrown by tasks are captured; the FIRST one (in completion
///    order) is rethrown from `wait()`. Remaining tasks still run.
///  - `wait()` may be called repeatedly; the pool is reusable afterwards.
///
/// Tasks must not submit to the pool they run on (no nested submission);
/// the experiment engines only ever submit from the coordinating thread.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` (runs it inline when the pool has no workers).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.
  void wait();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Detected hardware parallelism, never 0.
  static std::size_t hardware_threads();

 private:
  void worker_loop();
  void run_task(const std::function<void()>& task);
  /// Stops and joins all workers (used by the destructor, and by the
  /// constructor to unwind safely when std::thread creation throws).
  void shutdown();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Runs `body(i)` for every i in [0, n) on the pool and blocks until all
/// iterations finish; rethrows the first task exception. Each index is an
/// independent task, so iterations may run in any order — callers must make
/// iterations independent (write only to slot i).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Maps a user-facing `--threads` value to a worker count: 0 means
/// auto-detect, 1 means run serially (no worker threads), N>1 means N
/// workers. Throws std::invalid_argument for counts over 4096 — the
/// signature a negative flag value forced through a size_t cast leaves.
std::size_t workers_for_threads(std::size_t threads);

}  // namespace nexit::util
