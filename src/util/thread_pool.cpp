#include "util/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace nexit::util {

ThreadPool::ThreadPool(std::size_t worker_count) {
  workers_.reserve(worker_count);
  try {
    for (std::size_t i = 0; i < worker_count; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  } catch (...) {
    // std::thread creation can throw (e.g. RLIMIT_NPROC); shut down the
    // workers already started before rethrowing, or their joinable
    // destructors would call std::terminate.
    shutdown();
    throw;
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::run_task(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    run_task(task);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) pool.submit([&body, i] { body(i); });
  pool.wait();
}

std::size_t workers_for_threads(std::size_t threads) {
  // Backstop against unvalidated flag casts: a -1 forced through size_t
  // must become a clear error, not a 2^64-thread reserve() abort.
  if (threads > 4096)
    throw std::invalid_argument(
        "workers_for_threads: implausible thread count (unvalidated flag?)");
  if (threads == 0) threads = ThreadPool::hardware_threads();
  return threads == 1 ? 0 : threads;
}

}  // namespace nexit::util
