#pragma once

#include <vector>

#include "lp/simplex.hpp"
#include "routing/loads.hpp"
#include "routing/pair_routing.hpp"

namespace nexit::opt {

/// Configuration for the min-max load optimisation.
struct MinMaxConfig {
  /// Which ISPs' links constrain the objective. Both for the globally
  /// optimal routing of §5.2; only the upstream side for the unilateral
  /// upstream-centric optimisation of Fig. 8.
  bool constrain_side_a = true;
  bool constrain_side_b = true;
};

struct MinMaxLoadResult {
  lp::SolveStatus status = lp::SolveStatus::kIterationLimit;
  /// The minimised maximum load/capacity ratio over constrained links that
  /// any negotiable flow can touch. (Links untouched by negotiable flows
  /// contribute a constant ratio; compute overall MELs from the assignment.)
  double objective = 0.0;
  /// Covers every flow: non-negotiable flows keep their base interconnection
  /// with fraction 1; negotiable flows may be split fractionally.
  routing::FractionalAssignment assignment;
};

/// Computes the globally optimal (fractional) re-routing of the negotiable
/// flows that minimises the maximum link load ratio — the LP the paper uses
/// as the "globally optimal routing" baseline in §5.2. Flows may be divided
/// fractionally among interconnections, so the result upper-bounds what any
/// integral routing (including negotiation) can achieve.
///
/// `negotiable[i]` marks flows to re-route; others stay on
/// `base_assignment.ix_of_flow[i]` and contribute background load.
/// `candidates` are the interconnection indices available (the ones up).
MinMaxLoadResult solve_min_max_load(const routing::PairRouting& routing,
                                    const std::vector<traffic::Flow>& flows,
                                    const std::vector<char>& negotiable,
                                    const routing::Assignment& base_assignment,
                                    const std::vector<std::size_t>& candidates,
                                    const routing::LoadMap& capacities,
                                    const MinMaxConfig& config = {});

/// Rounds a fractional assignment to an integral one: each flow goes to its
/// largest share (ties toward the lowest interconnection index).
routing::Assignment round_to_integral(const routing::FractionalAssignment& fa);

}  // namespace nexit::opt
