#include "opt/min_max_load.hpp"

#include <map>
#include <stdexcept>
#include <utility>

namespace nexit::opt {

MinMaxLoadResult solve_min_max_load(const routing::PairRouting& routing,
                                    const std::vector<traffic::Flow>& flows,
                                    const std::vector<char>& negotiable,
                                    const routing::Assignment& base_assignment,
                                    const std::vector<std::size_t>& candidates,
                                    const routing::LoadMap& capacities,
                                    const MinMaxConfig& config) {
  if (negotiable.size() != flows.size() ||
      base_assignment.ix_of_flow.size() != flows.size())
    throw std::invalid_argument("solve_min_max_load: size mismatch");
  if (candidates.empty())
    throw std::invalid_argument("solve_min_max_load: no candidates");

  const bool side_constrained[2] = {config.constrain_side_a,
                                    config.constrain_side_b};

  // Background load from the flows that are not being re-routed.
  routing::LoadMap background = routing::LoadMap::zeros(routing.pair());
  std::vector<std::size_t> neg;  // indices of negotiable flows
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (negotiable[i]) {
      neg.push_back(i);
    } else {
      routing::add_flow_load(background, routing, flows[i],
                             base_assignment.ix_of_flow[i], 1.0);
    }
  }

  // Variable layout: x[f][c] for f in neg, c in candidates (row-major),
  // then t as the last variable.
  const std::size_t nf = neg.size();
  const std::size_t nc = candidates.size();
  const int t_var = static_cast<int>(nf * nc);
  lp::LpProblem problem(t_var + 1);
  problem.set_objective_coeff(t_var, 1.0);

  auto var_of = [&](std::size_t fi, std::size_t ci) {
    return static_cast<int>(fi * nc + ci);
  };

  // One convex-combination constraint per negotiable flow.
  for (std::size_t fi = 0; fi < nf; ++fi) {
    std::vector<std::pair<int, double>> terms;
    terms.reserve(nc);
    for (std::size_t ci = 0; ci < nc; ++ci) terms.emplace_back(var_of(fi, ci), 1.0);
    problem.add_constraint(std::move(terms), lp::Relation::kEq, 1.0);
  }

  // Per-link terms: (side, edge) -> list of (var, size). Only links on some
  // candidate path of some negotiable flow need a constraint; all other
  // links carry constant load.
  std::map<std::pair<int, graph::EdgeIndex>, std::vector<std::pair<int, double>>>
      link_terms;
  for (std::size_t fi = 0; fi < nf; ++fi) {
    const traffic::Flow& f = flows[neg[fi]];
    const int up = traffic::upstream_side(f.direction);
    const int down = traffic::downstream_side(f.direction);
    for (std::size_t ci = 0; ci < nc; ++ci) {
      const std::size_t ix = candidates[ci];
      if (side_constrained[up]) {
        for (graph::EdgeIndex e : routing.upstream_path_edges(f, ix))
          link_terms[{up, e}].emplace_back(var_of(fi, ci), f.size);
      }
      if (side_constrained[down]) {
        for (graph::EdgeIndex e : routing.downstream_path_edges(f, ix))
          link_terms[{down, e}].emplace_back(var_of(fi, ci), f.size);
      }
    }
  }

  // For each touched link: background + sum(size * x) <= t * capacity.
  for (auto& [key, terms] : link_terms) {
    const auto [side, edge] = key;
    const double cap =
        capacities.per_side[static_cast<std::size_t>(side)].at(
            static_cast<std::size_t>(edge));
    if (cap <= 0.0)
      throw std::invalid_argument("solve_min_max_load: non-positive capacity");
    const double bg = background.per_side[static_cast<std::size_t>(side)].at(
        static_cast<std::size_t>(edge));
    auto cons = terms;  // copy: keep map intact for potential reuse
    cons.emplace_back(t_var, -cap);
    problem.add_constraint(std::move(cons), lp::Relation::kLe, -bg);
  }

  const lp::Solution sol = lp::SimplexSolver{}.solve(problem);

  MinMaxLoadResult result;
  result.status = sol.status;
  if (sol.status != lp::SolveStatus::kOptimal) return result;
  result.objective = sol.objective;

  result.assignment.shares_of_flow.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!negotiable[i]) {
      result.assignment.shares_of_flow[i] = {
          {base_assignment.ix_of_flow[i], 1.0}};
    }
  }
  for (std::size_t fi = 0; fi < nf; ++fi) {
    auto& shares = result.assignment.shares_of_flow[neg[fi]];
    double total = 0.0;
    for (std::size_t ci = 0; ci < nc; ++ci) {
      const double v = sol.x[static_cast<std::size_t>(var_of(fi, ci))];
      if (v > 1e-9) {
        shares.push_back({candidates[ci], v});
        // nexit-lint: allow(float-accumulate): summed in candidate order to
        // normalise the solver's own shares; order fixed by the LP columns
        total += v;
      }
    }
    // Normalise tiny numerical drift so fractions sum to exactly 1.
    if (total > 0.0) {
      for (auto& s : shares) s.fraction /= total;
    } else {
      shares.push_back({candidates[0], 1.0});
    }
  }
  return result;
}

routing::Assignment round_to_integral(const routing::FractionalAssignment& fa) {
  routing::Assignment a;
  a.ix_of_flow.reserve(fa.shares_of_flow.size());
  for (const auto& shares : fa.shares_of_flow) {
    if (shares.empty())
      throw std::invalid_argument("round_to_integral: flow with no shares");
    std::size_t best_ix = shares[0].ix;
    double best_frac = shares[0].fraction;
    for (const auto& s : shares) {
      if (s.fraction > best_frac + 1e-12 ||
          (s.fraction > best_frac - 1e-12 && s.ix < best_ix)) {
        best_ix = s.ix;
        best_frac = s.fraction;
      }
    }
    a.ix_of_flow.push_back(best_ix);
  }
  return a;
}

}  // namespace nexit::opt
