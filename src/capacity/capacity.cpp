#include "capacity/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace nexit::capacity {

namespace {

std::vector<double> assign_side(const std::vector<double>& loads,
                                const CapacityConfig& config) {
  std::vector<double> caps = loads;

  std::vector<double> nonzero;
  for (double l : loads)
    if (l > 0.0) nonzero.push_back(l);

  if (nonzero.empty()) {
    // Degenerate: the ISP carries no traffic at all. Give unit capacity so
    // ratios remain defined.
    std::fill(caps.begin(), caps.end(), 1.0);
    return caps;
  }

  double unused_value = 0.0;
  switch (config.unused_rule) {
    case UnusedLinkRule::kMedian:
      unused_value = util::median(nonzero);
      break;
    case UnusedLinkRule::kMean:
      unused_value = util::mean(nonzero);
      break;
    case UnusedLinkRule::kMax:
      unused_value = *std::max_element(nonzero.begin(), nonzero.end());
      break;
  }

  const double median_load = util::median(nonzero);
  for (double& c : caps) {
    if (c <= 0.0) c = unused_value;            // backup links
    if (config.upgrade_below_median && c < median_load) c = median_load;
    if (config.round_up_power_of_two && c > 0.0) {
      c = std::pow(2.0, std::ceil(std::log2(c)));
    }
  }
  return caps;
}

}  // namespace

routing::LoadMap assign_capacities(const routing::LoadMap& baseline_loads,
                                   const CapacityConfig& config) {
  routing::LoadMap caps;
  caps.per_side[0] = assign_side(baseline_loads.per_side[0], config);
  caps.per_side[1] = assign_side(baseline_loads.per_side[1], config);
  return caps;
}

}  // namespace nexit::capacity
