#pragma once

#include "routing/loads.hpp"

namespace nexit::capacity {

/// How capacity is assigned to links that carried no traffic before the
/// failure (they may be used after it, so they cannot be dropped). The paper
/// uses the median of the loaded links; mean and max are the alternates it
/// also tried.
enum class UnusedLinkRule { kMedian, kMean, kMax };

/// §5.2 capacity model: capacities proportional to pre-failure load, because
/// a well-designed network is roughly matched to its traffic.
struct CapacityConfig {
  UnusedLinkRule unused_rule = UnusedLinkRule::kMedian;
  /// "Upgrade" links below the median to the median so results are not
  /// dominated by links that carry little traffic (paper default: on).
  bool upgrade_below_median = true;
  /// Alternate model: round capacities up to the nearest power of two
  /// ("discrete capacities").
  bool round_up_power_of_two = false;
};

/// Derives per-link capacities from the pre-failure loads. The result has the
/// same shape as the input LoadMap; every capacity is strictly positive
/// provided the ISP carries any traffic at all.
routing::LoadMap assign_capacities(const routing::LoadMap& baseline_loads,
                                   const CapacityConfig& config);

}  // namespace nexit::capacity
