#pragma once

#include <cstdint>
#include <string>

#include "agent/channel.hpp"
#include "core/engine.hpp"
#include "proto/messages.hpp"

namespace nexit::agent {

/// Where the agent is in the session.
enum class AgentState {
  kHandshake,     // exchanging HELLO/CANDIDATES/FLOW_ANNOUNCE/PREF_ADVERT
  kNegotiating,   // rounds of PROPOSE/RESPONSE
  kAwaitResponse, // sent a PROPOSE, waiting for the verdict
  kSettling,      // exchanging ROLLBACK lists after STOP (§6 settlement)
  kStopping,      // awaiting the final BYE
  kDone,
  kFailed,
};

std::string to_string(AgentState s);

struct AgentConfig {
  /// 0 = ISP A (proposes in round 0 under the alternate policy), 1 = ISP B.
  int side = 0;
  std::uint32_t asn = 0;
  /// Protocol parameters; contractual fields must match the peer's.
  /// Restrictions versus the in-process engine: tie_break must be
  /// kDeterministic and turn must not be kCoinToss (both sides of the wire
  /// must reach identical decisions without sharing an RNG), and kFull
  /// termination is not supported (it requires both ISPs' private gains at
  /// once, which only the simulation engine can see).
  core::NegotiationConfig negotiation;
};

/// One side of the out-of-band negotiation of Fig. 12: evaluates routing
/// choices through its oracle, advertises opaque preferences, exchanges
/// proposals over the channel, and reports the agreed assignment. Decision
/// logic is the shared core/strategy.hpp code, so a session between two
/// honest agents reproduces NegotiationEngine::run() exactly
/// (tests/agent_test.cpp asserts this).
class NegotiationAgent {
 public:
  NegotiationAgent(const core::NegotiationProblem& problem,
                   core::PreferenceOracle& oracle, Channel& channel,
                   AgentConfig config);

  /// Advances the FSM: drains the channel, handles complete frames, and
  /// takes any proactive action (sending handshake, proposing, stopping).
  /// Returns true if anything happened.
  bool step();

  [[nodiscard]] AgentState state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == AgentState::kDone; }
  [[nodiscard]] bool failed() const { return state_ == AgentState::kFailed; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Valid once done(): the negotiated outcome as seen by this side.
  [[nodiscard]] const core::NegotiationOutcome& outcome() const;

  // Mid-session introspection for the durability layer (runtime/snapshot):
  // the replayable negotiation state a WAL record's integrity mark pins —
  // tentative assignment, accumulated gains, pending delta, round.
  [[nodiscard]] std::size_t round() const { return round_; }
  [[nodiscard]] std::size_t remaining_count() const { return remaining_count_; }
  [[nodiscard]] const routing::Assignment& tentative() const {
    return tentative_;
  }
  [[nodiscard]] double true_gain() const { return true_gain_; }
  [[nodiscard]] int disclosed_gain(int side) const {
    return disclosed_gain_[side];
  }
  [[nodiscard]] const core::EvaluationDelta& pending_delta() const {
    return pending_delta_;
  }

 private:
  void send_message(const proto::Message& m);
  void fail(const std::string& why);
  void send_handshake();
  void handle_message(const proto::Message& m);
  void handle_handshake_message(const proto::Message& m);
  void handle_propose(const proto::Propose& m);
  void handle_response(const proto::Response& m);
  void apply_accept(std::size_t pos, std::size_t ci);
  void maybe_trigger_reassignment();
  void send_pref_advert(bool reassignment);
  void handle_rollback(const std::vector<std::uint32_t>& flow_ids);
  /// Computes, applies and sends this side's next ROLLBACK list; sends BYE
  /// and finishes instead when settlement has converged.
  void send_settlement_turn();
  void begin_settlement(core::StopReason reason, bool i_stopped);
  void maybe_act();
  [[nodiscard]] int current_proposer() const;
  [[nodiscard]] core::StrategyView my_view() const;
  [[nodiscard]] std::size_t pos_of_flow(std::uint32_t flow_id) const;
  [[nodiscard]] std::size_t ci_of_ix(std::uint32_t ix_id) const;
  void finish(core::StopReason reason);

  const core::NegotiationProblem& problem_;
  core::PreferenceOracle* oracle_;
  Channel* channel_;
  AgentConfig config_;

  proto::FrameDecoder decoder_;
  AgentState state_ = AgentState::kHandshake;
  std::string error_;

  // Handshake bookkeeping.
  bool sent_handshake_ = false;
  int handshake_received_ = 0;  // how many of the 4 peer messages arrived
  proto::Hello remote_hello_;

  // Negotiation state (mirrors NegotiationEngine).
  routing::Assignment tentative_;
  std::vector<char> remaining_;
  std::vector<std::vector<char>> banned_;
  std::vector<std::size_t> default_ci_;
  core::Evaluation truth_;
  core::PreferenceList my_disclosed_;
  core::PreferenceList remote_disclosed_;
  double true_gain_ = 0.0;
  int disclosed_gain_[2] = {0, 0};  // by side, from disclosed lists
  std::size_t remaining_count_ = 0;
  std::size_t round_ = 0;
  /// Accepted moves + settles since this side's last oracle evaluation;
  /// consumed by evaluate_incremental() at the next reassignment quantum
  /// (same contract as NegotiationEngine, so wire sessions stay bit-
  /// identical to in-process runs).
  core::EvaluationDelta pending_delta_;
  double volume_since_reassign_ = 0.0;
  double reassign_quantum_ = 0.0;
  bool awaiting_remote_advert_ = false;
  /// One accepted non-default move (settlement bookkeeping).
  struct AcceptedMove {
    std::size_t pos = 0;
    std::size_t ci = 0;
    double own_value = 0.0;
    bool rolled_back = false;
  };
  std::vector<AcceptedMove> accepted_moves_;
  bool last_received_rollback_empty_ = false;
  core::ProposalChoice outstanding_{};
  core::NegotiationOutcome outcome_;
};

/// Pumps both agents until completion or `max_steps`; returns steps used.
/// Stalls (no progress while incomplete) count as failure of both sides.
std::size_t run_session(NegotiationAgent& a, NegotiationAgent& b,
                        std::size_t max_steps = 100000);

}  // namespace nexit::agent
