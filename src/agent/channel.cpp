#include "agent/channel.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <stdexcept>

namespace nexit::agent {

namespace {

/// Shared state of an in-memory duplex pipe.
struct PipeState {
  std::deque<std::uint8_t> a_to_b;
  std::deque<std::uint8_t> b_to_a;
  bool closed = false;
};

class InMemoryChannel : public Channel {
 public:
  InMemoryChannel(std::shared_ptr<PipeState> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}

  void send(const proto::Bytes& data) override {
    if (state_->closed) throw std::runtime_error("channel closed");
    auto& q = is_a_ ? state_->a_to_b : state_->b_to_a;
    q.insert(q.end(), data.begin(), data.end());
  }

  proto::Bytes receive() override {
    auto& q = is_a_ ? state_->b_to_a : state_->a_to_b;
    proto::Bytes out(q.begin(), q.end());
    q.clear();
    return out;
  }

  [[nodiscard]] bool closed() const override { return state_->closed; }
  void close() override { state_->closed = true; }

 private:
  std::shared_ptr<PipeState> state_;
  bool is_a_;
};

class SocketChannel : public Channel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { close(); }

  void send(const proto::Bytes& data) override {
    if (fd_ < 0) throw std::runtime_error("channel closed");
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + sent, data.size() - sent);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
        throw std::runtime_error("socket write failed");
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  proto::Bytes receive() override {
    proto::Bytes out;
    if (fd_ < 0) return out;
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        out.insert(out.end(), buf, buf + n);
        continue;
      }
      if (n == 0) {  // peer closed
        close();
      }
      break;  // EAGAIN or closed: return what we have
    }
    return out;
  }

  [[nodiscard]] bool closed() const override { return fd_ < 0; }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_in_memory_channel_pair() {
  auto state = std::make_shared<PipeState>();
  return {std::make_unique<InMemoryChannel>(state, true),
          std::make_unique<InMemoryChannel>(state, false)};
}

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_socket_channel_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw std::runtime_error("socketpair failed");
  for (int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  return {std::make_unique<SocketChannel>(fds[0]),
          std::make_unique<SocketChannel>(fds[1])};
}

FaultyChannel::FaultyChannel(std::unique_ptr<Channel> inner,
                             double drop_probability, double corrupt_probability,
                             std::uint64_t seed)
    : inner_(std::move(inner)), drop_p_(drop_probability),
      corrupt_p_(corrupt_probability), rng_(seed) {}

void FaultyChannel::send(const proto::Bytes& data) {
  if (rng_.next_bool(drop_p_)) return;  // dropped on the floor
  if (!data.empty() && rng_.next_bool(corrupt_p_)) {
    proto::Bytes corrupted = data;
    corrupted[rng_.pick_index(corrupted.size())] ^= 0x40;
    inner_->send(corrupted);
    return;
  }
  inner_->send(data);
}

proto::Bytes FaultyChannel::receive() { return inner_->receive(); }
bool FaultyChannel::closed() const { return inner_->closed(); }
void FaultyChannel::close() { inner_->close(); }

}  // namespace nexit::agent
