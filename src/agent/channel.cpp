#include "agent/channel.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <deque>
#include <stdexcept>

namespace nexit::agent {

namespace {

/// Shared state of an in-memory duplex pipe.
struct PipeState {
  std::deque<std::uint8_t> a_to_b;
  std::deque<std::uint8_t> b_to_a;
  bool closed = false;
};

class InMemoryChannel : public Channel {
 public:
  InMemoryChannel(std::shared_ptr<PipeState> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}

  void send(const proto::Bytes& data) override {
    if (state_->closed) throw std::runtime_error("channel closed");
    auto& q = is_a_ ? state_->a_to_b : state_->b_to_a;
    q.insert(q.end(), data.begin(), data.end());
  }

  proto::Bytes receive() override {
    auto& q = is_a_ ? state_->b_to_a : state_->a_to_b;
    proto::Bytes out(q.begin(), q.end());
    q.clear();
    return out;
  }

  [[nodiscard]] bool readable() const override {
    return !(is_a_ ? state_->b_to_a : state_->a_to_b).empty();
  }

  [[nodiscard]] bool closed() const override { return state_->closed; }
  void close() override { state_->closed = true; }

 private:
  std::shared_ptr<PipeState> state_;
  bool is_a_;
};

class SocketChannel : public Channel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override { close(); }

  void send(const proto::Bytes& data) override {
    if (fd_ < 0) throw std::runtime_error("channel closed");
    // Busy-waiting on EAGAIN here would deadlock when both endpoints are
    // pumped by the same thread (the runtime's Session) and a frame
    // overflows the socket buffer: the only reader is the peer we would be
    // starving. Queue what the kernel will not take and flush it from the
    // next send()/receive() call instead.
    if (!pending_out_.empty()) {
      pending_out_.insert(pending_out_.end(), data.begin(), data.end());
      flush_pending();
      return;
    }
    const std::size_t sent = write_some(data.data(), data.size());
    if (sent < data.size())
      pending_out_.assign(data.begin() + static_cast<std::ptrdiff_t>(sent),
                          data.end());
  }

  proto::Bytes receive() override {
    proto::Bytes out;
    if (fd_ < 0) return out;
    flush_pending();
    std::uint8_t buf[65536];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        out.insert(out.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;  // interrupted, not drained
      if (n == 0) {  // peer closed
        close();
      }
      break;  // EAGAIN or closed: return what we have
    }
    return out;
  }

  bool flush() override {
    flush_pending();
    return pending_out_.empty();
  }

  // Kernel buffers are invisible without a syscall; the reactor polls
  // poll_fd() instead of asking readable().
  [[nodiscard]] bool readable() const override { return false; }
  [[nodiscard]] int poll_fd() const override { return fd_; }

  [[nodiscard]] bool closed() const override { return fd_ < 0; }

  void close() override {
    if (fd_ >= 0) {
      // Best-effort: hand any queued overflow to the kernel before teardown
      // (one non-blocking pass — a blocking flush could deadlock against a
      // same-thread peer, the very thing the queue exists to avoid). Bytes
      // the kernel still refuses are dropped, as with any abortive close.
      flush_pending();
      ::close(fd_);
      fd_ = -1;
      pending_out_.clear();
    }
  }

 private:
  /// Writes as much as the kernel accepts right now; returns bytes taken.
  std::size_t write_some(const std::uint8_t* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
      const ssize_t n = ::write(fd_, data + sent, size - sent);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        throw std::runtime_error("socket write failed");
      }
      sent += static_cast<std::size_t>(n);
    }
    return sent;
  }

  void flush_pending() {
    if (pending_out_.empty() || fd_ < 0) return;
    const std::size_t sent = write_some(pending_out_.data(), pending_out_.size());
    pending_out_.erase(pending_out_.begin(),
                       pending_out_.begin() + static_cast<std::ptrdiff_t>(sent));
  }

  int fd_;
  proto::Bytes pending_out_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_in_memory_channel_pair() {
  auto state = std::make_shared<PipeState>();
  return {std::make_unique<InMemoryChannel>(state, true),
          std::make_unique<InMemoryChannel>(state, false)};
}

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_socket_channel_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw std::runtime_error("socketpair failed");
  for (int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  return {std::make_unique<SocketChannel>(fds[0]),
          std::make_unique<SocketChannel>(fds[1])};
}

std::unique_ptr<Channel> make_fd_channel(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return std::make_unique<SocketChannel>(fd);
}

FaultyChannel::FaultyChannel(std::unique_ptr<Channel> inner,
                             double drop_probability, double corrupt_probability,
                             std::uint64_t seed)
    : inner_(std::move(inner)), drop_p_(drop_probability),
      corrupt_p_(corrupt_probability), rng_(seed) {}

void FaultyChannel::send(const proto::Bytes& data) {
  if (rng_.next_bool(drop_p_)) return;  // dropped on the floor
  if (!data.empty() && rng_.next_bool(corrupt_p_)) {
    proto::Bytes corrupted = data;
    corrupted[rng_.pick_index(corrupted.size())] ^= 0x40;
    inner_->send(corrupted);
    return;
  }
  inner_->send(data);
}

proto::Bytes FaultyChannel::receive() { return inner_->receive(); }
bool FaultyChannel::readable() const { return inner_->readable(); }
int FaultyChannel::poll_fd() const { return inner_->poll_fd(); }
bool FaultyChannel::closed() const { return inner_->closed(); }
void FaultyChannel::close() { inner_->close(); }
bool FaultyChannel::flush() { return inner_->flush(); }

}  // namespace nexit::agent
