#include "agent/flow_table.hpp"

namespace nexit::agent {

void FlowTable::roll_window(Entry& e, std::uint64_t now_ms) const {
  // Complete as many whole windows as have elapsed; only the most recent
  // completed window's rate is kept, windows with no traffic reset the
  // above-threshold streak.
  while (now_ms >= e.window_start_ms + config_.window_ms) {
    const double secs = static_cast<double>(config_.window_ms) / 1000.0;
    e.last_rate_bps = static_cast<double>(e.window_bytes) / secs;
    if (e.last_rate_bps >= config_.rate_threshold_bps) {
      ++e.windows_above;
    } else {
      e.windows_above = 0;
    }
    e.window_bytes = 0;
    e.window_start_ms += config_.window_ms;
  }
}

void FlowTable::record(const FlowSignature& sig, std::uint64_t bytes,
                       std::uint64_t now_ms) {
  auto [it, inserted] = flows_.try_emplace(sig);
  Entry& e = it->second;
  if (inserted) {
    e.window_start_ms = now_ms;
  } else {
    roll_window(e, now_ms);
  }
  e.window_bytes += bytes;
  e.last_seen_ms = now_ms;
}

std::size_t FlowTable::expire(std::uint64_t now_ms) {
  std::size_t dropped = 0;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_seen_ms + config_.inactivity_timeout_ms < now_ms) {
      it = flows_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<FlowSignature> FlowTable::negotiable(std::uint64_t now_ms) const {
  std::vector<FlowSignature> out;
  for (const auto& [sig, entry] : flows_) {
    Entry e = entry;  // roll a copy forward; the table itself is const here
    roll_window(e, now_ms);
    if (config_.rate_threshold_bps <= 0.0 || e.windows_above >= config_.hold_windows)
      out.push_back(sig);
  }
  return out;
}

double FlowTable::rate_of(const FlowSignature& sig) const {
  const auto it = flows_.find(sig);
  return it == flows_.end() ? 0.0 : it->second.last_rate_bps;
}

}  // namespace nexit::agent
