#pragma once

#include <memory>
#include <utility>

#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace nexit::agent {

/// Byte-stream transport between two negotiation agents. Implementations are
/// single-threaded and non-blocking: receive() returns whatever bytes are
/// available right now (possibly none).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Queues bytes toward the peer. Throws std::runtime_error if closed.
  virtual void send(const proto::Bytes& data) = 0;

  /// Drains available incoming bytes (possibly empty).
  virtual proto::Bytes receive() = 0;

  /// Readiness hint for an event loop: true when receive() would return
  /// bytes right now. In-memory transports answer exactly; fd-backed
  /// transports answer false ("don't know") — their readiness comes from
  /// poll()ing poll_fd() instead.
  [[nodiscard]] virtual bool readable() const = 0;

  /// Readable-pollable file descriptor for fd-backed transports, -1 for
  /// purely in-memory ones. The runtime reactor batches these into one
  /// ::poll() call per scheduling round.
  [[nodiscard]] virtual int poll_fd() const { return -1; }

  [[nodiscard]] virtual bool closed() const = 0;
  virtual void close() = 0;

  /// Pushes queued outgoing bytes toward the peer without blocking; returns
  /// true when nothing remains queued. In-memory transports deliver
  /// immediately and always return true; fd-backed transports may hold an
  /// overflow queue the kernel refused (see SocketChannel), which a
  /// synchronous caller drains by polling the fd writable and calling
  /// flush() again — the blocking loop itself stays out of Channel so the
  /// single-threaded runtime can never deadlock on it.
  virtual bool flush() { return true; }
};

/// Deterministic in-memory pair: what one side sends the other receives.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_in_memory_channel_pair();

/// AF_UNIX socketpair-backed pair (real kernel transport, still loopback).
/// Sockets are non-blocking; RAII closes the fds.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_socket_channel_pair();

/// Wraps an already-connected stream socket (AF_UNIX or TCP) in the same
/// fd-backed Channel the socketpair factory returns: the fd is switched to
/// non-blocking, writes the kernel refuses queue in an overflow buffer, and
/// RAII closes it. This is how the distributed layer (src/dist) reuses the
/// exact framing/backpressure behaviour of the local transport over
/// accepted/connected sockets.
std::unique_ptr<Channel> make_fd_channel(int fd);

/// Fault-injection decorator for tests: drops or corrupts whole send() calls
/// with the given probabilities (seeded, deterministic).
class FaultyChannel : public Channel {
 public:
  FaultyChannel(std::unique_ptr<Channel> inner, double drop_probability,
                double corrupt_probability, std::uint64_t seed);

  void send(const proto::Bytes& data) override;
  proto::Bytes receive() override;
  [[nodiscard]] bool readable() const override;
  [[nodiscard]] int poll_fd() const override;
  [[nodiscard]] bool closed() const override;
  void close() override;
  bool flush() override;

 private:
  std::unique_ptr<Channel> inner_;
  double drop_p_;
  double corrupt_p_;
  util::Rng rng_;
};

}  // namespace nexit::agent
