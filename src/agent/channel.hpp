#pragma once

#include <memory>
#include <utility>

#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace nexit::agent {

/// Byte-stream transport between two negotiation agents. Implementations are
/// single-threaded and non-blocking: receive() returns whatever bytes are
/// available right now (possibly none).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Queues bytes toward the peer. Throws std::runtime_error if closed.
  virtual void send(const proto::Bytes& data) = 0;

  /// Drains available incoming bytes (possibly empty).
  virtual proto::Bytes receive() = 0;

  /// Readiness hint for an event loop: true when receive() would return
  /// bytes right now. In-memory transports answer exactly; fd-backed
  /// transports answer false ("don't know") — their readiness comes from
  /// poll()ing poll_fd() instead.
  [[nodiscard]] virtual bool readable() const = 0;

  /// Readable-pollable file descriptor for fd-backed transports, -1 for
  /// purely in-memory ones. The runtime reactor batches these into one
  /// ::poll() call per scheduling round.
  [[nodiscard]] virtual int poll_fd() const { return -1; }

  [[nodiscard]] virtual bool closed() const = 0;
  virtual void close() = 0;
};

/// Deterministic in-memory pair: what one side sends the other receives.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_in_memory_channel_pair();

/// AF_UNIX socketpair-backed pair (real kernel transport, still loopback).
/// Sockets are non-blocking; RAII closes the fds.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
make_socket_channel_pair();

/// Fault-injection decorator for tests: drops or corrupts whole send() calls
/// with the given probabilities (seeded, deterministic).
class FaultyChannel : public Channel {
 public:
  FaultyChannel(std::unique_ptr<Channel> inner, double drop_probability,
                double corrupt_probability, std::uint64_t seed);

  void send(const proto::Bytes& data) override;
  proto::Bytes receive() override;
  [[nodiscard]] bool readable() const override;
  [[nodiscard]] int poll_fd() const override;
  [[nodiscard]] bool closed() const override;
  void close() override;

 private:
  std::unique_ptr<Channel> inner_;
  double drop_p_;
  double corrupt_p_;
  util::Rng rng_;
};

}  // namespace nexit::agent
