#include "agent/agent.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "obs/registry.hpp"

namespace nexit::agent {

namespace {

proto::Hello make_hello(const AgentConfig& config, bool wants_reassignment) {
  proto::Hello h;
  h.asn = config.asn;
  h.pref_range = config.negotiation.preferences.range;
  h.wants_reassignment = wants_reassignment;
  h.reassign_fraction = config.negotiation.reassign_traffic_fraction;
  h.turn_policy = static_cast<std::uint8_t>(config.negotiation.turn);
  h.proposal_policy = static_cast<std::uint8_t>(config.negotiation.proposal);
  h.acceptance_policy = static_cast<std::uint8_t>(config.negotiation.acceptance);
  h.termination_policy =
      static_cast<std::uint8_t>(config.negotiation.termination);
  h.settlement_rollback = config.negotiation.settlement_rollback;
  return h;
}

/// The contractual fields both sides must agree on (everything but identity
/// and statefulness).
bool contract_matches(const proto::Hello& a, const proto::Hello& b) {
  return a.pref_range == b.pref_range &&
         a.reassign_fraction == b.reassign_fraction &&
         a.turn_policy == b.turn_policy &&
         a.proposal_policy == b.proposal_policy &&
         a.acceptance_policy == b.acceptance_policy &&
         a.termination_policy == b.termination_policy &&
         a.settlement_rollback == b.settlement_rollback;
}

}  // namespace

std::string to_string(AgentState s) {
  switch (s) {
    case AgentState::kHandshake: return "handshake";
    case AgentState::kNegotiating: return "negotiating";
    case AgentState::kAwaitResponse: return "await-response";
    case AgentState::kSettling: return "settling";
    case AgentState::kStopping: return "stopping";
    case AgentState::kDone: return "done";
    case AgentState::kFailed: return "failed";
  }
  return "?";
}

NegotiationAgent::NegotiationAgent(const core::NegotiationProblem& problem,
                                   core::PreferenceOracle& oracle,
                                   Channel& channel, AgentConfig config)
    : problem_(problem), oracle_(&oracle), channel_(&channel), config_(config) {
  problem_.validate();
  if (config_.side != 0 && config_.side != 1)
    throw std::invalid_argument("AgentConfig: side must be 0 or 1");
  if (config_.negotiation.tie_break != core::TieBreak::kDeterministic)
    throw std::invalid_argument(
        "AgentConfig: wire agents require TieBreak::kDeterministic");
  if (config_.negotiation.turn == core::TurnPolicy::kCoinToss)
    throw std::invalid_argument("AgentConfig: kCoinToss unsupported on the wire");
  if (config_.negotiation.termination == core::TerminationPolicy::kFull)
    throw std::invalid_argument("AgentConfig: kFull unsupported on the wire");

  tentative_ = problem_.default_assignment;
  remaining_.assign(problem_.negotiable.size(), 1);
  banned_.assign(problem_.negotiable.size(),
                 std::vector<char>(problem_.candidates.size(), 0));
  default_ci_.reserve(problem_.negotiable.size());
  for (std::size_t pos = 0; pos < problem_.negotiable.size(); ++pos)
    default_ci_.push_back(problem_.default_candidate(pos));
  remaining_count_ = problem_.negotiable.size();
  reassign_quantum_ = config_.negotiation.reassign_traffic_fraction *
                      problem_.negotiable_volume();
}

const core::NegotiationOutcome& NegotiationAgent::outcome() const {
  if (state_ != AgentState::kDone)
    throw std::logic_error("NegotiationAgent::outcome: session not done");
  return outcome_;
}

void NegotiationAgent::send_message(const proto::Message& m) {
  const obs::PhaseTimer timer(obs::Phase::kWireEncode);
  channel_->send(proto::encode_frame(proto::encode_message(m)));
}

void NegotiationAgent::fail(const std::string& why) {
  state_ = AgentState::kFailed;
  error_ = why;
}

std::size_t NegotiationAgent::pos_of_flow(std::uint32_t flow_id) const {
  for (std::size_t pos = 0; pos < problem_.negotiable.size(); ++pos) {
    if (static_cast<std::uint32_t>(problem_.negotiable_flow(pos).id.value()) ==
        flow_id)
      return pos;
  }
  throw std::out_of_range("unknown flow id");
}

std::size_t NegotiationAgent::ci_of_ix(std::uint32_t ix_id) const {
  for (std::size_t ci = 0; ci < problem_.candidates.size(); ++ci) {
    if (static_cast<std::uint32_t>(problem_.candidates[ci]) == ix_id) return ci;
  }
  throw std::out_of_range("unknown interconnection id");
}

core::StrategyView NegotiationAgent::my_view() const {
  core::StrategyView v;
  v.remaining = &remaining_;
  v.banned = &banned_;
  v.default_ci = &default_ci_;
  v.my_disclosed = &my_disclosed_;
  v.remote_disclosed = &remote_disclosed_;
  v.my_true_value = &truth_.true_value;
  return v;
}

int NegotiationAgent::current_proposer() const {
  switch (config_.negotiation.turn) {
    case core::TurnPolicy::kAlternate:
      return static_cast<int>(round_ % 2);
    case core::TurnPolicy::kLowerGain:
      if (disclosed_gain_[0] == disclosed_gain_[1])
        return static_cast<int>(round_ % 2);
      return disclosed_gain_[0] < disclosed_gain_[1] ? 0 : 1;
    case core::TurnPolicy::kCoinToss:
      break;
  }
  throw std::logic_error("current_proposer: bad policy");
}

void NegotiationAgent::send_pref_advert(bool reassignment) {
  proto::PrefAdvert advert;
  advert.reassignment = reassignment;
  advert.flows.reserve(problem_.negotiable.size());
  for (std::size_t pos = 0; pos < problem_.negotiable.size(); ++pos) {
    proto::PrefAdvert::Item item;
    item.flow_id =
        static_cast<std::uint32_t>(problem_.negotiable_flow(pos).id.value());
    for (core::PrefClass p : my_disclosed_.flows[pos].pref_of_candidate)
      item.pref_of_candidate.push_back(p);
    advert.flows.push_back(std::move(item));
  }
  send_message(advert);
}

void NegotiationAgent::send_handshake() {
  const core::OracleContext ctx{&problem_, &tentative_, &remaining_};
  {
    const obs::PhaseTimer timer(obs::Phase::kEvaluateFull);
    truth_ = oracle_->evaluate(ctx);
  }
  ++outcome_.evaluate_calls_full;
  outcome_.evaluate_rows_computed += truth_.rows_recomputed;
  outcome_.evaluate_rows_full_equivalent += problem_.negotiable.size();
  // Honest disclosure on the wire; remote truth is unknowable here, so the
  // decorator hook gets our own classes as a stand-in (honest oracles ignore
  // the argument entirely).
  my_disclosed_ = oracle_->disclose(ctx, truth_.classes, truth_.classes);
  if (truth_.classes.flows.size() != problem_.negotiable.size())
    throw std::logic_error("oracle returned wrong number of flows");

  send_message(make_hello(config_, oracle_->wants_reassignment()));
  proto::Candidates cands;
  for (std::size_t ix : problem_.candidates)
    cands.interconnection_ids.push_back(static_cast<std::uint32_t>(ix));
  send_message(cands);
  proto::FlowAnnounce fa;
  for (std::size_t pos = 0; pos < problem_.negotiable.size(); ++pos) {
    proto::FlowAnnounce::Item item;
    item.flow_id =
        static_cast<std::uint32_t>(problem_.negotiable_flow(pos).id.value());
    item.default_interconnection =
        static_cast<std::uint32_t>(problem_.default_ix(pos));
    item.size = problem_.negotiable_flow(pos).size;
    fa.flows.push_back(item);
  }
  send_message(fa);
  send_pref_advert(false);
  sent_handshake_ = true;
}

void NegotiationAgent::handle_handshake_message(const proto::Message& m) {
  switch (handshake_received_) {
    case 0: {
      const auto* hello = std::get_if<proto::Hello>(&m);
      if (hello == nullptr) return fail("expected HELLO");
      if (!contract_matches(*hello,
                            make_hello(config_, oracle_->wants_reassignment())))
        return fail("contractual parameter mismatch");
      remote_hello_ = *hello;
      break;
    }
    case 1: {
      const auto* cands = std::get_if<proto::Candidates>(&m);
      if (cands == nullptr) return fail("expected CANDIDATES");
      if (cands->interconnection_ids.size() != problem_.candidates.size())
        return fail("candidate set mismatch");
      for (std::size_t i = 0; i < problem_.candidates.size(); ++i) {
        if (cands->interconnection_ids[i] !=
            static_cast<std::uint32_t>(problem_.candidates[i]))
          return fail("candidate set mismatch");
      }
      break;
    }
    case 2: {
      const auto* fa = std::get_if<proto::FlowAnnounce>(&m);
      if (fa == nullptr) return fail("expected FLOW_ANNOUNCE");
      if (fa->flows.size() != problem_.negotiable.size())
        return fail("flow set mismatch");
      for (std::size_t pos = 0; pos < fa->flows.size(); ++pos) {
        const auto& item = fa->flows[pos];
        const auto& flow = problem_.negotiable_flow(pos);
        if (item.flow_id != static_cast<std::uint32_t>(flow.id.value()) ||
            item.default_interconnection !=
                static_cast<std::uint32_t>(problem_.default_ix(pos)) ||
            std::abs(item.size - flow.size) > 1e-9)
          return fail("flow set mismatch");
      }
      break;
    }
    case 3: {
      const auto* advert = std::get_if<proto::PrefAdvert>(&m);
      if (advert == nullptr || advert->reassignment)
        return fail("expected initial PREF_ADVERT");
      remote_disclosed_.flows.clear();
      if (advert->flows.size() != problem_.negotiable.size())
        return fail("preference list shape mismatch");
      for (std::size_t pos = 0; pos < advert->flows.size(); ++pos) {
        const auto& item = advert->flows[pos];
        if (item.flow_id !=
                static_cast<std::uint32_t>(
                    problem_.negotiable_flow(pos).id.value()) ||
            item.pref_of_candidate.size() != problem_.candidates.size())
          return fail("preference list shape mismatch");
        core::FlowPreferences fp;
        fp.flow = problem_.negotiable_flow(pos).id;
        const int range = config_.negotiation.preferences.range;
        for (std::int32_t p : item.pref_of_candidate) {
          if (p < -range || p > range)
            return fail("preference class out of agreed range");
          fp.pref_of_candidate.push_back(p);
        }
        remote_disclosed_.flows.push_back(std::move(fp));
      }
      state_ = AgentState::kNegotiating;
      break;
    }
    default:
      return fail("unexpected handshake message");
  }
  ++handshake_received_;
}

void NegotiationAgent::apply_accept(std::size_t pos, std::size_t ci) {
  const std::size_t ix = problem_.candidates[ci];
  // Delta bookkeeping feeds evaluate_incremental(); skip it when full
  // recomputes were requested (mirrors NegotiationEngine).
  const bool record_delta = config_.negotiation.incremental_evaluation;
  for (std::size_t flow_index : problem_.members_of(pos)) {
    const std::size_t from = tentative_.ix_of_flow[flow_index];
    if (record_delta && from != ix)
      pending_delta_.moves.push_back(
          core::EvaluationDelta::Move{flow_index, from, ix});
    tentative_.ix_of_flow[flow_index] = ix;
  }
  if (record_delta) pending_delta_.settled_positions.push_back(pos);
  if (ix != problem_.default_ix(pos))
    accepted_moves_.push_back(AcceptedMove{pos, ci, truth_.true_value[pos][ci], false});
  true_gain_ += truth_.true_value[pos][ci];
  disclosed_gain_[config_.side] += my_disclosed_.flows[pos].pref_of_candidate[ci];
  disclosed_gain_[1 - config_.side] +=
      remote_disclosed_.flows[pos].pref_of_candidate[ci];
  remaining_[pos] = 0;
  --remaining_count_;
  ++outcome_.flows_negotiated;
  if (ix != problem_.default_ix(pos)) ++outcome_.flows_moved;
  for (std::size_t flow_index : problem_.members_of(pos))
    // nexit-lint: allow(float-accumulate): member order mirrors the engine's
    // quantum accumulation — both sides must drift identically
    volume_since_reassign_ += (*problem_.flows)[flow_index].size;
}

void NegotiationAgent::maybe_trigger_reassignment() {
  if (remaining_count_ == 0 || reassign_quantum_ <= 0.0) return;
  const bool anyone_stateful =
      oracle_->wants_reassignment() || remote_hello_.wants_reassignment;
  if (!anyone_stateful || volume_since_reassign_ < reassign_quantum_) return;

  volume_since_reassign_ = 0.0;
  ++outcome_.reassignments;
  if (oracle_->wants_reassignment()) {
    const core::OracleContext ctx{&problem_, &tentative_, &remaining_};
    {
      const obs::PhaseTimer timer(config_.negotiation.incremental_evaluation
                                      ? obs::Phase::kEvaluateIncremental
                                      : obs::Phase::kEvaluateFull);
      truth_ = config_.negotiation.incremental_evaluation
                   ? oracle_->evaluate_incremental(ctx, pending_delta_)
                   : oracle_->evaluate(ctx);
    }
    ++(config_.negotiation.incremental_evaluation
           ? outcome_.evaluate_calls_incremental
           : outcome_.evaluate_calls_full);
    outcome_.evaluate_rows_computed += truth_.rows_recomputed;
    outcome_.evaluate_rows_full_equivalent += problem_.negotiable.size();
    my_disclosed_ = oracle_->disclose(ctx, truth_.classes, remote_disclosed_);
    send_pref_advert(true);
  }
  pending_delta_.clear();
  awaiting_remote_advert_ = remote_hello_.wants_reassignment;
}

void NegotiationAgent::handle_propose(const proto::Propose& m) {
  if (state_ != AgentState::kNegotiating)
    return fail("PROPOSE in state " + to_string(state_));
  if (current_proposer() == config_.side) return fail("PROPOSE out of turn");
  if (m.seq != round_) return fail("PROPOSE with bad sequence number");

  std::size_t pos = 0, ci = 0;
  try {
    pos = pos_of_flow(m.flow_id);
    ci = ci_of_ix(m.interconnection_id);
  } catch (const std::out_of_range&) {
    return fail("PROPOSE references unknown flow/interconnection");
  }
  if (!remaining_[pos]) return fail("PROPOSE for already-negotiated flow");
  if (banned_[pos][ci]) return fail("PROPOSE for vetoed alternative");

  const double own_pref = truth_.true_value[pos][ci];
  bool accept = true;
  switch (config_.negotiation.acceptance) {
    case core::AcceptancePolicy::kAlwaysAccept:
      break;
    case core::AcceptancePolicy::kVetoOwnLoss:
      accept = own_pref >= 0;
      break;
    case core::AcceptancePolicy::kProtective: {
      if (true_gain_ + own_pref < 0) {
        remaining_[pos] = 0;
        const core::Projection rest = core::project_future(my_view());
        remaining_[pos] = 1;
        accept = true_gain_ + own_pref + rest.peak >= 0;
      }
      break;
    }
  }

  proto::Response resp;
  resp.seq = m.seq;
  resp.accepted = accept;
  send_message(resp);

  if (accept) {
    apply_accept(pos, ci);
  } else {
    banned_[pos][ci] = 1;
  }
  ++round_;
  if (accept) maybe_trigger_reassignment();
}

void NegotiationAgent::handle_response(const proto::Response& m) {
  if (state_ != AgentState::kAwaitResponse)
    return fail("RESPONSE in state " + to_string(state_));
  if (m.seq != round_) return fail("RESPONSE with bad sequence number");
  state_ = AgentState::kNegotiating;
  if (m.accepted) {
    apply_accept(outstanding_.pos, outstanding_.ci);
  } else {
    banned_[outstanding_.pos][outstanding_.ci] = 1;
  }
  ++round_;
  if (m.accepted) maybe_trigger_reassignment();
}

void NegotiationAgent::begin_settlement(core::StopReason reason,
                                        bool i_stopped) {
  outcome_.stop_reason = reason;
  if (!config_.negotiation.settlement_rollback) {
    if (i_stopped) {
      state_ = AgentState::kStopping;  // await BYE
    } else {
      send_message(proto::Bye{});
      finish(reason);
    }
    return;
  }
  state_ = AgentState::kSettling;
  last_received_rollback_empty_ = false;
  if (i_stopped) send_settlement_turn();  // the stopper speaks first
}

void NegotiationAgent::send_settlement_turn() {
  // Greedy, mirrors NegotiationEngine::compute_rollback: while below
  // default, roll back the concession that hurts most (first-lowest index on
  // ties).
  std::vector<std::size_t> picked;
  double cum = true_gain_;
  std::vector<char> taken(accepted_moves_.size(), 0);
  while (cum < -1e-12) {
    std::ptrdiff_t worst = -1;
    for (std::size_t i = 0; i < accepted_moves_.size(); ++i) {
      const AcceptedMove& m = accepted_moves_[i];
      if (m.rolled_back || taken[i] || m.own_value >= 0.0) continue;
      if (worst < 0 ||
          m.own_value < accepted_moves_[static_cast<std::size_t>(worst)].own_value)
        worst = static_cast<std::ptrdiff_t>(i);
    }
    if (worst < 0) break;
    taken[static_cast<std::size_t>(worst)] = 1;
    cum -= accepted_moves_[static_cast<std::size_t>(worst)].own_value;
    picked.push_back(static_cast<std::size_t>(worst));
  }

  if (picked.empty() && last_received_rollback_empty_) {
    send_message(proto::Bye{});
    finish(outcome_.stop_reason);
    return;
  }

  proto::Rollback msg;
  for (std::size_t mi : picked) {
    AcceptedMove& m = accepted_moves_[mi];
    for (std::size_t flow_index : problem_.members_of(m.pos))
      tentative_.ix_of_flow[flow_index] = problem_.default_ix(m.pos);
    true_gain_ -= m.own_value;
    m.rolled_back = true;
    ++outcome_.flows_rolled_back;
    msg.flow_ids.push_back(
        static_cast<std::uint32_t>(problem_.negotiable_flow(m.pos).id.value()));
  }
  send_message(msg);
}

void NegotiationAgent::handle_rollback(
    const std::vector<std::uint32_t>& flow_ids) {
  if (state_ != AgentState::kSettling && state_ != AgentState::kStopping)
    return fail("ROLLBACK outside settlement");
  for (std::uint32_t id : flow_ids) {
    std::size_t pos = 0;
    try {
      pos = pos_of_flow(id);
    } catch (const std::out_of_range&) {
      return fail("ROLLBACK references unknown flow");
    }
    bool found = false;
    for (AcceptedMove& m : accepted_moves_) {
      if (m.pos == pos && !m.rolled_back) {
        for (std::size_t flow_index : problem_.members_of(pos))
          tentative_.ix_of_flow[flow_index] = problem_.default_ix(pos);
        true_gain_ -= m.own_value;
        m.rolled_back = true;
        ++outcome_.flows_rolled_back;
        found = true;
        break;
      }
    }
    if (!found) return fail("ROLLBACK for flow that never moved");
  }
  last_received_rollback_empty_ = flow_ids.empty();
  send_settlement_turn();
}

void NegotiationAgent::finish(core::StopReason reason) {
  outcome_.assignment = tentative_;
  if (config_.side == 0) {
    outcome_.true_gain_a = true_gain_;
    outcome_.true_gain_b = disclosed_gain_[1];  // best visible estimate
  } else {
    outcome_.true_gain_b = true_gain_;
    outcome_.true_gain_a = disclosed_gain_[0];
  }
  outcome_.disclosed_gain_a = disclosed_gain_[0];
  outcome_.disclosed_gain_b = disclosed_gain_[1];
  outcome_.rounds = round_;
  outcome_.stop_reason = reason;
  state_ = AgentState::kDone;
}

void NegotiationAgent::handle_message(const proto::Message& m) {
  if (state_ == AgentState::kHandshake) {
    handle_handshake_message(m);
    return;
  }
  if (const auto* advert = std::get_if<proto::PrefAdvert>(&m)) {
    if (!advert->reassignment || !awaiting_remote_advert_)
      return fail("unexpected PREF_ADVERT");
    if (advert->flows.size() != problem_.negotiable.size())
      return fail("reassignment shape mismatch");
    for (std::size_t pos = 0; pos < advert->flows.size(); ++pos) {
      if (advert->flows[pos].pref_of_candidate.size() !=
          problem_.candidates.size())
        return fail("reassignment shape mismatch");
      auto& row = remote_disclosed_.flows[pos].pref_of_candidate;
      row.assign(advert->flows[pos].pref_of_candidate.begin(),
                 advert->flows[pos].pref_of_candidate.end());
    }
    awaiting_remote_advert_ = false;
    return;
  }
  if (const auto* propose = std::get_if<proto::Propose>(&m)) {
    if (awaiting_remote_advert_) return fail("PROPOSE before reassignment");
    handle_propose(*propose);
    return;
  }
  if (const auto* response = std::get_if<proto::Response>(&m)) {
    handle_response(*response);
    return;
  }
  if (const auto* stop = std::get_if<proto::Stop>(&m)) {
    if (state_ != AgentState::kNegotiating)
      return fail("STOP in state " + to_string(state_));
    begin_settlement(static_cast<core::StopReason>(stop->reason),
                     /*i_stopped=*/false);
    return;
  }
  if (const auto* rollback = std::get_if<proto::Rollback>(&m)) {
    handle_rollback(rollback->flow_ids);
    return;
  }
  if (std::get_if<proto::Bye>(&m) != nullptr) {
    if (state_ != AgentState::kStopping && state_ != AgentState::kSettling)
      return fail("unexpected BYE");
    finish(outcome_.stop_reason);
    return;
  }
  fail("unexpected message");
}

void NegotiationAgent::maybe_act() {
  if (state_ != AgentState::kNegotiating || awaiting_remote_advert_) return;
  if (current_proposer() != config_.side) return;

  core::StopReason stop_reason{};
  bool stop = false;
  if (remaining_count_ == 0) {
    stop = true;
    stop_reason = core::StopReason::kExhausted;
  } else if (config_.negotiation.termination ==
             core::TerminationPolicy::kEarly) {
    const core::Projection f = core::project_future(my_view());
    if (f.peak <= 0 && f.end < 0) {
      stop = true;
      stop_reason = config_.side == 0 ? core::StopReason::kEarlyStopA
                                      : core::StopReason::kEarlyStopB;
    }
  }

  core::ProposalChoice sel{};
  if (!stop &&
      !core::select_proposal(my_view(), config_.negotiation.proposal,
                             /*rng=*/nullptr, sel)) {
    stop = true;
    stop_reason = core::StopReason::kNoProposal;
  }

  if (stop) {
    proto::Stop m;
    m.reason = static_cast<std::uint8_t>(stop_reason);
    send_message(m);
    begin_settlement(stop_reason, /*i_stopped=*/true);
    return;
  }

  proto::Propose m;
  m.seq = static_cast<std::uint32_t>(round_);
  m.flow_id = static_cast<std::uint32_t>(
      problem_.negotiable_flow(sel.pos).id.value());
  m.interconnection_id =
      static_cast<std::uint32_t>(problem_.candidates[sel.ci]);
  outstanding_ = sel;
  send_message(m);
  state_ = AgentState::kAwaitResponse;
}

bool NegotiationAgent::step() {
  if (state_ == AgentState::kDone || state_ == AgentState::kFailed)
    return false;

  const AgentState entry_state = state_;
  const std::size_t entry_round = round_;
  bool progress = false;

  if (!sent_handshake_) {
    try {
      send_handshake();
    } catch (const std::exception& e) {
      fail(std::string("handshake send failed: ") + e.what());
      return true;
    }
    progress = true;
  }

  const proto::Bytes incoming = channel_->receive();
  if (!incoming.empty()) {
    decoder_.feed(incoming);
    progress = true;
  }
  if (decoder_.failed()) {
    fail("stream error: " + decoder_.error());
    return true;
  }

  while (state_ != AgentState::kDone && state_ != AgentState::kFailed) {
    const auto frame = [this] {
      const obs::PhaseTimer timer(obs::Phase::kWireDecode);
      return decoder_.next();
    }();
    if (!frame.has_value()) break;
    auto msg = [&frame] {
      const obs::PhaseTimer timer(obs::Phase::kWireDecode);
      return proto::decode_message(*frame);
    }();
    if (!msg.ok()) {
      fail("decode error: " + msg.error().message);
      return true;
    }
    handle_message(msg.value());
    progress = true;
  }
  if (decoder_.failed()) {
    fail("stream error: " + decoder_.error());
    return true;
  }

  if (state_ == AgentState::kNegotiating) maybe_act();

  if (channel_->closed() && state_ != AgentState::kDone &&
      state_ != AgentState::kFailed) {
    fail("peer closed the channel");
    return true;
  }

  return progress || state_ != entry_state || round_ != entry_round;
}

std::size_t run_session(NegotiationAgent& a, NegotiationAgent& b,
                        std::size_t max_steps) {
  std::size_t steps = 0;
  int idle_rounds = 0;
  while (steps < max_steps) {
    const bool pa = a.step();
    const bool pb = b.step();
    ++steps;
    const bool a_settled = a.done() || a.failed();
    const bool b_settled = b.done() || b.failed();
    if (a_settled && b_settled) break;
    if (!pa && !pb) {
      if (++idle_rounds > 3) break;  // stalled
    } else {
      idle_rounds = 0;
    }
  }
  return steps;
}

}  // namespace nexit::agent
