#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/prefix.hpp"

namespace nexit::agent {

/// §6 flow signature: a flow is uniquely identified by the most-specific
/// source and destination prefixes of its packets plus an opaque ingress
/// identifier chosen by the upstream (different identifiers for different
/// flows entering at the same place, to avoid leaking topology).
struct FlowSignature {
  bgp::Prefix src_prefix;
  bgp::Prefix dst_prefix;
  std::uint32_t ingress_id = 0;

  friend bool operator==(const FlowSignature&, const FlowSignature&) = default;
  friend bool operator<(const FlowSignature& a, const FlowSignature& b) {
    if (!(a.src_prefix == b.src_prefix)) return a.src_prefix < b.src_prefix;
    if (!(a.dst_prefix == b.dst_prefix)) return a.dst_prefix < b.dst_prefix;
    return a.ingress_id < b.ingress_id;
  }
};

struct FlowTableConfig {
  /// Flows must sustain at least this rate (bytes/sec) to become negotiable;
  /// 0 makes every observed flow negotiable immediately.
  double rate_threshold_bps = 0.0;
  /// ... for this many consecutive measurement windows ("stays above a
  /// threshold for a certain period of time", §6).
  int hold_windows = 2;
  std::uint64_t window_ms = 1000;
  /// Flows inactive for this long are timed out.
  std::uint64_t inactivity_timeout_ms = 60000;
};

/// Tracks active flows the upstream observes, elevating long-lived
/// high-bandwidth ones to "negotiable" and timing out idle ones. Driven by
/// an explicit clock (milliseconds) so behaviour is deterministic in tests.
class FlowTable {
 public:
  explicit FlowTable(FlowTableConfig config) : config_(config) {}

  /// Records `bytes` observed for `sig` at time `now_ms`. New signatures
  /// create entries ("the upstream signals the arrival of a new flow").
  void record(const FlowSignature& sig, std::uint64_t bytes, std::uint64_t now_ms);

  /// Expires flows inactive since before now_ms - inactivity_timeout_ms.
  /// Returns how many were dropped.
  std::size_t expire(std::uint64_t now_ms);

  /// Signatures currently above the rate threshold for the hold duration.
  [[nodiscard]] std::vector<FlowSignature> negotiable(std::uint64_t now_ms) const;

  /// Most recent completed-window rate estimate for a flow (bytes/sec);
  /// 0 if unknown.
  [[nodiscard]] double rate_of(const FlowSignature& sig) const;

  [[nodiscard]] std::size_t size() const { return flows_.size(); }

 private:
  struct Entry {
    std::uint64_t window_start_ms = 0;
    std::uint64_t window_bytes = 0;
    double last_rate_bps = 0.0;
    int windows_above = 0;
    std::uint64_t last_seen_ms = 0;
  };

  void roll_window(Entry& e, std::uint64_t now_ms) const;

  FlowTableConfig config_;
  std::map<FlowSignature, Entry> flows_;
};

}  // namespace nexit::agent
