#include "geo/coord.hpp"

#include <cmath>

namespace nexit::geo {

double deg_to_rad(double deg) { return deg * 0.017453292519943295; }

double haversine_km(const Coord& a, const Coord& b) {
  constexpr double kEarthRadiusKm = 6371.0088;
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

}  // namespace nexit::geo
