#pragma once

namespace nexit::geo {

/// Geographic coordinate in degrees. Latitude in [-90, 90], longitude in
/// [-180, 180].
struct Coord {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Great-circle distance in kilometres (haversine formula, mean Earth radius
/// 6371.0088 km). Used to estimate link lengths from PoP coordinates, as the
/// paper does ([22] in the paper).
double haversine_km(const Coord& a, const Coord& b);

/// Degrees-to-radians helper exposed for tests.
double deg_to_rad(double deg);

}  // namespace nexit::geo
