#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "geo/coord.hpp"

namespace nexit::geo {

/// One city a PoP can be placed in. Population is the metro population in
/// millions; the gravity traffic model uses it as the PoP "weight" (the paper
/// estimated weights from the CIESIN population grid — see DESIGN.md for the
/// substitution note).
struct City {
  std::string name;
  Coord coord;
  double population_millions = 0.0;
};

/// Embedded database of world cities used to place synthetic PoPs.
/// Deterministic: the list and its order are fixed at compile time.
class CityDb {
 public:
  /// The built-in list (~120 cities across North America, Europe, Asia,
  /// South America, Oceania; skewed toward the US as Rocketfuel ISPs were).
  static const CityDb& builtin();

  explicit CityDb(std::vector<City> cities);

  [[nodiscard]] std::size_t size() const { return cities_.size(); }
  [[nodiscard]] const City& at(std::size_t i) const { return cities_.at(i); }
  [[nodiscard]] const std::vector<City>& cities() const { return cities_; }

  /// Index lookup by exact name; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> find(const std::string& name) const;

  /// Total population across all cities (for weighted sampling).
  [[nodiscard]] double total_population() const { return total_population_; }

 private:
  std::vector<City> cities_;
  double total_population_ = 0.0;
};

}  // namespace nexit::geo
