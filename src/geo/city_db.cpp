#include "geo/city_db.hpp"

#include <stdexcept>

namespace nexit::geo {

namespace {

std::vector<City> builtin_cities() {
  // name, {lat, lon}, metro population in millions (approximate, early-2000s
  // era to match the paper's data vintage).
  return {
      // --- United States ---
      {"New York", {40.71, -74.01}, 18.8},
      {"Los Angeles", {34.05, -118.24}, 12.4},
      {"Chicago", {41.88, -87.63}, 9.1},
      {"Washington DC", {38.91, -77.04}, 5.3},
      {"San Francisco", {37.77, -122.42}, 4.1},
      {"Philadelphia", {39.95, -75.17}, 5.7},
      {"Boston", {42.36, -71.06}, 4.4},
      {"Detroit", {42.33, -83.05}, 4.4},
      {"Dallas", {32.78, -96.80}, 5.2},
      {"Houston", {29.76, -95.37}, 4.7},
      {"Atlanta", {33.75, -84.39}, 4.2},
      {"Miami", {25.76, -80.19}, 5.0},
      {"Seattle", {47.61, -122.33}, 3.0},
      {"Phoenix", {33.45, -112.07}, 3.3},
      {"Minneapolis", {44.98, -93.27}, 3.0},
      {"Cleveland", {41.50, -81.69}, 2.9},
      {"San Diego", {32.72, -117.16}, 2.8},
      {"St Louis", {38.63, -90.20}, 2.6},
      {"Denver", {39.74, -104.99}, 2.2},
      {"Tampa", {27.95, -82.46}, 2.4},
      {"Pittsburgh", {40.44, -80.00}, 2.4},
      {"Portland", {45.52, -122.68}, 1.9},
      {"Cincinnati", {39.10, -84.51}, 2.0},
      {"Sacramento", {38.58, -121.49}, 1.8},
      {"Kansas City", {39.10, -94.58}, 1.8},
      {"Milwaukee", {43.04, -87.91}, 1.7},
      {"Orlando", {28.54, -81.38}, 1.6},
      {"Indianapolis", {39.77, -86.16}, 1.6},
      {"San Antonio", {29.42, -98.49}, 1.7},
      {"Columbus", {39.96, -83.00}, 1.5},
      {"Charlotte", {35.23, -80.84}, 1.5},
      {"New Orleans", {29.95, -90.07}, 1.3},
      {"Salt Lake City", {40.76, -111.89}, 1.3},
      {"Las Vegas", {36.17, -115.14}, 1.6},
      {"Nashville", {36.16, -86.78}, 1.3},
      {"Austin", {30.27, -97.74}, 1.3},
      {"Memphis", {35.15, -90.05}, 1.2},
      {"Raleigh", {35.78, -78.64}, 1.2},
      {"Buffalo", {42.89, -78.88}, 1.2},
      {"Jacksonville", {30.33, -81.66}, 1.1},
      {"Hartford", {41.76, -72.67}, 1.1},
      {"Oklahoma City", {35.47, -97.52}, 1.1},
      {"Richmond", {37.54, -77.44}, 1.0},
      {"Albuquerque", {35.08, -106.65}, 0.8},
      {"Tucson", {32.22, -110.97}, 0.8},
      {"Honolulu", {21.31, -157.86}, 0.9},
      {"Omaha", {41.26, -95.93}, 0.8},
      {"El Paso", {31.76, -106.49}, 0.7},
      {"Boise", {43.62, -116.20}, 0.5},
      {"Spokane", {47.66, -117.43}, 0.4},
      {"Anchorage", {61.22, -149.90}, 0.3},
      {"Billings", {45.78, -108.50}, 0.15},
      {"Fargo", {46.88, -96.79}, 0.17},
      {"Reno", {39.53, -119.81}, 0.4},
      {"Fresno", {36.75, -119.77}, 0.9},
      {"San Jose", {37.34, -121.89}, 1.7},
      {"Baltimore", {39.29, -76.61}, 2.6},
      {"Norfolk", {36.85, -76.29}, 1.6},
      {"Louisville", {38.25, -85.76}, 1.0},
      {"Birmingham", {33.52, -86.80}, 1.1},
      {"Rochester", {43.16, -77.61}, 1.1},
      {"Albany", {42.65, -73.75}, 0.9},
      {"Syracuse", {43.05, -76.15}, 0.7},
      {"Des Moines", {41.59, -93.62}, 0.5},
      {"Little Rock", {34.75, -92.29}, 0.6},
      {"Jackson", {32.30, -90.18}, 0.5},
      {"Baton Rouge", {30.45, -91.19}, 0.7},
      {"Tulsa", {36.15, -95.99}, 0.8},
      {"Wichita", {37.69, -97.34}, 0.6},
      {"Colorado Springs", {38.83, -104.82}, 0.5},
      {"Madison", {43.07, -89.40}, 0.5},
      {"Grand Rapids", {42.96, -85.66}, 1.0},
      {"Dayton", {39.76, -84.19}, 0.9},
      {"Knoxville", {35.96, -83.92}, 0.7},
      {"Greensboro", {36.07, -79.79}, 0.7},
      {"Columbia", {34.00, -81.03}, 0.6},
      {"Charleston", {32.78, -79.93}, 0.5},
      {"Savannah", {32.08, -81.09}, 0.3},
      {"Chattanooga", {35.05, -85.31}, 0.5},
      // --- Canada ---
      {"Toronto", {43.65, -79.38}, 4.7},
      {"Montreal", {45.50, -73.57}, 3.4},
      {"Vancouver", {49.28, -123.12}, 2.0},
      {"Calgary", {51.05, -114.07}, 1.0},
      {"Ottawa", {45.42, -75.70}, 1.1},
      {"Edmonton", {53.55, -113.49}, 0.9},
      {"Winnipeg", {49.90, -97.14}, 0.7},
      {"Halifax", {44.65, -63.57}, 0.4},
      // --- Europe ---
      {"London", {51.51, -0.13}, 12.0},
      {"Paris", {48.86, 2.35}, 11.0},
      {"Frankfurt", {50.11, 8.68}, 2.5},
      {"Amsterdam", {52.37, 4.89}, 2.3},
      {"Brussels", {50.85, 4.35}, 1.8},
      {"Madrid", {40.42, -3.70}, 5.5},
      {"Milan", {45.46, 9.19}, 4.0},
      {"Munich", {48.14, 11.58}, 2.4},
      {"Zurich", {47.38, 8.54}, 1.1},
      {"Vienna", {48.21, 16.37}, 2.1},
      {"Stockholm", {59.33, 18.07}, 1.8},
      {"Copenhagen", {55.68, 12.57}, 1.8},
      {"Dublin", {53.35, -6.26}, 1.5},
      {"Geneva", {46.20, 6.14}, 0.8},
      {"Hamburg", {53.55, 9.99}, 2.5},
      {"Berlin", {52.52, 13.40}, 4.0},
      {"Rome", {41.90, 12.50}, 3.7},
      {"Barcelona", {41.39, 2.17}, 4.4},
      {"Lisbon", {38.72, -9.14}, 2.6},
      {"Oslo", {59.91, 10.75}, 1.0},
      {"Helsinki", {60.17, 24.94}, 1.2},
      {"Warsaw", {52.23, 21.01}, 2.4},
      {"Prague", {50.08, 14.44}, 1.9},
      {"Budapest", {47.50, 19.04}, 2.5},
      {"Athens", {37.98, 23.73}, 3.2},
      {"Manchester", {53.48, -2.24}, 2.5},
      // --- Asia & Oceania ---
      {"Tokyo", {35.68, 139.69}, 33.0},
      {"Osaka", {34.69, 135.50}, 16.0},
      {"Hong Kong", {22.32, 114.17}, 6.8},
      {"Singapore", {1.35, 103.82}, 4.0},
      {"Seoul", {37.57, 126.98}, 21.0},
      {"Taipei", {25.03, 121.57}, 6.5},
      {"Sydney", {-33.87, 151.21}, 4.0},
      {"Melbourne", {-37.81, 144.96}, 3.5},
      {"Auckland", {-36.85, 174.76}, 1.2},
      {"Mumbai", {19.08, 72.88}, 16.4},
      {"Bangalore", {12.97, 77.59}, 5.7},
      {"Shanghai", {31.23, 121.47}, 13.2},
      {"Beijing", {39.90, 116.41}, 10.8},
      // --- South America ---
      {"Sao Paulo", {-23.55, -46.63}, 17.1},
      {"Buenos Aires", {-34.60, -58.38}, 11.9},
      {"Santiago", {-33.45, -70.67}, 5.4},
      {"Rio de Janeiro", {-22.91, -43.17}, 10.8},
      {"Bogota", {4.71, -74.07}, 6.3},
      {"Mexico City", {19.43, -99.13}, 18.1},
  };
}

}  // namespace

CityDb::CityDb(std::vector<City> cities) : cities_(std::move(cities)) {
  if (cities_.empty()) throw std::invalid_argument("CityDb: empty city list");
  for (const auto& c : cities_) {
    if (c.population_millions <= 0.0)
      throw std::invalid_argument("CityDb: non-positive population for " + c.name);
    // nexit-lint: allow(float-accumulate): one-shot ctor sum in the fixed
    // city-list order; the list never changes after construction
    total_population_ += c.population_millions;
  }
}

const CityDb& CityDb::builtin() {
  static const CityDb db{builtin_cities()};
  return db;
}

std::optional<std::size_t> CityDb::find(const std::string& name) const {
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    if (cities_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace nexit::geo
