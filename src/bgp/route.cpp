#include "bgp/route.hpp"

#include <stdexcept>

namespace nexit::bgp {

Route Route::with_prepended(std::uint32_t asn, int count) const {
  if (count < 0) throw std::invalid_argument("with_prepended: negative count");
  Route copy = *this;
  copy.as_path.insert(copy.as_path.begin(), static_cast<std::size_t>(count), asn);
  return copy;
}

std::uint32_t default_local_pref(Relationship rel) {
  switch (rel) {
    case Relationship::kCustomer: return 200;
    case Relationship::kPeer: return 100;
    case Relationship::kSibling: return 100;
    case Relationship::kProvider: return 50;
  }
  throw std::logic_error("default_local_pref: bad relationship");
}

bool should_export(Relationship learned_from, Relationship exporting_to) {
  // Own/customer routes are exported to everyone; peer and provider routes
  // only to customers (anything else forms a "valley" someone pays for).
  if (learned_from == Relationship::kCustomer ||
      learned_from == Relationship::kSibling)
    return true;
  return exporting_to == Relationship::kCustomer;
}

}  // namespace nexit::bgp
