#pragma once

#include <cstdint>
#include <vector>

#include "bgp/prefix.hpp"

namespace nexit::bgp {

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// Commercial relationship with the neighbor a route was learned from.
/// Drives default local-pref and export policy (Gao-style valley-free
/// routing; paper §2.1: customers > peers > providers).
enum class Relationship { kCustomer, kPeer, kProvider, kSibling };

/// One BGP route: a prefix plus the attributes the decision process ranks.
struct Route {
  Prefix prefix;
  std::vector<std::uint32_t> as_path;  // leftmost = neighbor AS
  std::uint32_t local_pref = 100;
  std::uint32_t med = 0;               // multi-exit discriminator (lower wins)
  Origin origin = Origin::kIgp;
  /// IGP distance to the route's exit point — the hot-potato tie-break that
  /// produces early-exit routing.
  double igp_cost = 0.0;
  std::uint32_t neighbor_as = 0;       // who advertised it
  std::uint32_t router_id = 0;         // final deterministic tie-break
  /// Which interconnection this route would use (library-level bookkeeping).
  std::uint32_t exit_id = 0;

  /// AS-path prepending: the downstream's knob for de-preferring a link
  /// (paper §2.1). Returns a copy with `count` extra copies of `asn`.
  [[nodiscard]] Route with_prepended(std::uint32_t asn, int count) const;
};

/// Default local-pref by relationship: customer routes are the most
/// preferred, then peers/siblings, then providers.
std::uint32_t default_local_pref(Relationship rel);

/// Valley-free export rule: routes learned from peers/providers are only
/// exported to customers; customer and own routes go to everyone.
bool should_export(Relationship learned_from, Relationship exporting_to);

}  // namespace nexit::bgp
