#include "bgp/decision.hpp"

#include <algorithm>
#include <stdexcept>

namespace nexit::bgp {

bool prefer(const Route& a, const Route& b, bool compare_med) {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path.size() != b.as_path.size())
    return a.as_path.size() < b.as_path.size();
  if (a.origin != b.origin)
    return static_cast<int>(a.origin) < static_cast<int>(b.origin);
  if (compare_med && a.med != b.med) return a.med < b.med;
  if (a.igp_cost != b.igp_cost) return a.igp_cost < b.igp_cost;
  return a.router_id < b.router_id;
}

std::size_t best_route(const std::vector<Route>& candidates,
                       const DecisionConfig& config) {
  if (candidates.empty())
    throw std::invalid_argument("best_route: empty candidate set");
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const Route& a = candidates[i];
    const Route& b = candidates[best];
    const bool med_comparable =
        !config.ignore_med &&
        (config.always_compare_med || a.neighbor_as == b.neighbor_as);
    if (prefer(a, b, med_comparable)) best = i;
  }
  return best;
}

void RibIn::add_route(const Route& route) {
  auto& routes = table_[route.prefix];
  for (Route& r : routes) {
    if (r.neighbor_as == route.neighbor_as && r.exit_id == route.exit_id) {
      r = route;
      return;
    }
  }
  routes.push_back(route);
}

void RibIn::withdraw(const Prefix& prefix, std::uint32_t neighbor_as,
                     std::uint32_t exit_id) {
  const auto it = table_.find(prefix);
  if (it == table_.end()) return;
  auto& routes = it->second;
  routes.erase(std::remove_if(routes.begin(), routes.end(),
                              [&](const Route& r) {
                                return r.neighbor_as == neighbor_as &&
                                       r.exit_id == exit_id;
                              }),
               routes.end());
  if (routes.empty()) table_.erase(it);
}

void RibIn::apply_local_pref_override(const Prefix& prefix,
                                      std::uint32_t exit_id,
                                      std::uint32_t local_pref) {
  const auto it = table_.find(prefix);
  if (it == table_.end())
    throw std::invalid_argument("apply_local_pref_override: unknown prefix");
  bool found = false;
  for (Route& r : it->second) {
    if (r.exit_id == exit_id) {
      r.local_pref = local_pref;
      found = true;
    }
  }
  if (!found)
    throw std::invalid_argument("apply_local_pref_override: unknown exit");
}

std::optional<Route> RibIn::best(const Prefix& prefix) const {
  const auto it = table_.find(prefix);
  if (it == table_.end() || it->second.empty()) return std::nullopt;
  return it->second[best_route(it->second, config_)];
}

std::vector<Route> RibIn::candidates(const Prefix& prefix) const {
  const auto it = table_.find(prefix);
  return it == table_.end() ? std::vector<Route>{} : it->second;
}

}  // namespace nexit::bgp
