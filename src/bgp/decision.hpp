#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "bgp/route.hpp"

namespace nexit::bgp {

/// Knobs of the BGP decision process relevant to the paper.
struct DecisionConfig {
  /// Honor MEDs across neighbor ASes ("always-compare-med"). Off, MEDs are
  /// only compared among routes from the same neighbor — the standard
  /// behaviour. When the downstream attaches MEDs and the upstream honors
  /// them, routing flips from early-exit to late-exit (paper Fig. 1b).
  bool always_compare_med = false;
  /// Skip the MED step entirely (upstream ignores downstream preferences).
  bool ignore_med = false;
};

/// Returns the index of the best route under the (simplified) BGP decision
/// process: local-pref desc, AS-path length asc, origin asc, MED asc (per
/// neighbor unless always_compare_med), IGP cost asc (hot potato/early-exit),
/// router id asc. Requires a non-empty candidate list, all for one prefix.
std::size_t best_route(const std::vector<Route>& candidates,
                       const DecisionConfig& config = {});

/// Total order used by best_route, exposed for tests: true if `a` is
/// strictly preferred over `b`. MED comparability must be decided by the
/// caller (`compare_med` true when the two routes' MEDs are comparable).
bool prefer(const Route& a, const Route& b, bool compare_med);

/// Adj-RIB-In for one router/ISP: candidate routes per prefix, with best
/// route selection. A thin but faithful model — enough to express early-exit,
/// late-exit (MED honoring) and negotiated local-pref overrides.
class RibIn {
 public:
  explicit RibIn(DecisionConfig config = {}) : config_(config) {}

  /// Inserts or replaces the route from (neighbor_as, exit_id) for
  /// route.prefix.
  void add_route(const Route& route);

  /// Withdraws the route for `prefix` from (neighbor_as, exit_id); no-op if
  /// absent. Models interconnection failure.
  void withdraw(const Prefix& prefix, std::uint32_t neighbor_as,
                std::uint32_t exit_id);

  /// Negotiated routing (§6): force the local-pref of the route to `prefix`
  /// via `exit_id`, making it win the decision process.
  void apply_local_pref_override(const Prefix& prefix, std::uint32_t exit_id,
                                 std::uint32_t local_pref);

  [[nodiscard]] std::optional<Route> best(const Prefix& prefix) const;
  [[nodiscard]] std::vector<Route> candidates(const Prefix& prefix) const;
  [[nodiscard]] std::size_t prefix_count() const { return table_.size(); }

 private:
  DecisionConfig config_;
  std::map<Prefix, std::vector<Route>> table_;
};

}  // namespace nexit::bgp
