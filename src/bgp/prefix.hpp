#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace nexit::bgp {

/// IPv4 routing prefix, e.g. 10.12.0.0/16. Used for flow signatures (§6 of
/// the paper: a flow is identified by its most-specific source and
/// destination prefixes plus an ingress identifier).
class Prefix {
 public:
  Prefix() = default;
  /// `addr` is host byte order; bits below `length` are masked off.
  Prefix(std::uint32_t addr, int length);

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(const std::string& text);

  [[nodiscard]] std::uint32_t addr() const { return addr_; }
  [[nodiscard]] int length() const { return length_; }

  [[nodiscard]] bool contains(std::uint32_t ip) const;
  [[nodiscard]] bool contains(const Prefix& other) const;

  /// True if this prefix is more specific (longer) than `other` and nested
  /// inside it.
  [[nodiscard]] bool more_specific_than(const Prefix& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend bool operator<(const Prefix& a, const Prefix& b) {
    return a.addr_ != b.addr_ ? a.addr_ < b.addr_ : a.length_ < b.length_;
  }

 private:
  [[nodiscard]] std::uint32_t mask() const;

  std::uint32_t addr_ = 0;
  int length_ = 0;
};

}  // namespace nexit::bgp
