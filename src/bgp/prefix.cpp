#include "bgp/prefix.hpp"

#include <sstream>
#include <stdexcept>

namespace nexit::bgp {

std::uint32_t Prefix::mask() const {
  if (length_ == 0) return 0;
  return length_ >= 32 ? 0xffffffffu : ~((1u << (32 - length_)) - 1u);
}

Prefix::Prefix(std::uint32_t addr, int length) : length_(length) {
  if (length < 0 || length > 32)
    throw std::invalid_argument("Prefix: bad length");
  addr_ = addr & mask();
}

std::optional<Prefix> Prefix::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  int len = 0;
  char slash = 0, dot1 = 0, dot2 = 0, dot3 = 0;
  std::istringstream is(text);
  is >> a >> dot1 >> b >> dot2 >> c >> dot3 >> d >> slash >> len;
  if (!is || dot1 != '.' || dot2 != '.' || dot3 != '.' || slash != '/')
    return std::nullopt;
  std::string rest;
  if (is >> rest) return std::nullopt;  // trailing garbage
  if (a > 255 || b > 255 || c > 255 || d > 255 || len < 0 || len > 32)
    return std::nullopt;
  const std::uint32_t addr = (a << 24) | (b << 16) | (c << 8) | d;
  return Prefix(addr, len);
}

bool Prefix::contains(std::uint32_t ip) const { return (ip & mask()) == addr_; }

bool Prefix::contains(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.addr_);
}

bool Prefix::more_specific_than(const Prefix& other) const {
  return length_ > other.length_ && other.contains(*this);
}

std::string Prefix::to_string() const {
  std::ostringstream os;
  os << ((addr_ >> 24) & 0xff) << '.' << ((addr_ >> 16) & 0xff) << '.'
     << ((addr_ >> 8) & 0xff) << '.' << (addr_ & 0xff) << '/' << length_;
  return os.str();
}

}  // namespace nexit::bgp
