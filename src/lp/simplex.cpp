#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nexit::lp {

LpProblem::LpProblem(int num_vars)
    : num_vars_(num_vars), objective_(static_cast<std::size_t>(num_vars), 0.0) {
  if (num_vars <= 0) throw std::invalid_argument("LpProblem: num_vars <= 0");
}

void LpProblem::set_objective_coeff(int var, double coeff) {
  objective_.at(static_cast<std::size_t>(var)) = coeff;
}

void LpProblem::add_constraint(Constraint c) {
  for (const auto& [var, coeff] : c.terms) {
    if (var < 0 || var >= num_vars_)
      throw std::out_of_range("LpProblem::add_constraint: bad variable index");
    (void)coeff;
  }
  constraints_.push_back(std::move(c));
}

void LpProblem::add_constraint(std::vector<std::pair<int, double>> terms,
                               Relation rel, double rhs) {
  add_constraint(Constraint{std::move(terms), rel, rhs});
}

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

namespace {

/// Dense simplex tableau. Rows 0..m-1 are constraints; row m is the reduced
/// cost row (the objective being minimised). Column layout:
///   [0, n)            structural variables
///   [n, n+s)          slack/surplus variables
///   [n+s, n+s+a)      artificial variables (phase 1 only)
///   last column       right-hand side
class Tableau {
 public:
  Tableau(const LpProblem& p, double eps) : eps_(eps), n_(p.num_vars()) {
    const auto& cons = p.constraints();
    m_ = static_cast<int>(cons.size());

    // Count slack and artificial columns. Rows are normalised to rhs >= 0
    // first (negating a row flips its relation).
    struct RowPlan {
      Relation rel;
      double sign;  // +1 or -1 applied to the original row
    };
    std::vector<RowPlan> plan;
    plan.reserve(static_cast<std::size_t>(m_));
    int slacks = 0, artificials = 0;
    for (const auto& c : cons) {
      Relation rel = c.rel;
      double sign = 1.0;
      if (c.rhs < 0.0) {
        sign = -1.0;
        rel = (rel == Relation::kLe) ? Relation::kGe
              : (rel == Relation::kGe) ? Relation::kLe
                                       : Relation::kEq;
      }
      plan.push_back(RowPlan{rel, sign});
      switch (rel) {
        case Relation::kLe: slacks += 1; break;
        case Relation::kGe: slacks += 1; artificials += 1; break;
        case Relation::kEq: artificials += 1; break;
      }
    }
    s_ = slacks;
    a_ = artificials;
    cols_ = n_ + s_ + a_ + 1;

    rows_.assign(static_cast<std::size_t>(m_ + 1),
                 std::vector<double>(static_cast<std::size_t>(cols_), 0.0));
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int next_slack = n_;
    int next_art = n_ + s_;
    first_artificial_ = next_art;
    for (int i = 0; i < m_; ++i) {
      const auto& c = cons[static_cast<std::size_t>(i)];
      auto& row = rows_[static_cast<std::size_t>(i)];
      for (const auto& [var, coeff] : c.terms)
        row[static_cast<std::size_t>(var)] += plan[static_cast<std::size_t>(i)].sign * coeff;
      row[static_cast<std::size_t>(cols_ - 1)] =
          plan[static_cast<std::size_t>(i)].sign * c.rhs;

      switch (plan[static_cast<std::size_t>(i)].rel) {
        case Relation::kLe:
          row[static_cast<std::size_t>(next_slack)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_slack++;
          break;
        case Relation::kGe:
          row[static_cast<std::size_t>(next_slack++)] = -1.0;
          row[static_cast<std::size_t>(next_art)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_art++;
          break;
        case Relation::kEq:
          row[static_cast<std::size_t>(next_art)] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_art++;
          break;
      }
    }
  }

  [[nodiscard]] int num_artificials() const { return a_; }
  [[nodiscard]] int first_artificial() const { return first_artificial_; }
  [[nodiscard]] int structural_vars() const { return n_; }
  [[nodiscard]] double rhs(int row) const {
    return rows_[static_cast<std::size_t>(row)][static_cast<std::size_t>(cols_ - 1)];
  }
  [[nodiscard]] double objective_value() const {
    return -rows_[static_cast<std::size_t>(m_)][static_cast<std::size_t>(cols_ - 1)];
  }
  [[nodiscard]] int basis(int row) const { return basis_[static_cast<std::size_t>(row)]; }

  /// Installs the phase-1 objective: minimise the sum of artificials.
  void set_phase1_objective() {
    auto& obj = rows_[static_cast<std::size_t>(m_)];
    std::fill(obj.begin(), obj.end(), 0.0);
    for (int j = first_artificial_; j < first_artificial_ + a_; ++j)
      obj[static_cast<std::size_t>(j)] = 1.0;
    // Make reduced costs of basic (artificial) variables zero.
    for (int i = 0; i < m_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] >= first_artificial_) {
        subtract_row(i, 1.0);
      }
    }
  }

  /// Installs the phase-2 objective (minimisation, coefficients over
  /// structural variables) and re-prices against the current basis.
  void set_phase2_objective(const std::vector<double>& c) {
    auto& obj = rows_[static_cast<std::size_t>(m_)];
    std::fill(obj.begin(), obj.end(), 0.0);
    for (int j = 0; j < n_; ++j)
      obj[static_cast<std::size_t>(j)] = c[static_cast<std::size_t>(j)];
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double cb = obj[static_cast<std::size_t>(b)];
      if (std::abs(cb) > 0.0) subtract_row(i, cb);
    }
  }

  /// One simplex iteration. `allow_artificial_entry` is false in phase 2.
  /// Returns: 0 = optimal reached, 1 = pivoted, -1 = unbounded.
  int iterate(bool bland, bool allow_artificial_entry) {
    const auto& obj = rows_[static_cast<std::size_t>(m_)];
    const int limit = allow_artificial_entry ? (n_ + s_ + a_) : (n_ + s_);

    int entering = -1;
    double best = -eps_;
    for (int j = 0; j < limit; ++j) {
      const double rc = obj[static_cast<std::size_t>(j)];
      if (rc < -eps_) {
        if (bland) {
          entering = j;
          break;
        }
        if (rc < best) {
          best = rc;
          entering = j;
        }
      }
    }
    if (entering < 0) return 0;  // optimal

    // Ratio test; ties break toward the smallest basis variable index
    // (lexicographic Bland tie-break keeps cycling at bay even under
    // Dantzig's entering rule in practice).
    int leaving = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m_; ++i) {
      const double aij =
          rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(entering)];
      if (aij > eps_) {
        const double ratio = rhs(i) / aij;
        if (ratio < best_ratio - eps_ ||
            (ratio < best_ratio + eps_ && leaving >= 0 &&
             basis_[static_cast<std::size_t>(i)] <
                 basis_[static_cast<std::size_t>(leaving)])) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving < 0) return -1;  // unbounded

    pivot(leaving, entering);
    return 1;
  }

  /// Pivots artificial variables out of the basis where possible; rows whose
  /// artificial cannot leave (all-zero row) are redundant and harmless.
  void drive_out_artificials() {
    for (int i = 0; i < m_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] < first_artificial_) continue;
      for (int j = 0; j < n_ + s_; ++j) {
        if (std::abs(rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) >
            eps_) {
          pivot(i, j);
          break;
        }
      }
    }
  }

  [[nodiscard]] std::vector<double> extract_solution() const {
    std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < n_) x[static_cast<std::size_t>(b)] = rhs(i);
    }
    return x;
  }

 private:
  void subtract_row(int row, double factor) {
    auto& obj = rows_[static_cast<std::size_t>(m_)];
    const auto& r = rows_[static_cast<std::size_t>(row)];
    for (int j = 0; j < cols_; ++j)
      obj[static_cast<std::size_t>(j)] -= factor * r[static_cast<std::size_t>(j)];
  }

  void pivot(int leaving_row, int entering_col) {
    auto& prow = rows_[static_cast<std::size_t>(leaving_row)];
    const double pval = prow[static_cast<std::size_t>(entering_col)];
    for (double& v : prow) v /= pval;
    for (int i = 0; i <= m_; ++i) {
      if (i == leaving_row) continue;
      auto& row = rows_[static_cast<std::size_t>(i)];
      const double factor = row[static_cast<std::size_t>(entering_col)];
      if (std::abs(factor) <= 0.0) continue;
      for (int j = 0; j < cols_; ++j)
        row[static_cast<std::size_t>(j)] -=
            factor * prow[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(entering_col)] = 0.0;  // cancel exactly
    }
    prow[static_cast<std::size_t>(entering_col)] = 1.0;
    basis_[static_cast<std::size_t>(leaving_row)] = entering_col;
  }

  double eps_;
  int n_ = 0;      // structural
  int s_ = 0;      // slack/surplus
  int a_ = 0;      // artificial
  int m_ = 0;      // constraints
  int cols_ = 0;   // total columns incl. rhs
  int first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
};

}  // namespace

Solution SimplexSolver::solve(const LpProblem& problem) const {
  Tableau t(problem, options_.eps);

  auto run = [&](bool allow_artificial) -> SolveStatus {
    int iterations = 0;
    int stall = 0;
    bool bland = false;
    double last_obj = t.objective_value();
    while (iterations++ < options_.max_iterations) {
      const int r = t.iterate(bland, allow_artificial);
      if (r == 0) return SolveStatus::kOptimal;
      if (r == -1) return SolveStatus::kUnbounded;
      const double obj = t.objective_value();
      if (obj < last_obj - options_.eps) {
        stall = 0;
        bland = false;
        last_obj = obj;
      } else if (++stall > options_.stall_threshold) {
        bland = true;  // anti-cycling fallback
      }
    }
    return SolveStatus::kIterationLimit;
  };

  // Phase 1: find a basic feasible solution.
  if (t.num_artificials() > 0) {
    t.set_phase1_objective();
    const SolveStatus st = run(true);
    if (st == SolveStatus::kIterationLimit)
      return Solution{SolveStatus::kIterationLimit, 0.0, {}};
    if (t.objective_value() > 1e-6)
      return Solution{SolveStatus::kInfeasible, 0.0, {}};
    t.drive_out_artificials();
  }

  // Phase 2: optimise the real objective.
  std::vector<double> c = problem.objective();
  if (!problem.minimize()) {
    for (double& v : c) v = -v;
  }
  t.set_phase2_objective(c);
  const SolveStatus st = run(false);
  if (st != SolveStatus::kOptimal) return Solution{st, 0.0, {}};

  Solution sol;
  sol.status = SolveStatus::kOptimal;
  sol.x = t.extract_solution();
  double obj = 0.0;
  for (int j = 0; j < problem.num_vars(); ++j)
    // nexit-lint: allow(float-accumulate): objective dot-product in LP
    // variable order, the solver's canonical column order
    obj += problem.objective()[static_cast<std::size_t>(j)] *
           sol.x[static_cast<std::size_t>(j)];
  sol.objective = obj;
  return sol;
}

}  // namespace nexit::lp
