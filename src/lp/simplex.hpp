#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nexit::lp {

/// Constraint sense.
enum class Relation { kLe, kGe, kEq };

/// One linear constraint: sum(coeff * x[var]) REL rhs.
/// Terms are sparse (variable index, coefficient) pairs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// A linear program over non-negative variables x >= 0:
///   minimise (or maximise) c^T x  subject to  constraints.
class LpProblem {
 public:
  explicit LpProblem(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] const std::vector<double>& objective() const { return objective_; }
  [[nodiscard]] bool minimize() const { return minimize_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

  /// Sets the objective coefficient of one variable (default 0).
  void set_objective_coeff(int var, double coeff);
  void set_minimize(bool minimize) { minimize_ = minimize; }

  void add_constraint(Constraint c);
  /// Convenience: sum(terms) REL rhs.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

 private:
  int num_vars_;
  bool minimize_ = true;
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

std::string to_string(SolveStatus s);

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // values of the structural variables
};

/// Dense two-phase primal simplex. Pivot selection uses Dantzig's rule
/// (most-negative reduced cost) and falls back to Bland's rule after a stall
/// is detected, which guarantees termination on degenerate problems.
/// Deterministic: ties always break toward the lowest index.
class SimplexSolver {
 public:
  struct Options {
    double eps = 1e-9;
    int max_iterations = 200000;
    /// Iterations without objective improvement before switching to Bland.
    int stall_threshold = 64;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  [[nodiscard]] Solution solve(const LpProblem& problem) const;

 private:
  Options options_;
};

}  // namespace nexit::lp
