#pragma once

// Synchronous framed I/O over an agent::Channel for the dist protocol. The
// channels are non-blocking by contract (the runtime pumps them from an
// event loop), but coordinator<->worker exchanges are sequential RPCs, so
// this wrapper supplies the blocking discipline a stream socket needs:
// sends poll the fd writable until the overflow queue drains (short
// writes), receives poll readable and feed a proto::FrameDecoder until a
// complete frame assembles (partial reads — TCP delivers arbitrary chunk
// boundaries), and both retry EINTR. CRC/header corruption poisons the
// decoder, which callers must treat as peer death.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "agent/channel.hpp"
#include "proto/dist_messages.hpp"
#include "proto/frame.hpp"

namespace nexit::dist {

/// One endpoint of a dist connection: a Channel plus the incremental frame
/// decoder reassembling its byte stream.
class FramedChannel {
 public:
  explicit FramedChannel(std::unique_ptr<agent::Channel> channel)
      : channel_(std::move(channel)) {}

  /// Sends one message, blocking (bounded by timeout_ms, -1 = forever)
  /// until every byte is at least in the kernel's hands. Returns false on
  /// peer death / timeout.
  bool send(const proto::DistMessage& message, int timeout_ms);

  /// Blocks up to timeout_ms (-1 = forever) for the next complete, valid
  /// message. nullopt = timeout, closed peer, or poisoned stream — check
  /// failed() to distinguish the fatal cases from a pure timeout.
  std::optional<proto::DistMessage> receive(int timeout_ms);

  /// Feeds any bytes already buffered by the kernel without blocking and
  /// returns a completed message if one is pending. Used by the
  /// coordinator's poll loop, which multiplexes many workers.
  std::optional<proto::DistMessage> poll_message();

  /// True once the stream is unusable: peer closed, decode poisoned, or a
  /// malformed message arrived.
  [[nodiscard]] bool failed() const { return failed_ || channel_->closed(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] int poll_fd() const { return channel_->poll_fd(); }
  [[nodiscard]] agent::Channel& channel() { return *channel_; }

 private:
  void fail(const std::string& why);

  std::unique_ptr<agent::Channel> channel_;
  proto::FrameDecoder decoder_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace nexit::dist
