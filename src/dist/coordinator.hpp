#pragma once

// The coordinator side of the distributed sweep/runtime layer: owns a pool
// of worker connections (spawn-local nexit_workerd children over AF_UNIX
// socketpairs, or pre-started daemons reached via dist.connect TCP
// endpoints), assigns jobs (serialized spec shards) in odometer order, and
// collects per-job results indexed by job id so the caller can fold
// digests in declaration order regardless of completion order — the
// property that makes any worker count bit-identical to in-process.
//
// Fault handling: a worker that dies (EOF, send failure, CRC poison) or
// blows its per-job deadline has its in-flight job requeued; a job is
// retried at most `retries` times before the run fails. Worker death is
// expected (the tests kill one mid-shard on purpose), so SIGPIPE is
// ignored for the coordinator's lifetime and children are reaped.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace nexit::dist {

/// One unit of distributable work: a scenario name plus one fully
/// serialized point spec (dist.* keys already reset by the caller).
struct Job {
  std::string scenario;
  std::string label;  // human point label, "" for a single-shard run
  std::string spec_text;
};

/// What one job produced, shipped back from the worker: the run function's
/// exit code, the point digest, the pre-serialized JSON metric entries in
/// record order, and the obs snapshot to replay through the shared
/// obs-section emitter.
struct JobResult {
  int rc = -1;
  std::uint64_t digest = 0;
  std::string error;
  std::vector<std::pair<std::string, std::string>> metrics;
  obs::Snapshot obs;
};

struct CoordinatorConfig {
  /// Number of local worker processes to spawn (mutually exclusive with
  /// `connect`; spec validation enforces that).
  std::size_t workers = 0;
  /// Comma-separated host:port endpoints of pre-started nexit_workerd
  /// daemons.
  std::string connect;
  /// Directory for spawn-local worker stdout/stderr logs ("" = /dev/null).
  std::string log_dir;
  /// Per-job deadline: a worker silent this long on an assigned job is
  /// declared dead and its job reassigned.
  std::uint64_t timeout_ms = 120000;
  /// Reassignments allowed per job before the whole run fails.
  std::size_t retries = 2;
  /// Path of the worker binary for spawn-local mode; "" = nexit_workerd
  /// next to /proc/self/exe.
  std::string worker_path;
};

class Coordinator {
 public:
  /// Establishes the worker pool: spawns children or connects to the
  /// configured endpoints, then waits for each worker's DistHello (refusing
  /// protocol mismatches). Throws std::runtime_error when no worker can be
  /// established.
  explicit Coordinator(const CoordinatorConfig& config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Runs every job to completion (or failure). On return 0, `*results`
  /// has exactly jobs.size() entries, results[i] corresponding to jobs[i]
  /// whatever order workers finished in. Non-zero = the pool died or some
  /// job exhausted its retries; partial results are still filled in.
  int run(const std::vector<Job>& jobs, std::vector<JobResult>* results);

  /// Live (not declared-dead) workers — exposed for tests and the bench.
  [[nodiscard]] std::size_t live_workers() const;

 private:
  struct Worker;

  void spawn_local(std::size_t index);
  void connect_remote(const std::string& endpoint);
  /// Declares a worker dead: closes its channel, requeues its in-flight
  /// job, reaps the child if it was spawn-local.
  void retire(Worker& worker, const std::string& why,
              std::vector<std::size_t>* queue,
              std::vector<std::size_t>* attempts);

  CoordinatorConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace nexit::dist
