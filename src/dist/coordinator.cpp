#include "dist/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "dist/framed.hpp"
#include "dist/tcp_channel.hpp"
#include "obs/wall_clock.hpp"
#include "proto/dist_messages.hpp"

namespace nexit::dist {

namespace {

/// Directory holding the running binary, so spawn-local mode finds
/// nexit_workerd beside nexit_run without configuration.
std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

std::vector<std::string> split_list(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

int clamp_timeout(std::uint64_t ms) {
  return ms > static_cast<std::uint64_t>(1u << 30) ? (1 << 30)
                                                   : static_cast<int>(ms);
}

/// Reaps a spawn-local child: polls non-blocking for `grace_ms`, then
/// SIGKILLs and collects it — the coordinator must never hang on a wedged
/// worker during teardown.
void reap(pid_t pid, int grace_ms) {
  if (pid <= 0) return;
  const auto t0 = obs::WallClock::now();
  for (;;) {
    const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
    if (r == pid || (r < 0 && errno == ECHILD)) return;
    if (obs::WallClock::ms_since(t0) > grace_ms) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return;
    }
    pollfd unused{-1, 0, 0};
    ::poll(&unused, 0, 10);  // sleep a tick without a banned sleep call
  }
}

}  // namespace

struct Coordinator::Worker {
  std::unique_ptr<FramedChannel> channel;
  pid_t pid = -1;   // spawn-local child pid; -1 for dist.connect daemons
  std::string name;
  bool alive = false;
  bool busy = false;
  std::size_t job = 0;  // in-flight job index, valid while busy
  std::size_t jobs_assigned = 0;
  obs::WallClock::TimePoint assigned_at;
};

Coordinator::Coordinator(const CoordinatorConfig& config) : config_(config) {
  // Workers die on purpose in the fault tests; a write into a dead pipe
  // must surface as EPIPE on the send, not kill the coordinator.
  ::signal(SIGPIPE, SIG_IGN);

  if (!config_.connect.empty()) {
    for (const std::string& endpoint : split_list(config_.connect, ','))
      connect_remote(endpoint);
  } else {
    for (std::size_t i = 0; i < config_.workers; ++i) spawn_local(i);
  }
  if (workers_.empty()) throw std::runtime_error("no workers configured");

  // Every connection opens with the worker's hello; a protocol mismatch or
  // an immediately-dead child (exec failure) is a setup error, not a
  // mid-run fault, so it fails the whole run loudly.
  const int hello_timeout = clamp_timeout(config_.timeout_ms);
  for (std::unique_ptr<Worker>& w : workers_) {
    std::optional<proto::DistMessage> hello = w->channel->receive(hello_timeout);
    if (!hello || !std::holds_alternative<proto::DistHello>(*hello)) {
      throw std::runtime_error(w->name + ": no hello from worker (" +
                               (w->channel->error().empty()
                                    ? "timeout or worker exited"
                                    : w->channel->error()) +
                               ")");
    }
    const auto& h = std::get<proto::DistHello>(*hello);
    if (h.protocol != proto::kDistProtocolVersion) {
      throw std::runtime_error(
          w->name + ": dist protocol mismatch (worker speaks v" +
          std::to_string(h.protocol) + ", coordinator v" +
          std::to_string(proto::kDistProtocolVersion) + ")");
    }
    w->alive = true;
  }
}

Coordinator::~Coordinator() {
  for (std::unique_ptr<Worker>& w : workers_) {
    if (w->alive) w->channel->send(proto::DistShutdown{}, 1000);
    w->channel->channel().close();
  }
  for (std::unique_ptr<Worker>& w : workers_) reap(w->pid, 2000);
}

void Coordinator::spawn_local(std::size_t index) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw std::runtime_error("socketpair failed spawning worker");

  const std::string binary = config_.worker_path.empty()
                                 ? self_dir() + "/nexit_workerd"
                                 : config_.worker_path;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("fork failed spawning worker");
  }
  if (pid == 0) {
    ::close(fds[0]);
    const std::string log =
        config_.log_dir.empty()
            ? "/dev/null"
            : config_.log_dir + "/worker" + std::to_string(index) + ".log";
    const int logfd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (logfd >= 0) {
      ::dup2(logfd, 1);
      ::dup2(logfd, 2);
      ::close(logfd);
    }
    const std::string fd_arg = "--fd=" + std::to_string(fds[1]);
    ::execl(binary.c_str(), binary.c_str(), fd_arg.c_str(),
            static_cast<char*>(nullptr));
    // Exec failed; the parent sees EOF instead of a hello and reports it.
    _exit(127);
  }
  ::close(fds[1]);
  auto w = std::make_unique<Worker>();
  w->channel = std::make_unique<FramedChannel>(agent::make_fd_channel(fds[0]));
  w->pid = pid;
  w->name = "worker" + std::to_string(index);
  workers_.push_back(std::move(w));
}

void Coordinator::connect_remote(const std::string& endpoint) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_endpoint(endpoint, &host, &port))
    throw std::runtime_error("malformed dist.connect endpoint: " + endpoint);
  auto w = std::make_unique<Worker>();
  w->channel = std::make_unique<FramedChannel>(
      tcp_connect(host, port, clamp_timeout(config_.timeout_ms)));
  w->name = endpoint;
  workers_.push_back(std::move(w));
}

void Coordinator::retire(Worker& worker, const std::string& why,
                         std::vector<std::size_t>* queue,
                         std::vector<std::size_t>* attempts) {
  if (!worker.alive) return;
  worker.alive = false;
  worker.channel->channel().close();
  reap(worker.pid, 0);
  if (worker.busy) {
    worker.busy = false;
    // Back to the FRONT of the queue: the orphaned job keeps its odometer
    // priority, which keeps retry runs finishing in near-declaration order.
    queue->insert(queue->begin(), worker.job);
    ++(*attempts)[worker.job];
    std::fprintf(stderr,
                 "dist: %s lost (%s); reassigning job %zu (attempt %zu)\n",
                 worker.name.c_str(), why.c_str(), worker.job,
                 (*attempts)[worker.job]);
  } else {
    std::fprintf(stderr, "dist: %s lost (%s)\n", worker.name.c_str(),
                 why.c_str());
  }
}

std::size_t Coordinator::live_workers() const {
  std::size_t n = 0;
  for (const std::unique_ptr<Worker>& w : workers_)
    if (w->alive) ++n;
  return n;
}

int Coordinator::run(const std::vector<Job>& jobs,
                     std::vector<JobResult>* results) {
  results->assign(jobs.size(), JobResult{});
  std::vector<char> done(jobs.size(), 0);
  std::vector<std::size_t> attempts(jobs.size(), 0);
  std::vector<std::size_t> queue;
  queue.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) queue.push_back(i);

  // Deterministic fault-injection hook for the tests and the CI smoke run:
  // NEXIT_DIST_TEST_KILL="<worker>:<nth>" SIGKILLs that spawn-local worker
  // right as its nth job is assigned — a reproducible mid-shard death.
  std::size_t kill_worker = static_cast<std::size_t>(-1);
  std::size_t kill_at = 0;
  if (const char* spec = std::getenv("NEXIT_DIST_TEST_KILL")) {
    unsigned long w = 0, k = 0;
    if (std::sscanf(spec, "%lu:%lu", &w, &k) == 2) {
      kill_worker = w;
      kill_at = k;
    }
  }

  std::size_t completed = 0;
  while (completed < jobs.size()) {
    // Hand every idle live worker the next queued job.
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      Worker& w = *workers_[wi];
      if (!w.alive || w.busy || queue.empty()) continue;
      const std::size_t j = queue.front();
      queue.erase(queue.begin());
      if (attempts[j] > config_.retries) {
        std::fprintf(stderr,
                     "error: dist: job %zu failed %zu times; giving up\n", j,
                     attempts[j]);
        return 3;
      }
      w.busy = true;
      w.job = j;
      w.assigned_at = obs::WallClock::now();
      ++w.jobs_assigned;
      if (wi == kill_worker && w.jobs_assigned == kill_at && w.pid > 0)
        ::kill(w.pid, SIGKILL);
      const proto::DistJob msg{static_cast<std::uint32_t>(j),
                               jobs[j].scenario, jobs[j].label,
                               jobs[j].spec_text};
      if (!w.channel->send(msg, clamp_timeout(config_.timeout_ms)))
        retire(w, "send failed: " + w.channel->error(), &queue, &attempts);
    }

    if (live_workers() == 0) {
      std::fprintf(stderr, "error: dist: all workers dead, %zu/%zu jobs done\n",
                   completed, jobs.size());
      return 3;
    }

    // Wait for any worker to speak (or a deadline to pass). Idle workers
    // are polled too: a daemon dropping its connection between jobs should
    // retire immediately, not on its next assignment.
    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfd_worker;
    int wait_ms = 1000;
    for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
      Worker& w = *workers_[wi];
      if (!w.alive) continue;
      pfds.push_back(pollfd{w.channel->poll_fd(), POLLIN, 0});
      pfd_worker.push_back(wi);
      if (w.busy) {
        const double left =
            static_cast<double>(config_.timeout_ms) -
            obs::WallClock::ms_since(w.assigned_at);
        const int left_ms = left > 0 ? static_cast<int>(left) + 1 : 0;
        if (left_ms < wait_ms) wait_ms = left_ms;
      }
    }
    const int rc = ::poll(pfds.data(), pfds.size(), wait_ms);
    if (rc < 0 && errno != EINTR)
      throw std::runtime_error("poll failed in coordinator loop");

    for (const std::size_t wi : pfd_worker) {
      Worker& w = *workers_[wi];
      if (!w.alive) continue;
      for (;;) {
        std::optional<proto::DistMessage> message = w.channel->poll_message();
        if (!message) break;
        if (!std::holds_alternative<proto::DistResult>(*message)) {
          retire(w, "unexpected message type", &queue, &attempts);
          break;
        }
        auto& r = std::get<proto::DistResult>(*message);
        const std::size_t j = r.job;
        // A result for a job already completed elsewhere (a worker that was
        // slow, declared dead, then answered anyway) is dropped — exactly
        // one result per job reaches the record.
        if (j < jobs.size() && !done[j]) {
          JobResult& out = (*results)[j];
          out.rc = r.rc;
          out.digest = r.digest;
          out.error = std::move(r.error);
          out.metrics = std::move(r.metrics);
          out.obs.counters.reserve(r.counters.size());
          for (const auto& [name, value] : r.counters)
            out.obs.counters.push_back(obs::CounterSnapshot{name, value});
          out.obs.histograms.reserve(r.histograms.size());
          for (const proto::DistObsHistogram& h : r.histograms) {
            obs::HistogramSnapshot hs;
            hs.name = h.name;
            hs.count = h.count;
            hs.sum = h.sum;
            hs.buckets.assign(obs::kHistogramBuckets, 0);
            for (const auto& [bucket, count] : h.buckets)
              if (bucket < obs::kHistogramBuckets) hs.buckets[bucket] = count;
            out.obs.histograms.push_back(std::move(hs));
          }
          done[j] = 1;
          ++completed;
        }
        if (w.busy && w.job == j) w.busy = false;
      }
      if (!w.alive) continue;
      if (w.channel->failed()) {
        retire(w, w.channel->error().empty() ? "connection closed"
                                             : w.channel->error(),
               &queue, &attempts);
      } else if (w.busy && obs::WallClock::ms_since(w.assigned_at) >
                               static_cast<double>(config_.timeout_ms)) {
        retire(w, "job deadline exceeded", &queue, &attempts);
      }
    }
  }
  return 0;
}

}  // namespace nexit::dist
