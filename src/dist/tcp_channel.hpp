#pragma once

// TCP transport for the distributed layer: the same fd-backed Channel the
// AF_UNIX socketpair factory returns (identical framing, overflow queue,
// poll_fd() reactor integration), over listen/connect/accept sockets — the
// piece that lets coordinator and workers, or two negotiation agents, sit
// on different hosts. Loopback pairs double as the runtime's
// `runtime.transport=tcp` channel kind.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "agent/channel.hpp"

namespace nexit::dist {

/// A listening TCP socket. Binds on construction (throws std::runtime_error
/// on failure); RAII closes the fd. Port 0 asks the kernel for an ephemeral
/// port — port() reports the actual one.
class TcpListener {
 public:
  /// Binds and listens on host:port. `host` is a numeric IPv4 address or a
  /// resolvable name ("127.0.0.1", "0.0.0.0", "localhost").
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks up to timeout_ms (-1 = forever) for one inbound connection;
  /// returns it wrapped in the standard fd-backed Channel, or nullptr on
  /// timeout.
  std::unique_ptr<agent::Channel> accept(int timeout_ms);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port (blocking, bounded by timeout_ms) and returns the
/// fd-backed Channel; throws std::runtime_error on failure/timeout.
std::unique_ptr<agent::Channel> tcp_connect(const std::string& host,
                                            std::uint16_t port,
                                            int timeout_ms);

/// "host:port" -> parts; returns false (and leaves outputs untouched) on a
/// malformed endpoint (missing colon, non-numeric or out-of-range port).
bool parse_endpoint(const std::string& endpoint, std::string* host,
                    std::uint16_t* port);

/// A connected loopback TCP pair (listener on an ephemeral 127.0.0.1 port,
/// connect, accept, listener closed) — the TCP twin of
/// agent::make_socket_channel_pair(), and the channel factory behind
/// `runtime.transport=tcp`.
std::pair<std::unique_ptr<agent::Channel>, std::unique_ptr<agent::Channel>>
make_tcp_channel_pair();

}  // namespace nexit::dist
