#include "dist/tcp_channel.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace nexit::dist {

namespace {

/// Resolves host to an IPv4 sockaddr. getaddrinfo handles both numeric
/// addresses and names; IPv4-only keeps the endpoint grammar unambiguous
/// (host:port would collide with bare IPv6 literals).
sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw std::runtime_error("cannot resolve host \"" + host +
                             "\": " + ::gai_strerror(rc));
  }
  sockaddr_in addr{};
  std::memcpy(&addr, result->ai_addr, sizeof(addr));
  addr.sin_port = htons(port);
  ::freeaddrinfo(result);
  return addr;
}

int make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  // Frames are small and latency-sensitive (one job/result per round trip);
  // Nagle would add nothing but delay.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// poll() one fd for `events`, retrying EINTR with the remaining budget.
/// Returns true when the fd signalled, false on timeout.
bool poll_one(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) throw std::runtime_error("poll failed");
  }
}

}  // namespace

TcpListener::TcpListener(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = resolve(host, port);
  fd_ = make_tcp_socket();
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot listen on " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<agent::Channel> TcpListener::accept(int timeout_ms) {
  if (!poll_one(fd_, POLLIN, timeout_ms)) return nullptr;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return agent::make_fd_channel(fd);
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("accept failed: ") +
                             std::strerror(errno));
  }
}

std::unique_ptr<agent::Channel> tcp_connect(const std::string& host,
                                            std::uint16_t port,
                                            int timeout_ms) {
  const sockaddr_in addr = resolve(host, port);
  const int fd = make_tcp_socket();
  // Non-blocking connect so the timeout is enforceable; the resulting fd is
  // what make_fd_channel wants anyway.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      throw std::runtime_error("cannot connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    }
    bool ready = false;
    try {
      ready = poll_one(fd, POLLOUT, timeout_ms);
    } catch (...) {
      ::close(fd);
      throw;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (!ready ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      throw std::runtime_error("cannot connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               (ready ? std::strerror(err) : "timed out"));
    }
  }
  return agent::make_fd_channel(fd);
}

bool parse_endpoint(const std::string& endpoint, std::string* host,
                    std::uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size())
    return false;
  const std::string digits = endpoint.substr(colon + 1);
  std::uint32_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
    if (value > 65535) return false;
  }
  if (host != nullptr) *host = endpoint.substr(0, colon);
  if (port != nullptr) *port = static_cast<std::uint16_t>(value);
  return true;
}

std::pair<std::unique_ptr<agent::Channel>, std::unique_ptr<agent::Channel>>
make_tcp_channel_pair() {
  TcpListener listener("127.0.0.1", 0);
  auto client = tcp_connect("127.0.0.1", listener.port(), 5000);
  auto server = listener.accept(5000);
  if (server == nullptr)
    throw std::runtime_error("loopback accept timed out");
  return {std::move(client), std::move(server)};
}

}  // namespace nexit::dist
