#include "dist/worker.hpp"

#include <cstdio>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "proto/dist_messages.hpp"
#include "sim/scenarios.hpp"
#include "sim/spec.hpp"
#include "util/flags.hpp"
#include "util/json_report.hpp"

namespace nexit::dist {

namespace {

/// Executes one shard. The spec_text is a complete serialized spec (every
/// key spelled out), so merging it onto a default-constructed spec — the
/// exact parser a --spec file goes through — reconstructs the
/// coordinator's point spec bit-for-bit; no preset tune() is involved.
/// Unknown keys and validation failures come back as rc 2 in the result
/// (the worker stays up for the next job); malformed *values* exit 2 via
/// the shared Flags machinery, which the coordinator sees as worker death.
proto::DistResult run_job(const proto::DistJob& job) {
  proto::DistResult result;
  result.job = job.job;

  const sim::ScenarioPreset* preset = sim::find_scenario(job.scenario);
  if (preset == nullptr) {
    result.rc = 2;
    result.error = "unknown scenario: " + job.scenario;
    return result;
  }

  std::vector<std::string> assignments;
  std::istringstream in(job.spec_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    assignments.push_back(line);
  }
  const util::Flags kv(assignments);
  sim::ExperimentSpec spec;
  spec.merge_from_flags(kv);
  const std::vector<std::string> unknown = kv.unknown();
  if (!unknown.empty()) {
    result.rc = 2;
    result.error = "unknown spec key in job: " + unknown.front();
    return result;
  }
  std::string error;
  if (!spec.validate(&error)) {
    result.rc = 2;
    result.error = "invalid job spec: " + error;
    return result;
  }

  // No JSON path: the record only collects metric entries for shipping.
  util::JsonReport record(std::string(), job.scenario);
  const sim::PointOutcome out = sim::run_point(*preset, spec, record, nullptr);
  result.rc = out.rc;
  if (out.rc != 0) {
    result.error = "scenario run failed (rc " + std::to_string(out.rc) + ")";
    return result;
  }
  result.digest = out.digest;
  result.metrics = record.metric_entries();
  result.counters.reserve(out.obs.counters.size());
  for (const obs::CounterSnapshot& c : out.obs.counters)
    result.counters.emplace_back(c.name, c.value);
  result.histograms.reserve(out.obs.histograms.size());
  for (const obs::HistogramSnapshot& h : out.obs.histograms) {
    proto::DistObsHistogram dh;
    dh.name = h.name;
    dh.count = h.count;
    dh.sum = h.sum;
    for (std::size_t b = 0; b < h.buckets.size(); ++b)
      if (h.buckets[b] != 0)
        dh.buckets.emplace_back(static_cast<std::uint32_t>(b), h.buckets[b]);
    result.histograms.push_back(std::move(dh));
  }
  return result;
}

}  // namespace

int serve(FramedChannel& channel) {
  if (!channel.send(proto::DistHello{}, 30000)) {
    std::fprintf(stderr, "workerd: hello send failed: %s\n",
                 channel.error().c_str());
    return 1;
  }
  for (;;) {
    std::optional<proto::DistMessage> message = channel.receive(-1);
    if (!message) {
      // EOF from a finished coordinator is the normal exit; a poisoned
      // stream (CRC/decode failure) is not.
      if (!channel.error().empty()) {
        std::fprintf(stderr, "workerd: %s\n", channel.error().c_str());
        return 1;
      }
      return 0;
    }
    if (std::holds_alternative<proto::DistShutdown>(*message)) return 0;
    const proto::DistJob* job = std::get_if<proto::DistJob>(&*message);
    if (job == nullptr) {
      std::fprintf(stderr, "workerd: unexpected message from coordinator\n");
      return 1;
    }
    std::fprintf(stderr, "workerd: job %u scenario=%s%s%s\n", job->job,
                 job->scenario.c_str(), job->label.empty() ? "" : " point=",
                 job->label.c_str());
    const proto::DistResult result = run_job(*job);
    if (!channel.send(result, -1)) {
      std::fprintf(stderr, "workerd: result send failed: %s\n",
                   channel.error().c_str());
      return 1;
    }
  }
}

}  // namespace nexit::dist
