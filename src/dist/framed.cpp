#include "dist/framed.hpp"

#include <poll.h>

#include <cerrno>
#include <stdexcept>

#include "obs/wall_clock.hpp"

namespace nexit::dist {

namespace {

/// Milliseconds left of `timeout_ms` after `elapsed_ms`; -1 stays -1
/// (forever), exhausted budgets clamp to 0.
int remaining_ms(int timeout_ms, double elapsed_ms) {
  if (timeout_ms < 0) return -1;
  const double left = timeout_ms - elapsed_ms;
  return left > 0 ? static_cast<int>(left) + 1 : 0;
}

}  // namespace

void FramedChannel::fail(const std::string& why) {
  if (!failed_) {
    failed_ = true;
    error_ = why;
  }
  channel_->close();
}

bool FramedChannel::send(const proto::DistMessage& message, int timeout_ms) {
  if (failed()) return false;
  const auto t0 = obs::WallClock::now();
  try {
    channel_->send(proto::encode_frame(proto::encode_dist_message(message)));
    // A frame larger than the socket buffer lands in the channel's overflow
    // queue (short write); drain it by polling writable — the peer is a
    // different process, so unlike the same-thread runtime sessions,
    // blocking here cannot deadlock.
    while (!channel_->flush()) {
      const int left = remaining_ms(timeout_ms, obs::WallClock::ms_since(t0));
      if (left == 0) {
        fail("send timed out");
        return false;
      }
      pollfd p{channel_->poll_fd(), POLLOUT, 0};
      const int rc = ::poll(&p, 1, left);
      if (rc < 0 && errno != EINTR) {
        fail("poll failed during send");
        return false;
      }
    }
  } catch (const std::exception& e) {  // closed/reset peer
    fail(e.what());
    return false;
  }
  return true;
}

std::optional<proto::DistMessage> FramedChannel::poll_message() {
  if (failed_) return std::nullopt;
  for (;;) {
    if (std::optional<proto::Frame> frame = decoder_.next()) {
      util::Result<proto::DistMessage> message =
          proto::decode_dist_message(*frame);
      if (!message.ok()) {
        fail(message.error().message);
        return std::nullopt;
      }
      return std::move(message).take();
    }
    if (decoder_.failed()) {
      fail(decoder_.error());
      return std::nullopt;
    }
    const proto::Bytes bytes = channel_->receive();
    if (bytes.empty()) return std::nullopt;  // kernel buffer drained
    decoder_.feed(bytes);
  }
}

std::optional<proto::DistMessage> FramedChannel::receive(int timeout_ms) {
  const auto t0 = obs::WallClock::now();
  for (;;) {
    if (std::optional<proto::DistMessage> message = poll_message())
      return message;
    if (failed()) return std::nullopt;
    const int left = remaining_ms(timeout_ms, obs::WallClock::ms_since(t0));
    if (left == 0) return std::nullopt;
    pollfd p{channel_->poll_fd(), POLLIN, 0};
    const int rc = ::poll(&p, 1, left);
    if (rc < 0 && errno != EINTR) {
      fail("poll failed during receive");
      return std::nullopt;
    }
    if (rc == 0) return std::nullopt;  // timeout
  }
}

}  // namespace nexit::dist
