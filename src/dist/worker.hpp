#pragma once

// The worker side of the distributed layer: the nexit_workerd serve loop.
// One connection = one coordinator; the worker announces itself with a
// DistHello, then runs DistJob shards sequentially through the same
// sim::run_point pipeline the in-process sweep loop uses, shipping back a
// DistResult per job until DistShutdown or peer EOF.

#include "dist/framed.hpp"

namespace nexit::dist {

/// Serves one coordinator connection to completion. Returns the process
/// exit code: 0 on orderly shutdown (DistShutdown or coordinator EOF),
/// non-zero on a poisoned stream or send failure.
int serve(FramedChannel& channel);

}  // namespace nexit::dist
