#include "metrics/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace nexit::metrics {

double total_flow_km(const routing::PairRouting& routing,
                     const std::vector<traffic::Flow>& flows,
                     const routing::Assignment& assignment) {
  if (assignment.ix_of_flow.size() != flows.size())
    throw std::invalid_argument("total_flow_km: assignment size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i)
    total += flows[i].size * routing.total_km(flows[i], assignment.ix_of_flow[i]);
  return total;
}

double side_flow_km(const routing::PairRouting& routing,
                    const std::vector<traffic::Flow>& flows,
                    const routing::Assignment& assignment, int side) {
  if (assignment.ix_of_flow.size() != flows.size())
    throw std::invalid_argument("side_flow_km: assignment size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i)
    total += flows[i].size *
             routing.km_in_side(flows[i], assignment.ix_of_flow[i], side);
  return total;
}

double mel(const std::vector<double>& loads,
           const std::vector<double>& capacities) {
  if (loads.size() != capacities.size())
    throw std::invalid_argument("mel: shape mismatch");
  double worst = 0.0;
  for (std::size_t e = 0; e < loads.size(); ++e) {
    if (capacities[e] <= 0.0) throw std::invalid_argument("mel: zero capacity");
    worst = std::max(worst, loads[e] / capacities[e]);
  }
  return worst;
}

double side_mel(const routing::LoadMap& loads, const routing::LoadMap& capacities,
                int side) {
  if (side != 0 && side != 1) throw std::invalid_argument("side_mel: bad side");
  return mel(loads.per_side[static_cast<std::size_t>(side)],
             capacities.per_side[static_cast<std::size_t>(side)]);
}

double path_mel(const std::vector<graph::EdgeIndex>& path_edges,
                const std::vector<double>& loads_without_flow,
                const std::vector<double>& capacities, double flow_size) {
  double worst = 0.0;
  for (graph::EdgeIndex e : path_edges) {
    const auto idx = static_cast<std::size_t>(e);
    if (capacities.at(idx) <= 0.0)
      throw std::invalid_argument("path_mel: zero capacity");
    worst = std::max(worst,
                     (loads_without_flow.at(idx) + flow_size) / capacities[idx]);
  }
  return worst;
}

namespace {

/// Fortz–Thorup phi: piecewise-linear, convex, increasing; utilisation u.
double phi(double u) {
  // Slopes and breakpoints from "Internet traffic engineering by optimizing
  // OSPF weights" (INFOCOM 2000).
  if (u < 1.0 / 3.0) return u;
  if (u < 2.0 / 3.0) return 3.0 * u - 2.0 / 3.0;
  if (u < 9.0 / 10.0) return 10.0 * u - 16.0 / 3.0;
  if (u < 1.0) return 70.0 * u - 178.0 / 3.0;
  if (u < 11.0 / 10.0) return 500.0 * u - 1468.0 / 3.0;
  return 5000.0 * u - 16318.0 / 3.0;
}

}  // namespace

double piecewise_linear_cost(const std::vector<double>& loads,
                             const std::vector<double>& capacities) {
  if (loads.size() != capacities.size())
    throw std::invalid_argument("piecewise_linear_cost: shape mismatch");
  double total = 0.0;
  for (std::size_t e = 0; e < loads.size(); ++e) {
    if (capacities[e] <= 0.0)
      throw std::invalid_argument("piecewise_linear_cost: zero capacity");
    total += phi(loads[e] / capacities[e]);
  }
  return total;
}

double pair_piecewise_cost(const routing::LoadMap& loads,
                           const routing::LoadMap& capacities) {
  return piecewise_linear_cost(loads.per_side[0], capacities.per_side[0]) +
         piecewise_linear_cost(loads.per_side[1], capacities.per_side[1]);
}

}  // namespace nexit::metrics
