#pragma once

#include <cstddef>
#include <vector>

#include "routing/loads.hpp"
#include "routing/pair_routing.hpp"

namespace nexit::metrics {

/// §5.1 distance metric: total resource consumption as the size-weighted sum
/// of path lengths of all flows (km), across both ISPs. The paper's distance
/// experiments use unit-size flows, for which this is exactly the sum of
/// path lengths.
double total_flow_km(const routing::PairRouting& routing,
                     const std::vector<traffic::Flow>& flows,
                     const routing::Assignment& assignment);

/// Distance carried inside one ISP (side 0 = A, 1 = B); used for the
/// individual-gain view of Fig. 4b.
double side_flow_km(const routing::PairRouting& routing,
                    const std::vector<traffic::Flow>& flows,
                    const routing::Assignment& assignment, int side);

/// §5.2 congestion metric, MEL ("maximum excess load"): the maximum over
/// links of load-after-failure divided by link capacity, where capacity is
/// the (adjusted) pre-failure load. Higher is worse.
double mel(const std::vector<double>& loads, const std::vector<double>& capacities);

/// MEL restricted to one ISP's links.
double side_mel(const routing::LoadMap& loads, const routing::LoadMap& capacities,
                int side);

/// The worst "excess load" increase a single flow would cause along a given
/// path: max over the path's links of (load_without_flow + flow_size)/cap.
/// This is the quantity the bandwidth preference oracle maps to preference
/// classes ("maximum increase in link load along the path", §5.2).
double path_mel(const std::vector<graph::EdgeIndex>& path_edges,
                const std::vector<double>& loads_without_flow,
                const std::vector<double>& capacities, double flow_size);

/// Fortz–Thorup piecewise-linear link cost (the paper's alternate metric,
/// [10]): phi(u) with slopes 1,3,10,70,500,5000 at utilisation breakpoints
/// 0, 1/3, 2/3, 9/10, 1, 11/10. Returns the sum over links of phi(load/cap).
double piecewise_linear_cost(const std::vector<double>& loads,
                             const std::vector<double>& capacities);

/// Piecewise-linear cost over both sides of a pair.
double pair_piecewise_cost(const routing::LoadMap& loads,
                           const routing::LoadMap& capacities);

}  // namespace nexit::metrics
