#pragma once

#include <cstddef>
#include <vector>

#include "topology/isp_topology.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace nexit::traffic {

struct FlowTag {};
/// Flow identifier; equals the flow's index within its TrafficMatrix.
using FlowId = util::StrongId<FlowTag>;

/// Which ISP originates the flow (is the upstream).
enum class Direction { kAtoB, kBtoA };

/// Side index helpers: ISP A is side 0, ISP B is side 1.
[[nodiscard]] constexpr int upstream_side(Direction d) {
  return d == Direction::kAtoB ? 0 : 1;
}
[[nodiscard]] constexpr int downstream_side(Direction d) {
  return d == Direction::kAtoB ? 1 : 0;
}

/// A stream of packets from a source PoP in the upstream ISP to a
/// destination PoP in the downstream ISP (paper §4). All packets of a flow
/// take the same path; negotiation picks its interconnection.
struct Flow {
  FlowId id;
  Direction direction = Direction::kAtoB;
  topology::PopId src;  // PoP in the upstream ISP
  topology::PopId dst;  // PoP in the downstream ISP
  double size = 1.0;    // offered volume, arbitrary units
};

/// Workload models from the paper (§5.2 methodology): gravity with
/// population-proportional PoP weights (primary), identical weights, and
/// uniform-random weights (the alternates the authors also tried).
enum class WorkloadModel { kGravity, kIdentical, kUniformRandom };

struct TrafficConfig {
  WorkloadModel model = WorkloadModel::kGravity;
  /// Flow sizes are normalised so each direction's flows sum to this.
  double total_volume_per_direction = 1000.0;
};

/// The set of flows exchanged between a pair of ISPs: one flow per
/// (upstream PoP, downstream PoP) pair, per requested direction.
class TrafficMatrix {
 public:
  /// Single direction of traffic (used by the bandwidth experiments).
  static TrafficMatrix build(const topology::IspPair& pair, Direction direction,
                             const TrafficConfig& config, util::Rng& rng);

  /// Both directions (used by the distance experiments).
  static TrafficMatrix build_bidirectional(const topology::IspPair& pair,
                                           const TrafficConfig& config,
                                           util::Rng& rng);

  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  [[nodiscard]] const Flow& flow(FlowId id) const {
    return flows_.at(static_cast<std::size_t>(id.value()));
  }
  [[nodiscard]] double total_volume() const { return total_volume_; }

 private:
  static void append_direction(const topology::IspPair& pair, Direction direction,
                               const TrafficConfig& config, util::Rng& rng,
                               std::vector<Flow>& out);

  explicit TrafficMatrix(std::vector<Flow> flows);

  std::vector<Flow> flows_;
  double total_volume_ = 0.0;
};

}  // namespace nexit::traffic
