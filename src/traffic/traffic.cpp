#include "traffic/traffic.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace nexit::traffic {

namespace {

/// Per-PoP weight under the chosen workload model. The gravity model uses
/// city population (larger cities consume more bandwidth, matching real
/// traffic skew); identical gives every PoP weight 1; uniform-random draws
/// weights afresh per matrix from U(0.1, 1.1) to avoid zero rows.
std::vector<double> pop_weights(const topology::IspTopology& isp,
                                WorkloadModel model, util::Rng& rng) {
  std::vector<double> w;
  w.reserve(isp.pop_count());
  for (const auto& pop : isp.pops()) {
    switch (model) {
      case WorkloadModel::kGravity:
        w.push_back(pop.population_millions);
        break;
      case WorkloadModel::kIdentical:
        w.push_back(1.0);
        break;
      case WorkloadModel::kUniformRandom:
        w.push_back(rng.next_double(0.1, 1.1));
        break;
    }
  }
  return w;
}

}  // namespace

TrafficMatrix::TrafficMatrix(std::vector<Flow> flows) : flows_(std::move(flows)) {
  // nexit-lint: allow(float-accumulate): flow-index order is the repo's
  // canonical volume-summation order (matches routing::loads)
  for (const auto& f : flows_) total_volume_ += f.size;
}

void TrafficMatrix::append_direction(const topology::IspPair& pair,
                                     Direction direction,
                                     const TrafficConfig& config, util::Rng& rng,
                                     std::vector<Flow>& out) {
  const topology::IspTopology& up =
      (direction == Direction::kAtoB) ? pair.a() : pair.b();
  const topology::IspTopology& down =
      (direction == Direction::kAtoB) ? pair.b() : pair.a();

  const std::vector<double> wu = pop_weights(up, config.model, rng);
  const std::vector<double> wd = pop_weights(down, config.model, rng);

  // Gravity: size(u, v) ~ weight(u) * weight(v), then normalise so the
  // direction sums to total_volume_per_direction.
  std::vector<double> raw;
  raw.reserve(up.pop_count() * down.pop_count());
  for (std::size_t i = 0; i < up.pop_count(); ++i) {
    for (std::size_t j = 0; j < down.pop_count(); ++j) {
      raw.push_back(wu[i] * wd[j]);
    }
  }
  const double total = util::sum(raw);
  if (total <= 0.0) throw std::logic_error("TrafficMatrix: zero total weight");

  const double scale = config.total_volume_per_direction / total;
  std::size_t k = 0;
  for (std::size_t i = 0; i < up.pop_count(); ++i) {
    for (std::size_t j = 0; j < down.pop_count(); ++j) {
      Flow f;
      f.id = FlowId{static_cast<std::int32_t>(out.size())};
      f.direction = direction;
      f.src = topology::PopId{static_cast<std::int32_t>(i)};
      f.dst = topology::PopId{static_cast<std::int32_t>(j)};
      f.size = raw[k++] * scale;
      out.push_back(f);
    }
  }
}

TrafficMatrix TrafficMatrix::build(const topology::IspPair& pair,
                                   Direction direction,
                                   const TrafficConfig& config, util::Rng& rng) {
  std::vector<Flow> flows;
  append_direction(pair, direction, config, rng, flows);
  return TrafficMatrix{std::move(flows)};
}

TrafficMatrix TrafficMatrix::build_bidirectional(const topology::IspPair& pair,
                                                 const TrafficConfig& config,
                                                 util::Rng& rng) {
  std::vector<Flow> flows;
  append_direction(pair, Direction::kAtoB, config, rng, flows);
  append_direction(pair, Direction::kBtoA, config, rng, flows);
  return TrafficMatrix{std::move(flows)};
}

}  // namespace nexit::traffic
