#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace nexit::topology {

TopologyGenerator::TopologyGenerator(const geo::CityDb& db, GeneratorConfig config)
    : db_(&db), config_(config) {
  if (config_.min_pops < 2 || config_.max_pops < config_.min_pops)
    throw std::invalid_argument("GeneratorConfig: bad pop count range");
  if (config_.max_pops > db.size())
    throw std::invalid_argument("GeneratorConfig: max_pops exceeds city count");
}

Footprint TopologyGenerator::classify_city(const geo::Coord& c) {
  if (c.lon_deg < -30.0 && c.lat_deg > 5.0) return Footprint::kNorthAmerica;
  if (c.lon_deg >= -30.0 && c.lon_deg <= 45.0 && c.lat_deg > 34.0)
    return Footprint::kEurope;
  return Footprint::kGlobal;
}

std::vector<std::size_t> TopologyGenerator::sample_cities(std::size_t count,
                                                          Footprint fp,
                                                          util::Rng& rng) const {
  // Candidate cities restricted by footprint; kGlobal draws from everywhere.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < db_->size(); ++i) {
    if (fp == Footprint::kGlobal || classify_city(db_->at(i).coord) == fp)
      candidates.push_back(i);
  }
  if (candidates.size() < count) {
    // Footprint too small for the requested size; widen to global.
    candidates.clear();
    for (std::size_t i = 0; i < db_->size(); ++i) candidates.push_back(i);
  }

  // Weighted sampling without replacement, weight = population^bias.
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (std::size_t i : candidates)
    weights.push_back(std::pow(db_->at(i).population_millions, config_.population_bias));

  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const double total = util::sum(weights);
    double r = rng.next_double() * total;
    std::size_t pick = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (weights[i] <= 0.0) continue;
      r -= weights[i];
      pick = i;
      if (r <= 0.0) break;
    }
    chosen.push_back(candidates[pick]);
    weights[pick] = 0.0;  // without replacement
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

IspTopology TopologyGenerator::generate(AsNumber asn, util::Rng& rng) const {
  const std::size_t n =
      static_cast<std::size_t>(rng.next_int(static_cast<std::int64_t>(config_.min_pops),
                                            static_cast<std::int64_t>(config_.max_pops)));

  Footprint fp = Footprint::kGlobal;
  const double roll = rng.next_double();
  if (roll < config_.frac_north_america) {
    fp = Footprint::kNorthAmerica;
  } else if (roll < config_.frac_north_america + config_.frac_europe) {
    fp = Footprint::kEurope;
  }

  const std::vector<std::size_t> cities = sample_cities(n, fp, rng);

  std::vector<Pop> pops;
  pops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::City& c = db_->at(cities[i]);
    pops.push_back(Pop{PopId{static_cast<std::int32_t>(i)}, cities[i], c.name,
                       c.coord, c.population_millions});
  }

  // Pairwise geographic distances.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] = geo::haversine_km(pops[i].coord, pops[j].coord);
    }
  }

  graph::Graph g(n);
  auto add_link = [&](std::size_t i, std::size_t j) {
    const double len = std::max(dist[i][j], 1.0);
    const double w = len * rng.next_double(1.0 - config_.weight_noise,
                                           1.0 + config_.weight_noise) +
                     config_.weight_offset_km;
    g.add_edge(static_cast<graph::NodeIndex>(i), static_cast<graph::NodeIndex>(j),
               w, len);
  };

  // Backbone: Prim's MST over geographic distance guarantees connectivity and
  // matches the geographic-locality structure of measured ISP maps.
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, graph::kInfDistance);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<std::vector<char>> linked(n, std::vector<char>(n, 0));
  in_tree[0] = 1;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = dist[0][j];
    best_from[j] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double pick_d = graph::kInfDistance;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_d) {
        pick_d = best[j];
        pick = j;
      }
    }
    in_tree[pick] = 1;
    add_link(best_from[pick], pick);
    linked[best_from[pick]][pick] = linked[pick][best_from[pick]] = 1;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && dist[pick][j] < best[j]) {
        best[j] = dist[pick][j];
        best_from[j] = pick;
      }
    }
  }

  // Waxman-style shortcuts: probability decays with geographic distance.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (linked[i][j]) continue;
      const double p = config_.shortcut_alpha *
                       std::exp(-dist[i][j] / config_.shortcut_length_scale_km);
      if (rng.next_bool(p)) {
        add_link(i, j);
        linked[i][j] = linked[j][i] = 1;
      }
    }
  }

  return IspTopology{asn, "AS" + std::to_string(asn.value()), std::move(pops),
                     std::move(g)};
}

std::vector<IspTopology> TopologyGenerator::generate_universe(
    std::size_t count, util::Rng& rng) const {
  std::vector<IspTopology> isps;
  isps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    isps.push_back(generate(AsNumber{static_cast<std::int32_t>(i + 1)}, rng));
  }
  return isps;
}

}  // namespace nexit::topology
