#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "geo/city_db.hpp"
#include "geo/coord.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nexit::topology {

struct PopTag {};
/// PoP identifier, local to one ISP; equals the node index in the ISP graph.
using PopId = util::StrongId<PopTag>;

struct AsTag {};
/// Autonomous-system number of an ISP.
using AsNumber = util::StrongId<AsTag>;

/// Point of presence: one city-level location of an ISP.
struct Pop {
  PopId id;
  std::size_t city_index = 0;  // index into the CityDb the ISP was built from
  std::string city_name;
  geo::Coord coord;
  double population_millions = 0.0;
};

/// PoP-level map of a single ISP: PoPs in cities plus weighted backbone
/// links. Mirrors the Rocketfuel-style measured topologies the paper uses
/// (PoP coordinates + inferred link weights); see DESIGN.md §1.
class IspTopology {
 public:
  IspTopology(AsNumber asn, std::string name, std::vector<Pop> pops,
              graph::Graph backbone);

  [[nodiscard]] AsNumber asn() const { return asn_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t pop_count() const { return pops_.size(); }
  [[nodiscard]] const Pop& pop(PopId id) const {
    return pops_.at(static_cast<std::size_t>(id.value()));
  }
  [[nodiscard]] const std::vector<Pop>& pops() const { return pops_; }
  [[nodiscard]] const graph::Graph& backbone() const { return backbone_; }

  /// PoP located in the given city, if any (each ISP has at most one PoP per
  /// city).
  [[nodiscard]] std::optional<PopId> pop_in_city(std::size_t city_index) const;

 private:
  AsNumber asn_;
  std::string name_;
  std::vector<Pop> pops_;
  graph::Graph backbone_;
};

/// One inter-ISP link ("interconnection" in the paper). The two ISPs peer in
/// a shared city, so its geographic length is ~0; a small constant is used so
/// paths remain well-defined.
struct Interconnection {
  PopId pop_a;  // PoP in ISP A
  PopId pop_b;  // PoP in ISP B
  std::size_t city_index = 0;
  std::string city_name;
  bool up = true;
};

/// Two neighboring ISPs plus their interconnections. This is the negotiation
/// unit of the paper: pairs with >= 2 interconnections for the distance
/// experiments, >= 3 for the failure (bandwidth) experiments.
class IspPair {
 public:
  IspPair(IspTopology a, IspTopology b, std::vector<Interconnection> links);

  [[nodiscard]] const IspTopology& a() const { return a_; }
  [[nodiscard]] const IspTopology& b() const { return b_; }
  [[nodiscard]] const std::vector<Interconnection>& interconnections() const {
    return links_;
  }
  [[nodiscard]] std::size_t interconnection_count() const { return links_.size(); }

  /// Indices of interconnections currently up.
  [[nodiscard]] std::vector<std::size_t> up_interconnections() const;

  /// Returns a copy of this pair with interconnection `idx` marked down.
  [[nodiscard]] IspPair with_failed(std::size_t idx) const;

  [[nodiscard]] std::string label() const { return a_.name() + "|" + b_.name(); }

 private:
  IspTopology a_;
  IspTopology b_;
  std::vector<Interconnection> links_;
};

/// Builds the interconnection list for two ISPs: one interconnection in every
/// shared city. Returns nullopt if they share fewer than `min_links` cities.
std::optional<IspPair> make_pair_if_peers(const IspTopology& a,
                                          const IspTopology& b,
                                          std::size_t min_links);

}  // namespace nexit::topology
