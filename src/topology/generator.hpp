#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geo/city_db.hpp"
#include "topology/isp_topology.hpp"
#include "util/rng.hpp"

namespace nexit::topology {

/// Rough geographic footprint of a synthetic ISP. Mirrors the diversity of
/// the paper's measured dataset (US regionals, European carriers, globals).
enum class Footprint { kNorthAmerica, kEurope, kGlobal };

/// Parameters of the synthetic topology generator. Defaults produce
/// PoP-level maps with the structural properties of the measured Rocketfuel
/// topologies: geographic backbone (an MST over PoP locations) plus
/// distance-decaying shortcut links, and IGP weights proportional to
/// geographic length with noise.
struct GeneratorConfig {
  std::size_t min_pops = 6;
  std::size_t max_pops = 24;
  /// Probability scale for non-MST shortcut edges (Waxman-style).
  double shortcut_alpha = 0.35;
  /// Length scale (km) for the exponential distance decay of shortcuts.
  double shortcut_length_scale_km = 1800.0;
  /// Link weight = length_km * U(1-w_noise, 1+w_noise) + w_offset.
  double weight_noise = 0.1;
  double weight_offset_km = 30.0;
  /// Exponent applied to city population when sampling PoP locations.
  /// 1.0 = proportional to population (big cities appear in many ISPs).
  double population_bias = 1.0;
  /// Share of ISPs with each footprint (remainder is global).
  double frac_north_america = 0.55;
  double frac_europe = 0.20;
};

/// Generates synthetic ISPs over the embedded city database.
class TopologyGenerator {
 public:
  TopologyGenerator(const geo::CityDb& db, GeneratorConfig config);

  /// Builds one ISP; `asn` also seeds its name ("AS7018"-style).
  IspTopology generate(AsNumber asn, util::Rng& rng) const;

  /// Builds a universe of `count` ISPs with ASNs 1..count.
  std::vector<IspTopology> generate_universe(std::size_t count,
                                             util::Rng& rng) const;

  [[nodiscard]] const GeneratorConfig& config() const { return config_; }

  /// City classification used for footprints (exposed for tests).
  static Footprint classify_city(const geo::Coord& c);

 private:
  std::vector<std::size_t> sample_cities(std::size_t count, Footprint fp,
                                         util::Rng& rng) const;

  const geo::CityDb* db_;
  GeneratorConfig config_;
};

}  // namespace nexit::topology
