#include "topology/isp_topology.hpp"

#include <stdexcept>

namespace nexit::topology {

IspTopology::IspTopology(AsNumber asn, std::string name, std::vector<Pop> pops,
                         graph::Graph backbone)
    : asn_(asn), name_(std::move(name)), pops_(std::move(pops)),
      backbone_(std::move(backbone)) {
  if (pops_.size() != backbone_.node_count())
    throw std::invalid_argument("IspTopology: pops/backbone size mismatch");
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].id.value() != static_cast<std::int32_t>(i))
      throw std::invalid_argument("IspTopology: PoP ids must be 0..n-1 in order");
  }
  if (!pops_.empty() && !backbone_.connected())
    throw std::invalid_argument("IspTopology: backbone must be connected");
}

std::optional<PopId> IspTopology::pop_in_city(std::size_t city_index) const {
  for (const Pop& p : pops_) {
    if (p.city_index == city_index) return p.id;
  }
  return std::nullopt;
}

IspPair::IspPair(IspTopology a, IspTopology b, std::vector<Interconnection> links)
    : a_(std::move(a)), b_(std::move(b)), links_(std::move(links)) {
  if (links_.empty()) throw std::invalid_argument("IspPair: no interconnections");
  for (const auto& l : links_) {
    if (!l.pop_a.valid() || static_cast<std::size_t>(l.pop_a.value()) >= a_.pop_count())
      throw std::invalid_argument("IspPair: bad pop_a");
    if (!l.pop_b.valid() || static_cast<std::size_t>(l.pop_b.value()) >= b_.pop_count())
      throw std::invalid_argument("IspPair: bad pop_b");
  }
}

std::vector<std::size_t> IspPair::up_interconnections() const {
  std::vector<std::size_t> up;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].up) up.push_back(i);
  }
  return up;
}

IspPair IspPair::with_failed(std::size_t idx) const {
  if (idx >= links_.size())
    throw std::out_of_range("IspPair::with_failed: index out of range");
  IspPair copy = *this;
  copy.links_[idx].up = false;
  return copy;
}

std::optional<IspPair> make_pair_if_peers(const IspTopology& a,
                                          const IspTopology& b,
                                          std::size_t min_links) {
  std::vector<Interconnection> links;
  for (const Pop& pa : a.pops()) {
    const auto pb = b.pop_in_city(pa.city_index);
    if (!pb) continue;
    links.push_back(Interconnection{pa.id, *pb, pa.city_index, pa.city_name, true});
  }
  if (links.size() < min_links) return std::nullopt;
  return IspPair{a, b, std::move(links)};
}

}  // namespace nexit::topology
