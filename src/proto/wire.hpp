#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nexit::proto {

using Bytes = std::vector<std::uint8_t>;

/// Append-only binary encoder. Integers use LEB128 varints (signed values
/// zig-zag encoded); doubles are fixed 64-bit IEEE754 little-endian; strings
/// and blobs are length-prefixed.
class Writer {
 public:
  void put_u8(std::uint8_t v);
  void put_u32_fixed(std::uint32_t v);  // little-endian, for frame headers
  void put_varint(std::uint64_t v);
  void put_signed(std::int64_t v);  // zig-zag
  void put_double(double v);
  void put_string(const std::string& s);
  void put_bytes(const Bytes& b);  // length-prefixed

  [[nodiscard]] const Bytes& data() const { return data_; }
  [[nodiscard]] Bytes take() && { return std::move(data_); }

 private:
  Bytes data_;
};

/// Bounds-checked decoder over a byte span. Reads after a failure return
/// zero values; check ok() (stream-style error latching keeps call sites
/// linear instead of branching on every field).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32_fixed();
  std::uint64_t get_varint();
  std::int64_t get_signed();
  double get_double();
  std::string get_string();
  Bytes get_bytes();

  [[nodiscard]] bool ok() const { return ok_; }
  /// True when every byte was consumed and no error occurred.
  [[nodiscard]] bool at_end() const { return ok_ && pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  /// Caps for length-prefixed fields, to keep malformed input from causing
  /// huge allocations.
  static constexpr std::size_t kMaxBlob = 1 << 20;

 private:
  bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace nexit::proto
