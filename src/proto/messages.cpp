#include "proto/messages.hpp"

namespace nexit::proto {

namespace {

constexpr std::size_t kMaxListSize = 1u << 20;

void encode_hello(Writer& w, const Hello& m) {
  w.put_varint(m.asn);
  w.put_signed(m.pref_range);
  w.put_u8(m.wants_reassignment ? 1 : 0);
  w.put_double(m.reassign_fraction);
  w.put_u8(m.turn_policy);
  w.put_u8(m.proposal_policy);
  w.put_u8(m.acceptance_policy);
  w.put_u8(m.termination_policy);
  w.put_u8(m.settlement_rollback ? 1 : 0);
}

Hello decode_hello(Reader& r) {
  Hello m;
  m.asn = static_cast<std::uint32_t>(r.get_varint());
  m.pref_range = static_cast<std::int32_t>(r.get_signed());
  m.wants_reassignment = r.get_u8() != 0;
  m.reassign_fraction = r.get_double();
  m.turn_policy = r.get_u8();
  m.proposal_policy = r.get_u8();
  m.acceptance_policy = r.get_u8();
  m.termination_policy = r.get_u8();
  m.settlement_rollback = r.get_u8() != 0;
  return m;
}

void encode_candidates(Writer& w, const Candidates& m) {
  w.put_varint(m.interconnection_ids.size());
  for (std::uint32_t id : m.interconnection_ids) w.put_varint(id);
}

Candidates decode_candidates(Reader& r) {
  Candidates m;
  const std::uint64_t n = r.get_varint();
  if (n > kMaxListSize) return m;  // reader will be poisoned by under-read
  m.interconnection_ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && r.ok(); ++i)
    m.interconnection_ids.push_back(static_cast<std::uint32_t>(r.get_varint()));
  return m;
}

void encode_flow_announce(Writer& w, const FlowAnnounce& m) {
  w.put_varint(m.flows.size());
  for (const auto& f : m.flows) {
    w.put_varint(f.flow_id);
    w.put_varint(f.default_interconnection);
    w.put_double(f.size);
  }
}

FlowAnnounce decode_flow_announce(Reader& r) {
  FlowAnnounce m;
  const std::uint64_t n = r.get_varint();
  if (n > kMaxListSize) return m;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    FlowAnnounce::Item item;
    item.flow_id = static_cast<std::uint32_t>(r.get_varint());
    item.default_interconnection = static_cast<std::uint32_t>(r.get_varint());
    item.size = r.get_double();
    m.flows.push_back(item);
  }
  return m;
}

void encode_pref_advert(Writer& w, const PrefAdvert& m) {
  w.put_u8(m.reassignment ? 1 : 0);
  w.put_varint(m.flows.size());
  for (const auto& f : m.flows) {
    w.put_varint(f.flow_id);
    w.put_varint(f.pref_of_candidate.size());
    for (std::int32_t p : f.pref_of_candidate) w.put_signed(p);
  }
}

PrefAdvert decode_pref_advert(Reader& r) {
  PrefAdvert m;
  m.reassignment = r.get_u8() != 0;
  const std::uint64_t n = r.get_varint();
  if (n > kMaxListSize) return m;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    PrefAdvert::Item item;
    item.flow_id = static_cast<std::uint32_t>(r.get_varint());
    const std::uint64_t k = r.get_varint();
    if (k > kMaxListSize) break;
    for (std::uint64_t j = 0; j < k && r.ok(); ++j)
      item.pref_of_candidate.push_back(static_cast<std::int32_t>(r.get_signed()));
    m.flows.push_back(std::move(item));
  }
  return m;
}

}  // namespace

Frame encode_message(const Message& message) {
  Frame frame;
  Writer w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Hello>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kHello);
          encode_hello(w, m);
        } else if constexpr (std::is_same_v<T, Candidates>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kCandidates);
          encode_candidates(w, m);
        } else if constexpr (std::is_same_v<T, FlowAnnounce>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kFlowAnnounce);
          encode_flow_announce(w, m);
        } else if constexpr (std::is_same_v<T, PrefAdvert>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kPrefAdvert);
          encode_pref_advert(w, m);
        } else if constexpr (std::is_same_v<T, Propose>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kPropose);
          w.put_varint(m.seq);
          w.put_varint(m.flow_id);
          w.put_varint(m.interconnection_id);
        } else if constexpr (std::is_same_v<T, Response>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kResponse);
          w.put_varint(m.seq);
          w.put_u8(m.accepted ? 1 : 0);
        } else if constexpr (std::is_same_v<T, Stop>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kStop);
          w.put_u8(m.reason);
        } else if constexpr (std::is_same_v<T, Bye>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kBye);
        } else if constexpr (std::is_same_v<T, Rollback>) {
          frame.type = static_cast<std::uint8_t>(MessageType::kRollback);
          w.put_varint(m.flow_ids.size());
          for (std::uint32_t id : m.flow_ids) w.put_varint(id);
        }
      },
      message);
  frame.payload = std::move(w).take();
  return frame;
}

util::Result<Message> decode_message(const Frame& frame) {
  Reader r(frame.payload);
  Message out;
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kHello:
      out = decode_hello(r);
      break;
    case MessageType::kCandidates:
      out = decode_candidates(r);
      break;
    case MessageType::kFlowAnnounce:
      out = decode_flow_announce(r);
      break;
    case MessageType::kPrefAdvert:
      out = decode_pref_advert(r);
      break;
    case MessageType::kPropose: {
      Propose m;
      m.seq = static_cast<std::uint32_t>(r.get_varint());
      m.flow_id = static_cast<std::uint32_t>(r.get_varint());
      m.interconnection_id = static_cast<std::uint32_t>(r.get_varint());
      out = m;
      break;
    }
    case MessageType::kResponse: {
      Response m;
      m.seq = static_cast<std::uint32_t>(r.get_varint());
      m.accepted = r.get_u8() != 0;
      out = m;
      break;
    }
    case MessageType::kStop: {
      Stop m;
      m.reason = r.get_u8();
      out = m;
      break;
    }
    case MessageType::kBye:
      out = Bye{};
      break;
    case MessageType::kRollback: {
      Rollback m;
      const std::uint64_t n = r.get_varint();
      if (n <= kMaxListSize) {
        for (std::uint64_t i = 0; i < n && r.ok(); ++i)
          m.flow_ids.push_back(static_cast<std::uint32_t>(r.get_varint()));
      }
      out = std::move(m);
      break;
    }
    default:
      return util::make_error("unknown message type " +
                              std::to_string(frame.type));
  }
  if (!r.at_end())
    return util::make_error("malformed payload for message type " +
                            std::to_string(frame.type));
  return out;
}

}  // namespace nexit::proto
