#include "proto/frame.hpp"

#include <algorithm>

#include "proto/crc32.hpp"

namespace nexit::proto {

namespace {
constexpr std::size_t kHeaderSize = 2 + 1 + 1 + 4;  // magic, version, type, len
constexpr std::size_t kTrailerSize = 4;             // crc32
}  // namespace

Bytes encode_frame(const Frame& frame) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(kFrameMagic >> 8));
  w.put_u8(static_cast<std::uint8_t>(kFrameMagic & 0xff));
  w.put_u8(kProtocolVersion);
  w.put_u8(frame.type);
  w.put_u32_fixed(static_cast<std::uint32_t>(frame.payload.size()));
  Bytes out = std::move(w).take();
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  const std::uint32_t crc = crc32(out.data(), out.size());
  Writer trailer;
  trailer.put_u32_fixed(crc);
  const Bytes& t = trailer.data();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

void FrameDecoder::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buffer_.clear();
}

std::optional<Frame> FrameDecoder::next() {
  if (failed_ || buffer_.size() < kHeaderSize) return std::nullopt;

  // Peek the header without consuming.
  std::uint8_t header[kHeaderSize];
  std::copy_n(buffer_.begin(), kHeaderSize, header);
  const std::uint16_t magic =
      static_cast<std::uint16_t>((header[0] << 8) | header[1]);
  if (magic != kFrameMagic) {
    fail("bad magic");
    return std::nullopt;
  }
  if (header[2] != kProtocolVersion) {
    fail("unsupported protocol version");
    return std::nullopt;
  }
  const std::uint8_t type = header[3];
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[4]) |
      (static_cast<std::uint32_t>(header[5]) << 8) |
      (static_cast<std::uint32_t>(header[6]) << 16) |
      (static_cast<std::uint32_t>(header[7]) << 24);
  if (length > kMaxPayload) {
    fail("payload too large");
    return std::nullopt;
  }
  const std::size_t total = kHeaderSize + length + kTrailerSize;
  if (buffer_.size() < total) return std::nullopt;  // need more bytes

  Bytes whole(total);
  std::copy_n(buffer_.begin(), total, whole.begin());
  const std::uint32_t expected_crc =
      static_cast<std::uint32_t>(whole[total - 4]) |
      (static_cast<std::uint32_t>(whole[total - 3]) << 8) |
      (static_cast<std::uint32_t>(whole[total - 2]) << 16) |
      (static_cast<std::uint32_t>(whole[total - 1]) << 24);
  const std::uint32_t actual_crc = crc32(whole.data(), total - kTrailerSize);
  if (expected_crc != actual_crc) {
    fail("crc mismatch");
    return std::nullopt;
  }

  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  Frame f;
  f.type = type;
  f.payload.assign(whole.begin() + kHeaderSize,
                   whole.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + length));
  return f;
}

}  // namespace nexit::proto
