#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "proto/frame.hpp"
#include "util/result.hpp"

namespace nexit::proto {

/// Message types of the Nexit negotiation protocol (§4 made concrete).
/// Session flow:
///   HELLO both ways (parameter agreement) ->
///   CANDIDATES both ways (interconnections on the table) ->
///   FLOW_ANNOUNCE both ways (the flows; §6 uses prefix signatures) ->
///   PREF_ADVERT both ways ->
///   rounds of PROPOSE/RESPONSE, PREF_ADVERT(reassignment=true) in between ->
///   STOP -> BYE.
enum class MessageType : std::uint8_t {
  kHello = 1,
  kCandidates = 2,
  kFlowAnnounce = 3,
  kPrefAdvert = 4,
  kPropose = 5,
  kResponse = 6,
  kStop = 7,
  kBye = 8,
  kRollback = 9,
};

/// Session parameters; both sides must advertise identical values for the
/// contractual fields (range, policies, quantum, seed) or the session fails.
struct Hello {
  std::uint32_t asn = 0;
  std::int32_t pref_range = 10;
  bool wants_reassignment = false;
  double reassign_fraction = 0.0;
  std::uint8_t turn_policy = 0;
  std::uint8_t proposal_policy = 0;
  std::uint8_t acceptance_policy = 0;
  std::uint8_t termination_policy = 0;
  bool settlement_rollback = true;

  friend bool operator==(const Hello&, const Hello&) = default;
};

struct Candidates {
  std::vector<std::uint32_t> interconnection_ids;
  friend bool operator==(const Candidates&, const Candidates&) = default;
};

struct FlowAnnounce {
  struct Item {
    std::uint32_t flow_id = 0;
    std::uint32_t default_interconnection = 0;
    double size = 0.0;
    friend bool operator==(const Item&, const Item&) = default;
  };
  std::vector<Item> flows;
  friend bool operator==(const FlowAnnounce&, const FlowAnnounce&) = default;
};

struct PrefAdvert {
  bool reassignment = false;  // true when updating mid-session
  struct Item {
    std::uint32_t flow_id = 0;
    std::vector<std::int32_t> pref_of_candidate;
    friend bool operator==(const Item&, const Item&) = default;
  };
  std::vector<Item> flows;
  friend bool operator==(const PrefAdvert&, const PrefAdvert&) = default;
};

struct Propose {
  std::uint32_t seq = 0;
  std::uint32_t flow_id = 0;
  std::uint32_t interconnection_id = 0;
  friend bool operator==(const Propose&, const Propose&) = default;
};

struct Response {
  std::uint32_t seq = 0;
  bool accepted = true;
  friend bool operator==(const Response&, const Response&) = default;
};

struct Stop {
  std::uint8_t reason = 0;  // mirrors core::StopReason
  friend bool operator==(const Stop&, const Stop&) = default;
};

struct Bye {
  friend bool operator==(const Bye&, const Bye&) = default;
};

/// §6 settlement: the sender has returned these flows to their defaults,
/// rolling back compromises it made. Sides alternate (possibly empty) lists
/// after STOP until two consecutive empties, then BYE.
struct Rollback {
  std::vector<std::uint32_t> flow_ids;
  friend bool operator==(const Rollback&, const Rollback&) = default;
};

using Message = std::variant<Hello, Candidates, FlowAnnounce, PrefAdvert,
                             Propose, Response, Stop, Bye, Rollback>;

/// Serialises a message into a frame (type byte + payload).
Frame encode_message(const Message& message);

/// Parses a frame back into a message; malformed payloads are an error, not
/// an exception (remote input is untrusted).
util::Result<Message> decode_message(const Frame& frame);

}  // namespace nexit::proto
