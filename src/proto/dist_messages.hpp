#pragma once

// Messages of the distributed-execution protocol (coordinator <->
// nexit_workerd, src/dist). They ride the same magic/version/CRC frame
// layer as the negotiation protocol but occupy a disjoint type-byte space
// (>= 16), so a frame can never be mistaken for a negotiation message even
// if a worker socket were cross-wired into a session.
//
// Flow, per worker connection:
//   worker  -> DistHello   (protocol + build sanity check, sent on accept)
//   coord   -> DistJob     (one serialized spec shard; job ids are the
//                           coordinator's odometer-order point indices)
//   worker  -> DistResult  (exit code, point digest, serialized metric
//                           entries, obs snapshot)
//   ... more DistJob/DistResult rounds ...
//   coord   -> DistShutdown (worker drains and exits 0)
//
// DistResult ships the JSON *metric entries pre-serialized* (the worker
// runs the same util::JsonReport value formatter the in-process run uses),
// and the obs counters/histograms structurally. Both choices serve the
// bit-identity contract: the coordinator splices metric strings verbatim
// and re-runs the identical obs-section emitter, so a distributed record
// is byte-for-byte the in-process record.

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "proto/frame.hpp"
#include "util/result.hpp"

namespace nexit::proto {

/// Type bytes of the distributed protocol; MessageType (negotiation) owns
/// 1..9, this enum owns 16+.
enum class DistMessageType : std::uint8_t {
  kDistHello = 16,
  kDistJob = 17,
  kDistResult = 18,
  kDistShutdown = 19,
};

/// Version of the dist payload schema, independent of the frame-layer
/// kProtocolVersion: a coordinator refuses a worker built from a different
/// schema instead of mis-decoding its results.
inline constexpr std::uint32_t kDistProtocolVersion = 1;

struct DistHello {
  std::uint32_t protocol = kDistProtocolVersion;
  friend bool operator==(const DistHello&, const DistHello&) = default;
};

/// One shard: a fully merged+serialized sim::ExperimentSpec (spec-file
/// text, every key spelled out, dist.* keys reset so a worker can never
/// recursively distribute) plus the preset whose run function interprets it.
struct DistJob {
  std::uint32_t job = 0;  // coordinator's point index, echoed in the result
  std::string scenario;
  std::string label;      // human point label for worker-side logs
  std::string spec_text;
  friend bool operator==(const DistJob&, const DistJob&) = default;
};

struct DistObsHistogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Sparse (bucket index, count) pairs — most of the 65 magnitude buckets
  /// are empty.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  friend bool operator==(const DistObsHistogram&,
                         const DistObsHistogram&) = default;
};

struct DistResult {
  std::uint32_t job = 0;
  std::int32_t rc = 0;     // the run function's exit code; 0 = success
  std::uint64_t digest = 0;
  std::string error;       // non-empty iff rc != 0
  /// (name, already-serialized JSON value) metric entries in record order.
  std::vector<std::pair<std::string, std::string>> metrics;
  /// The obs::Registry snapshot after the point ran, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<DistObsHistogram> histograms;
  friend bool operator==(const DistResult&, const DistResult&) = default;
};

struct DistShutdown {
  friend bool operator==(const DistShutdown&, const DistShutdown&) = default;
};

using DistMessage =
    std::variant<DistHello, DistJob, DistResult, DistShutdown>;

/// Serialises a dist message into a frame (type byte + payload).
Frame encode_dist_message(const DistMessage& message);

/// Parses a frame back into a dist message; malformed payloads (including
/// negotiation-protocol type bytes) are an error, not an exception — a
/// worker socket carries untrusted remote input.
util::Result<DistMessage> decode_dist_message(const Frame& frame);

}  // namespace nexit::proto
