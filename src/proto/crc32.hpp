#pragma once

#include <cstddef>
#include <cstdint>

namespace nexit::proto {

/// IEEE 802.3 CRC-32 (the zlib polynomial), table-driven.
/// Frames carry it as a trailer so corrupted input is rejected instead of
/// parsed (tests inject corruption through the fault channel).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

}  // namespace nexit::proto
