#pragma once

// Durable-session records (runtime/snapshot): a session checkpoint written
// at every attempt boundary plus a write-ahead log of the scheduling events
// applied since. They ride the same magic/version/CRC frame layer as the
// negotiation protocol but occupy a disjoint type-byte space (>= 24;
// negotiation owns 1..9, dist owns 16..19), so a stored log can never be
// mistaken for live wire traffic even if a file were fed into a session.
//
// Restore = decode the checkpoint, rebuild the attempt through the
// session's deterministic ChannelFactory, then replay the WAL tail. Every
// WAL record carries the session state observed when the record was made
// durable (write-ahead: the record exists before its event runs), and
// replay verifies those marks field by field — a log that does not
// reproduce bit-identical state fails restore cleanly instead of resuming
// as wrong data.

#include <cstdint>
#include <string>
#include <vector>

#include "proto/frame.hpp"
#include "util/result.hpp"

namespace nexit::proto {

/// Type bytes of the durability records; MessageType (negotiation) owns
/// 1..9, DistMessageType owns 16..19, this enum owns 24+.
enum class SnapshotMessageType : std::uint8_t {
  kSnapshotCheckpoint = 24,
  kSnapshotWalEvent = 25,
};

/// Version of the snapshot payload schema, independent of the frame-layer
/// kProtocolVersion (the kDistProtocolVersion pattern): a build refuses to
/// restore a log written by a different schema instead of mis-decoding it.
/// Bump consciously on any field change and regenerate
/// tests/fixtures/session_snapshot_v1.bin (see tests/snapshot_test.cpp).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Session state at an attempt boundary (start, retry, planned restart).
/// All ticks are session-local virtual time (runtime/session.hpp excises
/// kill->resume downtime through a tick offset), so stored values equal an
/// uninterrupted run's bookkeeping exactly. `attempts` doubles as the RNG
/// stream position: the channel factory reseeds fault streams from the
/// 0-based attempt index `attempts - 1`, which is all replay needs to
/// rebuild identical transports.
struct SnapshotCheckpoint {
  std::uint32_t version = kSnapshotVersion;
  std::uint32_t session = 0;
  std::uint8_t status = 0;         // runtime::SessionStatus, always kRunning
  std::uint32_t attempts = 0;      // attempts begun, including this one
  std::uint32_t retries_used = 0;  // retry budget consumed so far
  std::uint64_t steps = 0;         // pump steps before this attempt
  std::uint64_t messages = 0;      // frames offered before this attempt
  std::uint64_t timeouts = 0;      // deadline expiries before this attempt
  std::uint64_t started_at = 0;
  std::uint64_t attempt_began = 0;
  friend bool operator==(const SnapshotCheckpoint&,
                         const SnapshotCheckpoint&) = default;
};

/// The live negotiation state a replayed prefix must land on before the
/// next WAL record applies: FSM states, round, side A's tentative
/// assignment, accumulated gains, and the un-evaluated pending delta.
/// Zeroed while no attempt is live.
struct SnapshotNegotiationMark {
  std::uint8_t live = 0;     // 1 when an attempt (agent pair) exists
  std::uint8_t state_a = 0;  // agent::AgentState
  std::uint8_t state_b = 0;
  std::uint64_t round = 0;
  std::uint64_t remaining = 0;         // flows still on the table (side A)
  std::int64_t disclosed_gain_a = 0;   // from disclosed preference lists
  std::int64_t disclosed_gain_b = 0;
  double true_gain_a = 0.0;            // side A's accumulated private gain
  std::uint64_t pending_moves = 0;     // side A's un-evaluated delta
  std::uint64_t pending_settles = 0;
  std::vector<std::uint64_t> assignment;  // side A's tentative ix per flow
  friend bool operator==(const SnapshotNegotiationMark&,
                         const SnapshotNegotiationMark&) = default;
};

enum class WalEventKind : std::uint8_t {
  kPump = 0,      // the manager pumped the session
  kDeadline = 1,  // a deadline expiry acted (timeout consumed)
  kCancel = 2,    // scenario cancellation (terminal)
  kKill = 3,      // process death; `tick` pins the session-local kill time
};

/// One write-ahead record: the event about to run plus the session state
/// observed at write time (pre-state). A retry or restart supersedes the
/// log with a fresh checkpoint, so a WAL tail always replays within one
/// attempt's transports.
struct SnapshotWalEvent {
  std::uint8_t kind = 0;   // WalEventKind
  std::uint64_t tick = 0;  // session-local virtual time of the event
  std::uint8_t pre_status = 0;  // runtime::SessionStatus before the event
  std::uint32_t pre_attempts = 0;
  std::uint32_t pre_retries = 0;
  std::uint64_t pre_steps = 0;
  std::uint64_t pre_messages = 0;
  std::uint64_t pre_timeouts = 0;
  SnapshotNegotiationMark mark;
  std::string note;  // cancel reason (kCancel only)
  friend bool operator==(const SnapshotWalEvent&,
                         const SnapshotWalEvent&) = default;
};

Frame encode_snapshot_checkpoint(const SnapshotCheckpoint& cp);
Frame encode_snapshot_wal_event(const SnapshotWalEvent& ev);

/// Decode failures are errors, not exceptions — a stored log is untrusted
/// input. A schema mismatch is reported with the distinguished
/// "snapshot version mismatch" prefix so restore can refuse loudly instead
/// of silently renegotiating (kSnapshotVersion bumps must be conscious).
util::Result<SnapshotCheckpoint> decode_snapshot_checkpoint(
    const Frame& frame);
util::Result<SnapshotWalEvent> decode_snapshot_wal_event(const Frame& frame);

}  // namespace nexit::proto
