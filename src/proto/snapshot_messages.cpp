#include "proto/snapshot_messages.hpp"

namespace nexit::proto {

namespace {

/// A mark's assignment has one entry per negotiated flow; anything larger
/// than the blob cap is garbage, refuse before allocating.
constexpr std::size_t kMaxAssignment = 1u << 20;

void encode_mark(Writer& w, const SnapshotNegotiationMark& m) {
  w.put_u8(m.live);
  w.put_u8(m.state_a);
  w.put_u8(m.state_b);
  w.put_varint(m.round);
  w.put_varint(m.remaining);
  w.put_signed(m.disclosed_gain_a);
  w.put_signed(m.disclosed_gain_b);
  w.put_double(m.true_gain_a);
  w.put_varint(m.pending_moves);
  w.put_varint(m.pending_settles);
  w.put_varint(m.assignment.size());
  for (std::uint64_t ix : m.assignment) w.put_varint(ix);
}

SnapshotNegotiationMark decode_mark(Reader& r) {
  SnapshotNegotiationMark m;
  m.live = r.get_u8();
  m.state_a = r.get_u8();
  m.state_b = r.get_u8();
  m.round = r.get_varint();
  m.remaining = r.get_varint();
  m.disclosed_gain_a = r.get_signed();
  m.disclosed_gain_b = r.get_signed();
  m.true_gain_a = r.get_double();
  m.pending_moves = r.get_varint();
  m.pending_settles = r.get_varint();
  const std::uint64_t flows = r.get_varint();
  if (flows > kMaxAssignment) {
    // A length this large is garbage. Latch the reader's error before
    // returning — with a short tail the remaining fields could otherwise
    // parse cleanly and the record would decode as a *different* valid
    // event (empty assignment), which restore must never see.
    while (r.ok()) (void)r.get_u8();  // the read past the end latches !ok()
    return m;
  }
  m.assignment.reserve(r.ok() ? static_cast<std::size_t>(flows) : 0);
  for (std::uint64_t i = 0; i < flows && r.ok(); ++i)
    m.assignment.push_back(r.get_varint());
  return m;
}

}  // namespace

Frame encode_snapshot_checkpoint(const SnapshotCheckpoint& cp) {
  Frame frame;
  frame.type =
      static_cast<std::uint8_t>(SnapshotMessageType::kSnapshotCheckpoint);
  Writer w;
  w.put_varint(cp.version);  // first field, so a mismatch is detectable
                             // before any schema-dependent decoding
  w.put_varint(cp.session);
  w.put_u8(cp.status);
  w.put_varint(cp.attempts);
  w.put_varint(cp.retries_used);
  w.put_varint(cp.steps);
  w.put_varint(cp.messages);
  w.put_varint(cp.timeouts);
  w.put_varint(cp.started_at);
  w.put_varint(cp.attempt_began);
  frame.payload = std::move(w).take();
  return frame;
}

Frame encode_snapshot_wal_event(const SnapshotWalEvent& ev) {
  Frame frame;
  frame.type =
      static_cast<std::uint8_t>(SnapshotMessageType::kSnapshotWalEvent);
  Writer w;
  w.put_u8(ev.kind);
  w.put_varint(ev.tick);
  w.put_u8(ev.pre_status);
  w.put_varint(ev.pre_attempts);
  w.put_varint(ev.pre_retries);
  w.put_varint(ev.pre_steps);
  w.put_varint(ev.pre_messages);
  w.put_varint(ev.pre_timeouts);
  encode_mark(w, ev.mark);
  w.put_string(ev.note);
  frame.payload = std::move(w).take();
  return frame;
}

util::Result<SnapshotCheckpoint> decode_snapshot_checkpoint(
    const Frame& frame) {
  if (frame.type !=
      static_cast<std::uint8_t>(SnapshotMessageType::kSnapshotCheckpoint))
    return util::make_error("snapshot: frame type " +
                            std::to_string(frame.type) +
                            " is not a checkpoint");
  Reader r(frame.payload);
  SnapshotCheckpoint cp;
  cp.version = static_cast<std::uint32_t>(r.get_varint());
  if (r.ok() && cp.version != kSnapshotVersion)
    return util::make_error(
        "snapshot version mismatch: log was written by schema v" +
        std::to_string(cp.version) + ", this build speaks v" +
        std::to_string(kSnapshotVersion) +
        " (bump kSnapshotVersion consciously and regenerate fixtures)");
  cp.session = static_cast<std::uint32_t>(r.get_varint());
  cp.status = r.get_u8();
  cp.attempts = static_cast<std::uint32_t>(r.get_varint());
  cp.retries_used = static_cast<std::uint32_t>(r.get_varint());
  cp.steps = r.get_varint();
  cp.messages = r.get_varint();
  cp.timeouts = r.get_varint();
  cp.started_at = r.get_varint();
  cp.attempt_began = r.get_varint();
  if (!r.at_end())
    return util::make_error("snapshot: malformed checkpoint payload");
  return cp;
}

util::Result<SnapshotWalEvent> decode_snapshot_wal_event(const Frame& frame) {
  if (frame.type !=
      static_cast<std::uint8_t>(SnapshotMessageType::kSnapshotWalEvent))
    return util::make_error("snapshot: frame type " +
                            std::to_string(frame.type) +
                            " is not a WAL event");
  Reader r(frame.payload);
  SnapshotWalEvent ev;
  ev.kind = r.get_u8();
  ev.tick = r.get_varint();
  ev.pre_status = r.get_u8();
  ev.pre_attempts = static_cast<std::uint32_t>(r.get_varint());
  ev.pre_retries = static_cast<std::uint32_t>(r.get_varint());
  ev.pre_steps = r.get_varint();
  ev.pre_messages = r.get_varint();
  ev.pre_timeouts = r.get_varint();
  ev.mark = decode_mark(r);
  ev.note = r.get_string();
  if (!r.at_end())
    return util::make_error("snapshot: malformed WAL event payload");
  if (ev.kind > static_cast<std::uint8_t>(WalEventKind::kKill))
    return util::make_error("snapshot: unknown WAL event kind " +
                            std::to_string(ev.kind));
  return ev;
}

}  // namespace nexit::proto
