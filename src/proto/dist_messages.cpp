#include "proto/dist_messages.hpp"

namespace nexit::proto {

namespace {

constexpr std::size_t kMaxListSize = 1u << 20;

void encode_hello(Writer& w, const DistHello& m) { w.put_varint(m.protocol); }

DistHello decode_hello(Reader& r) {
  DistHello m;
  m.protocol = static_cast<std::uint32_t>(r.get_varint());
  return m;
}

void encode_job(Writer& w, const DistJob& m) {
  w.put_varint(m.job);
  w.put_string(m.scenario);
  w.put_string(m.label);
  w.put_string(m.spec_text);
}

DistJob decode_job(Reader& r) {
  DistJob m;
  m.job = static_cast<std::uint32_t>(r.get_varint());
  m.scenario = r.get_string();
  m.label = r.get_string();
  m.spec_text = r.get_string();
  return m;
}

void encode_result(Writer& w, const DistResult& m) {
  w.put_varint(m.job);
  w.put_signed(m.rc);
  w.put_varint(m.digest);
  w.put_string(m.error);
  w.put_varint(m.metrics.size());
  for (const auto& [name, value] : m.metrics) {
    w.put_string(name);
    w.put_string(value);
  }
  w.put_varint(m.counters.size());
  for (const auto& [name, value] : m.counters) {
    w.put_string(name);
    w.put_varint(value);
  }
  w.put_varint(m.histograms.size());
  for (const DistObsHistogram& h : m.histograms) {
    w.put_string(h.name);
    w.put_varint(h.count);
    w.put_varint(h.sum);
    w.put_varint(h.buckets.size());
    for (const auto& [bucket, count] : h.buckets) {
      w.put_varint(bucket);
      w.put_varint(count);
    }
  }
}

DistResult decode_result(Reader& r) {
  DistResult m;
  m.job = static_cast<std::uint32_t>(r.get_varint());
  m.rc = static_cast<std::int32_t>(r.get_signed());
  m.digest = r.get_varint();
  m.error = r.get_string();
  const std::uint64_t metrics = r.get_varint();
  if (metrics > kMaxListSize) return m;  // poisoned by under-read below
  for (std::uint64_t i = 0; i < metrics && r.ok(); ++i) {
    std::string name = r.get_string();
    std::string value = r.get_string();
    m.metrics.emplace_back(std::move(name), std::move(value));
  }
  const std::uint64_t counters = r.get_varint();
  if (counters > kMaxListSize) return m;
  for (std::uint64_t i = 0; i < counters && r.ok(); ++i) {
    std::string name = r.get_string();
    const std::uint64_t value = r.get_varint();
    m.counters.emplace_back(std::move(name), value);
  }
  const std::uint64_t histograms = r.get_varint();
  if (histograms > kMaxListSize) return m;
  for (std::uint64_t i = 0; i < histograms && r.ok(); ++i) {
    DistObsHistogram h;
    h.name = r.get_string();
    h.count = r.get_varint();
    h.sum = r.get_varint();
    const std::uint64_t buckets = r.get_varint();
    if (buckets > kMaxListSize) break;
    for (std::uint64_t j = 0; j < buckets && r.ok(); ++j) {
      const auto bucket = static_cast<std::uint32_t>(r.get_varint());
      const std::uint64_t count = r.get_varint();
      h.buckets.emplace_back(bucket, count);
    }
    m.histograms.push_back(std::move(h));
  }
  return m;
}

}  // namespace

Frame encode_dist_message(const DistMessage& message) {
  Frame frame;
  Writer w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, DistHello>) {
          frame.type = static_cast<std::uint8_t>(DistMessageType::kDistHello);
          encode_hello(w, m);
        } else if constexpr (std::is_same_v<T, DistJob>) {
          frame.type = static_cast<std::uint8_t>(DistMessageType::kDistJob);
          encode_job(w, m);
        } else if constexpr (std::is_same_v<T, DistResult>) {
          frame.type = static_cast<std::uint8_t>(DistMessageType::kDistResult);
          encode_result(w, m);
        } else {
          static_assert(std::is_same_v<T, DistShutdown>);
          frame.type =
              static_cast<std::uint8_t>(DistMessageType::kDistShutdown);
        }
      },
      message);
  frame.payload = std::move(w).take();
  return frame;
}

util::Result<DistMessage> decode_dist_message(const Frame& frame) {
  Reader r(frame.payload);
  DistMessage message;
  switch (static_cast<DistMessageType>(frame.type)) {
    case DistMessageType::kDistHello:
      message = decode_hello(r);
      break;
    case DistMessageType::kDistJob:
      message = decode_job(r);
      break;
    case DistMessageType::kDistResult:
      message = decode_result(r);
      break;
    case DistMessageType::kDistShutdown:
      message = DistShutdown{};
      break;
    default:
      return util::make_error("unknown dist message type " +
                              std::to_string(frame.type));
  }
  if (!r.at_end()) {
    return util::make_error("malformed dist message payload (type " +
                            std::to_string(frame.type) + ")");
  }
  return message;
}

}  // namespace nexit::proto
