#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "proto/wire.hpp"
#include "util/result.hpp"

namespace nexit::proto {

/// Frame layout on the byte stream:
///   magic   u16   0x4e58 ("NX")
///   version u8
///   type    u8
///   length  u32   payload byte count (little-endian)
///   payload length bytes
///   crc32   u32   over magic..payload
struct Frame {
  std::uint8_t type = 0;
  Bytes payload;
};

inline constexpr std::uint16_t kFrameMagic = 0x4e58;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kMaxPayload = 4u << 20;

/// Serialises one frame.
Bytes encode_frame(const Frame& frame);

/// Incremental frame decoder: feed arbitrary byte chunks, pop complete
/// frames. Any malformed header or CRC mismatch poisons the stream (the
/// session must be torn down — resynchronising a corrupted negotiation
/// stream is not safe, misinterpreted preferences corrupt routing).
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const Bytes& b) { feed(b.data(), b.size()); }

  /// Next complete frame, if any. Returns nullopt when more bytes are
  /// needed or the stream is poisoned (check error()).
  std::optional<Frame> next();

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why);

  std::deque<std::uint8_t> buffer_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace nexit::proto
