#include "proto/wire.hpp"

#include <cstring>

namespace nexit::proto {

void Writer::put_u8(std::uint8_t v) { data_.push_back(v); }

void Writer::put_u32_fixed(std::uint32_t v) {
  data_.push_back(static_cast<std::uint8_t>(v & 0xff));
  data_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  data_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  data_.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void Writer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    data_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  data_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::put_signed(std::int64_t v) {
  // Zig-zag: small magnitudes (positive or negative) stay small on the wire.
  put_varint((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
}

void Writer::put_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i)
    data_.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xff));
}

void Writer::put_string(const std::string& s) {
  put_varint(s.size());
  data_.insert(data_.end(), s.begin(), s.end());
}

void Writer::put_bytes(const Bytes& b) {
  put_varint(b.size());
  data_.insert(data_.end(), b.begin(), b.end());
}

bool Reader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::get_u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint32_t Reader::get_u32_fixed() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (!take(1)) return 0;
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e))) {
      ok_ = false;  // overflow
      return 0;
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t Reader::get_signed() {
  const std::uint64_t z = get_varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double Reader::get_double() {
  if (!take(8)) return 0.0;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::get_string() {
  const std::uint64_t n = get_varint();
  if (!ok_ || n > kMaxBlob || !take(static_cast<std::size_t>(n))) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

Bytes Reader::get_bytes() {
  const std::uint64_t n = get_varint();
  if (!ok_ || n > kMaxBlob || !take(static_cast<std::size_t>(n))) {
    ok_ = false;
    return {};
  }
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += static_cast<std::size_t>(n);
  return b;
}

}  // namespace nexit::proto
