#include "core/oracle_registry.hpp"

#include <stdexcept>

#include "core/cheating.hpp"
#include "core/oracles.hpp"

namespace nexit::core {

namespace {

constexpr const char* kCheatPrefix = "cheat:";

const routing::LoadMap& require_capacities(const OracleBuildInputs& in,
                                           const char* name) {
  if (in.capacities == nullptr) {
    throw std::invalid_argument(std::string("oracle '") + name +
                                "' needs link capacities, but the experiment "
                                "provides none (distance experiments compute "
                                "no capacity model)");
  }
  return *in.capacities;
}

}  // namespace

std::string OracleSpec::to_string() const {
  return cheat ? kCheatPrefix + name : name;
}

OracleSpec OracleSpec::parse(const std::string& text) {
  OracleSpec spec;
  const std::string prefix = kCheatPrefix;
  if (text.rfind(prefix, 0) == 0) {
    spec.cheat = true;
    spec.name = text.substr(prefix.size());
  } else {
    spec.name = text;
  }
  return spec;
}

const OracleRegistry& OracleRegistry::global() {
  static const OracleRegistry registry = [] {
    OracleRegistry r;
    r.entries_["distance"] = {
        "geographic km inside the ISP's own network (§5.1)", false,
        [](const OracleBuildInputs& in) -> std::unique_ptr<PreferenceOracle> {
          return std::make_unique<DistanceOracle>(in.side, in.preferences);
        }};
    r.entries_["bandwidth"] = {
        "max link-load increase / capacity (MEL, §5.2; open flows counted "
        "at their tentative interconnection)",
        true,
        [](const OracleBuildInputs& in) -> std::unique_ptr<PreferenceOracle> {
          return std::make_unique<BandwidthOracle>(
              in.side, in.preferences, require_capacities(in, "bandwidth"),
              OpenFlowModel::kAtTentative);
        }};
    r.entries_["bandwidth-excluded"] = {
        "MEL with the Fig. 3 independence model (open flows invisible)", true,
        [](const OracleBuildInputs& in) -> std::unique_ptr<PreferenceOracle> {
          return std::make_unique<BandwidthOracle>(
              in.side, in.preferences,
              require_capacities(in, "bandwidth-excluded"),
              OpenFlowModel::kExcluded);
        }};
    r.entries_["piecewise"] = {
        "Fortz-Thorup piecewise-linear link cost (§5.2 alternate metric)",
        true,
        [](const OracleBuildInputs& in) -> std::unique_ptr<PreferenceOracle> {
          return std::make_unique<PiecewiseCostOracle>(
              in.side, in.preferences, require_capacities(in, "piecewise"));
        }};
    return r;
  }();
  return registry;
}

const OracleRegistry::Entry* OracleRegistry::find(
    const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> OracleRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

BuiltOracle OracleRegistry::build(const OracleSpec& spec,
                                  const OracleBuildInputs& in) const {
  const Entry* entry = find(spec.name);
  if (entry == nullptr) {
    std::string msg = "unknown oracle '" + spec.name + "'; registered:";
    for (const std::string& name : names()) msg += " " + name;
    throw std::invalid_argument(msg);
  }
  std::unique_ptr<PreferenceOracle> truthful = entry->make(in);
  std::unique_ptr<PreferenceOracle> cheat;
  if (spec.cheat) {
    cheat = std::make_unique<CheatingOracle>(*truthful, in.preferences.range);
  }
  return BuiltOracle(std::move(truthful), std::move(cheat));
}

}  // namespace nexit::core
