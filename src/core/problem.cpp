#include "core/problem.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace nexit::core {

std::size_t NegotiationProblem::default_candidate(std::size_t pos) const {
  const std::size_t ix = default_ix(pos);
  const auto it = std::find(candidates.begin(), candidates.end(), ix);
  if (it == candidates.end())
    throw std::logic_error("NegotiationProblem: default not in candidates");
  return static_cast<std::size_t>(it - candidates.begin());
}

double NegotiationProblem::negotiable_volume() const {
  double v = 0.0;
  for (std::size_t pos = 0; pos < negotiable.size(); ++pos)
    // nexit-lint: allow(float-accumulate): negotiable-position order is the
    // canonical volume order, shared with the engine's reassignment quantum
    for (std::size_t m : members_of(pos)) v += (*flows)[m].size;
  return v;
}

void NegotiationProblem::validate() const {
  if (!group_members.empty() && group_members.size() != negotiable.size())
    throw std::invalid_argument("NegotiationProblem: group_members size");
  if (routing == nullptr || flows == nullptr)
    throw std::invalid_argument("NegotiationProblem: null routing/flows");
  if (default_assignment.ix_of_flow.size() != flows->size())
    throw std::invalid_argument("NegotiationProblem: default assignment size");
  if (candidates.empty())
    throw std::invalid_argument("NegotiationProblem: no candidates");
  const std::size_t n_ix = routing->pair().interconnection_count();
  for (std::size_t c : candidates)
    if (c >= n_ix)
      throw std::invalid_argument("NegotiationProblem: candidate out of range");
  for (std::size_t i : negotiable) {
    if (i >= flows->size())
      throw std::invalid_argument("NegotiationProblem: negotiable out of range");
    if (std::find(candidates.begin(), candidates.end(),
                  default_assignment.ix_of_flow[i]) == candidates.end())
      throw std::invalid_argument(
          "NegotiationProblem: negotiable flow's default not in candidates");
  }
}

NegotiationProblem make_distance_problem(const routing::PairRouting& routing,
                                         const std::vector<traffic::Flow>& flows,
                                         std::vector<std::size_t> candidates) {
  NegotiationProblem p;
  p.routing = &routing;
  p.flows = &flows;
  p.candidates = std::move(candidates);
  p.default_assignment = routing::assign_early_exit(routing, flows, p.candidates);
  p.negotiable.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) p.negotiable[i] = i;
  p.validate();
  return p;
}

NegotiationProblem make_destination_problem(
    const routing::PairRouting& routing,
    const std::vector<traffic::Flow>& flows,
    std::vector<std::size_t> candidates) {
  NegotiationProblem p;
  p.routing = &routing;
  p.flows = &flows;
  p.candidates = std::move(candidates);
  p.default_assignment.ix_of_flow.assign(flows.size(), 0);

  // Group by (direction, destination PoP).
  std::map<std::pair<int, std::int32_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < flows.size(); ++i)
    groups[{static_cast<int>(flows[i].direction), flows[i].dst.value()}]
        .push_back(i);

  for (auto& [key, members] : groups) {
    (void)key;
    // Dominant ingress: the largest member's early exit anchors the default.
    std::size_t largest = members.front();
    for (std::size_t m : members)
      if (flows[m].size > flows[largest].size) largest = m;
    const std::size_t default_ix =
        routing.early_exit(flows[largest], p.candidates);
    for (std::size_t m : members) p.default_assignment.ix_of_flow[m] = default_ix;
    p.negotiable.push_back(members.front());
    p.group_members.push_back(members);
  }
  p.validate();
  return p;
}

NegotiationProblem make_failure_problem(const routing::PairRouting& routing,
                                        const std::vector<traffic::Flow>& flows,
                                        std::size_t failed_ix) {
  const std::size_t n_ix = routing.pair().interconnection_count();
  if (failed_ix >= n_ix)
    throw std::invalid_argument("make_failure_problem: failed_ix out of range");

  std::vector<std::size_t> all_ix;
  std::vector<std::size_t> surviving;
  for (std::size_t i = 0; i < n_ix; ++i) {
    all_ix.push_back(i);
    if (i != failed_ix) surviving.push_back(i);
  }
  if (surviving.size() < 2)
    throw std::invalid_argument(
        "make_failure_problem: need >= 2 surviving interconnections");

  NegotiationProblem p;
  p.routing = &routing;
  p.flows = &flows;
  p.candidates = std::move(surviving);

  // Pre-failure routing: early-exit over all interconnections. Flows that
  // used the failed one must move; their post-failure default is early-exit
  // over the survivors.
  const routing::Assignment before =
      routing::assign_early_exit(routing, flows, all_ix);
  p.default_assignment = before;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (before.ix_of_flow[i] == failed_ix) {
      p.negotiable.push_back(i);
      p.default_assignment.ix_of_flow[i] =
          routing.early_exit(flows[i], p.candidates);
    }
  }
  p.validate();
  return p;
}

}  // namespace nexit::core
