#pragma once

#include <cstddef>
#include <vector>

#include "core/preference.hpp"
#include "util/rng.hpp"

namespace nexit::core {

enum class ProposalPolicy;  // defined in engine.hpp

/// View of the shared negotiation state from ONE side's perspective. Both the
/// in-process engine and the wire-protocol agents drive their decisions
/// through these functions, which is what makes the two implementations
/// provably equivalent (tests/agent_test.cpp checks it end to end).
struct StrategyView {
  /// Aligned with the negotiable flow list.
  const std::vector<char>* remaining = nullptr;
  /// remaining-size x candidate-count matrix of vetoed alternatives.
  const std::vector<std::vector<char>>* banned = nullptr;
  /// Default candidate index per negotiable flow (class 0 by definition).
  const std::vector<std::size_t>* default_ci = nullptr;
  const PreferenceList* my_disclosed = nullptr;
  const PreferenceList* remote_disclosed = nullptr;
  /// My exact private valuation (metric units, full precision) — projections
  /// and protective decisions never depend on my own quantisation.
  const std::vector<std::vector<double>>* my_true_value = nullptr;
};

struct ProposalChoice {
  std::size_t pos = 0;  // negotiable flow position
  std::size_t ci = 0;   // candidate index
};

/// Picks the proposal for the side owning the view. Ranking: the policy's
/// primary/secondary keys, then status-quo bias (the flow's default
/// alternative wins residual ties — ISPs do not reroute without perceived
/// benefit, which also keeps coarse class-0 ties from drifting traffic).
/// With `rng == nullptr` any leftover tie breaks deterministically toward
/// the lowest (pos, ci); with an rng it breaks uniformly at random (the
/// paper's worked example). Returns false if nothing is proposable.
bool select_proposal(const StrategyView& view, ProposalPolicy policy,
                     util::Rng* rng, ProposalChoice& out);

struct Projection {
  double peak = 0.0;  // best reachable cumulative own-gain increase
  double end = 0.0;   // own-gain increase if everything remaining is settled
};

/// Greedy projection of the remaining negotiation as perceived by the view's
/// owner (see TerminationPolicy::kEarly): flows settle in decreasing
/// combined-sum order with proposers alternating, so tie resolution
/// alternates between my tie-break and the remote's (pessimistic on residual
/// ties). With `floor_remote_at_zero`, losses on remote-proposed flows are
/// floored at the default's value (0): under protective acceptance such
/// proposals are either vetoed or paid for out of earlier gains, so they
/// cannot push the owner below its default — used by the stop decision so an
/// ISP does not abort a negotiation the veto already makes safe.
Projection project_future(const StrategyView& view, bool my_turn_first = true,
                          bool floor_remote_at_zero = false);

}  // namespace nexit::core
