#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "core/preference.hpp"
#include "core/problem.hpp"
#include "core/strategy.hpp"
#include "util/rng.hpp"

namespace nexit::core {

/// Who proposes in the current round (paper §4 step "Decide turn").
enum class TurnPolicy {
  kAlternate,   // the paper's experimental default
  kLowerGain,   // the ISP with lower cumulative gain proposes (max-min-fair)
  kCoinToss,    // seeded coin toss
};

/// How the proposer picks a (flow, alternative) (paper §4 step "Propose").
enum class ProposalPolicy {
  /// Maximise the sum of both ISPs' (disclosed) preferences; ties broken by
  /// the proposer's own preference, then deterministically. Paper default.
  kMaxCombinedGain,
  /// The paper's alternative: the proposer's best local alternative with
  /// minimal negative impact on the other ISP.
  kBestLocalMinImpact,
};

/// Whether the responder can reject (paper §4 step "Accept alternative?").
enum class AcceptancePolicy {
  /// Accept everything except proposals that would leave the responder
  /// unrecoverably below its default (cumulative gain + proposal + best
  /// projected future < 0). This is the §4 veto power used the way the paper
  /// argues ISPs use it — "an ISP can always protect itself by not
  /// negotiating losses" — and is what keeps negotiation no-loss (Fig. 4b).
  kProtective,
  kAlwaysAccept,  // accept unconditionally (trusting counterparty)
  kVetoOwnLoss,   // reject anything strictly worse than default for self
};

/// When negotiation stops (paper §4 step "Stop?").
enum class TerminationPolicy {
  /// "Early termination": an ISP stops when it perceives no additional gain
  /// in continuing — the projected greedy future can no longer raise its
  /// cumulative gain (peak <= 0) and would in fact lower it (end < 0).
  /// A future that is flat (all zeros) is harmless, so the ISP keeps
  /// negotiating, as ISP-A does in the paper's Fig. 3 example.
  kEarly,
  /// "Full termination": continue while both cumulative gains stay >= 0.
  kFull,
  /// Social-welfare mode: negotiate every flow on the table.
  kNegotiateAll,
};

/// How residual proposal ties (same combined sum, same secondary key) break.
enum class TieBreak {
  kRandom,         // uniform, seeded — the paper's worked example
  kDeterministic,  // lowest (flow, candidate) — required by the wire protocol
};

struct NegotiationConfig {
  PreferenceConfig preferences;
  TurnPolicy turn = TurnPolicy::kAlternate;
  ProposalPolicy proposal = ProposalPolicy::kMaxCombinedGain;
  AcceptancePolicy acceptance = AcceptancePolicy::kProtective;
  TerminationPolicy termination = TerminationPolicy::kEarly;
  TieBreak tie_break = TieBreak::kRandom;
  /// Re-invoke the oracles after this fraction of the negotiable traffic
  /// volume has been negotiated (0 disables; the paper uses 0.05 for the
  /// bandwidth experiments). Only honoured if an oracle wants reassignment.
  double reassign_traffic_fraction = 0.0;
  /// §6 settlement: after negotiation stops, an ISP that ended below its
  /// default "rolls back the compromises made in return" — its accepted
  /// losing concessions return to their defaults, worst first, until it is
  /// whole. Sides alternate starting with the one that stopped; each
  /// rollback may trigger the other's. Guarantees the no-loss property of
  /// Fig. 4b even when a counterparty stops mid-trade.
  bool settlement_rollback = true;
  /// Use the oracles' evaluate_incremental() for every refresh after the
  /// first, handing them the accepted moves since the previous evaluation.
  /// Results are contractually bit-identical to full evaluate() — this knob
  /// exists for A/B benchmarking and as an escape hatch, not because the
  /// answers differ.
  bool incremental_evaluation = true;
  /// Cross-check cadence: every Nth incremental refresh, additionally run
  /// the full evaluate() and throw std::logic_error unless both results are
  /// bit-identical. 0 = automatic (every refresh in debug builds, never in
  /// release); N >= 1 forces the check in all build types; -1 disables it
  /// even in debug builds (for honest A/B timing, e.g. micro_incremental).
  int verify_incremental_every = 0;
  std::uint64_t seed = 1;
  bool record_trace = false;
};

enum class StopReason {
  kExhausted,        // every negotiable flow was negotiated
  kEarlyStopA,       // ISP A saw no additional gain (early termination)
  kEarlyStopB,
  kGainWouldGoNegative,  // full termination guard
  kNoProposal,       // every remaining alternative was vetoed
};

std::string to_string(StopReason r);

struct RoundTrace {
  std::size_t round = 0;
  int proposer = 0;                 // 0 = A, 1 = B
  traffic::FlowId flow;
  std::size_t interconnection = 0;  // proposed interconnection index
  PrefClass pref_a = 0;             // disclosed preferences of the proposal
  PrefClass pref_b = 0;
  bool accepted = false;
  bool reassigned_after = false;
};

struct NegotiationOutcome {
  /// Final interconnection per flow (all flows; non-negotiated ones on their
  /// default).
  routing::Assignment assignment;
  /// Cumulative *true* gains in each ISP's own exact metric units (km saved,
  /// load-ratio reduction, ... — whatever its oracle measures).
  double true_gain_a = 0.0;
  double true_gain_b = 0.0;
  /// Cumulative gains as visible through disclosed preferences.
  int disclosed_gain_a = 0;
  int disclosed_gain_b = 0;
  std::size_t rounds = 0;
  std::size_t flows_negotiated = 0;  // accepted proposals
  std::size_t flows_moved = 0;       // accepted with a non-default choice
  std::size_t flows_rolled_back = 0; // settlement rollbacks (§6)
  std::size_t reassignments = 0;
  /// Oracle-evaluation telemetry: how the preference work was actually done.
  /// A full call recomputes one row per negotiable position; incremental
  /// calls recompute only the rows the accepted moves' links feed, so
  /// evaluate_rows_computed / (calls x positions) is the fraction of the
  /// naive full-recompute work this negotiation performed.
  std::size_t evaluate_calls_full = 0;
  std::size_t evaluate_calls_incremental = 0;
  std::size_t evaluate_rows_computed = 0;
  /// What the same calls would have cost under full recomputation
  /// (calls x negotiable positions) — the denominator for the fraction of
  /// naive work performed.
  std::size_t evaluate_rows_full_equivalent = 0;
  StopReason stop_reason = StopReason::kExhausted;
  std::vector<RoundTrace> trace;     // filled when config.record_trace
};

/// The Nexit negotiation protocol (paper §4): ISPs exchange preference
/// lists and agree on an interconnection per flow, one proposal per round.
/// All decisions are deterministic given the config seed.
class NegotiationEngine {
 public:
  NegotiationEngine(const NegotiationProblem& problem, PreferenceOracle& isp_a,
                    PreferenceOracle& isp_b, NegotiationConfig config);

  NegotiationOutcome run();

 private:
  /// One accepted non-default move, remembered for settlement rollback.
  struct AcceptedMove {
    std::size_t pos = 0;
    std::size_t ci = 0;
    double value[2] = {0.0, 0.0};  // both sides' true values at acceptance
    bool rolled_back = false;
  };

  void refresh_preferences();
  /// True when this refresh must also run the full-recompute cross-check.
  [[nodiscard]] bool cross_check_due() const;
  [[nodiscard]] int pick_turn(std::size_t round) const;
  /// Indices into accepted_moves_ that `side` rolls back to get whole.
  [[nodiscard]] std::vector<std::size_t> compute_rollback(int side) const;
  /// StrategyView of the negotiation from `side`'s perspective; decisions
  /// delegate to core/strategy.hpp (shared with the wire-protocol agents).
  [[nodiscard]] StrategyView view_of(int side) const;

  const NegotiationProblem& problem_;
  PreferenceOracle* oracles_[2];
  NegotiationConfig config_;

  // Mutable negotiation state.
  routing::Assignment tentative_;
  std::vector<char> remaining_;           // per negotiable position
  std::vector<std::vector<char>> banned_; // vetoed (pos, ci) pairs
  std::vector<std::size_t> default_ci_;   // default candidate per position
  Evaluation truth_[2];
  PreferenceList disclosed_[2];
  double true_gain_[2] = {0.0, 0.0};
  int disclosed_gain_[2] = {0, 0};
  std::vector<AcceptedMove> accepted_moves_;
  /// Accepted moves + settles since the last oracle refresh; consumed by
  /// evaluate_incremental() at the next reassignment quantum.
  EvaluationDelta pending_delta_;
  bool evaluated_once_ = false;
  std::size_t incremental_refreshes_ = 0;
  std::size_t eval_calls_full_ = 0;
  std::size_t eval_calls_incremental_ = 0;
  std::size_t eval_rows_computed_ = 0;
  std::size_t eval_rows_full_equivalent_ = 0;
  mutable util::Rng rng_{1};
};

}  // namespace nexit::core
