#pragma once

#include <cstddef>
#include <vector>

#include "routing/pair_routing.hpp"

namespace nexit::core {

/// Everything both ISPs agree on before negotiating: the flows on the table,
/// the interconnections available, and what happens if negotiation does
/// nothing (the default assignment, which anchors preference class 0).
///
/// `negotiable` holds indices into `flows` — the distance experiments put
/// every flow on the table; the failure experiments only the flows whose
/// interconnection failed (paper §5.2: "in the interest of stability, ISPs
/// are likely to reroute only such flows").
struct NegotiationProblem {
  const routing::PairRouting* routing = nullptr;
  const std::vector<traffic::Flow>* flows = nullptr;
  std::vector<std::size_t> negotiable;
  std::vector<std::size_t> candidates;  // interconnection indices currently up
  routing::Assignment default_assignment;  // per flow, for ALL flows
  /// Destination-based mode (paper footnote 2): negotiable[pos] is the
  /// representative of group_members[pos], and an accepted alternative moves
  /// every member together (one exit per destination prefix, as with MEDs).
  /// Empty = plain source-destination routing (every group a singleton).
  std::vector<std::vector<std::size_t>> group_members;

  [[nodiscard]] const traffic::Flow& negotiable_flow(std::size_t pos) const {
    return (*flows)[negotiable[pos]];
  }
  /// Flow indices moved together when position `pos` is negotiated.
  [[nodiscard]] std::vector<std::size_t> members_of(std::size_t pos) const {
    if (pos < group_members.size() && !group_members[pos].empty())
      return group_members[pos];
    return {negotiable[pos]};
  }
  [[nodiscard]] std::size_t default_ix(std::size_t pos) const {
    return default_assignment.ix_of_flow[negotiable[pos]];
  }
  /// Position of the default interconnection within `candidates`.
  [[nodiscard]] std::size_t default_candidate(std::size_t pos) const;

  /// Total traffic volume of the negotiable flows (drives the "reassign
  /// every 5% of traffic" rule).
  [[nodiscard]] double negotiable_volume() const;

  /// Throws std::invalid_argument if the problem is malformed (sizes
  /// disagree, defaults not within candidates, ...).
  void validate() const;
};

/// Convenience builder: all flows negotiable, defaults = early-exit over the
/// given candidates (the paper's default routing).
NegotiationProblem make_distance_problem(const routing::PairRouting& routing,
                                         const std::vector<traffic::Flow>& flows,
                                         std::vector<std::size_t> candidates);

/// Destination-based variant (paper footnote 2): one negotiation unit per
/// (direction, destination PoP); the unit's default exit is the early-exit
/// of its largest member (the prefix's dominant ingress), and the default
/// assignment routes every member through it — both the baseline and the
/// negotiated routing are destination-based, as with plain BGP + MEDs.
NegotiationProblem make_destination_problem(
    const routing::PairRouting& routing,
    const std::vector<traffic::Flow>& flows,
    std::vector<std::size_t> candidates);

/// Builder for the failure scenario: flows whose pre-failure early-exit used
/// `failed_ix` become negotiable; defaults are re-computed by early-exit over
/// the surviving candidates; all other flows keep their pre-failure route.
NegotiationProblem make_failure_problem(const routing::PairRouting& routing,
                                        const std::vector<traffic::Flow>& flows,
                                        std::size_t failed_ix);

}  // namespace nexit::core
