#pragma once

// String-keyed construction of preference oracles. This is the seam that
// makes scenarios declarative: an experiment config (or a spec file) names
// its per-side objective — "distance", "bandwidth", "piecewise",
// "cheat:<inner>" — and the experiment engines build the oracle through the
// registry instead of hard-coding a bool per paper figure. New oracle kinds
// register here once and become spellable from every spec file and bench.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "core/preference.hpp"
#include "routing/loads.hpp"

namespace nexit::core {

/// Declarative name of one ISP's objective: a registry key plus the §5.4
/// cheating decorator. Spelled `name` or `cheat:name` in specs and flags.
struct OracleSpec {
  std::string name = "distance";
  bool cheat = false;

  [[nodiscard]] std::string to_string() const;
  /// Splits an optional "cheat:" prefix; the base name is validated later
  /// (OracleRegistry::find / ExperimentSpec::validate), not here.
  static OracleSpec parse(const std::string& text);

  friend bool operator==(const OracleSpec&, const OracleSpec&) = default;
};

/// Everything an oracle factory may need. `capacities` must outlive the
/// built oracle and is required only by load-dependent kinds (the registry
/// entry says which); the distance experiment passes nullptr.
struct OracleBuildInputs {
  int side = 0;
  PreferenceConfig preferences;
  const routing::LoadMap* capacities = nullptr;
};

/// Owning handle for a built oracle. The cheating decorator wraps a
/// truthful inner oracle that must live exactly as long — both are owned
/// here so the engine can hold plain references.
class BuiltOracle {
 public:
  BuiltOracle(std::unique_ptr<PreferenceOracle> truthful,
              std::unique_ptr<PreferenceOracle> cheat)
      : truthful_(std::move(truthful)), cheat_(std::move(cheat)) {}

  /// The oracle the engine should negotiate with (the decorator if any).
  [[nodiscard]] PreferenceOracle& get() const {
    return cheat_ ? *cheat_ : *truthful_;
  }

 private:
  std::unique_ptr<PreferenceOracle> truthful_;
  std::unique_ptr<PreferenceOracle> cheat_;
};

class OracleRegistry {
 public:
  struct Entry {
    std::string description;
    /// True when the factory dereferences OracleBuildInputs::capacities;
    /// build() (and spec validation) reject such oracles without one.
    bool needs_capacities = false;
    std::unique_ptr<PreferenceOracle> (*make)(const OracleBuildInputs&) =
        nullptr;
  };

  /// The process-wide registry with the built-in oracle kinds: "distance",
  /// "bandwidth" (MEL, open flows at tentative), "bandwidth-excluded" (MEL,
  /// Fig. 3 independence open-flow model), "piecewise" (Fortz-Thorup cost).
  static const OracleRegistry& global();

  [[nodiscard]] const Entry* find(const std::string& name) const;
  /// Registered base names, sorted — error messages and --help list these.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Builds `spec.name`, wrapped in a CheatingOracle when `spec.cheat`.
  /// Throws std::invalid_argument for an unknown name or a load-dependent
  /// oracle built without capacities (spec validation reports the same
  /// conditions as config errors before any engine runs).
  [[nodiscard]] BuiltOracle build(const OracleSpec& spec,
                                  const OracleBuildInputs& in) const;

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace nexit::core
