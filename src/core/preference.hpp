#pragma once

#include <cstddef>
#include <vector>

#include "traffic/traffic.hpp"

namespace nexit::core {

/// Opaque preference class (paper §4): an integer in [-P, P]. Class 0 is by
/// definition the flow's *default* alternative (what would happen without
/// negotiation); positive classes are better than the default from the ISP's
/// own point of view, negative are worse. The mapping from internal metrics
/// to classes is private to each ISP, which is the information-hiding point
/// of the design.
using PrefClass = int;

struct PreferenceConfig {
  /// P: classes live in [-range, range]. The paper uses 10 and reports that
  /// larger ranges do not noticeably help (we reproduce that in
  /// bench/abl_pref_range).
  int range = 10;
  /// Disclose only the ordering of alternatives (classes compressed to
  /// {-1, 0, +1} relative to default) — the paper's suggestion for ISPs that
  /// want to leak even less information.
  bool ordinal = false;
  /// The |delta| percentile that maps to the extreme class +-P. Scaling by
  /// the bulk of the distribution (not the max) keeps one outlier alternative
  /// from compressing every other flow into class 0; deltas beyond the scale
  /// simply clamp to +-P.
  double scale_percentile = 90.0;
};

/// Preferences of one ISP for one negotiable flow: one class per candidate
/// interconnection, aligned with the candidate list of the negotiation.
struct FlowPreferences {
  traffic::FlowId flow;
  std::vector<PrefClass> pref_of_candidate;
};

/// One ISP's full preference list, aligned with the negotiable-flow list of
/// the negotiation problem.
struct PreferenceList {
  std::vector<FlowPreferences> flows;
};

/// Linear quantisation of metric deltas into preference classes.
/// `deltas[c]` is how much better (positive) or worse (negative) candidate c
/// is than the default, in the ISP's internal metric units. `scale` is the
/// metric value that maps to the extreme class (usually the largest |delta|
/// in the whole advertised list, so the biggest swing lands on ±P).
std::vector<PrefClass> quantize_deltas(const std::vector<double>& deltas,
                                       const PreferenceConfig& config,
                                       double scale);

/// Largest |delta| across a whole list of per-flow delta vectors.
double max_abs_delta(const std::vector<std::vector<double>>& deltas);

/// Quantisation scale for a whole advertised list: the configured percentile
/// of the nonzero |delta| distribution (0 when every delta is zero).
double quantization_scale(const std::vector<std::vector<double>>& deltas,
                          const PreferenceConfig& config);

}  // namespace nexit::core
