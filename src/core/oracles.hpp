#pragma once

#include "core/oracle.hpp"
#include "routing/loads.hpp"

namespace nexit::core {

/// §5.1 oracle: the ISP's metric is the geographic distance each flow
/// travels inside its own network. Preferences for different flows are
/// independent, so no reassignment is needed. Class 0 is the default
/// alternative; the largest distance swing in the list maps to ±P.
class DistanceOracle : public PreferenceOracle {
 public:
  /// `side`: 0 if this oracle is ISP A, 1 if ISP B.
  DistanceOracle(int side, PreferenceConfig config);

  Evaluation evaluate(const OracleContext& ctx) override;
  [[nodiscard]] bool wants_reassignment() const override { return false; }

 private:
  int side_;
  PreferenceConfig config_;
};

/// How a load-dependent oracle accounts for flows that are still open
/// (un-negotiated). The paper is ambiguous: the Fig. 3 worked example
/// assigns preferences "independently of each other" (open flows invisible,
/// which is why ISP-B starts indifferent), while the §5.2 results require
/// the post-failure pile-up of affected flows to be visible up front.
enum class OpenFlowModel {
  /// Expected state: open flows counted at their tentative (default until
  /// negotiated) interconnection, the flow being valued excluded. Default;
  /// used for the §5.2/§5.3 experiments.
  kAtTentative,
  /// Fig. 3 independence: open flows contribute nothing; only settled flows
  /// and the non-negotiable background count.
  kExcluded,
};

/// §5.2 oracle: the ISP's metric is the maximum increase in link load along
/// the flow's path inside its own network — max over the path's links of
/// (load_without_flow + flow_size) / capacity. Load-dependent, so the
/// engine re-invokes evaluate() after each reassignment quantum of traffic.
class BandwidthOracle : public PreferenceOracle {
 public:
  /// `capacities` must outlive the oracle (same shape as the pair's links).
  BandwidthOracle(int side, PreferenceConfig config,
                  const routing::LoadMap& capacities,
                  OpenFlowModel open_model = OpenFlowModel::kAtTentative);

  Evaluation evaluate(const OracleContext& ctx) override;
  [[nodiscard]] bool wants_reassignment() const override { return true; }

 private:
  int side_;
  PreferenceConfig config_;
  const routing::LoadMap* capacities_;
  OpenFlowModel open_model_;
};

/// The paper's alternate load-dependent metric (§5.2 "alternate models"): a
/// piecewise-linear link cost in the style of the OSPF-weight-optimisation
/// LP [10 in the paper]. The ISP's value of an alternative is the reduction
/// in the sum of Fortz-Thorup phi(load/capacity) over its own links.
/// Penalises congestion progressively instead of only tracking the maximum.
class PiecewiseCostOracle : public PreferenceOracle {
 public:
  PiecewiseCostOracle(int side, PreferenceConfig config,
                      const routing::LoadMap& capacities);

  Evaluation evaluate(const OracleContext& ctx) override;
  [[nodiscard]] bool wants_reassignment() const override { return true; }

 private:
  int side_;
  PreferenceConfig config_;
  const routing::LoadMap* capacities_;
};

}  // namespace nexit::core
