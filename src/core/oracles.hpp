#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/oracle.hpp"
#include "routing/incremental_loads.hpp"
#include "routing/loads.hpp"

namespace nexit::core {

namespace detail {

/// Bookkeeping behind the load-dependent oracles' incremental path:
///  - exact delta-maintained link loads (routing::IncrementalLoads),
///  - the link -> negotiable-positions reverse index ("which preference rows
///    does this link feed"), built over every member's path to every
///    candidate — the tentative interconnection is always a candidate, so a
///    position's row can only change when one of its footprint links does,
///  - the previously computed delta matrix, reused for unaffected rows.
/// `problem` identifies the context the state was built for; a mismatch
/// forces a full rebuild (the engine's first refresh always takes the full
/// path, so reusing one oracle across negotiations is safe). The footprint
/// index is a pure function of the problem's geometry, so it is rebuilt
/// only when the fingerprint below stops matching — not on every full
/// evaluate() — keeping the --incremental=0 baseline an honest baseline.
struct IncrementalOracleState {
  std::unique_ptr<routing::IncrementalLoads> loads;
  std::vector<std::vector<std::uint32_t>> positions_of_link;
  std::vector<std::vector<double>> deltas;
  const NegotiationProblem* problem = nullptr;
  /// Copies of the inputs the footprint index depends on, compared before
  /// reusing it: a fresh problem at a recycled address (same stack slot in
  /// an experiment loop) must not inherit a stale index.
  const void* routing = nullptr;
  const void* flows = nullptr;
  std::vector<std::size_t> negotiable;
  std::vector<std::size_t> candidates;
  std::size_t group_count = 0;

  [[nodiscard]] bool footprint_matches(const NegotiationProblem& p) const {
    return !positions_of_link.empty() && routing == p.routing &&
           flows == p.flows && negotiable == p.negotiable &&
           candidates == p.candidates &&
           group_count == p.group_members.size();
  }
};

}  // namespace detail

/// §5.1 oracle: the ISP's metric is the geographic distance each flow
/// travels inside its own network. Preferences for different flows are
/// independent, so no reassignment is needed. Class 0 is the default
/// alternative; the largest distance swing in the list maps to ±P.
class DistanceOracle : public PreferenceOracle {
 public:
  /// `side`: 0 if this oracle is ISP A, 1 if ISP B.
  DistanceOracle(int side, PreferenceConfig config);

  Evaluation evaluate(const OracleContext& ctx) override;
  /// Distance preferences ignore the tentative assignment entirely, so the
  /// incremental path returns the cached evaluation (zero rows recomputed).
  Evaluation evaluate_incremental(const OracleContext& ctx,
                                  const EvaluationDelta& delta) override;
  [[nodiscard]] bool wants_reassignment() const override { return false; }

 private:
  /// True when the cached evaluation was computed for this exact problem —
  /// same fingerprint standard as IncrementalOracleState: a fresh problem
  /// at a recycled address must not inherit the stale cache.
  [[nodiscard]] bool cache_matches(const NegotiationProblem& p) const;

  int side_;
  PreferenceConfig config_;
  Evaluation cached_;
  const NegotiationProblem* cached_problem_ = nullptr;
  const void* cached_routing_ = nullptr;
  const void* cached_flows_ = nullptr;
  std::vector<std::size_t> cached_negotiable_;
  std::vector<std::size_t> cached_candidates_;
  std::vector<std::size_t> cached_defaults_;  // default_ix per position
  std::size_t cached_group_count_ = 0;
};

/// How a load-dependent oracle accounts for flows that are still open
/// (un-negotiated). The paper is ambiguous: the Fig. 3 worked example
/// assigns preferences "independently of each other" (open flows invisible,
/// which is why ISP-B starts indifferent), while the §5.2 results require
/// the post-failure pile-up of affected flows to be visible up front.
enum class OpenFlowModel {
  /// Expected state: open flows counted at their tentative (default until
  /// negotiated) interconnection, the flow being valued excluded. Default;
  /// used for the §5.2/§5.3 experiments.
  kAtTentative,
  /// Fig. 3 independence: open flows contribute nothing; only settled flows
  /// and the non-negotiable background count.
  kExcluded,
};

/// §5.2 oracle: the ISP's metric is the maximum increase in link load along
/// the flow's path inside its own network — max over the path's links of
/// (load_without_flow + flow_size) / capacity. Load-dependent, so the
/// engine re-invokes it after each reassignment quantum of traffic; the
/// incremental path re-scores only the rows whose footprint links moved.
class BandwidthOracle : public PreferenceOracle {
 public:
  /// `capacities` must outlive the oracle (same shape as the pair's links).
  BandwidthOracle(int side, PreferenceConfig config,
                  const routing::LoadMap& capacities,
                  OpenFlowModel open_model = OpenFlowModel::kAtTentative);

  Evaluation evaluate(const OracleContext& ctx) override;
  Evaluation evaluate_incremental(const OracleContext& ctx,
                                  const EvaluationDelta& delta) override;
  [[nodiscard]] bool wants_reassignment() const override { return true; }

 private:
  [[nodiscard]] std::vector<char> open_mask(const OracleContext& ctx) const;
  [[nodiscard]] std::vector<double> compute_row(
      const OracleContext& ctx, const std::vector<char>& open,
      const std::vector<double>& my_loads, std::size_t pos) const;

  int side_;
  PreferenceConfig config_;
  const routing::LoadMap* capacities_;
  OpenFlowModel open_model_;
  detail::IncrementalOracleState inc_;
};

/// The paper's alternate load-dependent metric (§5.2 "alternate models"): a
/// piecewise-linear link cost in the style of the OSPF-weight-optimisation
/// LP [10 in the paper]. The ISP's value of an alternative is the reduction
/// in the sum of Fortz-Thorup phi(load/capacity) over its own links.
/// Penalises congestion progressively instead of only tracking the maximum.
/// Incremental evaluation keys off the same per-link phi bookkeeping: only
/// rows whose footprint links changed load are re-scored.
class PiecewiseCostOracle : public PreferenceOracle {
 public:
  PiecewiseCostOracle(int side, PreferenceConfig config,
                      const routing::LoadMap& capacities);

  Evaluation evaluate(const OracleContext& ctx) override;
  Evaluation evaluate_incremental(const OracleContext& ctx,
                                  const EvaluationDelta& delta) override;
  [[nodiscard]] bool wants_reassignment() const override { return true; }

 private:
  [[nodiscard]] std::vector<double> compute_row(
      const OracleContext& ctx, const std::vector<double>& my_loads,
      std::size_t pos) const;

  int side_;
  PreferenceConfig config_;
  const routing::LoadMap* capacities_;
  detail::IncrementalOracleState inc_;
};

}  // namespace nexit::core
