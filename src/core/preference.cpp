#include "core/preference.hpp"

#include "obs/registry.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nexit::core {

std::vector<PrefClass> quantize_deltas(const std::vector<double>& deltas,
                                       const PreferenceConfig& config,
                                       double scale) {
  if (config.range < 1)
    throw std::invalid_argument("quantize_deltas: range < 1");
  std::vector<PrefClass> out;
  out.reserve(deltas.size());
  for (double d : deltas) {
    PrefClass c = 0;
    if (config.ordinal) {
      if (d > 1e-12) c = 1;
      else if (d < -1e-12) c = -1;
    } else if (scale > 0.0) {
      const double scaled = d / scale * static_cast<double>(config.range);
      c = static_cast<PrefClass>(std::lround(scaled));
      c = std::clamp(c, -config.range, config.range);
    }
    out.push_back(c);
  }
  return out;
}

double max_abs_delta(const std::vector<std::vector<double>>& deltas) {
  double m = 0.0;
  for (const auto& row : deltas)
    for (double d : row) m = std::max(m, std::abs(d));
  return m;
}

double quantization_scale(const std::vector<std::vector<double>>& deltas,
                          const PreferenceConfig& config) {
  const obs::PhaseTimer timer(obs::Phase::kQuantizationScale);
  std::vector<double> magnitudes;
  for (const auto& row : deltas)
    for (double d : row)
      if (std::abs(d) > 1e-12) magnitudes.push_back(std::abs(d));
  if (magnitudes.empty()) return 0.0;
  return util::percentile(std::move(magnitudes), config.scale_percentile);
}

}  // namespace nexit::core
