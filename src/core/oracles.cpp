#include "core/oracles.hpp"

#include <limits>
#include <stdexcept>

#include "metrics/metrics.hpp"

namespace nexit::core {

namespace {

void check_ctx(const OracleContext& ctx) {
  if (ctx.problem == nullptr || ctx.tentative == nullptr)
    throw std::invalid_argument("oracle: null context");
}

/// Path of `f` inside ISP `side` when routed via interconnection `ix`
/// (upstream or downstream path depending on the flow's direction).
const std::vector<graph::EdgeIndex>& own_path(
    const routing::PairRouting& routing, const traffic::Flow& f,
    std::size_t ix, int side) {
  if (side == traffic::upstream_side(f.direction))
    return routing.upstream_path_edges(f, ix);
  return routing.downstream_path_edges(f, ix);
}

/// Reverse index: for every link of `side`'s backbone, the negotiable
/// positions whose candidate paths cross it. A position's preference row
/// depends on loads only through these links (the tentative interconnection
/// is always within the candidate set), so a row can be reused verbatim
/// whenever none of its footprint links changed.
std::vector<std::vector<std::uint32_t>> build_footprints(
    const NegotiationProblem& p, int side) {
  const topology::IspPair& pair = p.routing->pair();
  const std::size_t edges = side == 0 ? pair.a().backbone().edge_count()
                                      : pair.b().backbone().edge_count();
  std::vector<std::vector<std::uint32_t>> index(edges);
  std::vector<std::uint32_t> last(edges,
                                  std::numeric_limits<std::uint32_t>::max());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    for (std::size_t m : p.members_of(pos)) {
      const traffic::Flow& f = (*p.flows)[m];
      for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
        for (graph::EdgeIndex e :
             own_path(*p.routing, f, p.candidates[ci], side)) {
          const auto idx = static_cast<std::size_t>(e);
          if (last[idx] != pos) {
            last[idx] = static_cast<std::uint32_t>(pos);
            index[idx].push_back(static_cast<std::uint32_t>(pos));
          }
        }
      }
    }
  }
  return index;
}

/// Positions whose rows must be re-scored: anything a touched link feeds,
/// plus the positions that settled since the last evaluation (their open
/// status entered/left the row formula). Over-inclusion is always safe —
/// recomputing an unaffected row reproduces the same bits.
std::vector<char> affected_positions(
    const detail::IncrementalOracleState& state,
    const std::vector<graph::EdgeIndex>& touched,
    const std::vector<std::size_t>& settled, std::size_t position_count) {
  std::vector<char> affected(position_count, 0);
  for (graph::EdgeIndex e : touched)
    for (std::uint32_t pos : state.positions_of_link[static_cast<std::size_t>(e)])
      affected[pos] = 1;
  for (std::size_t pos : settled) affected.at(pos) = 1;
  return affected;
}

/// (Re)builds a load-dependent oracle's incremental state for `ctx`: loads
/// from scratch (every full evaluate is a reset point), the footprint index
/// only when its inputs changed. Shared by BandwidthOracle and
/// PiecewiseCostOracle so their invalidation rules cannot drift apart.
void rebuild_incremental_state(detail::IncrementalOracleState& inc,
                               const OracleContext& ctx, int side,
                               const std::vector<char>* counted) {
  const NegotiationProblem& p = *ctx.problem;
  if (inc.loads == nullptr || inc.problem != &p || inc.routing != p.routing ||
      inc.flows != p.flows)
    inc.loads = std::make_unique<routing::IncrementalLoads>(*p.routing,
                                                            *p.flows, side);
  inc.loads->rebuild(*ctx.tentative, counted);
  if (!inc.footprint_matches(p)) {
    inc.positions_of_link = build_footprints(p, side);
    inc.routing = p.routing;
    inc.flows = p.flows;
    inc.negotiable = p.negotiable;
    inc.candidates = p.candidates;
    inc.group_count = p.group_members.size();
  }
  inc.problem = &p;
}

/// True when `inc` holds state usable for an incremental continuation on
/// `p` — the guard both load-dependent oracles' evaluate_incremental()
/// applies before trusting cached loads/footprints/rows.
bool state_matches(const detail::IncrementalOracleState& inc,
                   const NegotiationProblem& p) {
  return inc.problem == &p && inc.loads != nullptr &&
         inc.deltas.size() == p.negotiable.size() && inc.footprint_matches(p);
}

/// Assembles an Evaluation from the state's (partially reused) delta matrix:
/// quantisation scale and classes are always recomputed over the full
/// matrix, which is what keeps incremental results bit-identical.
Evaluation assemble_evaluation(const detail::IncrementalOracleState& inc,
                               const NegotiationProblem& p,
                               const PreferenceConfig& config,
                               std::size_t rows_recomputed) {
  const double scale = quantization_scale(inc.deltas, config);
  Evaluation eval;
  eval.rows_recomputed = rows_recomputed;
  eval.classes.flows.reserve(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    eval.classes.flows.push_back(FlowPreferences{
        p.negotiable_flow(pos).id,
        quantize_deltas(inc.deltas[pos], config, scale)});
  }
  eval.true_value = inc.deltas;
  return eval;
}

/// Shared skeleton of evaluate_incremental() for the load-dependent
/// oracles: fold the accepted moves into the maintained loads, run the
/// oracle-specific `settle` hook (kExcluded's count_flow), recompute the
/// affected rows with `row`, and assemble. One body, so the two oracles'
/// incremental semantics cannot drift apart.
template <typename SettleFn, typename RowFn>
Evaluation reevaluate_incremental(detail::IncrementalOracleState& inc,
                                  const OracleContext& ctx, int side,
                                  const PreferenceConfig& config,
                                  const EvaluationDelta& delta,
                                  SettleFn settle, RowFn row) {
  const NegotiationProblem& p = *ctx.problem;
  // Moves first: a settling flow's position is updated before the settle
  // hook inserts it on its new path.
  for (const EvaluationDelta::Move& mv : delta.moves)
    inc.loads->move_flow(mv.flow, mv.to_ix);
  settle();

  const auto& my_loads =
      inc.loads->loads().per_side[static_cast<std::size_t>(side)];
  const auto touched = inc.loads->take_touched();
  const std::vector<char> affected = affected_positions(
      inc, touched[static_cast<std::size_t>(side)], delta.settled_positions,
      p.negotiable.size());
  std::size_t rows = 0;
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    if (!affected[pos]) continue;
    inc.deltas[pos] = row(my_loads, pos);
    ++rows;
  }
  return assemble_evaluation(inc, p, config, rows);
}

}  // namespace

DistanceOracle::DistanceOracle(int side, PreferenceConfig config)
    : side_(side), config_(config) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("DistanceOracle: side must be 0 or 1");
}

Evaluation DistanceOracle::evaluate(const OracleContext& ctx) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;

  // Delta = traffic-km saved inside my network versus the default
  // alternative (size-weighted: carrying a bigger flow one km costs more).
  // Destination-based groups move together, so their members' deltas sum.
  std::vector<std::vector<double>> deltas(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    deltas[pos].assign(p.candidates.size(), 0.0);
    for (std::size_t m : p.members_of(pos)) {
      const traffic::Flow& f = (*p.flows)[m];
      const double default_km =
          p.routing->km_in_side(f, p.default_ix(pos), side_);
      for (std::size_t ci = 0; ci < p.candidates.size(); ++ci)
        deltas[pos][ci] += f.size * (default_km - p.routing->km_in_side(
                                                      f, p.candidates[ci], side_));
    }
  }

  const double scale = quantization_scale(deltas, config_);
  Evaluation eval;
  eval.rows_recomputed = p.negotiable.size();
  eval.classes.flows.reserve(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    eval.classes.flows.push_back(FlowPreferences{
        p.negotiable_flow(pos).id, quantize_deltas(deltas[pos], config_, scale)});
  }
  eval.true_value = std::move(deltas);
  cached_ = eval;
  cached_problem_ = &p;
  cached_routing_ = p.routing;
  cached_flows_ = p.flows;
  cached_negotiable_ = p.negotiable;
  cached_candidates_ = p.candidates;
  cached_defaults_.clear();
  cached_defaults_.reserve(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos)
    cached_defaults_.push_back(p.default_ix(pos));
  cached_group_count_ = p.group_members.size();
  return eval;
}

bool DistanceOracle::cache_matches(const NegotiationProblem& p) const {
  if (cached_problem_ != &p || cached_routing_ != p.routing ||
      cached_flows_ != p.flows || cached_negotiable_ != p.negotiable ||
      cached_candidates_ != p.candidates ||
      cached_group_count_ != p.group_members.size())
    return false;
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos)
    if (cached_defaults_[pos] != p.default_ix(pos)) return false;
  return true;
}

Evaluation DistanceOracle::evaluate_incremental(const OracleContext& ctx,
                                                const EvaluationDelta& delta) {
  (void)delta;
  check_ctx(ctx);
  // Distance deltas depend only on the (immutable) problem geometry, never
  // on the tentative assignment, so a prior evaluation is simply reusable.
  if (!cache_matches(*ctx.problem)) return evaluate(ctx);
  Evaluation eval = cached_;
  eval.rows_recomputed = 0;
  return eval;
}

BandwidthOracle::BandwidthOracle(int side, PreferenceConfig config,
                                 const routing::LoadMap& capacities,
                                 OpenFlowModel open_model)
    : side_(side), config_(config), capacities_(&capacities),
      open_model_(open_model) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("BandwidthOracle: side must be 0 or 1");
}

std::vector<char> BandwidthOracle::open_mask(const OracleContext& ctx) const {
  const NegotiationProblem& p = *ctx.problem;
  // Only the representative flow carries the open bit (historical contract;
  // destination-based group members ride along as background).
  std::vector<char> open(p.flows->size(), 0);
  if (ctx.remaining != nullptr) {
    for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos)
      if ((*ctx.remaining)[pos]) open[p.negotiable[pos]] = 1;
  }
  return open;
}

/// One preference row: the member flows' MEL deltas versus the default,
/// judged against a background that excludes the whole group (when
/// counted). Shared verbatim by the full and incremental paths, which is
/// what makes their results bit-identical by construction.
std::vector<double> BandwidthOracle::compute_row(
    const OracleContext& ctx, const std::vector<char>& open,
    const std::vector<double>& my_loads, std::size_t pos) const {
  const NegotiationProblem& p = *ctx.problem;
  const routing::PairRouting& routing = *p.routing;
  const auto& caps = capacities_->per_side[static_cast<std::size_t>(side_)];

  std::vector<double> row(p.candidates.size(), 0.0);
  std::vector<double> without = my_loads;
  for (std::size_t m : p.members_of(pos)) {
    if (!open[m] || open_model_ == OpenFlowModel::kAtTentative) {
      const traffic::Flow& f = (*p.flows)[m];
      for (graph::EdgeIndex e :
           own_path(routing, f, ctx.tentative->ix_of_flow[m], side_))
        without[static_cast<std::size_t>(e)] -= f.size;
    }
  }
  for (std::size_t m : p.members_of(pos)) {
    const traffic::Flow& f = (*p.flows)[m];
    const double default_mel = metrics::path_mel(
        own_path(routing, f, p.default_ix(pos), side_), without, caps, f.size);
    for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
      const double alt_mel = metrics::path_mel(
          own_path(routing, f, p.candidates[ci], side_), without, caps, f.size);
      row[ci] += default_mel - alt_mel;
    }
  }
  return row;
}

Evaluation BandwidthOracle::evaluate(const OracleContext& ctx) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;
  const std::vector<char> open = open_mask(ctx);
  if (open_model_ == OpenFlowModel::kAtTentative) {
    // Expected state: every flow counts at its tentative position.
    rebuild_incremental_state(inc_, ctx, side_, nullptr);
  } else {
    // Fig. 3 independence: open flows contribute nothing.
    std::vector<char> counted(open.size(), 0);
    for (std::size_t i = 0; i < open.size(); ++i) counted[i] = !open[i];
    rebuild_incremental_state(inc_, ctx, side_, &counted);
  }
  const auto& my_loads =
      inc_.loads->loads().per_side[static_cast<std::size_t>(side_)];
  inc_.deltas.resize(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos)
    inc_.deltas[pos] = compute_row(ctx, open, my_loads, pos);
  return assemble_evaluation(inc_, p, config_, p.negotiable.size());
}

Evaluation BandwidthOracle::evaluate_incremental(const OracleContext& ctx,
                                                 const EvaluationDelta& delta) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;
  if (!state_matches(inc_, p)) return evaluate(ctx);
  const std::vector<char> open = open_mask(ctx);
  return reevaluate_incremental(
      inc_, ctx, side_, config_, delta,
      [&] {
        if (open_model_ == OpenFlowModel::kExcluded) {
          for (std::size_t pos : delta.settled_positions)
            for (std::size_t m : p.members_of(pos)) inc_.loads->count_flow(m);
        }
      },
      [&](const std::vector<double>& my_loads, std::size_t pos) {
        return compute_row(ctx, open, my_loads, pos);
      });
}

PiecewiseCostOracle::PiecewiseCostOracle(int side, PreferenceConfig config,
                                         const routing::LoadMap& capacities)
    : side_(side), config_(config), capacities_(&capacities) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("PiecewiseCostOracle: side must be 0 or 1");
}

/// One preference row of the piecewise-linear metric. Placing flow f on a
/// path against a background without f only changes the touched links' phi
/// values, so the cost difference is evaluated link-by-link — the same
/// per-link bookkeeping the incremental path uses to decide which rows a
/// load change can affect.
std::vector<double> PiecewiseCostOracle::compute_row(
    const OracleContext& ctx, const std::vector<double>& my_loads,
    std::size_t pos) const {
  const NegotiationProblem& p = *ctx.problem;
  const routing::PairRouting& routing = *p.routing;
  const auto& caps = capacities_->per_side[static_cast<std::size_t>(side_)];

  const auto placement_cost = [&](const std::vector<graph::EdgeIndex>& path,
                                  const std::vector<double>& without,
                                  double size) {
    double cost = 0.0;
    for (graph::EdgeIndex e : path) {
      const auto idx = static_cast<std::size_t>(e);
      // nexit-lint: allow(float-accumulate): summed in path-edge order, the
      // same order both full and incremental evaluation walk
      cost += metrics::piecewise_linear_cost({without[idx] + size}, {caps[idx]}) -
              metrics::piecewise_linear_cost({without[idx]}, {caps[idx]});
    }
    return cost;
  };

  std::vector<double> row(p.candidates.size(), 0.0);
  std::vector<double> without = my_loads;
  for (std::size_t m : p.members_of(pos)) {
    const traffic::Flow& f = (*p.flows)[m];
    for (graph::EdgeIndex e :
         own_path(routing, f, ctx.tentative->ix_of_flow[m], side_))
      without[static_cast<std::size_t>(e)] -= f.size;
  }
  for (std::size_t m : p.members_of(pos)) {
    const traffic::Flow& f = (*p.flows)[m];
    const double default_cost = placement_cost(
        own_path(routing, f, p.default_ix(pos), side_), without, f.size);
    for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
      const double alt_cost = placement_cost(
          own_path(routing, f, p.candidates[ci], side_), without, f.size);
      row[ci] += default_cost - alt_cost;
    }
  }
  return row;
}

Evaluation PiecewiseCostOracle::evaluate(const OracleContext& ctx) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;
  // Expected-state loads (every flow at its tentative position).
  rebuild_incremental_state(inc_, ctx, side_, nullptr);
  const auto& my_loads =
      inc_.loads->loads().per_side[static_cast<std::size_t>(side_)];
  inc_.deltas.resize(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos)
    inc_.deltas[pos] = compute_row(ctx, my_loads, pos);
  return assemble_evaluation(inc_, p, config_, p.negotiable.size());
}

Evaluation PiecewiseCostOracle::evaluate_incremental(
    const OracleContext& ctx, const EvaluationDelta& delta) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;
  if (!state_matches(inc_, p)) return evaluate(ctx);
  return reevaluate_incremental(
      inc_, ctx, side_, config_, delta, [] {},
      [&](const std::vector<double>& my_loads, std::size_t pos) {
        return compute_row(ctx, my_loads, pos);
      });
}

}  // namespace nexit::core
