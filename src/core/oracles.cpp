#include "core/oracles.hpp"

#include <stdexcept>

#include "metrics/metrics.hpp"

namespace nexit::core {

namespace {

void check_ctx(const OracleContext& ctx) {
  if (ctx.problem == nullptr || ctx.tentative == nullptr)
    throw std::invalid_argument("oracle: null context");
}

/// Path of `f` inside ISP `side` when routed via interconnection `ix`
/// (upstream or downstream path depending on the flow's direction).
std::vector<graph::EdgeIndex> own_path(const routing::PairRouting& routing,
                                       const traffic::Flow& f, std::size_t ix,
                                       int side) {
  if (side == traffic::upstream_side(f.direction))
    return routing.upstream_path_edges(f, ix);
  return routing.downstream_path_edges(f, ix);
}

}  // namespace

DistanceOracle::DistanceOracle(int side, PreferenceConfig config)
    : side_(side), config_(config) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("DistanceOracle: side must be 0 or 1");
}

Evaluation DistanceOracle::evaluate(const OracleContext& ctx) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;

  // Delta = traffic-km saved inside my network versus the default
  // alternative (size-weighted: carrying a bigger flow one km costs more).
  // Destination-based groups move together, so their members' deltas sum.
  std::vector<std::vector<double>> deltas(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    deltas[pos].assign(p.candidates.size(), 0.0);
    for (std::size_t m : p.members_of(pos)) {
      const traffic::Flow& f = (*p.flows)[m];
      const double default_km =
          p.routing->km_in_side(f, p.default_ix(pos), side_);
      for (std::size_t ci = 0; ci < p.candidates.size(); ++ci)
        deltas[pos][ci] += f.size * (default_km - p.routing->km_in_side(
                                                      f, p.candidates[ci], side_));
    }
  }

  const double scale = quantization_scale(deltas, config_);
  Evaluation eval;
  eval.classes.flows.reserve(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    eval.classes.flows.push_back(FlowPreferences{
        p.negotiable_flow(pos).id, quantize_deltas(deltas[pos], config_, scale)});
  }
  eval.true_value = std::move(deltas);
  return eval;
}

BandwidthOracle::BandwidthOracle(int side, PreferenceConfig config,
                                 const routing::LoadMap& capacities,
                                 OpenFlowModel open_model)
    : side_(side), config_(config), capacities_(&capacities),
      open_model_(open_model) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("BandwidthOracle: side must be 0 or 1");
}

Evaluation BandwidthOracle::evaluate(const OracleContext& ctx) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;
  const routing::PairRouting& routing = *p.routing;
  const auto& caps = capacities_->per_side[static_cast<std::size_t>(side_)];

  // Loads on my links. kAtTentative (expected state): every flow counts at
  // its tentative position — the default until negotiated — so a
  // post-failure pile-up is visible immediately. kExcluded (Fig. 3
  // independence): open flows contribute nothing; only settled flows and the
  // non-negotiable background count.
  std::vector<char> open(p.flows->size(), 0);
  if (ctx.remaining != nullptr) {
    for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos)
      if ((*ctx.remaining)[pos]) open[p.negotiable[pos]] = 1;
  }
  routing::LoadMap loads = routing::LoadMap::zeros(routing.pair());
  for (std::size_t i = 0; i < p.flows->size(); ++i) {
    if (!open[i] || open_model_ == OpenFlowModel::kAtTentative)
      routing::add_flow_load(loads, routing, (*p.flows)[i],
                             ctx.tentative->ix_of_flow[i], 1.0);
  }
  const auto& my_loads = loads.per_side[static_cast<std::size_t>(side_)];

  std::vector<std::vector<double>> deltas(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    deltas[pos].assign(p.candidates.size(), 0.0);
    // All group members move together; judge each against a background that
    // excludes the whole group (when counted), then sum the deltas.
    std::vector<double> without = my_loads;
    for (std::size_t m : p.members_of(pos)) {
      if (!open[m] || open_model_ == OpenFlowModel::kAtTentative) {
        const traffic::Flow& f = (*p.flows)[m];
        for (graph::EdgeIndex e :
             own_path(routing, f, ctx.tentative->ix_of_flow[m], side_))
          without[static_cast<std::size_t>(e)] -= f.size;
      }
    }
    for (std::size_t m : p.members_of(pos)) {
      const traffic::Flow& f = (*p.flows)[m];
      const double default_mel = metrics::path_mel(
          own_path(routing, f, p.default_ix(pos), side_), without, caps, f.size);
      for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
        const double alt_mel = metrics::path_mel(
            own_path(routing, f, p.candidates[ci], side_), without, caps, f.size);
        deltas[pos][ci] += default_mel - alt_mel;
      }
    }
  }

  const double scale = quantization_scale(deltas, config_);
  Evaluation eval;
  eval.classes.flows.reserve(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    eval.classes.flows.push_back(FlowPreferences{
        p.negotiable_flow(pos).id, quantize_deltas(deltas[pos], config_, scale)});
  }
  eval.true_value = std::move(deltas);
  return eval;
}

PiecewiseCostOracle::PiecewiseCostOracle(int side, PreferenceConfig config,
                                         const routing::LoadMap& capacities)
    : side_(side), config_(config), capacities_(&capacities) {
  if (side != 0 && side != 1)
    throw std::invalid_argument("PiecewiseCostOracle: side must be 0 or 1");
}

Evaluation PiecewiseCostOracle::evaluate(const OracleContext& ctx) {
  check_ctx(ctx);
  const NegotiationProblem& p = *ctx.problem;
  const routing::PairRouting& routing = *p.routing;
  const auto& caps = capacities_->per_side[static_cast<std::size_t>(side_)];

  // Expected-state loads (every flow at its tentative position).
  routing::LoadMap loads = routing::LoadMap::zeros(routing.pair());
  for (std::size_t i = 0; i < p.flows->size(); ++i)
    routing::add_flow_load(loads, routing, (*p.flows)[i],
                           ctx.tentative->ix_of_flow[i], 1.0);
  const auto& my_loads = loads.per_side[static_cast<std::size_t>(side_)];

  // Cost of placing flow f on a path, against a background without f: only
  // the touched links' phi values change, so evaluate the difference
  // link-by-link.
  auto placement_cost = [&](const std::vector<graph::EdgeIndex>& path,
                            const std::vector<double>& without,
                            double size) {
    double cost = 0.0;
    for (graph::EdgeIndex e : path) {
      const auto idx = static_cast<std::size_t>(e);
      cost += metrics::piecewise_linear_cost({without[idx] + size}, {caps[idx]}) -
              metrics::piecewise_linear_cost({without[idx]}, {caps[idx]});
    }
    return cost;
  };

  std::vector<std::vector<double>> deltas(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    deltas[pos].assign(p.candidates.size(), 0.0);
    std::vector<double> without = my_loads;
    for (std::size_t m : p.members_of(pos)) {
      const traffic::Flow& f = (*p.flows)[m];
      for (graph::EdgeIndex e :
           own_path(routing, f, ctx.tentative->ix_of_flow[m], side_))
        without[static_cast<std::size_t>(e)] -= f.size;
    }
    for (std::size_t m : p.members_of(pos)) {
      const traffic::Flow& f = (*p.flows)[m];
      const double default_cost = placement_cost(
          own_path(routing, f, p.default_ix(pos), side_), without, f.size);
      for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
        const double alt_cost = placement_cost(
            own_path(routing, f, p.candidates[ci], side_), without, f.size);
        deltas[pos][ci] += default_cost - alt_cost;
      }
    }
  }

  const double scale = quantization_scale(deltas, config_);
  Evaluation eval;
  eval.classes.flows.reserve(p.negotiable.size());
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    eval.classes.flows.push_back(FlowPreferences{
        p.negotiable_flow(pos).id, quantize_deltas(deltas[pos], config_, scale)});
  }
  eval.true_value = std::move(deltas);
  return eval;
}

}  // namespace nexit::core
