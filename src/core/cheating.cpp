#include "core/cheating.hpp"

#include <algorithm>
#include <stdexcept>

namespace nexit::core {

CheatingOracle::CheatingOracle(PreferenceOracle& inner, int range)
    : inner_(&inner), range_(range) {
  if (range < 1) throw std::invalid_argument("CheatingOracle: range < 1");
}

Evaluation CheatingOracle::evaluate(const OracleContext& ctx) {
  return inner_->evaluate(ctx);
}

Evaluation CheatingOracle::evaluate_incremental(const OracleContext& ctx,
                                                const EvaluationDelta& delta) {
  return inner_->evaluate_incremental(ctx, delta);
}

bool CheatingOracle::wants_reassignment() const {
  return inner_->wants_reassignment();
}

std::vector<PrefClass> CheatingOracle::transform_flow(
    const std::vector<PrefClass>& own, const std::vector<PrefClass>& remote,
    int range) {
  if (own.size() != remote.size())
    throw std::invalid_argument("CheatingOracle: size mismatch");
  std::vector<PrefClass> disclosed = own;
  if (own.empty()) return disclosed;

  // The cheater's favourite alternative (ties toward the lowest index).
  std::size_t best = 0;
  for (std::size_t c = 1; c < own.size(); ++c)
    if (own[c] > own[best]) best = c;

  // Combined sum the selection rule would currently maximise.
  int max_sum = disclosed[0] + remote[0];
  for (std::size_t c = 1; c < own.size(); ++c)
    max_sum = std::max(max_sum, disclosed[c] + remote[c]);

  // Inflate the favourite just enough to reach the maximum sum.
  const int needed = max_sum - remote[best];
  disclosed[best] = std::clamp(std::max(disclosed[best], needed), -range, range);

  // If the cap prevented the favourite from reaching the top, deflate the
  // competitors so the favourite's sum still wins.
  const int best_sum = disclosed[best] + remote[best];
  for (std::size_t c = 0; c < own.size(); ++c) {
    if (c == best) continue;
    const int cap = best_sum - remote[c];  // keep sum(c) <= sum(best)
    disclosed[c] = std::clamp(std::min(disclosed[c], cap), -range, range);
  }
  return disclosed;
}

PreferenceList CheatingOracle::disclose(const OracleContext& ctx,
                                        const PreferenceList& own_truth,
                                        const PreferenceList& remote_truth) {
  (void)ctx;
  if (own_truth.flows.size() != remote_truth.flows.size())
    throw std::invalid_argument("CheatingOracle: list size mismatch");
  PreferenceList lie;
  lie.flows.reserve(own_truth.flows.size());
  for (std::size_t i = 0; i < own_truth.flows.size(); ++i) {
    lie.flows.push_back(FlowPreferences{
        own_truth.flows[i].flow,
        transform_flow(own_truth.flows[i].pref_of_candidate,
                       remote_truth.flows[i].pref_of_candidate, range_)});
  }
  return lie;
}

}  // namespace nexit::core
