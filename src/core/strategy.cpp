#include "core/strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/engine.hpp"
#include "obs/registry.hpp"

namespace nexit::core {

namespace {

void check_view(const StrategyView& v) {
  if (v.remaining == nullptr || v.banned == nullptr || v.default_ci == nullptr ||
      v.my_disclosed == nullptr || v.remote_disclosed == nullptr ||
      v.my_true_value == nullptr)
    throw std::invalid_argument("StrategyView: null field");
}

}  // namespace

bool select_proposal(const StrategyView& view, ProposalPolicy policy,
                     util::Rng* rng, ProposalChoice& out) {
  const obs::PhaseTimer timer(obs::Phase::kSelectProposal);
  check_view(view);
  bool found = false;
  int best_primary = 0, best_secondary = 0;
  bool best_is_default = false;
  std::size_t num_tied = 0;

  const std::size_t n = view.remaining->size();
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (!(*view.remaining)[pos]) continue;
    const auto& mine = view.my_disclosed->flows[pos].pref_of_candidate;
    const auto& theirs = view.remote_disclosed->flows[pos].pref_of_candidate;
    for (std::size_t ci = 0; ci < mine.size(); ++ci) {
      if ((*view.banned)[pos][ci]) continue;
      const int own = mine[ci];
      const int rem = theirs[ci];
      int primary = 0, secondary = 0;
      switch (policy) {
        case ProposalPolicy::kMaxCombinedGain:
          primary = own + rem;
          secondary = own;
          break;
        case ProposalPolicy::kBestLocalMinImpact:
          primary = own;
          secondary = rem;
          break;
      }
      const bool is_default = ci == (*view.default_ci)[pos];
      const bool better =
          !found || primary > best_primary ||
          (primary == best_primary &&
           (secondary > best_secondary ||
            (secondary == best_secondary && is_default && !best_is_default)));
      if (better) {
        found = true;
        best_primary = primary;
        best_secondary = secondary;
        best_is_default = is_default;
        num_tied = 1;
        out = ProposalChoice{pos, ci};
      } else if (primary == best_primary && secondary == best_secondary &&
                 is_default == best_is_default) {
        // Residual tie: deterministic (first wins) or uniform via reservoir
        // sampling when an rng is supplied.
        ++num_tied;
        if (rng != nullptr && rng->next_below(num_tied) == 0)
          out = ProposalChoice{pos, ci};
      }
    }
  }
  return found;
}

namespace {

/// Own true value of the alternative that would be selected for one flow if
/// `selector_is_me` proposes it: the selector maximises the combined sum,
/// breaks ties with its own disclosed preference, then prefers the default;
/// residual ties resolve pessimistically for the view's owner.
double projected_own_value(const StrategyView& view, std::size_t pos,
                           bool selector_is_me, bool& have) {
  const auto& mine = view.my_disclosed->flows[pos].pref_of_candidate;
  const auto& theirs = view.remote_disclosed->flows[pos].pref_of_candidate;
  const auto& my_truth = (*view.my_true_value)[pos];

  have = false;
  int best_combined = 0, best_secondary = 0;
  double own = 0.0;
  bool best_is_default = false;
  for (std::size_t ci = 0; ci < mine.size(); ++ci) {
    if ((*view.banned)[pos][ci]) continue;
    const int combined = mine[ci] + theirs[ci];
    const int secondary = selector_is_me ? mine[ci] : theirs[ci];
    const bool is_default = ci == (*view.default_ci)[pos];
    const bool better =
        !have || combined > best_combined ||
        (combined == best_combined &&
         (secondary > best_secondary ||
          (secondary == best_secondary && is_default && !best_is_default)));
    if (better) {
      have = true;
      best_combined = combined;
      best_secondary = secondary;
      best_is_default = is_default;
      own = my_truth[ci];
    } else if (combined == best_combined && secondary == best_secondary &&
               is_default == best_is_default) {
      own = std::min(own, my_truth[ci]);  // pessimism on residual ties
    }
  }
  return own;
}

int max_combined(const StrategyView& view, std::size_t pos, bool& have) {
  const auto& mine = view.my_disclosed->flows[pos].pref_of_candidate;
  const auto& theirs = view.remote_disclosed->flows[pos].pref_of_candidate;
  have = false;
  int best = 0;
  for (std::size_t ci = 0; ci < mine.size(); ++ci) {
    if ((*view.banned)[pos][ci]) continue;
    const int combined = mine[ci] + theirs[ci];
    if (!have || combined > best) {
      have = true;
      best = combined;
    }
  }
  return best;
}

}  // namespace

Projection project_future(const StrategyView& view, bool my_turn_first,
                          bool floor_remote_at_zero) {
  check_view(view);
  // Model of the remaining negotiation: flows settle in decreasing order of
  // their best combined sum (the agreed selection rule), and proposers
  // alternate, so tie resolution alternates between my tie-break and the
  // remote's. This is what lets an ISP trust its own upcoming turns while
  // staying realistic about the counterparty's (Fig. 4b no-loss, §5.4
  // premature termination against cheats).
  struct Item {
    int combined;
    double own_if_mine;
    double own_if_remote;
  };
  std::vector<Item> items;
  const std::size_t n = view.remaining->size();
  items.reserve(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    if (!(*view.remaining)[pos]) continue;
    bool have = false;
    const int combined = max_combined(view, pos, have);
    if (!have) continue;
    Item item;
    item.combined = combined;
    item.own_if_mine = projected_own_value(view, pos, /*selector_is_me=*/true, have);
    item.own_if_remote =
        projected_own_value(view, pos, /*selector_is_me=*/false, have);
    items.push_back(item);
  }
  // Stable: equal-combined flows keep list order, so the projection is
  // deterministic on both sides of the wire.
  std::stable_sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.combined > b.combined;
  });
  Projection p;
  double run = 0.0;
  bool mine = my_turn_first;
  for (const Item& it : items) {
    double v = mine ? it.own_if_mine : it.own_if_remote;
    if (floor_remote_at_zero && !mine) v = std::max(v, 0.0);
    // nexit-lint: allow(float-accumulate): running prefix of the alternating
    // projection — inherently sequential, order IS the semantics
    run += v;
    p.peak = std::max(p.peak, run);
    mine = !mine;
  }
  p.end = run;
  return p;
}

}  // namespace nexit::core
