#include "core/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/registry.hpp"

namespace nexit::core {

namespace {

/// Bit-level equality of two evaluations (telemetry fields excluded): the
/// contract evaluate_incremental() must honour versus a full recompute.
bool same_evaluation_bits(const Evaluation& a, const Evaluation& b) {
  if (a.true_value.size() != b.true_value.size()) return false;
  for (std::size_t i = 0; i < a.true_value.size(); ++i) {
    if (a.true_value[i].size() != b.true_value[i].size()) return false;
    if (!a.true_value[i].empty() &&
        std::memcmp(a.true_value[i].data(), b.true_value[i].data(),
                    a.true_value[i].size() * sizeof(double)) != 0)
      return false;
  }
  if (a.classes.flows.size() != b.classes.flows.size()) return false;
  for (std::size_t i = 0; i < a.classes.flows.size(); ++i) {
    if (a.classes.flows[i].flow != b.classes.flows[i].flow ||
        a.classes.flows[i].pref_of_candidate !=
            b.classes.flows[i].pref_of_candidate)
      return false;
  }
  return true;
}

}  // namespace

std::string to_string(StopReason r) {
  switch (r) {
    case StopReason::kExhausted: return "exhausted";
    case StopReason::kEarlyStopA: return "early-stop-a";
    case StopReason::kEarlyStopB: return "early-stop-b";
    case StopReason::kGainWouldGoNegative: return "gain-would-go-negative";
    case StopReason::kNoProposal: return "no-proposal";
  }
  return "?";
}

NegotiationEngine::NegotiationEngine(const NegotiationProblem& problem,
                                     PreferenceOracle& isp_a,
                                     PreferenceOracle& isp_b,
                                     NegotiationConfig config)
    : problem_(problem), oracles_{&isp_a, &isp_b}, config_(config),
      rng_(config.seed) {
  problem_.validate();
  tentative_ = problem_.default_assignment;
  remaining_.assign(problem_.negotiable.size(), 1);
  banned_.assign(problem_.negotiable.size(),
                 std::vector<char>(problem_.candidates.size(), 0));
  default_ci_.reserve(problem_.negotiable.size());
  for (std::size_t pos = 0; pos < problem_.negotiable.size(); ++pos)
    default_ci_.push_back(problem_.default_candidate(pos));
}

bool NegotiationEngine::cross_check_due() const {
  if (config_.verify_incremental_every < 0) return false;  // explicitly off
  if (config_.verify_incremental_every > 0)
    return (incremental_refreshes_ %
            static_cast<std::size_t>(config_.verify_incremental_every)) == 0;
#ifndef NDEBUG
  return true;  // debug builds audit every incremental refresh
#else
  return false;
#endif
}

void NegotiationEngine::refresh_preferences() {
  const OracleContext ctx{&problem_, &tentative_, &remaining_};
  const bool incremental = config_.incremental_evaluation && evaluated_once_;
  for (int s = 0; s < 2; ++s) {
    if (incremental) {
      const obs::PhaseTimer timer(obs::Phase::kEvaluateIncremental);
      truth_[s] = oracles_[s]->evaluate_incremental(ctx, pending_delta_);
      ++eval_calls_incremental_;
    } else {
      const obs::PhaseTimer timer(obs::Phase::kEvaluateFull);
      truth_[s] = oracles_[s]->evaluate(ctx);
      ++eval_calls_full_;
    }
    eval_rows_computed_ += truth_[s].rows_recomputed;
    eval_rows_full_equivalent_ += problem_.negotiable.size();
  }
  if (incremental) {
    ++incremental_refreshes_;
    if (cross_check_due()) {
      // The audit: a full recompute must reproduce the incremental result
      // bit for bit. Running evaluate() also rebuilds the oracle's internal
      // state from the context, so later incremental calls continue from a
      // verified baseline.
      for (int s = 0; s < 2; ++s) {
        const Evaluation full = oracles_[s]->evaluate(ctx);
        if (!same_evaluation_bits(full, truth_[s]))
          throw std::logic_error(
              "incremental evaluation diverged from full recompute (side " +
              std::to_string(s) + ")");
      }
    }
  }
  pending_delta_.clear();
  evaluated_once_ = true;
  disclosed_[0] =
      oracles_[0]->disclose(ctx, truth_[0].classes, truth_[1].classes);
  disclosed_[1] =
      oracles_[1]->disclose(ctx, truth_[1].classes, truth_[0].classes);
  for (const PreferenceList* list : {&truth_[0].classes, &truth_[1].classes,
                                     &disclosed_[0], &disclosed_[1]}) {
    if (list->flows.size() != problem_.negotiable.size())
      throw std::logic_error("oracle returned wrong number of flows");
    for (const auto& fp : list->flows)
      if (fp.pref_of_candidate.size() != problem_.candidates.size())
        throw std::logic_error("oracle returned wrong number of candidates");
  }
  for (const Evaluation* e : {&truth_[0], &truth_[1]}) {
    if (e->true_value.size() != problem_.negotiable.size())
      throw std::logic_error("oracle returned wrong true_value shape");
    for (const auto& row : e->true_value)
      if (row.size() != problem_.candidates.size())
        throw std::logic_error("oracle returned wrong true_value shape");
  }
}

int NegotiationEngine::pick_turn(std::size_t round) const {
  switch (config_.turn) {
    case TurnPolicy::kAlternate:
      return static_cast<int>(round % 2);
    case TurnPolicy::kLowerGain:
      if (disclosed_gain_[0] == disclosed_gain_[1])
        return static_cast<int>(round % 2);
      return disclosed_gain_[0] < disclosed_gain_[1] ? 0 : 1;
    case TurnPolicy::kCoinToss:
      return rng_.next_bool() ? 0 : 1;
  }
  throw std::logic_error("pick_turn: bad policy");
}

std::vector<std::size_t> NegotiationEngine::compute_rollback(int side) const {
  // Greedy: while below default, roll back the still-standing concession
  // that hurts `side` most (ties toward the lowest flow position). Identical
  // logic runs in NegotiationAgent, so wire sessions settle the same way.
  std::vector<std::size_t> picked;
  double cum = true_gain_[side];
  std::vector<char> taken(accepted_moves_.size(), 0);
  while (cum < -1e-12) {
    std::ptrdiff_t worst = -1;
    for (std::size_t i = 0; i < accepted_moves_.size(); ++i) {
      const AcceptedMove& m = accepted_moves_[i];
      if (m.rolled_back || taken[i] || m.value[side] >= 0.0) continue;
      if (worst < 0 ||
          m.value[side] <
              accepted_moves_[static_cast<std::size_t>(worst)].value[side])
        worst = static_cast<std::ptrdiff_t>(i);
    }
    if (worst < 0) break;  // nothing left to roll back
    taken[static_cast<std::size_t>(worst)] = 1;
    cum -= accepted_moves_[static_cast<std::size_t>(worst)].value[side];
    picked.push_back(static_cast<std::size_t>(worst));
  }
  return picked;
}

StrategyView NegotiationEngine::view_of(int side) const {
  StrategyView v;
  v.remaining = &remaining_;
  v.banned = &banned_;
  v.default_ci = &default_ci_;
  v.my_disclosed = &disclosed_[side];
  v.remote_disclosed = &disclosed_[1 - side];
  v.my_true_value = &truth_[side].true_value;
  return v;
}

NegotiationOutcome NegotiationEngine::run() {
  NegotiationOutcome outcome;
  refresh_preferences();

  const double total_volume = problem_.negotiable_volume();
  const bool reassign_enabled =
      config_.reassign_traffic_fraction > 0.0 &&
      (oracles_[0]->wants_reassignment() || oracles_[1]->wants_reassignment());
  const double reassign_quantum =
      config_.reassign_traffic_fraction * total_volume;
  double volume_since_reassign = 0.0;

  std::size_t remaining_count = problem_.negotiable.size();
  std::size_t round = 0;

  while (remaining_count > 0) {
    const int proposer = pick_turn(round);

    if (config_.termination == TerminationPolicy::kEarly) {
      // The ISP holding the turn stops once it perceives no additional gain
      // in continuing AND continuing would actually hurt it; a flat future
      // is harmless (Fig. 3's ISP-A proposes a zero-gain alternative). The
      // decision sits with the turn holder: mid-trade compromises already
      // accepted are honoured until one's own next turn, which is what lets
      // trades across flows complete and both ISPs end ahead.
      const Projection f = project_future(view_of(proposer));
      if (f.peak <= 0 && f.end < 0) {
        outcome.stop_reason =
            proposer == 0 ? StopReason::kEarlyStopA : StopReason::kEarlyStopB;
        break;
      }
    }
    ProposalChoice sel{};
    util::Rng* tie_rng =
        config_.tie_break == TieBreak::kRandom ? &rng_ : nullptr;
    if (!select_proposal(view_of(proposer), config_.proposal, tie_rng, sel)) {
      outcome.stop_reason = StopReason::kNoProposal;
      break;
    }

    const double pa = truth_[0].true_value[sel.pos][sel.ci];
    const double pb = truth_[1].true_value[sel.pos][sel.ci];
    if (config_.termination == TerminationPolicy::kFull) {
      // Continue only while both cumulative gains stay non-negative.
      if (true_gain_[0] + pa < 0 || true_gain_[1] + pb < 0) {
        outcome.stop_reason = StopReason::kGainWouldGoNegative;
        break;
      }
    }

    const int responder = 1 - proposer;
    const double responder_pref =
        truth_[responder].true_value[sel.pos][sel.ci];
    bool accepted = true;
    switch (config_.acceptance) {
      case AcceptancePolicy::kAlwaysAccept:
        break;
      case AcceptancePolicy::kVetoOwnLoss:
        accepted = responder_pref >= 0;
        break;
      case AcceptancePolicy::kProtective: {
        if (true_gain_[responder] + responder_pref < 0) {
          // Would dip below default: accept only if the projected future
          // (without this flow) can recover the deficit even under
          // pessimistic tie resolution.
          remaining_[sel.pos] = 0;
          const Projection rest = project_future(view_of(responder));
          remaining_[sel.pos] = 1;
          accepted = true_gain_[responder] + responder_pref + rest.peak >= 0;
        }
        break;
      }
    }

    RoundTrace tr;
    tr.round = round;
    tr.proposer = proposer;
    tr.flow = problem_.negotiable_flow(sel.pos).id;
    tr.interconnection = problem_.candidates[sel.ci];
    tr.pref_a = disclosed_[0].flows[sel.pos].pref_of_candidate[sel.ci];
    tr.pref_b = disclosed_[1].flows[sel.pos].pref_of_candidate[sel.ci];
    tr.accepted = accepted;

    if (!accepted) {
      banned_[sel.pos][sel.ci] = 1;
    } else {
      const std::size_t ix = problem_.candidates[sel.ci];
      // Delta bookkeeping feeds evaluate_incremental(); skip it entirely
      // when full recomputes were requested (keeps --incremental=0 honest).
      const bool record_delta = config_.incremental_evaluation;
      for (std::size_t flow_index : problem_.members_of(sel.pos)) {
        const std::size_t from = tentative_.ix_of_flow[flow_index];
        if (record_delta && from != ix)
          pending_delta_.moves.push_back(
              EvaluationDelta::Move{flow_index, from, ix});
        tentative_.ix_of_flow[flow_index] = ix;
      }
      if (record_delta) pending_delta_.settled_positions.push_back(sel.pos);
      if (ix != problem_.default_ix(sel.pos))
        accepted_moves_.push_back(AcceptedMove{sel.pos, sel.ci, {pa, pb}});
      true_gain_[0] += pa;
      true_gain_[1] += pb;
      disclosed_gain_[0] += disclosed_[0].flows[sel.pos].pref_of_candidate[sel.ci];
      disclosed_gain_[1] += disclosed_[1].flows[sel.pos].pref_of_candidate[sel.ci];
      remaining_[sel.pos] = 0;
      --remaining_count;
      ++outcome.flows_negotiated;
      if (ix != problem_.default_ix(sel.pos)) ++outcome.flows_moved;
      for (std::size_t flow_index : problem_.members_of(sel.pos))
        // nexit-lint: allow(float-accumulate): member order mirrors the wire
        // agent's quantum accumulation — both sides must drift identically
        volume_since_reassign += (*problem_.flows)[flow_index].size;

      if (reassign_enabled && remaining_count > 0 &&
          volume_since_reassign >= reassign_quantum) {
        refresh_preferences();
        volume_since_reassign = 0.0;
        ++outcome.reassignments;
        tr.reassigned_after = true;
      }
    }

    if (config_.record_trace) outcome.trace.push_back(tr);
    ++round;
  }

  if (config_.settlement_rollback) {
    // §6 settlement: sides alternate rolling back their losing concessions,
    // starting with the side that stopped the negotiation. The same loop
    // runs on both ends of the wire protocol (ROLLBACK messages).
    int who = 0;
    switch (outcome.stop_reason) {
      case StopReason::kEarlyStopA: who = 0; break;
      case StopReason::kEarlyStopB: who = 1; break;
      default: who = static_cast<int>(round % 2); break;
    }
    bool previous_empty = false;
    for (;;) {
      const std::vector<std::size_t> moves = compute_rollback(who);
      for (std::size_t mi : moves) {
        AcceptedMove& m = accepted_moves_[mi];
        for (std::size_t flow_index : problem_.members_of(m.pos))
          tentative_.ix_of_flow[flow_index] = problem_.default_ix(m.pos);
        true_gain_[0] -= m.value[0];
        true_gain_[1] -= m.value[1];
        m.rolled_back = true;
        ++outcome.flows_rolled_back;
      }
      if (moves.empty() && previous_empty) break;
      previous_empty = moves.empty();
      who = 1 - who;
    }
  }

  outcome.evaluate_calls_full = eval_calls_full_;
  outcome.evaluate_calls_incremental = eval_calls_incremental_;
  outcome.evaluate_rows_computed = eval_rows_computed_;
  outcome.evaluate_rows_full_equivalent = eval_rows_full_equivalent_;
  outcome.assignment = tentative_;
  outcome.true_gain_a = true_gain_[0];
  outcome.true_gain_b = true_gain_[1];
  outcome.disclosed_gain_a = disclosed_gain_[0];
  outcome.disclosed_gain_b = disclosed_gain_[1];
  outcome.rounds = round;

  // Registry bumps happen on the worker thread that ran the negotiation;
  // uint64 shard sums are commutative, so the merged "obs" section is the
  // same for every --threads=N.
  obs::Registry& reg = obs::Registry::global();
  reg.add("engine.negotiations", 1);
  reg.add("engine.rounds", round);
  reg.add("engine.flows_moved", outcome.flows_moved);
  reg.add("engine.evaluate_calls_full", eval_calls_full_);
  reg.add("engine.evaluate_calls_incremental", eval_calls_incremental_);
  reg.add("engine.evaluate_rows_computed", eval_rows_computed_);
  reg.add("engine.evaluate_rows_full_equivalent", eval_rows_full_equivalent_);
  reg.observe("engine.rounds_per_negotiation", round);

  return outcome;
}

}  // namespace nexit::core
