#pragma once

#include <memory>

#include "core/oracle.hpp"

namespace nexit::core {

/// The §5.4 cheating strategy, as a decorator over a truthful oracle.
///
/// The cheater is assumed to know the other ISP's preferences perfectly. For
/// each flow it inflates the preference of its own best alternative just
/// enough that this alternative attains the maximum combined sum (so the
/// max-combined-gain selection rule picks it), preserving the relative
/// ordering of its original preferences as far as possible. When inflation
/// alone cannot reach the maximum sum (the class cap P is in the way), it
/// instead deflates the other alternatives' preferences accordingly.
///
/// True valuations (evaluate()) are untouched — the lie only affects what is
/// disclosed, so the engine's private decisions (stop votes, reported gains)
/// still use the cheater's real interests.
class CheatingOracle : public PreferenceOracle {
 public:
  /// `inner` is the cheater's honest self-evaluation; must outlive this.
  /// `range` is the negotiated preference class bound P.
  CheatingOracle(PreferenceOracle& inner, int range);

  Evaluation evaluate(const OracleContext& ctx) override;
  Evaluation evaluate_incremental(const OracleContext& ctx,
                                  const EvaluationDelta& delta) override;
  PreferenceList disclose(const OracleContext& ctx,
                          const PreferenceList& own_truth,
                          const PreferenceList& remote_truth) override;
  [[nodiscard]] bool wants_reassignment() const override;

  /// The lie itself, exposed for tests: transforms one flow's preference
  /// vector given the remote's vector for the same flow.
  static std::vector<PrefClass> transform_flow(
      const std::vector<PrefClass>& own, const std::vector<PrefClass>& remote,
      int range);

 private:
  PreferenceOracle* inner_;
  int range_;
};

}  // namespace nexit::core
