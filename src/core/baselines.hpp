#pragma once

#include <vector>

#include "routing/pair_routing.hpp"
#include "util/rng.hpp"

namespace nexit::core {

/// The Fig. 5 strawman strategies: instead of negotiating across the whole
/// flow set, consider each pair of opposite-direction flows between the same
/// two PoPs and merely discard obviously bad interconnection combinations.
enum class FlowPairStrategy {
  /// Reject combinations worse than the default for BOTH ISPs
  /// (keeps everything not Pareto-dominated ... by the default).
  kFlowPareto,
  /// Reject combinations worse than the default for EITHER ISP.
  kFlowBothBetter,
};

/// Applies the strategy to a bidirectional flow set (one A->B and one B->A
/// flow per PoP pair, as built by TrafficMatrix::build_bidirectional).
/// For each opposite-direction pair, candidate combinations (ix for the A->B
/// flow x ix for the B->A flow) that survive the filter are collected and
/// one is picked uniformly at random (seeded); an ISP's cost for a
/// combination is the distance the two flows travel inside its network.
/// Flows without an opposite partner keep their default.
routing::Assignment flow_pair_strategy(const routing::PairRouting& routing,
                                       const std::vector<traffic::Flow>& flows,
                                       const std::vector<std::size_t>& candidates,
                                       const routing::Assignment& defaults,
                                       FlowPairStrategy strategy,
                                       util::Rng& rng);

}  // namespace nexit::core
