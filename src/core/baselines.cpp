#include "core/baselines.hpp"

#include <map>
#include <stdexcept>
#include <utility>

namespace nexit::core {

routing::Assignment flow_pair_strategy(const routing::PairRouting& routing,
                                       const std::vector<traffic::Flow>& flows,
                                       const std::vector<std::size_t>& candidates,
                                       const routing::Assignment& defaults,
                                       FlowPairStrategy strategy,
                                       util::Rng& rng) {
  if (defaults.ix_of_flow.size() != flows.size())
    throw std::invalid_argument("flow_pair_strategy: defaults size mismatch");
  if (candidates.empty())
    throw std::invalid_argument("flow_pair_strategy: no candidates");

  routing::Assignment result = defaults;

  // Pair up opposite-direction flows between the same PoPs:
  // key = (pop in A, pop in B).
  std::map<std::pair<std::int32_t, std::int32_t>, std::pair<int, int>> pairs;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const traffic::Flow& f = flows[i];
    const bool a2b = f.direction == traffic::Direction::kAtoB;
    const auto key = a2b ? std::make_pair(f.src.value(), f.dst.value())
                         : std::make_pair(f.dst.value(), f.src.value());
    auto& entry = pairs.try_emplace(key, -1, -1).first->second;
    (a2b ? entry.first : entry.second) = static_cast<int>(i);
  }

  for (const auto& [key, entry] : pairs) {
    (void)key;
    const auto [fi_ab, fi_ba] = entry;
    if (fi_ab < 0 || fi_ba < 0) continue;  // unpaired flow: keep default
    const traffic::Flow& fab = flows[static_cast<std::size_t>(fi_ab)];
    const traffic::Flow& fba = flows[static_cast<std::size_t>(fi_ba)];

    // Cost for one ISP = distance both flows travel inside it.
    auto side_cost = [&](std::size_t ix_ab, std::size_t ix_ba, int side) {
      return routing.km_in_side(fab, ix_ab, side) +
             routing.km_in_side(fba, ix_ba, side);
    };

    const std::size_t def_ab = defaults.ix_of_flow[static_cast<std::size_t>(fi_ab)];
    const std::size_t def_ba = defaults.ix_of_flow[static_cast<std::size_t>(fi_ba)];
    const double def_cost_a = side_cost(def_ab, def_ba, 0);
    const double def_cost_b = side_cost(def_ab, def_ba, 1);

    std::vector<std::pair<std::size_t, std::size_t>> surviving;
    for (std::size_t ix_ab : candidates) {
      for (std::size_t ix_ba : candidates) {
        const double ca = side_cost(ix_ab, ix_ba, 0);
        const double cb = side_cost(ix_ab, ix_ba, 1);
        const bool worse_a = ca > def_cost_a + 1e-9;
        const bool worse_b = cb > def_cost_b + 1e-9;
        bool keep = false;
        switch (strategy) {
          case FlowPairStrategy::kFlowPareto:
            keep = !(worse_a && worse_b);
            break;
          case FlowPairStrategy::kFlowBothBetter:
            keep = !worse_a && !worse_b;
            break;
        }
        if (keep) surviving.emplace_back(ix_ab, ix_ba);
      }
    }
    // The default combination always survives either filter, so the set is
    // never empty; pick uniformly at random as the paper does.
    const auto& pick = surviving[rng.pick_index(surviving.size())];
    result.ix_of_flow[static_cast<std::size_t>(fi_ab)] = pick.first;
    result.ix_of_flow[static_cast<std::size_t>(fi_ba)] = pick.second;
  }
  return result;
}

}  // namespace nexit::core
