#pragma once

#include "core/preference.hpp"
#include "core/problem.hpp"

namespace nexit::core {

/// Snapshot the oracle sees when (re)computing preferences: the problem, the
/// current tentative assignment (already-negotiated flows sit on their agreed
/// interconnection, everything else on its default), and which negotiable
/// flows are still open. Load-dependent oracles must treat open flows as
/// absent — the paper's preference classes "are assigned independently of
/// each other" (Fig. 3: ISP-B is initially indifferent), and reassignment
/// then "takes into account the expected state of the network, assuming that
/// the first accepted choice was implemented".
struct OracleContext {
  const NegotiationProblem* problem = nullptr;
  const routing::Assignment* tentative = nullptr;
  /// Aligned with problem->negotiable; nonzero = still un-negotiated.
  const std::vector<char>* remaining = nullptr;
};

/// One ISP's internal evaluation: the exact metric deltas (its private,
/// full-precision view — e.g. km saved, or load-ratio reduction, versus the
/// default alternative) plus the opaque classes derived from them. Joint
/// decisions see only classes; the ISP's own decisions (stop voting, vetoes,
/// gain accounting) use the exact values — quantisation exists for
/// *disclosure*, an ISP never forgets its own metric.
struct Evaluation {
  /// true_value[pos][ci]: metric improvement versus the default alternative
  /// (positive = better for this ISP), full precision.
  std::vector<std::vector<double>> true_value;
  /// The corresponding opaque preference classes.
  PreferenceList classes;
};

/// ISP-internal evaluation of routing choices (paper §4 step 1). Each ISP
/// maps flow alternatives to opaque preference classes based on its private
/// optimisation criterion; the engine never sees the underlying metric.
///
/// `evaluate` returns the ISP's *true* valuation. `disclose` produces what
/// the ISP actually advertises — identical to `evaluate().classes` for
/// honest ISPs (the default); a cheating ISP overrides it (see
/// cheating.hpp). The engine uses disclosed classes for joint decisions and
/// exact true values for each ISP's private decisions, which is exactly the
/// information structure of §5.4.
class PreferenceOracle {
 public:
  virtual ~PreferenceOracle() = default;

  /// True valuation for every negotiable flow, aligned with
  /// problem->negotiable (rows) and problem->candidates (columns).
  virtual Evaluation evaluate(const OracleContext& ctx) = 0;

  /// What gets advertised to the other ISP. `own_truth` is this oracle's
  /// evaluate() result; `remote_truth` is the other ISP's true preference
  /// list — §5.4 assumes the cheater knows it perfectly (for a truthful
  /// remote it equals what the remote discloses). Honest oracles ignore it.
  virtual PreferenceList disclose(const OracleContext& ctx,
                                  const PreferenceList& own_truth,
                                  const PreferenceList& remote_truth) {
    (void)ctx;
    (void)remote_truth;
    return own_truth;
  }

  /// True if preferences depend on the tentative assignment and must be
  /// recomputed as flows are negotiated (bandwidth-style oracles).
  [[nodiscard]] virtual bool wants_reassignment() const { return false; }
};

}  // namespace nexit::core
