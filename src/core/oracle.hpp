#pragma once

#include "core/preference.hpp"
#include "core/problem.hpp"

namespace nexit::core {

/// Snapshot the oracle sees when (re)computing preferences: the problem, the
/// current tentative assignment (already-negotiated flows sit on their agreed
/// interconnection, everything else on its default), and which negotiable
/// flows are still open. Load-dependent oracles must treat open flows as
/// absent — the paper's preference classes "are assigned independently of
/// each other" (Fig. 3: ISP-B is initially indifferent), and reassignment
/// then "takes into account the expected state of the network, assuming that
/// the first accepted choice was implemented".
struct OracleContext {
  const NegotiationProblem* problem = nullptr;
  const routing::Assignment* tentative = nullptr;
  /// Aligned with problem->negotiable; nonzero = still un-negotiated.
  const std::vector<char>* remaining = nullptr;
};

/// What changed in the negotiation since the previous oracle evaluation:
/// the accepted moves (every member flow whose tentative interconnection
/// changed) and the negotiable positions that settled, in acceptance order.
/// The engine accumulates one of these between reassignment quanta and hands
/// it to evaluate_incremental() so a load-dependent oracle can re-score only
/// the preference rows the touched links actually feed.
struct EvaluationDelta {
  struct Move {
    std::size_t flow = 0;     // index into problem->flows
    std::size_t from_ix = 0;  // tentative interconnection before the move
    std::size_t to_ix = 0;    // tentative interconnection after the move
  };
  std::vector<Move> moves;
  /// Indices into problem->negotiable whose remaining bit flipped to 0.
  std::vector<std::size_t> settled_positions;

  [[nodiscard]] bool empty() const {
    return moves.empty() && settled_positions.empty();
  }
  void clear() {
    moves.clear();
    settled_positions.clear();
  }
};

/// One ISP's internal evaluation: the exact metric deltas (its private,
/// full-precision view — e.g. km saved, or load-ratio reduction, versus the
/// default alternative) plus the opaque classes derived from them. Joint
/// decisions see only classes; the ISP's own decisions (stop voting, vetoes,
/// gain accounting) use the exact values — quantisation exists for
/// *disclosure*, an ISP never forgets its own metric.
struct Evaluation {
  /// true_value[pos][ci]: metric improvement versus the default alternative
  /// (positive = better for this ISP), full precision.
  std::vector<std::vector<double>> true_value;
  /// The corresponding opaque preference classes.
  PreferenceList classes;
  /// Telemetry, not semantics: how many preference rows the oracle actually
  /// recomputed to produce this result. A full evaluate() costs one row per
  /// negotiable position; incremental evaluations report only the affected
  /// rows. Excluded from bit-identity comparisons.
  std::size_t rows_recomputed = 0;
};

/// ISP-internal evaluation of routing choices (paper §4 step 1). Each ISP
/// maps flow alternatives to opaque preference classes based on its private
/// optimisation criterion; the engine never sees the underlying metric.
///
/// `evaluate` returns the ISP's *true* valuation. `disclose` produces what
/// the ISP actually advertises — identical to `evaluate().classes` for
/// honest ISPs (the default); a cheating ISP overrides it (see
/// cheating.hpp). The engine uses disclosed classes for joint decisions and
/// exact true values for each ISP's private decisions, which is exactly the
/// information structure of §5.4.
class PreferenceOracle {
 public:
  virtual ~PreferenceOracle() = default;

  /// True valuation for every negotiable flow, aligned with
  /// problem->negotiable (rows) and problem->candidates (columns).
  virtual Evaluation evaluate(const OracleContext& ctx) = 0;

  /// Re-evaluation after `delta` was applied to the tentative assignment
  /// since this oracle's previous evaluate()/evaluate_incremental() call on
  /// the same context. The contract is strict: the result (classes and
  /// true_value) must be *bit-identical* to what a fresh evaluate(ctx) would
  /// return — incrementality may only change how much work is done, never
  /// the answer (the engine cross-checks this in debug builds). The default
  /// is the trivially correct full recompute; stateful oracles override it.
  virtual Evaluation evaluate_incremental(const OracleContext& ctx,
                                          const EvaluationDelta& delta) {
    (void)delta;
    return evaluate(ctx);
  }

  /// What gets advertised to the other ISP. `own_truth` is this oracle's
  /// evaluate() result; `remote_truth` is the other ISP's true preference
  /// list — §5.4 assumes the cheater knows it perfectly (for a truthful
  /// remote it equals what the remote discloses). Honest oracles ignore it.
  virtual PreferenceList disclose(const OracleContext& ctx,
                                  const PreferenceList& own_truth,
                                  const PreferenceList& remote_truth) {
    (void)ctx;
    (void)remote_truth;
    return own_truth;
  }

  /// True if preferences depend on the tentative assignment and must be
  /// recomputed as flows are negotiated (bandwidth-style oracles).
  [[nodiscard]] virtual bool wants_reassignment() const { return false; }
};

}  // namespace nexit::core
