#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/bandwidth_experiment.hpp"
#include "sim/distance_experiment.hpp"
#include "util/thread_pool.hpp"

namespace nexit::util {
namespace {

TEST(ThreadPool, CompletesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  // No workers: submit executes immediately, so plain (unsynchronized)
  // writes are safe and the order is the submission order.
  for (int i = 0; i < 5; ++i)
    pool.submit([&seen] { seen.push_back(std::this_thread::get_id()); });
  EXPECT_EQ(seen.size(), 5u);  // done even before wait()
  pool.wait();
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, OneWorkerRunsOffCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&off_thread, caller] {
      if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
    });
  pool.wait();
  EXPECT_EQ(off_thread.load(), 10);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&completed, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      completed.fetch_add(1);
    });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7);  // the failure does not cancel other tasks
}

TEST(ThreadPool, PropagatesExceptionWithZeroWorkers) {
  ThreadPool pool(0);
  pool.submit([] { throw std::invalid_argument("inline failure"); });
  EXPECT_THROW(pool.wait(), std::invalid_argument);
}

TEST(ThreadPool, ReusableAfterWaitAndAfterError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first batch fails"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);

  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) pool.submit([&count] { count.fetch_add(1); });
  pool.wait();  // the earlier error was consumed by the previous wait()
  EXPECT_EQ(count.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(WorkersForThreads, MapsUserFacingValues) {
  EXPECT_EQ(workers_for_threads(1), 0u);  // serial: no worker threads
  EXPECT_EQ(workers_for_threads(4), 4u);
  // Auto-detect behaves exactly like passing the hardware count — in
  // particular, on a 1-core machine it runs inline (0 workers).
  EXPECT_EQ(workers_for_threads(0),
            workers_for_threads(ThreadPool::hardware_threads()));
}

TEST(WorkersForThreads, RejectsImplausibleCounts) {
  // A negative flag value forced through a size_t cast must be a clear
  // error, not a 2^64-element vector reserve.
  EXPECT_THROW(workers_for_threads(static_cast<std::size_t>(-1)),
               std::invalid_argument);
  EXPECT_THROW(workers_for_threads(5000), std::invalid_argument);
  EXPECT_EQ(workers_for_threads(4096), 4096u);  // the documented bound
}

// ---------------------------------------------------------------------------
// Determinism: the experiment engines must produce bit-identical samples for
// every thread count (the per-pair Rng streams are pre-forked serially).
// ---------------------------------------------------------------------------

sim::UniverseConfig small_universe(std::uint64_t seed) {
  sim::UniverseConfig u;
  u.isp_count = 18;
  u.seed = seed;
  u.max_pairs = 10;
  return u;
}

void expect_identical(const std::vector<sim::DistanceSample>& a,
                      const std::vector<sim::DistanceSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("pair " + a[i].pair_label);
    EXPECT_EQ(a[i].pair_label, b[i].pair_label);
    EXPECT_EQ(a[i].interconnections, b[i].interconnections);
    EXPECT_EQ(a[i].flow_count, b[i].flow_count);
    EXPECT_EQ(a[i].flows_moved, b[i].flows_moved);
    EXPECT_EQ(a[i].default_km, b[i].default_km);
    EXPECT_EQ(a[i].optimal_km, b[i].optimal_km);
    EXPECT_EQ(a[i].negotiated_km, b[i].negotiated_km);
    EXPECT_EQ(a[i].pareto_km, b[i].pareto_km);
    EXPECT_EQ(a[i].bothbetter_km, b[i].bothbetter_km);
    for (int side = 0; side < 2; ++side) {
      EXPECT_EQ(a[i].default_side_km[side], b[i].default_side_km[side]);
      EXPECT_EQ(a[i].optimal_side_km[side], b[i].optimal_side_km[side]);
      EXPECT_EQ(a[i].negotiated_side_km[side], b[i].negotiated_side_km[side]);
    }
    EXPECT_EQ(a[i].flow_gain_pct_optimal, b[i].flow_gain_pct_optimal);
    EXPECT_EQ(a[i].flow_gain_pct_negotiated, b[i].flow_gain_pct_negotiated);
    EXPECT_EQ(a[i].flow_saving_km_negotiated, b[i].flow_saving_km_negotiated);
  }
}

TEST(ExperimentDeterminism, DistanceSamplesIdenticalAcrossThreadCounts) {
  sim::DistanceExperimentConfig cfg;
  cfg.universe = small_universe(21);
  cfg.run_flow_pair_baselines = true;

  cfg.threads = 1;
  const auto serial = sim::run_distance_experiment(cfg);
  ASSERT_FALSE(serial.empty());

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    cfg.threads = threads;
    expect_identical(serial, sim::run_distance_experiment(cfg));
  }
}

TEST(ExperimentDeterminism, BandwidthSamplesIdenticalAcrossThreadCounts) {
  sim::BandwidthExperimentConfig cfg;
  cfg.universe = small_universe(5);
  cfg.universe.max_pairs = 6;
  cfg.include_unilateral = true;

  cfg.threads = 1;
  const auto serial = sim::run_bandwidth_experiment(cfg);
  ASSERT_FALSE(serial.empty());

  cfg.threads = 4;
  const auto parallel = sim::run_bandwidth_experiment(cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    EXPECT_EQ(serial[i].pair_label, parallel[i].pair_label);
    EXPECT_EQ(serial[i].failed_ix, parallel[i].failed_ix);
    EXPECT_EQ(serial[i].affected_flows, parallel[i].affected_flows);
    EXPECT_EQ(serial[i].affected_volume_fraction,
              parallel[i].affected_volume_fraction);
    EXPECT_EQ(serial[i].flows_moved, parallel[i].flows_moved);
    for (int side = 0; side < 2; ++side) {
      EXPECT_EQ(serial[i].mel_default[side], parallel[i].mel_default[side]);
      EXPECT_EQ(serial[i].mel_negotiated[side],
                parallel[i].mel_negotiated[side]);
      EXPECT_EQ(serial[i].mel_optimal[side], parallel[i].mel_optimal[side]);
      EXPECT_EQ(serial[i].mel_unilateral[side],
                parallel[i].mel_unilateral[side]);
    }
    EXPECT_EQ(serial[i].downstream_distance_gain_pct,
              parallel[i].downstream_distance_gain_pct);
  }
}

}  // namespace
}  // namespace nexit::util
