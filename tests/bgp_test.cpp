#include <gtest/gtest.h>

#include "bgp/decision.hpp"
#include "bgp/prefix.hpp"
#include "bgp/route.hpp"

namespace nexit::bgp {
namespace {

TEST(Prefix, ParseAndToString) {
  auto p = Prefix::parse("10.12.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->to_string(), "10.12.0.0/16");
}

TEST(Prefix, ParseMasksHostBits) {
  auto p = Prefix::parse("10.12.255.255/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "10.12.0.0/16");
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0/8").has_value());
  EXPECT_FALSE(Prefix::parse("256.0.0.0/8").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8 junk").has_value());
}

TEST(Prefix, Containment) {
  auto p8 = *Prefix::parse("10.0.0.0/8");
  auto p16 = *Prefix::parse("10.12.0.0/16");
  auto other = *Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(p8.contains(p16));
  EXPECT_FALSE(p16.contains(p8));
  EXPECT_FALSE(p8.contains(other));
  EXPECT_TRUE(p16.more_specific_than(p8));
  EXPECT_FALSE(p8.more_specific_than(p16));
  EXPECT_TRUE(p8.contains(0x0a010203u));
  EXPECT_FALSE(p8.contains(0x0b010203u));
}

TEST(Prefix, DefaultRouteContainsEverything) {
  auto def = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(def.contains(0xffffffffu));
  EXPECT_TRUE(def.contains(*Prefix::parse("10.0.0.0/8")));
}

TEST(Route, Prepending) {
  Route r;
  r.as_path = {7018, 1239};
  Route p = r.with_prepended(7018, 2);
  EXPECT_EQ(p.as_path, (std::vector<std::uint32_t>{7018, 7018, 7018, 1239}));
  EXPECT_EQ(r.as_path.size(), 2u);  // original untouched
  EXPECT_THROW(r.with_prepended(1, -1), std::invalid_argument);
}

TEST(Policy, LocalPrefOrdering) {
  EXPECT_GT(default_local_pref(Relationship::kCustomer),
            default_local_pref(Relationship::kPeer));
  EXPECT_GT(default_local_pref(Relationship::kPeer),
            default_local_pref(Relationship::kProvider));
}

TEST(Policy, ValleyFreeExport) {
  // Customer routes go everywhere.
  EXPECT_TRUE(should_export(Relationship::kCustomer, Relationship::kPeer));
  EXPECT_TRUE(should_export(Relationship::kCustomer, Relationship::kProvider));
  // Peer/provider routes only to customers.
  EXPECT_TRUE(should_export(Relationship::kPeer, Relationship::kCustomer));
  EXPECT_FALSE(should_export(Relationship::kPeer, Relationship::kPeer));
  EXPECT_FALSE(should_export(Relationship::kProvider, Relationship::kPeer));
  EXPECT_FALSE(should_export(Relationship::kProvider, Relationship::kProvider));
}

Route mk(std::uint32_t lp, std::size_t path_len, std::uint32_t med,
         double igp, std::uint32_t neighbor, std::uint32_t rid) {
  Route r;
  r.prefix = *Prefix::parse("10.0.0.0/8");
  r.local_pref = lp;
  r.as_path.assign(path_len, 1);
  r.med = med;
  r.igp_cost = igp;
  r.neighbor_as = neighbor;
  r.router_id = rid;
  return r;
}

TEST(Decision, LocalPrefDominates) {
  std::vector<Route> rs{mk(100, 1, 0, 0, 1, 1), mk(200, 5, 9, 9, 1, 2)};
  EXPECT_EQ(best_route(rs), 1u);
}

TEST(Decision, ShorterAsPathWins) {
  std::vector<Route> rs{mk(100, 3, 0, 0, 1, 1), mk(100, 2, 9, 9, 1, 2)};
  EXPECT_EQ(best_route(rs), 1u);
}

TEST(Decision, PrependingDefeatsPath) {
  // Prepending is how the downstream de-prefers a link (paper §2.1).
  Route a = mk(100, 2, 0, 0.0, 1, 1);
  Route b = mk(100, 2, 0, 5.0, 1, 2);
  // a would win on IGP cost... make b the short one and prepend a.
  std::vector<Route> rs{a.with_prepended(42, 2), b};
  EXPECT_EQ(best_route(rs), 1u);
}

TEST(Decision, MedComparedOnlyWithinNeighbor) {
  // Same neighbor: lower MED wins despite worse IGP.
  std::vector<Route> same{mk(100, 1, 5, 0.0, 7, 1), mk(100, 1, 2, 9.0, 7, 2)};
  EXPECT_EQ(best_route(same), 1u);
  // Different neighbors: MED skipped, IGP (hot potato) decides.
  std::vector<Route> diff{mk(100, 1, 5, 0.0, 7, 1), mk(100, 1, 2, 9.0, 8, 2)};
  EXPECT_EQ(best_route(diff), 0u);
  // Unless always_compare_med is on (honoring MEDs = late exit).
  DecisionConfig honor;
  honor.always_compare_med = true;
  EXPECT_EQ(best_route(diff, honor), 1u);
}

TEST(Decision, IgpCostIsHotPotato) {
  std::vector<Route> rs{mk(100, 1, 0, 3.0, 1, 1), mk(100, 1, 0, 1.0, 2, 2)};
  EXPECT_EQ(best_route(rs), 1u);  // early-exit: nearest exit wins
}

TEST(Decision, RouterIdBreaksFinalTie) {
  std::vector<Route> rs{mk(100, 1, 0, 1.0, 1, 9), mk(100, 1, 0, 1.0, 2, 3)};
  EXPECT_EQ(best_route(rs), 1u);
}

TEST(Decision, EmptyThrows) {
  EXPECT_THROW(best_route({}), std::invalid_argument);
}

TEST(RibIn, AddWithdrawBest) {
  RibIn rib;
  auto p = *Prefix::parse("10.0.0.0/8");
  Route r1 = mk(100, 1, 0, 5.0, 7, 1);
  r1.prefix = p;
  r1.exit_id = 1;
  Route r2 = mk(100, 1, 0, 2.0, 7, 2);
  r2.prefix = p;
  r2.exit_id = 2;
  rib.add_route(r1);
  rib.add_route(r2);
  ASSERT_TRUE(rib.best(p).has_value());
  EXPECT_EQ(rib.best(p)->exit_id, 2u);  // hot potato

  rib.withdraw(p, 7, 2);  // interconnection 2 fails
  ASSERT_TRUE(rib.best(p).has_value());
  EXPECT_EQ(rib.best(p)->exit_id, 1u);

  rib.withdraw(p, 7, 1);
  EXPECT_FALSE(rib.best(p).has_value());
  EXPECT_EQ(rib.prefix_count(), 0u);
}

TEST(RibIn, ReplaceOnReadvertise) {
  RibIn rib;
  auto p = *Prefix::parse("10.0.0.0/8");
  Route r = mk(100, 1, 0, 5.0, 7, 1);
  r.prefix = p;
  r.exit_id = 1;
  rib.add_route(r);
  r.igp_cost = 1.0;
  rib.add_route(r);  // same (neighbor, exit): replaces
  EXPECT_EQ(rib.candidates(p).size(), 1u);
  EXPECT_DOUBLE_EQ(rib.candidates(p)[0].igp_cost, 1.0);
}

TEST(RibIn, NegotiatedLocalPrefOverrideWins) {
  // §6: once a path is negotiated, the ISP implements it with local-pref.
  RibIn rib;
  auto p = *Prefix::parse("10.0.0.0/8");
  Route near = mk(100, 1, 0, 1.0, 7, 1);
  near.prefix = p;
  near.exit_id = 1;
  Route far = mk(100, 1, 0, 9.0, 7, 2);
  far.prefix = p;
  far.exit_id = 2;
  rib.add_route(near);
  rib.add_route(far);
  EXPECT_EQ(rib.best(p)->exit_id, 1u);  // early exit by default
  rib.apply_local_pref_override(p, 2, 500);
  EXPECT_EQ(rib.best(p)->exit_id, 2u);  // negotiated exit now wins
  EXPECT_THROW(rib.apply_local_pref_override(p, 99, 500), std::invalid_argument);
  EXPECT_THROW(
      rib.apply_local_pref_override(*Prefix::parse("99.0.0.0/8"), 1, 500),
      std::invalid_argument);
}

}  // namespace
}  // namespace nexit::bgp
