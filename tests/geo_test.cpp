#include <gtest/gtest.h>

#include "geo/city_db.hpp"
#include "geo/coord.hpp"

namespace nexit::geo {
namespace {

TEST(Haversine, ZeroForSamePoint) {
  Coord c{47.61, -122.33};
  EXPECT_DOUBLE_EQ(haversine_km(c, c), 0.0);
}

TEST(Haversine, Symmetric) {
  Coord a{40.71, -74.01}, b{34.05, -118.24};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, KnownDistanceNycToLa) {
  // Great-circle NYC-LA is ~3940 km.
  Coord nyc{40.71, -74.01}, la{34.05, -118.24};
  EXPECT_NEAR(haversine_km(nyc, la), 3940.0, 40.0);
}

TEST(Haversine, KnownDistanceLondonToParis) {
  Coord london{51.51, -0.13}, paris{48.86, 2.35};
  EXPECT_NEAR(haversine_km(london, paris), 343.0, 10.0);
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  Coord a{0.0, 0.0}, b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 10.0);
}

TEST(Haversine, TriangleInequalityOnSamples) {
  Coord xs[] = {{40.71, -74.01}, {34.05, -118.24}, {41.88, -87.63},
                {51.51, -0.13}, {35.68, 139.69}};
  for (const auto& a : xs)
    for (const auto& b : xs)
      for (const auto& c : xs)
        EXPECT_LE(haversine_km(a, c), haversine_km(a, b) + haversine_km(b, c) + 1e-6);
}

TEST(CityDb, BuiltinNonEmptyAndPositivePopulations) {
  const CityDb& db = CityDb::builtin();
  EXPECT_GE(db.size(), 100u);
  for (const auto& c : db.cities()) {
    EXPECT_GT(c.population_millions, 0.0) << c.name;
    EXPECT_GE(c.coord.lat_deg, -90.0);
    EXPECT_LE(c.coord.lat_deg, 90.0);
    EXPECT_GE(c.coord.lon_deg, -180.0);
    EXPECT_LE(c.coord.lon_deg, 180.0);
  }
}

TEST(CityDb, NamesAreUnique) {
  const CityDb& db = CityDb::builtin();
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto found = db.find(db.at(i).name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, i) << "duplicate city name " << db.at(i).name;
  }
}

TEST(CityDb, FindMissingReturnsNullopt) {
  EXPECT_FALSE(CityDb::builtin().find("Atlantis").has_value());
}

TEST(CityDb, TotalPopulationIsSum) {
  const CityDb& db = CityDb::builtin();
  double sum = 0.0;
  for (const auto& c : db.cities()) sum += c.population_millions;
  EXPECT_DOUBLE_EQ(db.total_population(), sum);
}

TEST(CityDb, EmptyListThrows) {
  EXPECT_THROW(CityDb({}), std::invalid_argument);
}

TEST(CityDb, NonPositivePopulationThrows) {
  EXPECT_THROW(CityDb({City{"X", {0, 0}, 0.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace nexit::geo
