#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "util/digest.hpp"
#include "util/flags.hpp"
#include "util/ids.hpp"
#include "util/json_report.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nexit::util {
namespace {

struct FooTag {};
struct BarTag {};
using FooId = StrongId<FooTag>;
using BarId = StrongId<BarTag>;

TEST(StrongId, DefaultIsInvalid) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  FooId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42);
}

TEST(StrongId, Comparisons) {
  EXPECT_LT(FooId{1}, FooId{2});
  EXPECT_NE(FooId{1}, FooId{2});
  EXPECT_EQ(FooId{7}, FooId{7});
}

TEST(StrongId, DistinctTagsDoNotConvert) {
  static_assert(!std::is_convertible_v<FooId, BarId>);
  static_assert(!std::is_convertible_v<int, FooId>);
}

TEST(StrongId, Hashable) {
  std::set<FooId> s{FooId{1}, FooId{2}, FooId{1}};
  EXPECT_EQ(s.size(), 2u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.next_gaussian());
  EXPECT_NEAR(mean(xs), 0.0, 0.05);
  EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(5);
  Rng c1 = a.fork();
  Rng a2(5);
  Rng c2 = a2.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, MeanMedian) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
}

TEST(Stats, MeanEmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, PercentileOutOfRangeThrows) {
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, PercentileLeavesInputUntouched) {
  // percentile/median take the sample by const reference and sort an
  // internal copy; the caller's ordering must survive.
  const std::vector<double> xs{5, 1, 4, 2, 3};
  const std::vector<double> original = xs;
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_EQ(xs, original);
}

TEST(Cdf, SizeStableAcrossAddAndSortCycles) {
  // Regression for the dead ternary in size(): the count must track add()
  // exactly, whether or not a query sorted the sample in between.
  Cdf c;
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.empty());
  for (int i = 0; i < 5; ++i) {
    c.add(5.0 - i);
    EXPECT_EQ(c.size(), static_cast<std::size_t>(i + 1));
  }
  (void)c.value_at(0.5);  // forces a sort
  EXPECT_EQ(c.size(), 5u);
  c.add(0.0);  // un-sorts again
  EXPECT_EQ(c.size(), 6u);
  (void)c.min();
  (void)c.fraction_leq(2.0);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_FALSE(c.empty());
}

TEST(Cdf, FractionLeq) {
  Cdf c({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(c.fraction_leq(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_leq(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.fraction_leq(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_leq(10), 1.0);
}

TEST(Cdf, ValueAtInverse) {
  Cdf c({10, 20, 30});
  EXPECT_DOUBLE_EQ(c.value_at(0.0), 10);
  EXPECT_DOUBLE_EQ(c.value_at(1.0), 30);
  EXPECT_DOUBLE_EQ(c.value_at(0.5), 20);
}

TEST(Cdf, AddThenQuery) {
  Cdf c;
  c.add(3);
  c.add(1);
  c.add(2);
  EXPECT_DOUBLE_EQ(c.min(), 1);
  EXPECT_DOUBLE_EQ(c.max(), 3);
  EXPECT_DOUBLE_EQ(c.value_at(0.5), 2);
}

TEST(Cdf, EmptyThrows) {
  Cdf c;
  EXPECT_THROW((void)c.value_at(0.5), std::logic_error);
  EXPECT_THROW((void)c.min(), std::logic_error);
}

TEST(Cdf, FormatTableHasHeaderAndRows) {
  Cdf a({1, 2, 3});
  Cdf b({4, 5, 6});
  const std::string t = format_cdf_table({"one", "two"}, {&a, &b}, {50.0, 90.0});
  EXPECT_NE(t.find("one"), std::string::npos);
  EXPECT_NE(t.find("two"), std::string::npos);
  EXPECT_NE(t.find("50.0%"), std::string::npos);
}

TEST(Result, OkPath) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, ErrorPath) {
  Result<int> r(make_error("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_THROW((void)r.value(), std::runtime_error);
}

TEST(Flags, ParsesEqualsAndBareForms) {
  const char* argv[] = {"prog", "--pairs=20", "--seed=7", "--verbose", "pos"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("pairs", 0), 20);
  EXPECT_EQ(f.get_int("seed", 0), 7);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("absent", -1), -1);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
}

TEST(Flags, DoubleAndString) {
  const char* argv[] = {"prog", "--ratio=2.5", "--name=abc"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(f.get_string("name", ""), "abc");
}

TEST(Flags, UnknownListsFlagsNeverQueried) {
  const char* argv[] = {"prog", "--seed=7", "--seeed=9", "--verbose"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("seed", 0), 7);
  const std::vector<std::string> unknown = f.unknown();
  ASSERT_EQ(unknown.size(), 2u);  // sorted: the typo and the unread bare flag
  EXPECT_EQ(unknown[0], "seeed");
  EXPECT_EQ(unknown[1], "verbose");
}

TEST(Flags, QueryingWithAnyAccessorMarksKnown) {
  const char* argv[] = {"prog", "--a=1", "--b=2.0", "--c=x", "--d", "--e"};
  Flags f(6, const_cast<char**>(argv));
  (void)f.get_int("a", 0);
  (void)f.get_double("b", 0.0);
  (void)f.get_string("c", "");
  (void)f.get_bool("d", false);
  (void)f.has("e");
  EXPECT_TRUE(f.unknown().empty());
}

TEST(Flags, QueryingAbsentNamesLeavesNoUnknowns) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("missing", 3), 3);
  EXPECT_TRUE(f.unknown().empty());
}

TEST(Flags, KvConstructorMirrorsTheCommandLineForm) {
  Flags f(std::vector<std::string>{"seed=7", "verbose", "name=a=b"});
  EXPECT_EQ(f.get_int("seed", 0), 7);
  EXPECT_TRUE(f.get_bool("verbose", false));
  // Everything after the first '=' is the value, like --name=a=b.
  EXPECT_EQ(f.get_string("name", ""), "a=b");
  EXPECT_TRUE(f.unknown().empty());
  EXPECT_TRUE(f.positional().empty());
}

TEST(Flags, GetChoiceAcceptsListedValuesAndFallsBack) {
  const char* argv[] = {"prog", "--transport=socket"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EQ(f.get_choice("transport", {"memory", "socket"}, "memory"),
            "socket");
  // Absent flag: fallback wins, even when not a member of the allowed set
  // (the driver uses an out-of-set sentinel to detect "not given").
  EXPECT_EQ(f.get_choice("mode", {"a", "b"}, "neither"), "neither");
  EXPECT_TRUE(f.unknown().empty());  // get_choice marks the name queried
}

TEST(FlagsDeathTest, GetChoiceRejectsOutOfSetValuesListingTheChoices) {
  const char* argv[] = {"prog", "--transport=pigeon"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EXIT(
      (void)f.get_choice("transport", {"memory", "socket"}, "memory"),
      ::testing::ExitedWithCode(2),
      "--transport expects one of \\{memory, socket\\}, got \"pigeon\"");
}

TEST(Flags, GetChoiceHelpRunReturnsFallback) {
  const char* argv[] = {"prog", "--help", "--transport=pigeon"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_EQ(f.get_choice("transport", {"memory", "socket"}, "memory"),
            "memory");
}

TEST(JsonReport, NonFiniteNumbersEmitNullNotInvalidJson) {
  const std::string path = ::testing::TempDir() + "json_report_nonfinite.json";
  JsonReport report(path, "util_test");
  report.metric("ok", 1.5);
  report.metric("too_big", std::numeric_limits<double>::infinity());
  report.metric("too_small", -std::numeric_limits<double>::infinity());
  report.metric("undefined", std::numeric_limits<double>::quiet_NaN());
  report.config("undefined_config", std::numeric_limits<double>::quiet_NaN());
  report.write();

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  // %.17g used to print bare `inf` / `nan`, which no JSON parser accepts.
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_NE(text.find("\"too_big\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"too_small\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"undefined\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"undefined_config\": null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"ok\": 1.5"), std::string::npos) << text;
}

TEST(JsonReport, SpecSectionIsEmittedOnlyWhenPopulated) {
  const std::string with = ::testing::TempDir() + "json_report_spec.json";
  JsonReport spec_report(with, "util_test");
  spec_report.spec_entry("oracle-a", "cheat:piecewise");
  spec_report.metric("digest", std::string("00ff"));
  spec_report.write();
  std::stringstream a;
  a << std::ifstream(with).rdbuf();
  std::remove(with.c_str());
  EXPECT_NE(a.str().find("\"spec\": {"), std::string::npos) << a.str();
  EXPECT_NE(a.str().find("\"oracle-a\": \"cheat:piecewise\""),
            std::string::npos)
      << a.str();
  EXPECT_NE(a.str().find("\"digest\": \"00ff\""), std::string::npos)
      << a.str();

  const std::string without = ::testing::TempDir() + "json_report_plain.json";
  JsonReport plain_report(without, "util_test");
  plain_report.metric("n", static_cast<std::int64_t>(3));
  plain_report.write();
  std::stringstream b;
  b << std::ifstream(without).rdbuf();
  std::remove(without.c_str());
  EXPECT_EQ(b.str().find("\"spec\""), std::string::npos) << b.str();
}

TEST(Digest, HexSpellingIsStableAndFixedWidth) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(digest_hex(~0ull), "ffffffffffffffff");
  // The FNV scheme itself must not drift: pin one known chain.
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_mix(h, 1);
  h = fnv1a_mix(h, double_bits(2.5));
  EXPECT_EQ(h, fnv1a_mix(fnv1a_mix(kFnvOffsetBasis, 1), double_bits(2.5)));
  EXPECT_NE(h, kFnvOffsetBasis);
}

TEST(ForkStreams, MatchesManualSequentialForks) {
  Rng a(99), b(99);
  const auto streams = fork_streams(a, 3, 2);
  ASSERT_EQ(streams.size(), 3u);
  for (std::size_t item = 0; item < 3; ++item) {
    ASSERT_EQ(streams[item].size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      Rng manual = b.fork();
      Rng from_helper = streams[item][s];
      for (int i = 0; i < 4; ++i)
        EXPECT_EQ(from_helper.next_u64(), manual.next_u64());
    }
  }
  // Both parents advanced identically.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(FlagsDeathTest, MalformedIntAborts) {
  const char* argv[] = {"prog", "--pairs=abc", "--empty=", "--typo=6O"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EXIT((void)f.get_int("pairs", 0), ::testing::ExitedWithCode(2),
              "--pairs expects an integer");
  EXPECT_EXIT((void)f.get_int("empty", 0), ::testing::ExitedWithCode(2),
              "--empty expects an integer");
  EXPECT_EXIT((void)f.get_int("typo", 0), ::testing::ExitedWithCode(2),
              "--typo expects an integer");
}

TEST(FlagsDeathTest, MalformedDoubleAndBoolAbort) {
  const char* argv[] = {"prog", "--ratio=fast", "--flag=ture", "--inf=inf",
                        "--nan=nan", "--huge=1e999"};
  Flags f(6, const_cast<char**>(argv));
  EXPECT_EXIT((void)f.get_double("ratio", 0.0), ::testing::ExitedWithCode(2),
              "--ratio expects a finite number");
  EXPECT_EXIT((void)f.get_bool("flag", false), ::testing::ExitedWithCode(2),
              "--flag expects a boolean");
  EXPECT_EXIT((void)f.get_double("inf", 0.0), ::testing::ExitedWithCode(2),
              "--inf expects a finite number");
  EXPECT_EXIT((void)f.get_double("nan", 0.0), ::testing::ExitedWithCode(2),
              "--nan expects a finite number");
  EXPECT_EXIT((void)f.get_double("huge", 0.0), ::testing::ExitedWithCode(2),
              "--huge expects a finite number");
}

TEST(Flags, WellFormedValuesStillParse) {
  const char* argv[] = {"prog", "--n=-7", "--x=2.5e3", "--b=no",
                        "--tiny=1e-310"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 0), -7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 0.0), 2500.0);
  EXPECT_FALSE(f.get_bool("b", true));
  // Denormal underflow sets ERANGE on glibc but is a legal value.
  EXPECT_GT(f.get_double("tiny", 0.0), 0.0);
}

TEST(Flags, QueriedListsWhatTheBinaryReads) {
  const char* argv[] = {"prog", "--seed=7"};
  Flags f(2, const_cast<char**>(argv));
  (void)f.get_int("seed", 0);
  (void)f.get_int("pairs", 60);  // absent flags count as understood too
  const std::vector<std::string> queried = f.queried();
  ASSERT_EQ(queried.size(), 2u);
  EXPECT_EQ(queried[0], "pairs");
  EXPECT_EQ(queried[1], "seed");
}

TEST(FlagsDeathTest, HelpPrintsTheQueriedFlagsAndExitsZero) {
  const char* argv[] = {"prog", "--help"};
  Flags f(2, const_cast<char**>(argv));
  (void)f.get_int("seed", 0);
  (void)f.get_int("pairs", 60);
  EXPECT_EXIT(reject_unknown(f), ::testing::ExitedWithCode(0),
              "");  // message goes to stdout, not the death-test stderr
}

TEST(FlagsDeathTest, HelpWinsOverUnknownFlags) {
  // Discoverability beats strictness: `prog --help --whatever` should help,
  // not abort.
  const char* argv[] = {"prog", "--help", "--whatever=1"};
  Flags f(3, const_cast<char**>(argv));
  (void)f.get_int("seed", 0);
  EXPECT_EXIT(reject_unknown(f), ::testing::ExitedWithCode(0), "");
}

TEST(FlagsDeathTest, GetCountBoundsAndHelpFallback) {
  const char* argv[] = {"prog", "--sessions=-1"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)get_count(f, "sessions", 5, 1000),
              ::testing::ExitedWithCode(2), "--sessions expects an integer");
  const char* ok_argv[] = {"prog", "--sessions=42"};
  Flags ok(2, const_cast<char**>(ok_argv));
  EXPECT_EQ(get_count(ok, "sessions", 5, 1000), 42u);
  // A help run returns the fallback instead of dying on the bad value.
  const char* help_argv[] = {"prog", "--help", "--sessions=-1"};
  Flags h(3, const_cast<char**>(help_argv));
  EXPECT_EQ(get_count(h, "sessions", 5, 1000), 5u);
}

TEST(FlagsDeathTest, HelpWinsOverMalformedValues) {
  // `prog --help --seed=abc` must reach the help text, not die in get_int.
  const char* argv[] = {"prog", "--help", "--seed=abc", "--p=x", "--b=ture"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("seed", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.5), 0.5);
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_EXIT(reject_unknown(f), ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace nexit::util
