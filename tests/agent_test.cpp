#include <gtest/gtest.h>

#include "agent/agent.hpp"
#include "agent/flow_table.hpp"
#include "capacity/capacity.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "test_topologies.hpp"
#include "topology/generator.hpp"

namespace nexit::agent {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

core::NegotiationConfig wire_config() {
  core::NegotiationConfig cfg;
  cfg.tie_break = core::TieBreak::kDeterministic;
  return cfg;
}

// --- Channels ---------------------------------------------------------------

TEST(Channel, InMemoryDelivery) {
  auto [a, b] = make_in_memory_channel_pair();
  a->send({1, 2, 3});
  EXPECT_EQ(b->receive(), (proto::Bytes{1, 2, 3}));
  EXPECT_TRUE(b->receive().empty());
  b->send({9});
  EXPECT_EQ(a->receive(), (proto::Bytes{9}));
}

TEST(Channel, InMemoryClose) {
  auto [a, b] = make_in_memory_channel_pair();
  a->close();
  EXPECT_TRUE(b->closed());
  EXPECT_THROW(a->send({1}), std::runtime_error);
}

TEST(Channel, SocketPairDelivery) {
  auto [a, b] = make_socket_channel_pair();
  a->send({5, 6, 7});
  proto::Bytes got;
  for (int i = 0; i < 100 && got.empty(); ++i) got = b->receive();
  EXPECT_EQ(got, (proto::Bytes{5, 6, 7}));
}

TEST(Channel, SocketDeliversPayloadsLargerThanTheKernelBuffer) {
  // A send exceeding SO_SNDBUF must queue the overflow and drain it via
  // later send()/receive() calls — not busy-spin on EAGAIN, which deadlocks
  // when both endpoints are pumped by the same thread (runtime sessions).
  auto [a, b] = make_socket_channel_pair();
  proto::Bytes big(1u << 20);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 31 + 7);
  a->send(big);  // far beyond a default AF_UNIX buffer; must not hang
  proto::Bytes got;
  for (int i = 0; i < 1000 && got.size() < big.size(); ++i) {
    (void)a->receive();  // flushes a's queued overflow
    const proto::Bytes chunk = b->receive();
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, big);
}

TEST(Channel, FaultyDropsEverythingAtP1) {
  auto [a, b] = make_in_memory_channel_pair();
  FaultyChannel lossy(std::move(a), /*drop=*/1.0, /*corrupt=*/0.0, 1);
  lossy.send({1, 2, 3});
  EXPECT_TRUE(b->receive().empty());
}

TEST(Channel, FaultyCorruptsPayload) {
  auto [a, b] = make_in_memory_channel_pair();
  FaultyChannel bad(std::move(a), /*drop=*/0.0, /*corrupt=*/1.0, 1);
  bad.send({1, 2, 3});
  auto got = b->receive();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_NE(got, (proto::Bytes{1, 2, 3}));
}

// --- FlowTable (§6) ----------------------------------------------------------

FlowSignature sig(std::uint32_t ingress) {
  return FlowSignature{*bgp::Prefix::parse("10.0.0.0/8"),
                       *bgp::Prefix::parse("20.0.0.0/8"), ingress};
}

TEST(FlowTable, ThresholdElevationNeedsHold) {
  FlowTableConfig cfg;
  cfg.rate_threshold_bps = 100.0;
  cfg.hold_windows = 2;
  cfg.window_ms = 1000;
  FlowTable table(cfg);
  // 200 B/s for 1 window only: not yet negotiable.
  table.record(sig(1), 200, 0);
  table.record(sig(1), 200, 1000);  // closes window 0
  EXPECT_TRUE(table.negotiable(1500).empty());
  table.record(sig(1), 200, 2000);  // closes window 1
  auto neg = table.negotiable(2500);
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_EQ(neg[0], sig(1));
}

TEST(FlowTable, LowRateFlowNeverNegotiable) {
  FlowTableConfig cfg;
  cfg.rate_threshold_bps = 1000.0;
  cfg.hold_windows = 1;
  FlowTable table(cfg);
  for (int i = 0; i < 10; ++i) table.record(sig(2), 10, 1000ull * i);
  EXPECT_TRUE(table.negotiable(11000).empty());
}

TEST(FlowTable, ZeroThresholdMakesAllNegotiable) {
  FlowTable table(FlowTableConfig{});
  table.record(sig(1), 1, 0);
  table.record(sig(2), 1, 0);
  EXPECT_EQ(table.negotiable(0).size(), 2u);
}

TEST(FlowTable, InactiveFlowsExpire) {
  FlowTableConfig cfg;
  cfg.inactivity_timeout_ms = 5000;
  FlowTable table(cfg);
  table.record(sig(1), 100, 0);
  table.record(sig(2), 100, 4000);
  EXPECT_EQ(table.expire(6000), 1u);  // sig(1) idle > 5s
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, GapInTrafficResetsStreak) {
  FlowTableConfig cfg;
  cfg.rate_threshold_bps = 100.0;
  cfg.hold_windows = 2;
  cfg.window_ms = 1000;
  FlowTable table(cfg);
  table.record(sig(1), 200, 0);
  table.record(sig(1), 200, 1000);
  // Silence for 3 windows, then one burst: streak restarted.
  table.record(sig(1), 200, 5000);
  EXPECT_TRUE(table.negotiable(5500).empty());
}

TEST(FlowTable, RateEstimate) {
  FlowTableConfig cfg;
  cfg.window_ms = 1000;
  FlowTable table(cfg);
  table.record(sig(1), 500, 0);
  table.record(sig(1), 0, 1000);
  EXPECT_DOUBLE_EQ(table.rate_of(sig(1)), 500.0);
  EXPECT_DOUBLE_EQ(table.rate_of(sig(9)), 0.0);
}

// --- Agent sessions ----------------------------------------------------------

struct SessionFixture {
  topology::IspPair pair = figure1_pair();
  routing::PairRouting routing{pair};
  std::vector<traffic::Flow> flows{
      make_flow(0, Direction::kAtoB, 1, 2), make_flow(1, Direction::kBtoA, 1, 0),
      make_flow(2, Direction::kAtoB, 0, 2), make_flow(3, Direction::kBtoA, 2, 0)};
  core::NegotiationProblem problem =
      core::make_distance_problem(routing, flows, {0, 1, 2});
};

TEST(AgentSession, MatchesEngineOnDistanceProblem) {
  SessionFixture fx;
  auto cfg = wire_config();

  // In-process reference.
  core::DistanceOracle ea(0, cfg.preferences), eb(1, cfg.preferences);
  core::NegotiationEngine engine(fx.problem, ea, eb, cfg);
  auto expected = engine.run();

  // Wire session.
  core::DistanceOracle oa(0, cfg.preferences), ob(1, cfg.preferences);
  auto [ca, cb] = make_in_memory_channel_pair();
  NegotiationAgent agent_a(fx.problem, oa, *ca, AgentConfig{0, 1, cfg});
  NegotiationAgent agent_b(fx.problem, ob, *cb, AgentConfig{1, 2, cfg});
  run_session(agent_a, agent_b);

  ASSERT_TRUE(agent_a.done()) << agent_a.error();
  ASSERT_TRUE(agent_b.done()) << agent_b.error();
  EXPECT_EQ(agent_a.outcome().assignment.ix_of_flow,
            expected.assignment.ix_of_flow);
  EXPECT_EQ(agent_b.outcome().assignment.ix_of_flow,
            expected.assignment.ix_of_flow);
  EXPECT_EQ(agent_a.outcome().true_gain_a, expected.true_gain_a);
  EXPECT_EQ(agent_b.outcome().true_gain_b, expected.true_gain_b);
  EXPECT_EQ(agent_a.outcome().flows_negotiated, expected.flows_negotiated);
}

TEST(AgentSession, MatchesEngineOverRealSockets) {
  SessionFixture fx;
  auto cfg = wire_config();
  core::DistanceOracle ea(0, cfg.preferences), eb(1, cfg.preferences);
  core::NegotiationEngine engine(fx.problem, ea, eb, cfg);
  auto expected = engine.run();

  core::DistanceOracle oa(0, cfg.preferences), ob(1, cfg.preferences);
  auto [ca, cb] = make_socket_channel_pair();
  NegotiationAgent agent_a(fx.problem, oa, *ca, AgentConfig{0, 1, cfg});
  NegotiationAgent agent_b(fx.problem, ob, *cb, AgentConfig{1, 2, cfg});
  run_session(agent_a, agent_b);
  ASSERT_TRUE(agent_a.done()) << agent_a.error();
  ASSERT_TRUE(agent_b.done()) << agent_b.error();
  EXPECT_EQ(agent_a.outcome().assignment.ix_of_flow,
            expected.assignment.ix_of_flow);
}

TEST(AgentSession, MatchesEngineWithBandwidthOraclesAndReassignment) {
  // Failure scenario with bandwidth oracles: reassignment adverts must flow
  // and the result must still match the engine.
  topology::TopologyGenerator gen(geo::CityDb::builtin(),
                                  topology::GeneratorConfig{});
  util::Rng rng(2024);
  topology::IspPair pair = [&] {
    auto isps = gen.generate_universe(16, rng);
    for (std::size_t i = 0; i < isps.size(); ++i)
      for (std::size_t j = i + 1; j < isps.size(); ++j)
        if (auto p = topology::make_pair_if_peers(isps[i], isps[j], 3)) return *p;
    throw std::logic_error("no pair with 3 interconnections");
  }();

  routing::PairRouting routing(pair);
  traffic::TrafficConfig tcfg;
  auto tm = traffic::TrafficMatrix::build(pair, Direction::kAtoB, tcfg, rng);
  auto problem = core::make_failure_problem(routing, tm.flows(), 0);
  ASSERT_FALSE(problem.negotiable.empty());

  std::vector<std::size_t> all_ix(pair.interconnection_count());
  for (std::size_t i = 0; i < all_ix.size(); ++i) all_ix[i] = i;
  auto pre_failure = routing::assign_early_exit(routing, tm.flows(), all_ix);
  auto baseline = routing::compute_loads(routing, tm.flows(), pre_failure);
  auto caps = capacity::assign_capacities(baseline, capacity::CapacityConfig{});

  auto cfg = wire_config();
  cfg.reassign_traffic_fraction = 0.05;

  core::BandwidthOracle ea(0, cfg.preferences, caps), eb(1, cfg.preferences, caps);
  core::NegotiationEngine engine(problem, ea, eb, cfg);
  auto expected = engine.run();

  core::BandwidthOracle oa(0, cfg.preferences, caps), ob(1, cfg.preferences, caps);
  auto [ca, cb] = make_in_memory_channel_pair();
  NegotiationAgent agent_a(problem, oa, *ca, AgentConfig{0, 1, cfg});
  NegotiationAgent agent_b(problem, ob, *cb, AgentConfig{1, 2, cfg});
  run_session(agent_a, agent_b);

  ASSERT_TRUE(agent_a.done()) << agent_a.error();
  ASSERT_TRUE(agent_b.done()) << agent_b.error();
  EXPECT_EQ(agent_a.outcome().assignment.ix_of_flow,
            expected.assignment.ix_of_flow);
  EXPECT_EQ(agent_a.outcome().reassignments, expected.reassignments);
  EXPECT_EQ(agent_a.outcome().true_gain_a, expected.true_gain_a);
  EXPECT_EQ(agent_b.outcome().true_gain_b, expected.true_gain_b);
}

TEST(AgentSession, CorruptionFailsCleanlyWithoutHanging) {
  SessionFixture fx;
  auto cfg = wire_config();
  core::DistanceOracle oa(0, cfg.preferences), ob(1, cfg.preferences);
  auto [ca, cb] = make_in_memory_channel_pair();
  // Corrupt every frame A sends.
  FaultyChannel bad_a(std::move(ca), 0.0, 1.0, 7);
  NegotiationAgent agent_a(fx.problem, oa, bad_a, AgentConfig{0, 1, cfg});
  NegotiationAgent agent_b(fx.problem, ob, *cb, AgentConfig{1, 2, cfg});
  const std::size_t steps = run_session(agent_a, agent_b, 1000);
  EXPECT_LT(steps, 1000u);  // no hang
  EXPECT_TRUE(agent_b.failed());
  EXPECT_NE(agent_b.error().find("stream error"), std::string::npos);
}

TEST(AgentSession, DropsStallDetected) {
  SessionFixture fx;
  auto cfg = wire_config();
  core::DistanceOracle oa(0, cfg.preferences), ob(1, cfg.preferences);
  auto [ca, cb] = make_in_memory_channel_pair();
  FaultyChannel lossy(std::move(ca), /*drop=*/1.0, 0.0, 7);
  NegotiationAgent agent_a(fx.problem, oa, lossy, AgentConfig{0, 1, cfg});
  NegotiationAgent agent_b(fx.problem, ob, *cb, AgentConfig{1, 2, cfg});
  const std::size_t steps = run_session(agent_a, agent_b, 1000);
  EXPECT_LT(steps, 1000u);  // stall detection kicks in
  EXPECT_FALSE(agent_b.done());
}

TEST(AgentSession, ContractMismatchFails) {
  SessionFixture fx;
  auto cfg_a = wire_config();
  auto cfg_b = wire_config();
  cfg_b.preferences.range = 5;  // different P: contract violation
  core::DistanceOracle oa(0, cfg_a.preferences), ob(1, cfg_b.preferences);
  auto [ca, cb] = make_in_memory_channel_pair();
  NegotiationAgent agent_a(fx.problem, oa, *ca, AgentConfig{0, 1, cfg_a});
  NegotiationAgent agent_b(fx.problem, ob, *cb, AgentConfig{1, 2, cfg_b});
  run_session(agent_a, agent_b, 1000);
  EXPECT_TRUE(agent_a.failed() || agent_b.failed());
}

TEST(AgentSession, RejectsUnsupportedConfig) {
  SessionFixture fx;
  core::DistanceOracle oa(0, core::PreferenceConfig{});
  auto [ca, cb] = make_in_memory_channel_pair();
  auto cfg = wire_config();
  cfg.tie_break = core::TieBreak::kRandom;
  EXPECT_THROW(NegotiationAgent(fx.problem, oa, *ca, AgentConfig{0, 1, cfg}),
               std::invalid_argument);
  cfg = wire_config();
  cfg.termination = core::TerminationPolicy::kFull;
  EXPECT_THROW(NegotiationAgent(fx.problem, oa, *ca, AgentConfig{0, 1, cfg}),
               std::invalid_argument);
  cfg = wire_config();
  cfg.turn = core::TurnPolicy::kCoinToss;
  EXPECT_THROW(NegotiationAgent(fx.problem, oa, *ca, AgentConfig{0, 1, cfg}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nexit::agent
