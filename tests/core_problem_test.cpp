#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "test_topologies.hpp"

namespace nexit::core {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

TEST(DistanceProblem, AllFlowsNegotiableWithEarlyExitDefaults) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2),
                                   make_flow(1, Direction::kBtoA, 1, 1)};
  auto p = make_distance_problem(r, flows, {0, 1, 2});
  EXPECT_EQ(p.negotiable.size(), 2u);
  EXPECT_TRUE(p.group_members.empty());
  EXPECT_EQ(p.default_assignment.ix_of_flow[0], 0u);  // early exit from a0
  EXPECT_EQ(p.members_of(0), (std::vector<std::size_t>{0}));
}

TEST(FailureProblem, OnlyAffectedFlowsNegotiable) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{
      make_flow(0, Direction::kAtoB, 0, 2),   // early exit ix0 -> affected
      make_flow(1, Direction::kAtoB, 1, 1),   // early exit ix1 -> untouched
      make_flow(2, Direction::kAtoB, 0, 0)};  // early exit ix0 -> affected
  auto p = make_failure_problem(r, flows, 0);
  EXPECT_EQ(p.negotiable, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(p.candidates, (std::vector<std::size_t>{1, 2}));
  // Affected flows' new defaults avoid the failed interconnection.
  EXPECT_NE(p.default_assignment.ix_of_flow[0], 0u);
  EXPECT_NE(p.default_assignment.ix_of_flow[2], 0u);
  // Unaffected flow keeps its pre-failure route.
  EXPECT_EQ(p.default_assignment.ix_of_flow[1], 1u);
  EXPECT_THROW(make_failure_problem(r, flows, 9), std::invalid_argument);
}

TEST(DestinationProblem, GroupsByDirectionAndDestination) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  // Three A->B flows to b2 (different sources), one to b0, one B->A flow.
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 1.0),
                                   make_flow(1, Direction::kAtoB, 1, 2, 5.0),
                                   make_flow(2, Direction::kAtoB, 2, 2, 2.0),
                                   make_flow(3, Direction::kAtoB, 0, 0, 1.0),
                                   make_flow(4, Direction::kBtoA, 2, 2, 1.0)};
  auto p = make_destination_problem(r, flows, {0, 1, 2});
  EXPECT_EQ(p.negotiable.size(), 3u);  // (A->B,b2), (A->B,b0), (B->A,a2)
  // The b2 group has three members sharing one default: the largest member
  // (flow 1, size 5, src a1) anchors it at its early exit, ix1.
  bool found_group = false;
  for (std::size_t pos = 0; pos < p.negotiable.size(); ++pos) {
    const auto members = p.members_of(pos);
    if (members.size() == 3) {
      found_group = true;
      for (std::size_t m : members)
        EXPECT_EQ(p.default_assignment.ix_of_flow[m], 1u);
    }
  }
  EXPECT_TRUE(found_group);
  // Volume counts every member, not just representatives.
  EXPECT_NEAR(p.negotiable_volume(), 10.0, 1e-12);
}

TEST(DestinationProblem, GroupsMoveTogetherInNegotiation) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 1.0),
                                   make_flow(1, Direction::kAtoB, 1, 2, 1.0),
                                   make_flow(2, Direction::kAtoB, 2, 2, 1.0)};
  auto p = make_destination_problem(r, flows, {0, 1, 2});
  DistanceOracle a(0, PreferenceConfig{}), b(1, PreferenceConfig{});
  NegotiationEngine engine(p, a, b, NegotiationConfig{});
  auto out = engine.run();
  // One destination: all flows must end on the same interconnection.
  EXPECT_EQ(out.assignment.ix_of_flow[0], out.assignment.ix_of_flow[1]);
  EXPECT_EQ(out.assignment.ix_of_flow[1], out.assignment.ix_of_flow[2]);
  // Moving everything to ix2 (entry at the destination b2) saves B 400+300
  // km at A's cost of 200+100; win-win requires B's huge gain and A's... the
  // gains must be non-negative either way.
  EXPECT_GE(out.true_gain_a, -1e-6);
  EXPECT_GE(out.true_gain_b, -1e-6);
}

TEST(DestinationProblem, MismatchedGroupSizeRejected) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2)};
  auto p = make_destination_problem(r, flows, {0, 1, 2});
  p.group_members.push_back({0});  // now longer than negotiable
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace nexit::core
