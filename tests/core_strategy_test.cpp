#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/strategy.hpp"

namespace nexit::core {
namespace {

/// Hand-built strategy view over `n` flows x `c` candidates.
struct ViewFixture {
  std::vector<char> remaining;
  std::vector<std::vector<char>> banned;
  std::vector<std::size_t> default_ci;
  PreferenceList mine, theirs;
  std::vector<std::vector<double>> my_true;

  ViewFixture(const std::vector<std::vector<PrefClass>>& my_rows,
              const std::vector<std::vector<PrefClass>>& their_rows,
              std::size_t default_candidate = 0) {
    const std::size_t n = my_rows.size();
    remaining.assign(n, 1);
    default_ci.assign(n, default_candidate);
    for (std::size_t i = 0; i < n; ++i) {
      banned.emplace_back(my_rows[i].size(), 0);
      mine.flows.push_back(
          {traffic::FlowId{static_cast<std::int32_t>(i)}, my_rows[i]});
      theirs.flows.push_back(
          {traffic::FlowId{static_cast<std::int32_t>(i)}, their_rows[i]});
      my_true.emplace_back(my_rows[i].begin(), my_rows[i].end());
    }
  }

  [[nodiscard]] StrategyView view() const {
    StrategyView v;
    v.remaining = &remaining;
    v.banned = &banned;
    v.default_ci = &default_ci;
    v.my_disclosed = &mine;
    v.remote_disclosed = &theirs;
    v.my_true_value = &my_true;
    return v;
  }
};

TEST(SelectProposal, MaxCombinedWins) {
  // Flow 0: candidate 1 has combined 5; flow 1: candidate 1 has combined 3.
  ViewFixture fx({{0, 3}, {0, 2}}, {{0, 2}, {0, 1}});
  ProposalChoice out{};
  ASSERT_TRUE(select_proposal(fx.view(), ProposalPolicy::kMaxCombinedGain,
                              nullptr, out));
  EXPECT_EQ(out.pos, 0u);
  EXPECT_EQ(out.ci, 1u);
}

TEST(SelectProposal, OwnPreferenceBreaksCombinedTies) {
  // Both candidates of flow 0 have combined 4; proposer prefers candidate 1
  // (own 3 beats own 1).
  ViewFixture fx({{1, 3, 0}, {0, 0, 0}}, {{3, 1, 0}, {0, 0, 0}}, 2);
  ProposalChoice out{};
  ASSERT_TRUE(select_proposal(fx.view(), ProposalPolicy::kMaxCombinedGain,
                              nullptr, out));
  EXPECT_EQ(out.pos, 0u);
  EXPECT_EQ(out.ci, 1u);
}

TEST(SelectProposal, DefaultWinsResidualTies) {
  // All-zero preferences: candidate 1 is the default and must win over the
  // equally-good candidate 0 (status-quo bias).
  ViewFixture fx({{0, 0}}, {{0, 0}}, /*default=*/1);
  ProposalChoice out{};
  ASSERT_TRUE(select_proposal(fx.view(), ProposalPolicy::kMaxCombinedGain,
                              nullptr, out));
  EXPECT_EQ(out.ci, 1u);
}

TEST(SelectProposal, BestLocalMinImpactPolicy) {
  // kBestLocalMinImpact: primary = own (candidate 0: 4), even though the
  // combined sum favours candidate 1 (2 + 9).
  ViewFixture fx({{4, 2}}, {{0, 9}}, 0);
  ProposalChoice out{};
  ASSERT_TRUE(select_proposal(fx.view(), ProposalPolicy::kBestLocalMinImpact,
                              nullptr, out));
  EXPECT_EQ(out.ci, 0u);
}

TEST(SelectProposal, BannedAlternativesSkipped) {
  ViewFixture fx({{5, 1}}, {{5, 1}}, 1);
  fx.banned[0][0] = 1;  // the juicy candidate is vetoed
  ProposalChoice out{};
  ASSERT_TRUE(select_proposal(fx.view(), ProposalPolicy::kMaxCombinedGain,
                              nullptr, out));
  EXPECT_EQ(out.ci, 1u);
}

TEST(SelectProposal, NothingRemainingReturnsFalse) {
  ViewFixture fx({{1, 2}}, {{1, 2}});
  fx.remaining[0] = 0;
  ProposalChoice out{};
  EXPECT_FALSE(select_proposal(fx.view(), ProposalPolicy::kMaxCombinedGain,
                               nullptr, out));
}

TEST(SelectProposal, RandomTieBreakIsUniformish) {
  // Two identical flows; with an rng both should be picked sometimes.
  ViewFixture fx({{2, 0}, {2, 0}}, {{1, 0}, {1, 0}}, 1);
  util::Rng rng(33);
  int first = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ProposalChoice out{};
    ASSERT_TRUE(select_proposal(fx.view(), ProposalPolicy::kMaxCombinedGain,
                                &rng, out));
    first += out.pos == 0;
  }
  EXPECT_GT(first, 50);
  EXPECT_LT(first, 150);
}

TEST(SelectProposal, NullViewThrows) {
  StrategyView empty;
  ProposalChoice out{};
  EXPECT_THROW(
      select_proposal(empty, ProposalPolicy::kMaxCombinedGain, nullptr, out),
      std::invalid_argument);
}

TEST(ProjectFuture, PeakAndEndOverGreedyOrder) {
  // Flow 0 (combined 6): mine +4. Flow 1 (combined 2): mine -1.
  // My turn first: trajectory +4, +3 -> peak 4, end 3.
  ViewFixture fx({{0, 4}, {0, -1}}, {{0, 2}, {0, 3}});
  const Projection p = project_future(fx.view(), /*my_turn_first=*/true);
  EXPECT_DOUBLE_EQ(p.peak, 4.0);
  EXPECT_DOUBLE_EQ(p.end, 3.0);
}

TEST(ProjectFuture, RemoteTieBreakIsPessimistic) {
  // One flow, candidates tie on combined 0: (me -2, them +2) vs default
  // (0, 0). On the REMOTE's turn it picks its favourite: me -2.
  ViewFixture fx({{-2, 0}}, {{2, 0}}, /*default=*/1);
  const Projection remote_first = project_future(fx.view(), false);
  EXPECT_DOUBLE_EQ(remote_first.end, -2.0);
  // On MY turn I pick the default (own 0 ties, default bias): end 0.
  const Projection mine_first = project_future(fx.view(), true);
  EXPECT_DOUBLE_EQ(mine_first.end, 0.0);
}

TEST(ProjectFuture, FloorRemoteAtZeroClampsLosses) {
  ViewFixture fx({{-2, 0}}, {{2, 0}}, 1);
  const Projection floored = project_future(fx.view(), false, true);
  EXPECT_DOUBLE_EQ(floored.end, 0.0);
  EXPECT_DOUBLE_EQ(floored.peak, 0.0);
}

TEST(ProjectFuture, AlternationAssignsItemsByParity) {
  // Three flows with distinct combined sums so the order is fixed:
  // c=9 (mine +1/-5), c=6 (mine +2/-2), c=3 (mine +3/-1).
  // My turn first: +1 (mine), -2 (remote), +3 (mine) -> peak 2, end 2.
  ViewFixture fx({{0, 1}, {0, 2}, {0, 3}}, {{0, 8}, {0, 4}, {0, 0}});
  // own_if_remote == own_if_mine here (single non-default candidate each),
  // so emulate remote-pessimism via candidate pairs instead: keep simple and
  // just check the deterministic trajectory.
  const Projection p = project_future(fx.view(), true);
  EXPECT_DOUBLE_EQ(p.end, 6.0);  // all positives from my perspective
  EXPECT_DOUBLE_EQ(p.peak, 6.0);
}

TEST(ProjectFuture, BannedAndSettledFlowsExcluded) {
  ViewFixture fx({{0, 9}, {0, 9}}, {{0, 0}, {0, 0}});
  fx.remaining[0] = 0;
  fx.banned[1][1] = 1;  // only flow 1's default remains
  const Projection p = project_future(fx.view(), true);
  EXPECT_DOUBLE_EQ(p.peak, 0.0);
  EXPECT_DOUBLE_EQ(p.end, 0.0);
}

}  // namespace
}  // namespace nexit::core
