#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace nexit::lp {
namespace {

TEST(Simplex, TrivialMaximisation) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  ->  x=4, y=0, obj=12.
  LpProblem p(2);
  p.set_minimize(false);
  p.set_objective_coeff(0, 3.0);
  p.set_objective_coeff(1, 2.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kLe, 4.0);
  p.add_constraint({{0, 1.0}, {1, 3.0}}, Relation::kLe, 6.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-8);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21.
  LpProblem p(2);
  p.set_minimize(false);
  p.set_objective_coeff(0, 5.0);
  p.set_objective_coeff(1, 4.0);
  p.add_constraint({{0, 6.0}, {1, 4.0}}, Relation::kLe, 24.0);
  p.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::kLe, 6.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 21.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 1.5, 1e-8);
}

TEST(Simplex, MinimisationWithGeConstraints) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2 -> x=10 (y=0? check: obj 2*10=20
  // vs x=2,y=8: 4+24=28). Optimal x=10, y=0, obj=20.
  LpProblem p(2);
  p.set_objective_coeff(0, 2.0);
  p.set_objective_coeff(1, 3.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kGe, 10.0);
  p.add_constraint({{0, 1.0}}, Relation::kGe, 2.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 20.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 5, x <= 3 -> x=3, y=2, obj=7.
  LpProblem p(2);
  p.set_objective_coeff(0, 1.0);
  p.set_objective_coeff(1, 2.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 5.0);
  p.add_constraint({{0, 1.0}}, Relation::kLe, 3.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  LpProblem p(1);
  p.set_objective_coeff(0, 1.0);
  p.add_constraint({{0, 1.0}}, Relation::kLe, 1.0);
  p.add_constraint({{0, 1.0}}, Relation::kGe, 2.0);
  auto sol = SimplexSolver{}.solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpProblem p(1);
  p.set_minimize(false);
  p.set_objective_coeff(0, 1.0);
  p.add_constraint({{0, -1.0}}, Relation::kLe, 1.0);
  auto sol = SimplexSolver{}.solve(p);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalised) {
  // x - y <= -2  (i.e., y >= x + 2); min y -> x=0, y=2.
  LpProblem p(2);
  p.set_objective_coeff(1, 1.0);
  p.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::kLe, -2.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // A classic cycling-prone instance (Beale). Must terminate optimal.
  LpProblem p(4);
  p.set_minimize(false);
  p.set_objective_coeff(0, 0.75);
  p.set_objective_coeff(1, -150.0);
  p.set_objective_coeff(2, 0.02);
  p.set_objective_coeff(3, -6.0);
  p.add_constraint({{0, 0.25}, {1, -60.0}, {2, -1.0 / 25.0}, {3, 9.0}},
                   Relation::kLe, 0.0);
  p.add_constraint({{0, 0.5}, {1, -90.0}, {2, -1.0 / 50.0}, {3, 3.0}},
                   Relation::kLe, 0.0);
  p.add_constraint({{2, 1.0}}, Relation::kLe, 1.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-6);
}

TEST(Simplex, MinMaxShapeProblem) {
  // min t s.t. 3x0 + 1x1 <= t, 1x0 + 3x1 <= t, x0 + x1 = 1.
  // Balanced split x0 = x1 = 0.5 gives t = 2.
  LpProblem p(3);
  p.set_objective_coeff(2, 1.0);
  p.add_constraint({{0, 3.0}, {1, 1.0}, {2, -1.0}}, Relation::kLe, 0.0);
  p.add_constraint({{0, 1.0}, {1, 3.0}, {2, -1.0}}, Relation::kLe, 0.0);
  p.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::kEq, 1.0);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 0.5, 1e-8);
  EXPECT_NEAR(sol.x[1], 0.5, 1e-8);
}

TEST(Simplex, BadVariableIndexThrows) {
  LpProblem p(2);
  EXPECT_THROW(p.add_constraint({{5, 1.0}}, Relation::kLe, 1.0),
               std::out_of_range);
  EXPECT_THROW(LpProblem(0), std::invalid_argument);
}

TEST(Simplex, StatusToString) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

// ---------------------------------------------------------------------------
// Property test: on random 2-variable LPs with <= constraints, the simplex
// optimum must match a brute-force scan over constraint-intersection
// vertices (the optimum of a bounded feasible LP lies at a vertex).
// ---------------------------------------------------------------------------

class SimplexVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexVsBruteForce, TwoVarRandomLe) {
  util::Rng rng(GetParam());
  // Random objective (maximise, positive coefficients => bounded by
  // constraints below).
  const double c0 = rng.next_double(0.1, 5.0);
  const double c1 = rng.next_double(0.1, 5.0);
  // 4 random constraints a*x + b*y <= r with a,b >= 0 (keeps it bounded),
  // plus x,y >= 0 implicitly.
  struct Row {
    double a, b, r;
  };
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back(Row{rng.next_double(0.1, 3.0), rng.next_double(0.1, 3.0),
                       rng.next_double(1.0, 10.0)});
  }

  LpProblem p(2);
  p.set_minimize(false);
  p.set_objective_coeff(0, c0);
  p.set_objective_coeff(1, c1);
  for (const auto& row : rows)
    p.add_constraint({{0, row.a}, {1, row.b}}, Relation::kLe, row.r);
  auto sol = SimplexSolver{}.solve(p);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);

  // Brute force: evaluate all candidate vertices (pairwise constraint
  // intersections + axis intercepts + origin), keep feasible ones.
  auto feasible = [&](double x, double y) {
    if (x < -1e-9 || y < -1e-9) return false;
    for (const auto& row : rows)
      if (row.a * x + row.b * y > row.r + 1e-9) return false;
    return true;
  };
  double best = 0.0;  // origin is always feasible
  auto consider = [&](double x, double y) {
    if (feasible(x, y)) best = std::max(best, c0 * x + c1 * y);
  };
  // Extend rows with the axes x>=0 (as -x <= 0) and y>=0 for intersections.
  std::vector<Row> all = rows;
  all.push_back(Row{1.0, 0.0, 0.0});  // x = 0 boundary (a*x = 0)
  all.push_back(Row{0.0, 1.0, 0.0});  // y = 0 boundary
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const double det = all[i].a * all[j].b - all[j].a * all[i].b;
      if (std::abs(det) < 1e-12) continue;
      const double x = (all[i].r * all[j].b - all[j].r * all[i].b) / det;
      const double y = (all[i].a * all[j].r - all[j].a * all[i].r) / det;
      consider(x, y);
    }
  }
  EXPECT_NEAR(sol.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace nexit::lp
