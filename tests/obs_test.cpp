// The observability layer: obs::Registry merge determinism, the Chrome
// trace_event writer, phase timing, the JsonReport obs/timing sections and
// its duplicate-key guard, and the end-to-end contracts the layer promises —
// traces and "obs" sections byte-identical across --threads=N, and a zero
// digest footprint when tracing/timing stay disabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/scenarios.hpp"
#include "util/flags.hpp"
#include "util/json_report.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nexit::obs {
namespace {

util::Flags kv_flags(const std::vector<std::string>& assignments) {
  return util::Flags(assignments);
}

std::string temp_path(const std::string& suffix) {
  return ::testing::TempDir() + "obs_test_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         suffix;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The hex outcome digest a run_scenario --json record carries (the last
/// "digest" occurrence is the run's overall digest).
std::string digest_in(const std::string& json_path) {
  const std::string text = read_file(json_path);
  const std::string needle = "\"digest\": \"";
  const auto pos = text.rfind(needle);
  return pos == std::string::npos ? "" : text.substr(pos + needle.size(), 16);
}

/// The flat `"obs": { ... }` object of a record (obs sections hold no
/// nested objects, so the first closing brace ends the section).
std::string obs_section_in(const std::string& json_path) {
  const std::string text = read_file(json_path);
  const std::string needle = "\"obs\": {";
  const auto begin = text.find(needle);
  if (begin == std::string::npos) return "";
  const auto end = text.find('}', begin);
  return text.substr(begin, end - begin + 1);
}

// --- registry merge determinism ------------------------------------------

struct Op {
  bool is_histogram = false;
  std::string name;
  std::uint64_t value = 0;
};

/// A deterministic mixed workload of counter adds and histogram
/// observations across a handful of metric names.
std::vector<Op> make_ops(std::size_t n) {
  const char* counters[] = {"engine.rounds", "engine.flows_moved", "retries"};
  const char* histograms[] = {"rounds_per_negotiation", "steps_per_session"};
  util::Rng rng(0x0b5e0b5eull);
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    op.is_histogram = rng.next_bool(0.4);
    op.name = op.is_histogram ? histograms[rng.next_below(2)]
                              : counters[rng.next_below(3)];
    op.value = rng.next_u64() >> rng.next_below(64);
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Applies `ops` to a fresh Registry split across `threads` workers
/// (worker w takes every threads-th op) and returns the merged snapshot.
Snapshot fill_and_snapshot(const std::vector<Op>& ops, std::size_t threads) {
  Registry reg;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&ops, &reg, w, threads] {
      for (std::size_t i = w; i < ops.size(); i += threads) {
        const Op& op = ops[i];
        if (op.is_histogram) {
          reg.observe(op.name, op.value);
        } else {
          reg.add(op.name, op.value);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return reg.snapshot();
}

void expect_equal(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name);
    EXPECT_EQ(a.counters[i].value, b.counters[i].value) << a.counters[i].name;
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
    EXPECT_EQ(a.histograms[i].count, b.histograms[i].count)
        << a.histograms[i].name;
    EXPECT_EQ(a.histograms[i].sum, b.histograms[i].sum)
        << a.histograms[i].name;
    EXPECT_EQ(a.histograms[i].buckets, b.histograms[i].buckets)
        << a.histograms[i].name;
  }
}

TEST(ObsRegistry, SnapshotIsIdenticalForEveryShardSplit) {
  // The merge is a commutative uint64 sum, so however the same ops are
  // scattered across thread shards, the snapshot must come out identical —
  // the property that lets "obs" sections join thread-stability diffs.
  const std::vector<Op> ops = make_ops(4000);
  const Snapshot serial = fill_and_snapshot(ops, 1);
  ASSERT_FALSE(serial.counters.empty());
  ASSERT_FALSE(serial.histograms.empty());
  expect_equal(serial, fill_and_snapshot(ops, 2));
  expect_equal(serial, fill_and_snapshot(ops, 4));
  expect_equal(serial, fill_and_snapshot(ops, 7));
}

TEST(ObsRegistry, SnapshotSortsByNameAndResetClearsEveryShard) {
  Registry reg;
  reg.add("z.last", 1);
  reg.add("a.first", 2);
  reg.observe("m.hist", 3);
  std::thread other([&reg] { reg.add("a.first", 40); });
  other.join();

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[0].value, 42u);
  EXPECT_EQ(snap.counters[1].name, "z.last");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 3u);

  reg.reset_counters();
  const Snapshot cleared = reg.snapshot();
  // Names survive a reset at value zero in the shards that saw them; the
  // totals must all read zero.
  for (const CounterSnapshot& c : cleared.counters) EXPECT_EQ(c.value, 0u);
  for (const HistogramSnapshot& h : cleared.histograms) {
    EXPECT_EQ(h.count, 0u);
    EXPECT_EQ(h.sum, 0u);
  }
}

TEST(ObsRegistry, HistogramBucketIsBitWidth) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(1023), 10u);
  EXPECT_EQ(histogram_bucket(1024), 11u);
  EXPECT_EQ(histogram_bucket(~0ull), 64u);
  EXPECT_EQ(kHistogramBuckets, 65u);
}

TEST(ObsRegistry, PhaseTimersAreDisarmedByDefaultAndCountWhenEnabled) {
  Registry& reg = Registry::global();
  reg.reset_timing();
  reg.set_timing_enabled(false);
  { const PhaseTimer t(Phase::kSelectProposal); }
  std::vector<PhaseSnapshot> off = reg.timing_snapshot();
  ASSERT_EQ(off.size(), kPhaseCount);
  EXPECT_EQ(off[0].calls, 0u);  // disarmed timers never record

  reg.set_timing_enabled(true);
  { const PhaseTimer t(Phase::kSelectProposal); }
  { const PhaseTimer t(Phase::kWireDecode); }
  std::vector<PhaseSnapshot> on = reg.timing_snapshot();
  reg.set_timing_enabled(false);
  reg.reset_timing();

  ASSERT_EQ(on.size(), kPhaseCount);
  EXPECT_STREQ(on[0].name, "select_proposal");
  EXPECT_EQ(on[0].calls, 1u);
  bool saw_decode = false;
  for (const PhaseSnapshot& p : on) {
    if (std::string(p.name) == "wire_decode") {
      saw_decode = true;
      EXPECT_EQ(p.calls, 1u);
    }
  }
  EXPECT_TRUE(saw_decode);
}

// --- the trace writer ----------------------------------------------------

TEST(ObsTrace, EmitsChromeTraceEventJson) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  const int track = trace.new_track("pair \"A-B\"");
  trace.complete(track, 3, 1, "accept", "engine",
                 Trace::Args().add("round", 3).add_bool("reassigned", true));
  trace.instant(track, 7, "settle", "engine",
                Trace::Args().add("note", std::string("done")));

  const std::string json = trace.to_json();
  EXPECT_EQ(json,
            "{\"traceEvents\":[\n"
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"pair \\\"A-B\\\"\"}},\n"
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":3,\"dur\":1,"
            "\"name\":\"accept\",\"cat\":\"engine\","
            "\"args\":{\"round\":3,\"reassigned\":true}},\n"
            "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":7,\"name\":\"settle\","
            "\"cat\":\"engine\",\"s\":\"t\",\"args\":{\"note\":\"done\"}}\n"
            "],\"displayTimeUnit\":\"ms\"}\n");
  EXPECT_EQ(trace.event_count(), 3u);

  const std::string path = temp_path(".trace.json");
  trace.write(path);
  EXPECT_EQ(read_file(path), json);
  std::remove(path.c_str());
}

TEST(ObsTrace, TracksNumberInCreationOrder) {
  Trace trace;
  EXPECT_EQ(trace.new_track("first"), 0);
  EXPECT_EQ(trace.new_track("second"), 1);
  EXPECT_EQ(trace.new_track("third"), 2);
}

// --- JsonReport: obs/timing sections, cdf percentiles, dup-key guard -----

TEST(ObsJsonReport, ObsAndTimingSectionsAreEmitted) {
  const std::string path = temp_path(".json");
  util::JsonReport record(path, "obs_test");
  record.metric("digest", std::string("abc"));
  record.obs_entry("engine.rounds", 17);
  record.timing_entry("phase.select_proposal.calls",
                      static_cast<std::int64_t>(4));
  record.timing_entry("phase.select_proposal.ms", 0.25);
  record.write();

  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"obs\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"engine.rounds\": 17"), std::string::npos) << text;
  EXPECT_NE(text.find("\"timing\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"phase.select_proposal.calls\": 4"), std::string::npos)
      << text;
  std::remove(path.c_str());
}

TEST(ObsJsonReport, PerPointObsSectionsRideNextToPointMetrics) {
  const std::string path = temp_path(".json");
  util::JsonReport record(path, "obs_test");
  record.begin_point("isps=10");
  record.metric("digest", std::string("p0"));
  record.obs_entry("engine.negotiations", 3);
  record.begin_point("isps=20");
  record.metric("digest", std::string("p1"));
  record.obs_entry("engine.negotiations", 5);
  record.end_points();
  record.metric("digest", std::string("overall"));
  record.write();

  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"engine.negotiations\": 3"), std::string::npos) << text;
  EXPECT_NE(text.find("\"engine.negotiations\": 5"), std::string::npos) << text;
  // Point order is preserved, and each obs object sits in its own point.
  EXPECT_LT(text.find("\"engine.negotiations\": 3"),
            text.find("\"engine.negotiations\": 5"));
  EXPECT_LT(text.find("\"p1\""), text.find("\"engine.negotiations\": 5"));
  std::remove(path.c_str());
}

TEST(ObsJsonReport, MetricCdfReportsTailPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const util::Cdf cdf(xs);

  const std::string path = temp_path(".json");
  util::JsonReport record(path, "obs_test");
  record.metric_cdf("lat", cdf);
  record.write();

  const std::string text = read_file(path);
  for (const char* key :
       {"\"lat.n\"", "\"lat.min\"", "\"lat.p5\"", "\"lat.p25\"", "\"lat.p50\"",
        "\"lat.p75\"", "\"lat.p90\"", "\"lat.p99\"", "\"lat.max\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << key << " missing: " << text;
  }
  // p5/p90/p99 come from Cdf::value_at on the sorted sample.
  EXPECT_NE(text.find("\"lat.min\": 1"), std::string::npos) << text;
  EXPECT_NE(text.find("\"lat.max\": 100"), std::string::npos) << text;
  std::remove(path.c_str());
}

using ObsJsonReportDeath = ::testing::Test;

TEST(ObsJsonReportDeath, DuplicateKeyInASectionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path(".json");
  EXPECT_EXIT(
      {
        util::JsonReport record(path, "obs_test");
        record.metric("digest", std::string("x"));
        record.metric("digest", std::string("y"));
      },
      ::testing::ExitedWithCode(2), "duplicate key \"digest\"");
  EXPECT_EXIT(
      {
        util::JsonReport record(path, "obs_test");
        record.obs_entry("engine.rounds", 1);
        record.obs_entry("engine.rounds", 2);
      },
      ::testing::ExitedWithCode(2), "duplicate key \"engine.rounds\"");
  // Same key in different sections is fine.
  util::JsonReport record(path, "obs_test");
  record.config("threads", static_cast<std::int64_t>(2));
  record.metric("threads", static_cast<std::int64_t>(2));
  record.write();
  std::remove(path.c_str());
}

// --- end-to-end scenario contracts ---------------------------------------

TEST(ObsScenario, EngineTraceAndObsSectionAreThreadCountInvariant) {
  const sim::ScenarioPreset* fig7 = sim::find_scenario("fig7");
  ASSERT_NE(fig7, nullptr);

  const std::string trace1 = temp_path("_t1.trace.json");
  const std::string json1 = temp_path("_t1.json");
  ASSERT_EQ(sim::run_scenario(
                *fig7, kv_flags({"isps=8", "pairs=4", "threads=1",
                                 "trace=" + trace1, "json=" + json1})),
            0);

  const std::string trace4 = temp_path("_t4.trace.json");
  const std::string json4 = temp_path("_t4.json");
  ASSERT_EQ(sim::run_scenario(
                *fig7, kv_flags({"isps=8", "pairs=4", "threads=4",
                                 "trace=" + trace4, "json=" + json4})),
            0);

  const std::string bytes1 = read_file(trace1);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_NE(bytes1.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(bytes1.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_EQ(bytes1, read_file(trace4)) << "trace differs across --threads";

  const std::string obs1 = obs_section_in(json1);
  ASSERT_FALSE(obs1.empty());
  EXPECT_NE(obs1.find("\"engine.negotiations\""), std::string::npos) << obs1;
  EXPECT_NE(obs1.find("\"engine.rounds_per_negotiation.count\""),
            std::string::npos)
      << obs1;
  EXPECT_EQ(obs1, obs_section_in(json4)) << "obs section differs";
  EXPECT_EQ(digest_in(json1), digest_in(json4));

  for (const std::string& p : {trace1, json1, trace4, json4})
    std::remove(p.c_str());
}

TEST(ObsScenario, RuntimeTimelineTraceIsThreadCountInvariant) {
  const sim::ScenarioPreset* churn = sim::find_scenario("runtime_churn");
  ASSERT_NE(churn, nullptr);

  const std::string trace1 = temp_path("_t1.trace.json");
  const std::string json1 = temp_path("_t1.json");
  ASSERT_EQ(sim::run_scenario(*churn, kv_flags({"threads=1", "trace=" + trace1,
                                                "json=" + json1})),
            0);

  const std::string trace4 = temp_path("_t4.trace.json");
  const std::string json4 = temp_path("_t4.json");
  ASSERT_EQ(sim::run_scenario(*churn, kv_flags({"threads=4", "trace=" + trace4,
                                                "json=" + json4})),
            0);

  const std::string bytes1 = read_file(trace1);
  ASSERT_FALSE(bytes1.empty());
  // The declared timeline and the per-session tracks are all present.
  EXPECT_NE(bytes1.find("\"timeline\""), std::string::npos);
  EXPECT_NE(bytes1.find("\"cat\":\"runtime\""), std::string::npos);
  EXPECT_NE(bytes1.find("session 0 "), std::string::npos);
  EXPECT_EQ(bytes1, read_file(trace4)) << "trace differs across --threads";

  const std::string obs1 = obs_section_in(json1);
  ASSERT_FALSE(obs1.empty());
  EXPECT_NE(obs1.find("\"runtime.sessions\""), std::string::npos) << obs1;
  EXPECT_NE(obs1.find("\"runtime.messages\""), std::string::npos) << obs1;
  EXPECT_EQ(obs1, obs_section_in(json4)) << "obs section differs";
  EXPECT_EQ(digest_in(json1), digest_in(json4));

  for (const std::string& p : {trace1, json1, trace4, json4})
    std::remove(p.c_str());
}

TEST(ObsScenario, TimingSectionAppearsOnlyWhenAsked) {
  const sim::ScenarioPreset* fig7 = sim::find_scenario("fig7");
  ASSERT_NE(fig7, nullptr);

  const std::string off_json = temp_path("_off.json");
  ASSERT_EQ(sim::run_scenario(*fig7, kv_flags({"isps=8", "pairs=2",
                                               "json=" + off_json})),
            0);
  EXPECT_EQ(read_file(off_json).find("\"timing\""), std::string::npos);

  const std::string on_json = temp_path("_on.json");
  ASSERT_EQ(sim::run_scenario(*fig7,
                              kv_flags({"isps=8", "pairs=2", "obs.timing=true",
                                        "json=" + on_json})),
            0);
  const std::string text = read_file(on_json);
  EXPECT_NE(text.find("\"timing\": {"), std::string::npos) << text;
  EXPECT_NE(text.find("\"phase.select_proposal.calls\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"phase.evaluate_full.ms\""), std::string::npos) << text;
  // Timing must never contaminate the deterministic outcome.
  EXPECT_EQ(digest_in(on_json), digest_in(off_json));

  std::remove(off_json.c_str());
  std::remove(on_json.c_str());
}

TEST(ObsScenario, DisabledObservabilityReproducesTheBenchDigest) {
  // The zero-overhead contract: with the obs layer compiled in but tracing
  // and timing off, fig7 at the bench parameters reproduces the BENCH_6
  // baseline digest bit-for-bit.
  const sim::ScenarioPreset* fig7 = sim::find_scenario("fig7");
  ASSERT_NE(fig7, nullptr);
  const std::string json = temp_path(".json");
  ASSERT_EQ(sim::run_scenario(
                *fig7, kv_flags({"isps=16", "pairs=6", "threads=2",
                                 "json=" + json})),
            0);
  EXPECT_EQ(digest_in(json), "5426f0dd8260e15a");
  std::remove(json.c_str());
}

}  // namespace
}  // namespace nexit::obs
