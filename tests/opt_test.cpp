#include <gtest/gtest.h>

#include "capacity/capacity.hpp"
#include "metrics/metrics.hpp"
#include "opt/min_max_load.hpp"
#include "test_topologies.hpp"
#include "topology/generator.hpp"
#include "traffic/traffic.hpp"

namespace nexit::opt {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

const std::vector<std::size_t> kAll{0, 1, 2};

TEST(MinMaxLoad, BalancesTwoFlowsAcrossDisjointPaths) {
  // Two unit flows a0->b2 and a2->b0 with all links capacity 1. Any shared
  // link doubles the ratio; the LP should spread load so no link exceeds ~1
  // times its fair share.
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 1.0),
                                   make_flow(1, Direction::kAtoB, 2, 0, 1.0)};
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  std::vector<char> neg{1, 1};
  routing::Assignment base{{0, 2}};

  auto res = solve_min_max_load(r, flows, neg, base, kAll, caps);
  ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);

  // Routing flow0 via ix2 and flow1 via ix0 puts each flow entirely inside
  // its upstream; every link then carries at most 1.0.
  auto loads = routing::compute_loads_fractional(r, flows, res.assignment);
  const double mel_total =
      std::max(metrics::side_mel(loads, caps, 0), metrics::side_mel(loads, caps, 1));
  EXPECT_NEAR(res.objective, mel_total, 1e-6);
  EXPECT_LE(res.objective, 1.0 + 1e-6);
}

TEST(MinMaxLoad, RespectsNonNegotiableBackground) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 1.0),
                                   make_flow(1, Direction::kAtoB, 0, 2, 1.0)};
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  // Flow 1 is pinned via ix0, loading both B links with 1.0.
  std::vector<char> neg{1, 0};
  routing::Assignment base{{0, 0}};
  auto res = solve_min_max_load(r, flows, neg, base, kAll, caps);
  ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
  // Negotiable flow 0 should avoid B entirely (go via ix2 through A),
  // keeping the max ratio at 1.0 (from the pinned background flow).
  auto loads = routing::compute_loads_fractional(r, flows, res.assignment);
  EXPECT_NEAR(metrics::side_mel(loads, caps, 1), 1.0, 1e-6);
  EXPECT_LE(metrics::side_mel(loads, caps, 0), 1.0 + 1e-6);
}

TEST(MinMaxLoad, FractionalSplitWhenNoIntegralBalance) {
  // One flow of size 2, caps 1 everywhere: splitting halves the ratio
  // compared to any integral routing.
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 1, 1, 2.0)};
  // src a1, dst b1: via ix1 zero internal distance; force links by using
  // endpoints 0 and 2 instead.
  flows[0] = make_flow(0, Direction::kAtoB, 0, 2, 2.0);
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  std::vector<char> neg{1};
  routing::Assignment base{{0}};
  auto res = solve_min_max_load(r, flows, neg, base, kAll, caps);
  ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
  // Integral best: 2.0 on some link. Fractional: split between ix0 (B path)
  // and ix2 (A path) gives 1.0 per link.
  EXPECT_NEAR(res.objective, 1.0, 1e-6);
  ASSERT_GE(res.assignment.shares_of_flow[0].size(), 2u);
}

TEST(MinMaxLoad, UpstreamOnlyScopeIgnoresDownstream) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2, 1.0)};
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {0.001, 0.001};  // downstream would scream if counted
  std::vector<char> neg{1};
  routing::Assignment base{{2}};
  MinMaxConfig cfg;
  cfg.constrain_side_a = true;
  cfg.constrain_side_b = false;
  auto res = solve_min_max_load(r, flows, neg, base, kAll, caps, cfg);
  ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
  // Upstream-optimal: send via ix0 (zero A distance), objective 0 on A links.
  EXPECT_NEAR(res.objective, 0.0, 1e-6);
}

TEST(MinMaxLoad, InputValidation) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2)};
  routing::LoadMap caps;
  caps.per_side[0] = {1.0, 1.0};
  caps.per_side[1] = {1.0, 1.0};
  EXPECT_THROW(solve_min_max_load(r, flows, {1, 1}, routing::Assignment{{0}},
                                  kAll, caps),
               std::invalid_argument);
  EXPECT_THROW(
      solve_min_max_load(r, flows, {1}, routing::Assignment{{0}}, {}, caps),
      std::invalid_argument);
}

TEST(RoundToIntegral, PicksLargestShare) {
  routing::FractionalAssignment fa;
  fa.shares_of_flow = {{{0, 0.2}, {1, 0.8}}, {{2, 1.0}}, {{0, 0.5}, {1, 0.5}}};
  auto a = round_to_integral(fa);
  EXPECT_EQ(a.ix_of_flow, (std::vector<std::size_t>{1, 2, 0}));
  routing::FractionalAssignment bad;
  bad.shares_of_flow = {{}};
  EXPECT_THROW(round_to_integral(bad), std::invalid_argument);
}

TEST(MinMaxLoad, LpLowerBoundsIntegralOnRandomScenario) {
  // Property: the fractional LP objective never exceeds the MEL of the
  // early-exit integral routing restricted to the same candidate set.
  topology::TopologyGenerator gen(geo::CityDb::builtin(),
                                  topology::GeneratorConfig{});
  util::Rng rng(4242);
  auto isps = gen.generate_universe(12, rng);
  int tested = 0;
  for (std::size_t i = 0; i < isps.size() && tested < 3; ++i) {
    for (std::size_t j = i + 1; j < isps.size() && tested < 3; ++j) {
      auto pair = topology::make_pair_if_peers(isps[i], isps[j], 3);
      if (!pair) continue;
      ++tested;
      routing::PairRouting r(*pair);
      traffic::TrafficConfig tcfg;
      auto tm = traffic::TrafficMatrix::build(*pair, Direction::kAtoB, tcfg, rng);
      std::vector<std::size_t> all_ix;
      for (std::size_t k = 0; k < pair->interconnection_count(); ++k)
        all_ix.push_back(k);
      auto base = routing::assign_early_exit(r, tm.flows(), all_ix);
      auto baseline = routing::compute_loads(r, tm.flows(), base);
      auto caps = capacity::assign_capacities(baseline, capacity::CapacityConfig{});

      // Fail interconnection 0; re-route its flows over the rest.
      std::vector<std::size_t> up_ix(all_ix.begin() + 1, all_ix.end());
      std::vector<char> neg(tm.size(), 0);
      routing::Assignment after = base;
      for (std::size_t f = 0; f < tm.size(); ++f) {
        if (base.ix_of_flow[f] == 0) {
          neg[f] = 1;
          after.ix_of_flow[f] = r.early_exit(tm.flows()[f], up_ix);
        }
      }
      auto res = solve_min_max_load(r, tm.flows(), neg, base, up_ix, caps);
      ASSERT_EQ(res.status, lp::SolveStatus::kOptimal);
      auto default_loads = routing::compute_loads(r, tm.flows(), after);
      const double default_mel =
          std::max(metrics::side_mel(default_loads, caps, 0),
                   metrics::side_mel(default_loads, caps, 1));
      EXPECT_LE(res.objective, default_mel + 1e-6);
    }
  }
  EXPECT_EQ(tested, 3);
}

}  // namespace
}  // namespace nexit::opt
