#include <gtest/gtest.h>

#include "proto/crc32.hpp"
#include "proto/frame.hpp"
#include "proto/messages.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace nexit::proto {
namespace {

TEST(Wire, VarintRoundTrip) {
  Writer w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20,
                                  0xffffffffffffffffull};
  for (auto v : values) w.put_varint(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, SignedZigZagRoundTrip) {
  Writer w;
  const std::int64_t values[] = {0, -1, 1, -64, 63, -1000000, 1000000,
                                 INT64_MIN, INT64_MAX};
  for (auto v : values) w.put_signed(v);
  Reader r(w.data());
  for (auto v : values) EXPECT_EQ(r.get_signed(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, SmallMagnitudesAreOneByte) {
  Writer w;
  w.put_signed(-10);
  EXPECT_EQ(w.data().size(), 1u);
}

TEST(Wire, DoubleRoundTrip) {
  Writer w;
  const double values[] = {0.0, -1.5, 3.14159265358979, 1e-300, 1e300};
  for (double v : values) w.put_double(v);
  Reader r(w.data());
  for (double v : values) EXPECT_DOUBLE_EQ(r.get_double(), v);
}

TEST(Wire, StringAndBytesRoundTrip) {
  Writer w;
  w.put_string("hello");
  w.put_bytes({1, 2, 3});
  w.put_string("");
  Reader r(w.data());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, TruncatedInputLatchesError) {
  Writer w;
  w.put_varint(1u << 30);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
  // Further reads stay zero and keep the error.
  EXPECT_EQ(r.get_u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Wire, OversizedLengthPrefixRejected) {
  Writer w;
  w.put_varint(Reader::kMaxBlob + 1);
  Reader r(w.data());
  (void)r.get_string();
  EXPECT_FALSE(r.ok());
}

TEST(Wire, VarintOverflowRejected) {
  Bytes evil(11, 0xff);  // 11 continuation bytes > 64 bits
  Reader r(evil);
  (void)r.get_varint();
  EXPECT_FALSE(r.ok());
}

TEST(Crc32, KnownVectors) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xcbf43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Frame, EncodeDecodeRoundTrip) {
  Frame f;
  f.type = 7;
  f.payload = {1, 2, 3, 4, 5};
  Bytes wire = encode_frame(f);
  FrameDecoder d;
  d.feed(wire);
  auto got = d.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, 7);
  EXPECT_EQ(got->payload, f.payload);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.failed());
}

TEST(Frame, ByteAtATimeDelivery) {
  Frame f;
  f.type = 3;
  f.payload = {9, 8, 7};
  Bytes wire = encode_frame(f);
  FrameDecoder d;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(d.next().has_value()) << "frame complete too early";
    d.feed(&wire[i], 1);
  }
  auto got = d.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, f.payload);
}

TEST(Frame, MultipleFramesInOneChunk) {
  Bytes wire;
  for (std::uint8_t t = 1; t <= 3; ++t) {
    Frame f;
    f.type = t;
    f.payload = {t};
    Bytes one = encode_frame(f);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameDecoder d;
  d.feed(wire);
  for (std::uint8_t t = 1; t <= 3; ++t) {
    auto got = d.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, t);
  }
  EXPECT_FALSE(d.next().has_value());
}

TEST(Frame, CorruptionPoisonsStream) {
  Frame f;
  f.type = 1;
  f.payload = {1, 2, 3};
  Bytes wire = encode_frame(f);
  wire[10] ^= 0xff;  // flip a payload byte -> CRC mismatch
  FrameDecoder d;
  d.feed(wire);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
  EXPECT_EQ(d.error(), "crc mismatch");
}

TEST(Frame, BadMagicPoisonsStream) {
  Bytes junk{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  FrameDecoder d;
  d.feed(junk);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
}

TEST(Frame, HugeLengthRejected) {
  Frame f;
  f.type = 1;
  Bytes wire = encode_frame(f);
  wire[7] = 0xff;  // length high byte -> > kMaxPayload
  FrameDecoder d;
  d.feed(wire);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
}

Message roundtrip(const Message& m) {
  const Frame f = encode_message(m);
  auto r = decode_message(f);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  return r.value();
}

TEST(Messages, HelloRoundTrip) {
  Hello h;
  h.asn = 7018;
  h.pref_range = 10;
  h.wants_reassignment = true;
  h.reassign_fraction = 0.05;
  h.turn_policy = 1;
  h.termination_policy = 2;
  EXPECT_EQ(std::get<Hello>(roundtrip(h)), h);
}

TEST(Messages, CandidatesRoundTrip) {
  Candidates c;
  c.interconnection_ids = {0, 2, 5};
  EXPECT_EQ(std::get<Candidates>(roundtrip(c)), c);
}

TEST(Messages, FlowAnnounceRoundTrip) {
  FlowAnnounce fa;
  fa.flows = {{1, 0, 12.5}, {7, 2, 0.25}};
  EXPECT_EQ(std::get<FlowAnnounce>(roundtrip(fa)), fa);
}

TEST(Messages, PrefAdvertRoundTrip) {
  PrefAdvert pa;
  pa.reassignment = true;
  pa.flows = {{3, {-10, 0, 10}}, {4, {1, -1, 0}}};
  EXPECT_EQ(std::get<PrefAdvert>(roundtrip(pa)), pa);
}

TEST(Messages, ProposeResponseStopByeRoundTrip) {
  Propose p{42, 7, 2};
  EXPECT_EQ(std::get<Propose>(roundtrip(p)), p);
  Response r{42, false};
  EXPECT_EQ(std::get<Response>(roundtrip(r)), r);
  Stop s{3};
  EXPECT_EQ(std::get<Stop>(roundtrip(s)), s);
  EXPECT_EQ(std::get<Bye>(roundtrip(Bye{})), Bye{});
}

TEST(Messages, UnknownTypeIsError) {
  Frame f;
  f.type = 200;
  EXPECT_FALSE(decode_message(f).ok());
}

TEST(Messages, TrailingGarbageIsError) {
  Frame f = encode_message(Stop{1});
  f.payload.push_back(0xee);
  EXPECT_FALSE(decode_message(f).ok());
}

TEST(Messages, TruncatedPayloadIsError) {
  Frame f = encode_message(Propose{1, 2, 3});
  f.payload.pop_back();
  auto r = decode_message(f);
  EXPECT_FALSE(r.ok());
}

// Fuzz-ish property: random byte payloads never crash the decoder and either
// parse cleanly or return an error.
class MessageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzz, RandomPayloadsNeverCrash) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    Frame f;
    f.type = static_cast<std::uint8_t>(rng.next_below(12));
    const std::size_t n = rng.pick_index(64) + (rng.next_bool(0.5) ? 0 : 1);
    for (std::size_t i = 0; i < n; ++i)
      f.payload.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    auto r = decode_message(f);
    (void)r.ok();  // must not crash or throw
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nexit::proto
