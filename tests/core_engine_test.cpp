#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/oracles.hpp"
#include "metrics/metrics.hpp"
#include "test_topologies.hpp"

namespace nexit::core {
namespace {

using testing::figure1_pair;
using testing::make_flow;
using traffic::Direction;

/// Scripted oracle for protocol-level tests: preference lists are supplied
/// per reassignment phase.
class ScriptedOracle : public PreferenceOracle {
 public:
  explicit ScriptedOracle(std::vector<PreferenceList> phases, bool reassign = false)
      : phases_(std::move(phases)), reassign_(reassign) {}

  Evaluation evaluate(const OracleContext&) override {
    const std::size_t i = std::min(calls_, phases_.size() - 1);
    ++calls_;
    Evaluation e;
    e.classes = phases_[i];
    // Scripted oracles value alternatives exactly at their class numbers.
    for (const auto& fp : e.classes.flows) {
      std::vector<double> row(fp.pref_of_candidate.begin(),
                              fp.pref_of_candidate.end());
      e.true_value.push_back(std::move(row));
    }
    return e;
  }
  [[nodiscard]] bool wants_reassignment() const override { return reassign_; }
  [[nodiscard]] std::size_t calls() const { return calls_; }

 private:
  std::vector<PreferenceList> phases_;
  bool reassign_;
  std::size_t calls_ = 0;
};

PreferenceList list_for(const std::vector<std::vector<PrefClass>>& rows) {
  PreferenceList l;
  for (std::size_t i = 0; i < rows.size(); ++i)
    l.flows.push_back(
        {traffic::FlowId{static_cast<std::int32_t>(i)}, rows[i]});
  return l;
}

/// A two-flow, two-candidate problem over the figure-1 pair, used as the
/// substrate for scripted-oracle tests (flow geometry does not matter there;
/// only list shapes do). Candidates: 0 = "top", 1 = "bottom".
struct ScriptedFixture {
  topology::IspPair pair = figure1_pair();
  routing::PairRouting routing{pair};
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 0, 1.0),
                                   make_flow(1, Direction::kAtoB, 1, 1, 1.0)};
  NegotiationProblem problem;

  ScriptedFixture() {
    problem.routing = &routing;
    problem.flows = &flows;
    problem.negotiable = {0, 1};
    problem.candidates = {0, 1};
    // Defaults: both flows on candidate 1 ("bottom").
    problem.default_assignment.ix_of_flow = {1, 1};
  }
};

// --- The paper's worked example (Fig. 2 / Fig. 3) ---------------------------
//
// Initial lists ((A,B) per alternative), defaults = bottom:
//   f2top (-1,0)  f2bot (0,0)  f3top (0,0)  f3bot (0,0)
// After f2 settles on bottom, ISP-B reassigns: f3top (0,+1).
// Desired outcome: f2 -> bottom, f3 -> top (Fig. 2e).

TEST(WorkedExample, ReachesMutuallyAcceptableSolution) {
  int optimal_count = 0;
  int runs = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    ScriptedFixture fx;
    ScriptedOracle a(
        {list_for({{-1, 0}, {0, 0}})},  // static for A
        false);
    ScriptedOracle b(
        {list_for({{0, 0}, {0, 0}}),    // phase 0: indifferent
         list_for({{0, 0}, {1, 0}})},   // after first accept: f3top = +1
        true);
    NegotiationConfig cfg;
    cfg.seed = seed;
    cfg.reassign_traffic_fraction = 0.5;  // reassign after every flow
    cfg.record_trace = true;
    NegotiationEngine engine(fx.problem, a, b, cfg);
    auto out = engine.run();
    ++runs;

    // Whatever the tie-breaks, no ISP ends below its default.
    EXPECT_GE(out.true_gain_a, 0);
    EXPECT_GE(out.true_gain_b, 0);
    // f2 must never sit on top (A's -1; combined would be negative).
    EXPECT_NE(out.assignment.ix_of_flow[0], 0u);
    if (out.assignment.ix_of_flow[1] == 0) {
      // Fig. 2e reached: f2 bottom, f3 top.
      ++optimal_count;
      // When f2 settles first (the paper's narrative), the reassigned
      // ISP-B list values f3top at +1 and B banks that gain.
      ASSERT_FALSE(out.trace.empty());
      if (out.trace.front().flow.value() == 0) {
        EXPECT_EQ(out.true_gain_b, 1);
      }
    }
  }
  // The desired outcome must be reachable (the paper notes the suboptimal
  // one is possible too when f3bot is picked first).
  EXPECT_GT(optimal_count, 0);
  EXPECT_EQ(runs, 30);
}

TEST(WorkedExample, TraceShowsReassignment) {
  ScriptedFixture fx;
  ScriptedOracle a({list_for({{-1, 0}, {0, 0}})});
  ScriptedOracle b({list_for({{0, 0}, {0, 0}}), list_for({{0, 0}, {1, 0}})},
                   true);
  NegotiationConfig cfg;
  cfg.seed = 3;
  cfg.reassign_traffic_fraction = 0.5;
  cfg.record_trace = true;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  EXPECT_GE(out.reassignments, 1u);
  EXPECT_GE(b.calls(), 2u);
  ASSERT_FALSE(out.trace.empty());
  EXPECT_TRUE(out.trace.front().accepted);
}

// --- Engine mechanics with scripted lists ----------------------------------

TEST(Engine, PicksMaxCombinedGain) {
  ScriptedFixture fx;
  // Flow 0: top gives A+3/B+2 (sum 5); flow 1: top gives A+1/B+1 (sum 2).
  ScriptedOracle a({list_for({{3, 0}, {1, 0}})});
  ScriptedOracle b({list_for({{2, 0}, {1, 0}})});
  NegotiationConfig cfg;
  cfg.record_trace = true;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  ASSERT_GE(out.trace.size(), 2u);
  EXPECT_EQ(out.trace[0].flow.value(), 0);
  EXPECT_EQ(out.trace[0].interconnection, 0u);
  EXPECT_EQ(out.trace[1].flow.value(), 1);
  EXPECT_EQ(out.true_gain_a, 4);
  EXPECT_EQ(out.true_gain_b, 3);
  EXPECT_EQ(out.stop_reason, StopReason::kExhausted);
  EXPECT_EQ(out.flows_negotiated, 2u);
  EXPECT_EQ(out.flows_moved, 2u);
}

TEST(Engine, TradeAcrossFlowsMakesBothWin) {
  ScriptedFixture fx;
  // Flow 0 helps A (+3) and hurts B (-1); flow 1 the reverse. Negotiating
  // both is a win-win (A +2, B +2) even though each flow alone is not.
  ScriptedOracle a({list_for({{3, 0}, {-1, 0}})});
  ScriptedOracle b({list_for({{-1, 0}, {3, 0}})});
  NegotiationEngine engine(fx.problem, a, b, NegotiationConfig{});
  auto out = engine.run();
  EXPECT_EQ(out.assignment.ix_of_flow, (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(out.true_gain_a, 2);
  EXPECT_EQ(out.true_gain_b, 2);
}

TEST(Engine, EarlyTerminationStopsWhenContinuingOnlyHurts) {
  ScriptedFixture fx;
  // Flow 0: combined +2 (A+2,B0); flow 1: combined 0 via default but the
  // only non-default alt hurts A (-3) and helps B (+1) -> combined -2, so
  // flow 1's best is its default (0,0). After flow 0, future is flat; the
  // engine negotiates it at default harmlessly.
  ScriptedOracle a({list_for({{2, 0}, {-3, 0}})});
  ScriptedOracle b({list_for({{0, 0}, {1, 0}})});
  NegotiationConfig cfg;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  EXPECT_EQ(out.assignment.ix_of_flow[0], 0u);
  EXPECT_EQ(out.assignment.ix_of_flow[1], 1u);  // stays default
  EXPECT_EQ(out.true_gain_a, 2);
  EXPECT_EQ(out.true_gain_b, 0);
}

TEST(Engine, EarlyTerminationProtectsAgainstPureLossFuture) {
  ScriptedFixture fx;
  // Both flows: A loses 2, B gains 1 on the non-default alternative; the
  // combined max per flow is the default (0). Early termination stops with
  // nothing moved... actually selection picks defaults (combined 0) over
  // the -1 alternatives, so no one is ever hurt.
  ScriptedOracle a({list_for({{-2, 0}, {-2, 0}})});
  ScriptedOracle b({list_for({{1, 0}, {1, 0}})});
  NegotiationEngine engine(fx.problem, a, b, NegotiationConfig{});
  auto out = engine.run();
  EXPECT_EQ(out.true_gain_a, 0);
  EXPECT_EQ(out.assignment.ix_of_flow, fx.problem.default_assignment.ix_of_flow);
}

TEST(Engine, FullTerminationGuardsCumulativeGain) {
  ScriptedFixture fx;
  // Flow 0: A+1/B-1 (combined 0 same as defaults...) make it positive:
  // A+2/B-1 (sum 1). Flow 1: A-2/B+1 (sum -1) -> its best is default (0,0).
  ScriptedOracle a({list_for({{2, 0}, {-2, 0}})});
  ScriptedOracle b({list_for({{-1, 0}, {1, 0}})});
  NegotiationConfig cfg;
  cfg.termination = TerminationPolicy::kFull;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  // B dips to -1 on flow 0? Full termination stops if cumulative would go
  // negative: accepting flow 0 makes B = -1 < 0, so negotiation stops
  // before it.
  EXPECT_EQ(out.stop_reason, StopReason::kGainWouldGoNegative);
  EXPECT_EQ(out.true_gain_b, 0);
}

TEST(Engine, NegotiateAllSettlesEverything) {
  ScriptedFixture fx;
  ScriptedOracle a({list_for({{-1, 0}, {-1, 0}})});
  ScriptedOracle b({list_for({{0, 0}, {0, 0}})});
  NegotiationConfig cfg;
  cfg.termination = TerminationPolicy::kNegotiateAll;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  EXPECT_EQ(out.flows_negotiated, 2u);
  EXPECT_EQ(out.stop_reason, StopReason::kExhausted);
  // Defaults win (combined 0 beats -1), so nothing moves.
  EXPECT_EQ(out.flows_moved, 0u);
}

TEST(Engine, VetoBansLossyAlternative) {
  ScriptedFixture fx;
  // A wants flow 0 on top (+5), B truly hates it (-2). Selection (max
  // combined = +3) proposes it; with kVetoOwnLoss B rejects, and the
  // negotiation falls back to defaults.
  ScriptedOracle a({list_for({{5, 0}, {0, 0}})});
  ScriptedOracle b({list_for({{-2, 0}, {0, 0}})});
  NegotiationConfig cfg;
  cfg.acceptance = AcceptancePolicy::kVetoOwnLoss;
  // kEarly would make B stop before the proposal; exercise the veto path.
  cfg.termination = TerminationPolicy::kNegotiateAll;
  cfg.record_trace = true;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  EXPECT_EQ(out.assignment.ix_of_flow[0], 1u);  // stays default
  EXPECT_EQ(out.true_gain_b, 0);
  bool saw_rejection = false;
  for (const auto& tr : out.trace) saw_rejection |= !tr.accepted;
  EXPECT_TRUE(saw_rejection);
}

TEST(Engine, LowerGainTurnPolicyAlternatesOnTies) {
  ScriptedFixture fx;
  ScriptedOracle a({list_for({{1, 0}, {1, 0}})});
  ScriptedOracle b({list_for({{1, 0}, {1, 0}})});
  NegotiationConfig cfg;
  cfg.turn = TurnPolicy::kLowerGain;
  NegotiationEngine engine(fx.problem, a, b, cfg);
  auto out = engine.run();
  EXPECT_EQ(out.flows_negotiated, 2u);
  EXPECT_EQ(out.true_gain_a, 2);
}

TEST(Engine, DeterministicGivenSeed) {
  for (int rep = 0; rep < 3; ++rep) {
    ScriptedFixture fx;
    ScriptedOracle a({list_for({{1, 1}, {1, 1}})});
    ScriptedOracle b({list_for({{1, 1}, {1, 1}})});
    NegotiationConfig cfg;
    cfg.seed = 77;
    cfg.record_trace = true;
    NegotiationEngine engine(fx.problem, a, b, cfg);
    auto out = engine.run();
    static std::vector<std::size_t> first;
    if (rep == 0) {
      first = out.assignment.ix_of_flow;
    } else {
      EXPECT_EQ(out.assignment.ix_of_flow, first);
    }
  }
}

TEST(Engine, MalformedProblemThrows) {
  ScriptedFixture fx;
  fx.problem.default_assignment.ix_of_flow = {0};  // wrong size
  ScriptedOracle a({list_for({{0, 0}, {0, 0}})});
  ScriptedOracle b({list_for({{0, 0}, {0, 0}})});
  EXPECT_THROW(NegotiationEngine(fx.problem, a, b, NegotiationConfig{}),
               std::invalid_argument);
}

TEST(Engine, OracleShapeMismatchDetected) {
  ScriptedFixture fx;
  ScriptedOracle a({list_for({{0, 0}})});  // one flow instead of two
  ScriptedOracle b({list_for({{0, 0}, {0, 0}})});
  NegotiationEngine engine(fx.problem, a, b, NegotiationConfig{});
  EXPECT_THROW(engine.run(), std::logic_error);
}

// --- End-to-end on the figure-1 topology with real oracles ------------------

TEST(EngineWithDistanceOracles, FindsTheMutuallyBeneficialRouting) {
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  // Two opposite flows between the far ends (the Fig. 1 situation).
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 0, 2),
                                   make_flow(1, Direction::kBtoA, 2, 0)};
  auto problem = make_distance_problem(r, flows, {0, 1, 2});

  PreferenceConfig pc;
  DistanceOracle a(0, pc), b(1, pc);
  NegotiationConfig cfg;
  NegotiationEngine engine(problem, a, b, cfg);
  auto out = engine.run();

  const double def_km =
      metrics::total_flow_km(r, flows, problem.default_assignment);
  const double neg_km = metrics::total_flow_km(r, flows, out.assignment);
  auto optimal = routing::assign_min_total_km(r, flows, problem.candidates);
  const double opt_km = metrics::total_flow_km(r, flows, optimal);

  // In this symmetric two-flow case the global optimum (both flows via ix2)
  // makes ISP A strictly worse in its own network, so a win-win negotiation
  // must legitimately refuse it: optimal <= negotiated <= default, and no
  // ISP below its default.
  EXPECT_LE(neg_km, def_km + 1e-9);
  EXPECT_LE(opt_km, neg_km + 1e-9);
  EXPECT_GE(out.true_gain_a, 0);
  EXPECT_GE(out.true_gain_b, 0);
  // And the per-ISP km confirm neither carries more than under default.
  for (int side = 0; side < 2; ++side) {
    EXPECT_LE(metrics::side_flow_km(r, flows, out.assignment, side),
              metrics::side_flow_km(r, flows, problem.default_assignment, side) +
                  1e-9);
  }
}

TEST(EngineWithDistanceOracles, AsymmetricTradeReachesOptimal) {
  // Flows engineered so the optimal IS win-win: f0 = a0 -> b2 (B saves 400km
  // by ix2, A pays 200) and f1 = b2 -> a2 (B saves 400km by exiting at ix2
  // rather than hauling to ix0; A pays nothing since dst is a2)... Use
  // distinct endpoints so savings do not cancel.
  auto pair = figure1_pair();
  routing::PairRouting r(pair);
  std::vector<traffic::Flow> flows{make_flow(0, Direction::kAtoB, 1, 2),
                                   make_flow(1, Direction::kBtoA, 1, 0)};
  // f0: a1->b2. defaults ix1 (A 0km, B 300). via ix2: A 100, B 0: combined
  // saves 200. f1: b1->a0: default ix1 (B 0, A 100); via ix0: B 100, A 0.
  auto problem = make_distance_problem(r, flows, {0, 1, 2});
  DistanceOracle a(0, PreferenceConfig{}), b(1, PreferenceConfig{});
  NegotiationEngine engine(problem, a, b, NegotiationConfig{});
  auto out = engine.run();

  const double def_km =
      metrics::total_flow_km(r, flows, problem.default_assignment);
  const double neg_km = metrics::total_flow_km(r, flows, out.assignment);
  EXPECT_LT(neg_km, def_km);  // negotiation finds real savings here
  EXPECT_GE(out.true_gain_a, 0);
  EXPECT_GE(out.true_gain_b, 0);
}

}  // namespace
}  // namespace nexit::core
